"""Property-based tests for the Luette interpreter and table semantics."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aa.interpreter import Interpreter
from repro.aa.parser import parse
from repro.aa.stdlib import make_sandbox_globals
from repro.aa.values import LuetteTable, luette_to_python, python_to_luette

numbers = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False,
                    allow_infinity=False)
small_ints = st.integers(min_value=-1000, max_value=1000)


def run(source):
    interp = Interpreter(make_sandbox_globals())
    return interp.run_chunk(parse(source))


@given(numbers, numbers)
def test_addition_matches_python(a, b):
    assert run(f"return {a!r} + {b!r}") == a + b


@given(numbers, numbers)
def test_comparison_matches_python(a, b):
    assert run(f"return {a!r} < {b!r}") == (a < b)
    assert run(f"return {a!r} <= {b!r}") == (a <= b)
    assert run(f"return {a!r} == {b!r}") == (a == b)


@given(small_ints, st.integers(min_value=1, max_value=1000))
def test_floored_modulo_sign_follows_divisor(a, b):
    result = run(f"return {a} % {b}")
    assert result == a - (a // b) * b
    assert 0 <= result < b


@given(st.lists(numbers, min_size=1, max_size=20))
def test_variadic_max_min(values):
    args = ", ".join(repr(v) for v in values)
    assert run(f"return math.max({args})") == max(values)
    assert run(f"return math.min({args})") == min(values)


@given(st.lists(small_ints, min_size=0, max_size=30))
def test_table_insert_builds_sequence(values):
    statements = "\n".join(f"table.insert(t, {v})" for v in values)
    result = run(f"local t = {{}}\n{statements}\nreturn #t")
    assert result == len(values)


@given(st.lists(small_ints, min_size=1, max_size=25))
def test_table_sort_matches_python(values):
    items = ", ".join(str(v) for v in values)
    result = run(f"local t = {{{items}}} table.sort(t) return table.concat(t, ',')")
    expected = ",".join(str(v) for v in sorted(values))
    assert result == expected


@given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126,
                                      exclude_characters="'\\\""),
               max_size=40))
def test_string_length_and_round_trip(text):
    assert run(f"return #'{text}'") == len(text)
    assert run(f"return '{text}'") == text


@given(st.text(alphabet="abcdef", min_size=1, max_size=20),
       st.integers(min_value=1, max_value=20),
       st.integers(min_value=1, max_value=20))
def test_string_sub_matches_python_slice(text, i, j):
    result = run(f"return string.sub('{text}', {i}, {j})")
    assert result == text[i - 1:j]


class TestTableProperties:
    @given(st.dictionaries(st.text(min_size=1, max_size=8), small_ints, max_size=20))
    def test_python_bridge_round_trip_dicts(self, data):
        table = python_to_luette(data)
        assert isinstance(table, LuetteTable)
        assert luette_to_python(table) == data

    @given(st.lists(small_ints, min_size=1, max_size=20))
    def test_python_bridge_round_trip_lists(self, data):
        table = python_to_luette(data)
        assert luette_to_python(table) == data

    @given(st.lists(st.tuples(st.integers(min_value=1, max_value=50), small_ints),
                    max_size=40))
    def test_set_get_consistency(self, pairs):
        table = LuetteTable()
        expected = {}
        for key, value in pairs:
            table.set(key, value)
            expected[key] = value
        for key, value in expected.items():
            assert table.get(key) == value

    @given(st.integers(min_value=0, max_value=30))
    def test_length_is_contiguous_border(self, n):
        table = LuetteTable()
        for i in range(1, n + 1):
            table.set(i, i)
        assert table.length() == n
        if n:
            table.set(n // 2 + 1, None)  # punch a hole
            assert table.length() == n // 2 if n > 1 else table.length() == 0

    @given(st.floats(min_value=1, max_value=100))
    def test_integer_float_key_unification(self, key):
        table = LuetteTable()
        if key.is_integer():
            table.set(key, "v")
            assert table.get(int(key)) == "v"
