"""Unit tests for the deterministic fault injector and its schedules."""

import random

import pytest

from repro.core.plane import RBay, RBayConfig
from repro.faults import FaultEvent, FaultInjector, FaultSchedule, MessageRule, protocol_kind
from repro.net.message import Message


def build_plane(seed=11, **overrides):
    kwargs = dict(seed=seed, synthetic_sites=3, nodes_per_site=4, jitter=False,
                  maintenance_interval_ms=500.0)
    kwargs.update(overrides)
    plane = RBay(RBayConfig(**kwargs)).build()
    plane.sim.run()
    return plane


# ----------------------------------------------------------------------
# Schedules
# ----------------------------------------------------------------------
class TestFaultSchedule:
    def test_events_kept_sorted(self):
        schedule = FaultSchedule().crash(1, 500.0).crash(0, 100.0)
        assert [e.at_ms for e in schedule] == [100.0, 500.0]

    def test_crash_requires_recover_after(self):
        with pytest.raises(ValueError):
            FaultSchedule().crash(0, 200.0, recover_at_ms=200.0)

    def test_partition_requires_positive_window(self):
        with pytest.raises(ValueError):
            FaultSchedule().partition("A", "B", 300.0, 300.0)

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(0.0, "meltdown")

    def test_json_round_trip(self):
        schedule = (FaultSchedule()
                    .crash(2, 100.0, recover_at_ms=900.0)
                    .partition("Site000", "Site001", 200.0, 700.0)
                    .rule(MessageRule(name="lossy", drop_prob=0.5,
                                      kind_prefix="direct/scribe"),
                          50.0, 850.0))
        restored = FaultSchedule.from_json(schedule.to_json())
        assert restored.describe() == schedule.describe()
        assert len(restored) == len(schedule)

    def test_randomized_always_heals_within_horizon(self):
        rng = random.Random(42)
        schedule = FaultSchedule.randomized(
            rng, duration_ms=10_000.0, node_count=30, crash_fraction=0.5,
            site_names=("A", "B", "C"), partitions=2, drop_prob=0.1)
        crashes = {e.node for e in schedule if e.action == "crash"}
        recovers = {e.node for e in schedule if e.action == "recover"}
        assert crashes and crashes == recovers
        starts = sum(1 for e in schedule if e.action == "partition_start")
        ends = sum(1 for e in schedule if e.action == "partition_end")
        assert starts == ends
        assert all(e.at_ms < 10_000.0 for e in schedule)

    def test_randomized_is_seed_deterministic(self):
        make = lambda: FaultSchedule.randomized(
            random.Random(7), duration_ms=5_000.0, node_count=20,
            site_names=("A", "B"), partitions=1, drop_prob=0.2)
        assert make().describe() == make().describe()


def test_protocol_kind_classifies_wire_messages():
    routed = Message(kind="pastry.route",
                     payload={"app": "scribe", "data": {"op": "join"}})
    direct = Message(kind="pastry.direct",
                     payload={"app": "query", "kind": "site_result", "data": {}})
    other = Message(kind="pastry.ping")
    assert protocol_kind(routed) == "route/scribe/join"
    assert protocol_kind(direct) == "direct/query/site_result"
    assert protocol_kind(other) == "pastry.ping"


# ----------------------------------------------------------------------
# Injection against a live plane
# ----------------------------------------------------------------------
class TestCrashRecover:
    def test_crash_detaches_and_recover_restores(self):
        plane = build_plane()
        injector = plane.install_faults()
        node = plane.nodes[0]
        injector.crash_node(0)
        assert not plane.network.has_host(node.address)
        assert not node.alive
        assert 0 not in injector.live_indices
        injector.recover_node(0)
        assert plane.network.has_host(node.address)
        assert node.alive
        assert plane.counters.get("faults.crash") == 1
        assert plane.counters.get("faults.recover") == 1

    def test_crash_and_recover_are_idempotent(self):
        plane = build_plane()
        injector = plane.install_faults()
        injector.crash_node(1)
        injector.crash_node(1)
        assert plane.counters.get("faults.crash") == 1
        injector.recover_node(1)
        injector.recover_node(1)
        assert plane.counters.get("faults.recover") == 1

    def test_crash_pauses_maintenance_and_recover_resumes_it(self):
        plane = build_plane()
        plane.start_maintenance()
        injector = plane.install_faults()
        node = plane.nodes[2]
        injector.crash_node(2)
        assert node._maintenance_task is None
        injector.recover_node(2)
        assert node._maintenance_task is not None
        assert not node._maintenance_task.stopped
        assert node._maintenance_task.interval == 500.0

    def test_crashed_node_sends_nothing(self):
        plane = build_plane()
        injector = plane.install_faults()
        node = plane.nodes[0]
        injector.crash_node(0)
        before = plane.network.messages_sent
        node.send_app(plane.nodes[1].address, "scribe",
                      "leave", {"topic": "t"})
        assert plane.network.messages_sent == before
        assert plane.network.messages_suppressed >= 1

    def test_churn_tracker_follows_crash_cycle(self):
        plane = build_plane()
        injector = plane.install_faults()
        address = plane.nodes[3].address
        injector.crash_node(3)
        assert not plane.churn.history(address).is_up()
        plane.sim.run(until=plane.sim.now + 100.0)
        injector.recover_node(3)
        history = plane.churn.history(address)
        assert history.is_up()
        assert history.last_up == plane.sim.now


class TestPartitionsAndRules:
    def test_partition_drops_cross_site_traffic_until_healed(self):
        plane = build_plane()
        injector = plane.install_faults()
        a = plane.site_nodes("Site000")[0]
        b = plane.site_nodes("Site001")[0]
        injector.start_partition("Site000", "Site001")
        dropped_before = plane.network.messages_dropped
        a.send_app(b.address, "scribe", "leave", {"topic": "t"})
        plane.sim.run()
        assert plane.network.messages_dropped == dropped_before + 1
        assert plane.counters.get("faults.partition_drop") == 1
        injector.end_partition("Site000", "Site001")
        received = plane.network.per_host_received[b.address]
        a.send_app(b.address, "scribe", "leave", {"topic": "t"})
        plane.sim.run()
        assert plane.network.per_host_received[b.address] == received + 1

    def test_partition_leaves_intra_site_traffic_alone(self):
        plane = build_plane()
        injector = plane.install_faults()
        injector.start_partition("Site000", "Site001")
        a, b = plane.site_nodes("Site000")[:2]
        received = plane.network.per_host_received[b.address]
        a.send_app(b.address, "scribe", "leave", {"topic": "t"})
        plane.sim.run()
        assert plane.network.per_host_received[b.address] == received + 1

    def test_rule_drop_matches_kind_prefix_only(self):
        plane = build_plane()
        injector = plane.install_faults()
        injector.start_rule(MessageRule(name="cut-scribe", drop_prob=1.0,
                                        kind_prefix="direct/scribe"))
        a, b = plane.site_nodes("Site000")[:2]
        dropped = plane.network.messages_dropped
        a.send_app(b.address, "scribe", "leave", {"topic": "t"})
        plane.sim.run()
        assert plane.network.messages_dropped == dropped + 1
        received = plane.network.per_host_received[b.address]
        a.send_app(b.address, "query", "release", {"query_id": 1})
        plane.sim.run()
        assert plane.network.per_host_received[b.address] == received + 1

    def test_rule_duplicate_delivers_twice(self):
        plane = build_plane()
        injector = plane.install_faults()
        injector.start_rule(MessageRule(name="dup", duplicate_prob=1.0,
                                        kind_prefix="direct/query"))
        a, b = plane.site_nodes("Site000")[:2]
        received = plane.network.per_host_received[b.address]
        a.send_app(b.address, "query", "release", {"query_id": 9})
        plane.sim.run()
        assert plane.network.per_host_received[b.address] == received + 2
        assert plane.counters.get("faults.msg_duplicated") == 1

    def test_rule_end_restores_delivery(self):
        plane = build_plane()
        injector = plane.install_faults()
        rule = MessageRule(name="cut", drop_prob=1.0)
        injector.start_rule(rule)
        injector.end_rule(rule)
        a, b = plane.site_nodes("Site000")[:2]
        received = plane.network.per_host_received[b.address]
        a.send_app(b.address, "scribe", "leave", {"topic": "t"})
        plane.sim.run()
        assert plane.network.per_host_received[b.address] == received + 1


class TestScheduledExecution:
    def test_schedule_fires_on_the_sim_clock(self):
        plane = build_plane()
        schedule = FaultSchedule().crash(0, plane.sim.now + 250.0,
                                         recover_at_ms=plane.sim.now + 750.0)
        injector = plane.install_faults(schedule)
        node = plane.nodes[0]
        plane.sim.run(until=plane.sim.now + 500.0)
        assert not plane.network.has_host(node.address)
        plane.sim.run(until=plane.sim.now + 500.0)
        assert plane.network.has_host(node.address)
        assert len(injector.trace) == 2

    def test_config_fault_schedule_installs_at_build(self):
        schedule = FaultSchedule().crash(1, 10_000.0)
        plane = build_plane(fault_schedule=schedule)
        assert plane.fault_injector is not None
        assert plane.network.fault_filter == plane.fault_injector.on_send

    def test_identical_seeds_yield_identical_traces(self):
        def run_once():
            plane = build_plane(seed=23)
            schedule = FaultSchedule.randomized(
                random.Random(5), duration_ms=4_000.0,
                node_count=len(plane.nodes), crash_fraction=0.4,
                site_names=[s.name for s in plane.registry], partitions=1,
                drop_prob=0.2)
            injector = plane.install_faults(schedule)
            plane.start_maintenance()
            plane.sim.run(until=plane.sim.now + 5_000.0)
            return injector.trace_text(), plane.network.messages_sent

        first_trace, first_sent = run_once()
        second_trace, second_sent = run_once()
        assert first_trace == second_trace
        assert first_sent == second_sent

    def test_conservation_holds_under_chaos(self):
        plane = build_plane(seed=31)
        schedule = FaultSchedule.randomized(
            random.Random(3), duration_ms=4_000.0,
            node_count=len(plane.nodes), crash_fraction=0.5,
            site_names=[s.name for s in plane.registry], partitions=2,
            drop_prob=0.3, duplicate_prob=0.2)
        plane.install_faults(schedule)
        plane.start_maintenance()
        plane.sim.run(until=plane.sim.now + 6_000.0)
        plane.stop_maintenance()
        plane.sim.run()
        net = plane.network
        assert net.messages_in_flight == 0
        assert net.messages_sent == net.messages_delivered + net.messages_dropped
