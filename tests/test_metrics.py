"""Tests for statistics, counters, and memory measurement utilities."""

import pytest

from repro.metrics.counters import CounterRegistry
from repro.metrics.memory import deep_sizeof, deep_sizeof_many
from repro.metrics.stats import (
    LatencyRecorder,
    cdf_points,
    coefficient_of_variation,
    format_table,
    jain_fairness,
    mean,
    percentile,
    stddev,
)


class TestStats:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2.0
        with pytest.raises(ValueError):
            mean([])

    def test_stddev(self):
        assert stddev([2, 2, 2]) == 0.0
        assert stddev([0, 10]) == 5.0

    def test_percentile_interpolation(self):
        values = [10, 20, 30, 40]
        assert percentile(values, 0) == 10
        assert percentile(values, 100) == 40
        assert percentile(values, 50) == 25.0

    def test_percentile_single_value(self):
        assert percentile([7], 99) == 7

    def test_percentile_bad_q(self):
        with pytest.raises(ValueError):
            percentile([1], 150)

    def test_percentile_boundary_q(self):
        # q=0 and q=100 are valid (inclusive bounds) and hit the extremes
        # exactly, with no interpolation drift.
        values = [3.5, -1.0, 9.25, 4.0]
        assert percentile(values, 0) == -1.0
        assert percentile(values, 100) == 9.25
        assert percentile([42.0], 0) == 42.0
        assert percentile([42.0], 100) == 42.0
        # Just outside the closed interval must raise, both sides.
        for bad in (-0.0001, 100.0001, -5, 101):
            with pytest.raises(ValueError):
                percentile(values, bad)
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_cdf_points(self):
        points = cdf_points([3, 1, 2])
        assert points == [(1, 1 / 3), (2, 2 / 3), (3, 1.0)]

    def test_cv(self):
        assert coefficient_of_variation([5, 5, 5]) == 0.0
        with pytest.raises(ValueError):
            coefficient_of_variation([1, -1])

    def test_jain_fairness_bounds(self):
        assert jain_fairness([1, 1, 1, 1]) == pytest.approx(1.0)
        skewed = jain_fairness([100, 0, 0, 0])
        assert skewed == pytest.approx(0.25)
        assert jain_fairness([0, 0]) == 1.0

    def test_jain_fairness_rejects_negative_allocations(self):
        # Negative shares make the index meaningless (it can exceed 1:
        # [1, -1] would give total=0 but squares=2).
        with pytest.raises(ValueError):
            jain_fairness([1.0, -1.0])
        with pytest.raises(ValueError):
            jain_fairness([-0.5])

    def test_format_table_aligns(self):
        text = format_table(["a", "bbb"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[:2])


class TestLatencyRecorder:
    def test_record_and_summary(self):
        recorder = LatencyRecorder()
        for value in (10, 20, 30):
            recorder.record("local", value)
        summary = recorder.summary("local")
        assert summary["count"] == 3
        assert summary["mean"] == 20
        assert summary["min"] == 10 and summary["max"] == 30

    def test_labels_sorted(self):
        recorder = LatencyRecorder()
        recorder.record("b", 1)
        recorder.record("a", 1)
        assert recorder.labels() == ["a", "b"]

    def test_missing_label_raises(self):
        with pytest.raises(KeyError):
            LatencyRecorder().summary("nope")

    def test_cdf_of_label(self):
        recorder = LatencyRecorder()
        recorder.record("x", 2)
        recorder.record("x", 1)
        assert recorder.cdf("x")[0] == (1, 0.5)

    def test_merge(self):
        a, b = LatencyRecorder(), LatencyRecorder()
        a.record("x", 1)
        b.record("x", 2)
        b.record("y", 3)
        a.merge(b)
        assert a.count("x") == 2 and a.count("y") == 1

    def test_samples_returns_copy(self):
        recorder = LatencyRecorder()
        recorder.record("x", 1)
        recorder.samples("x").append(99)
        assert recorder.count("x") == 1


class TestCounterRegistry:
    def test_unknown_name_reads_zero(self):
        assert CounterRegistry().get("never.touched") == 0

    def test_increment_returns_new_value(self):
        counters = CounterRegistry()
        assert counters.increment("a.hit") == 1
        assert counters.increment("a.hit", 4) == 5
        assert counters.get("a.hit") == 5

    def test_snapshot_is_a_copy(self):
        counters = CounterRegistry()
        counters.increment("a.hit")
        snap = counters.snapshot()
        snap["a.hit"] = 99
        assert counters.get("a.hit") == 1

    def test_snapshot_prefix_filter(self):
        counters = CounterRegistry()
        counters.increment("scribe.acc_cache.hit")
        counters.increment("query.probe_cache.hit")
        assert counters.snapshot("scribe") == {"scribe.acc_cache.hit": 1}

    def test_reset_all_and_prefix(self):
        counters = CounterRegistry()
        counters.increment("a.x")
        counters.increment("b.y")
        counters.reset("a")
        assert counters.get("a.x") == 0 and counters.get("b.y") == 1
        counters.reset()
        assert len(counters) == 0

    def test_names_sorted(self):
        counters = CounterRegistry()
        counters.increment("z.last")
        counters.increment("a.first")
        assert counters.names() == ["a.first", "z.last"]

    def test_merge_sums_per_name(self):
        a, b = CounterRegistry(), CounterRegistry()
        a.increment("x", 2)
        b.increment("x", 3)
        b.increment("y")
        a.merge(b)
        assert a.get("x") == 5 and a.get("y") == 1

    def test_format_is_a_table(self):
        counters = CounterRegistry()
        counters.increment("cache.hit", 7)
        text = counters.format()
        assert "cache.hit" in text and "7" in text


class TestDeepSizeof:
    def test_bigger_containers_are_bigger(self):
        assert deep_sizeof(list(range(1000))) > deep_sizeof(list(range(10)))

    def test_nested_content_counted(self):
        flat = deep_sizeof({})
        nested = deep_sizeof({"k": {"inner": "x" * 1000}})
        assert nested > flat + 1000

    def test_cycles_terminate(self):
        a = {}
        a["self"] = a
        assert deep_sizeof(a) > 0

    def test_shared_objects_counted_once(self):
        shared = "y" * 10_000
        two_refs = deep_sizeof([shared, shared])
        one_ref = deep_sizeof([shared])
        assert two_refs < one_ref * 1.5

    def test_objects_with_slots(self):
        class Slotted:
            __slots__ = ("a", "b")

            def __init__(self):
                self.a = "x" * 500
                self.b = 1

        assert deep_sizeof(Slotted()) > 500

    def test_objects_with_dict(self):
        class Plain:
            def __init__(self):
                self.data = list(range(100))

        assert deep_sizeof(Plain()) > deep_sizeof([])

    def test_deep_sizeof_many_shares_seen_set(self):
        shared = "z" * 10_000
        a = {"ref": shared}
        b = {"ref": shared}
        assert deep_sizeof_many([a, b]) < deep_sizeof(a) + deep_sizeof(b)
