"""Unit tests for predicates and backoff."""

import random

import pytest

from repro.query.backoff import TruncatedExponentialBackoff
from repro.query.predicates import Predicate, evaluate


class TestEvaluate:
    def test_numeric_equality_across_int_float(self):
        assert evaluate(5, "=", 5.0)
        assert not evaluate(5, "=", 6)

    def test_string_equality(self):
        assert evaluate("abc", "=", "abc")
        assert not evaluate("abc", "=", "abd")

    def test_bool_equality_is_identity(self):
        assert evaluate(True, "=", True)
        assert not evaluate(True, "=", 1)
        assert not evaluate(1, "=", True)

    def test_inequality(self):
        assert evaluate(1, "<>", 2)
        assert not evaluate(1, "<>", 1)

    def test_ordering_numeric(self):
        assert evaluate(3, "<", 5)
        assert evaluate(5, "<=", 5)
        assert evaluate(7, ">", 5)
        assert evaluate(5, ">=", 5)

    def test_ordering_strings(self):
        assert evaluate("a", "<", "b")

    def test_mixed_types_never_match_ordering(self):
        assert not evaluate("5", "<", 6)
        assert not evaluate(None, "<", 6)
        assert not evaluate(True, "<", 6)

    def test_unknown_operator_raises(self):
        with pytest.raises(ValueError):
            evaluate(1, "~", 1)


class TestPredicate:
    def test_matches(self):
        assert Predicate("cpu", "<", 10).matches(5)
        assert not Predicate("cpu", "<", 10).matches(15)

    def test_invalid_operator_rejected(self):
        with pytest.raises(ValueError):
            Predicate("a", "LIKE", "x")

    def test_is_equality(self):
        assert Predicate("a", "=", 1).is_equality()
        assert not Predicate("a", "<", 1).is_equality()

    def test_pack_unpack_round_trip(self):
        original = Predicate("a", ">=", 3.5)
        assert Predicate.unpack(original.pack()) == original

    def test_str(self):
        assert "cpu" in str(Predicate("cpu", "<", 10))


class TestBackoff:
    def test_delay_within_truncated_window(self):
        backoff = TruncatedExponentialBackoff(random.Random(0), slot_ms=100.0,
                                              max_exponent=4)
        for failures in range(1, 10):
            backoff.failures = failures
            for _ in range(50):
                delay = backoff.next_delay_ms()
                exponent = min(failures, 4)
                assert 0 <= delay <= ((1 << exponent) - 1) * 100.0

    def test_expected_delay_grows_with_failures(self):
        rng = random.Random(1)
        backoff = TruncatedExponentialBackoff(rng, slot_ms=1.0, max_exponent=10)

        def mean_delay(failures, samples=400):
            backoff.failures = failures
            return sum(backoff.next_delay_ms() for _ in range(samples)) / samples

        assert mean_delay(6) > mean_delay(2) > mean_delay(1) * 0.8

    def test_exhaustion(self):
        backoff = TruncatedExponentialBackoff(random.Random(0), max_attempts=3)
        assert not backoff.exhausted()
        for _ in range(3):
            backoff.record_failure()
        assert backoff.exhausted()

    def test_reset(self):
        backoff = TruncatedExponentialBackoff(random.Random(0))
        backoff.record_failure()
        backoff.reset()
        assert backoff.failures == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TruncatedExponentialBackoff(random.Random(0), slot_ms=0)
        with pytest.raises(ValueError):
            TruncatedExponentialBackoff(random.Random(0), max_exponent=0)

    def test_first_failure_uses_exponent_one(self):
        backoff = TruncatedExponentialBackoff(random.Random(7), slot_ms=10.0)
        backoff.record_failure()
        delays = {backoff.next_delay_ms() for _ in range(100)}
        assert delays <= {0.0, 10.0}

    def test_zero_failures_means_zero_delay(self):
        """The first attempt must not pay a backoff tax."""
        backoff = TruncatedExponentialBackoff(random.Random(3), slot_ms=50.0)
        assert all(backoff.next_delay_ms() == 0.0 for _ in range(50))
        backoff.record_failure()
        backoff.reset()
        assert backoff.next_delay_ms() == 0.0
