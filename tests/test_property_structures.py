"""Property-based tests for leaf sets, aggregates, stats, and SQL."""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.stats import cdf_points, jain_fairness, mean, percentile, stddev
from repro.pastry.leafset import LeafSet
from repro.pastry.nodeid import NodeId
from repro.pastry.routing_table import NodeRef, RoutingTable
from repro.query.sql import parse_query
from repro.scribe.aggregate import AvgFunction, MaxFunction, MinFunction, SumFunction

ids = st.integers(min_value=0, max_value=(1 << 128) - 1)


@given(st.lists(ids, min_size=2, max_size=40, unique=True))
def test_leafset_closest_is_globally_closest_when_not_full(values):
    owner = NodeId(values[0])
    leaf_set = LeafSet(owner, size=128)  # big enough to hold everyone
    refs = []
    for i, value in enumerate(values[1:], start=1):
        ref = NodeRef(NodeId(value), i, 0)
        leaf_set.add(ref)
        refs.append(ref)
    key = NodeId(values[-1] ^ 0xABCDEF)
    reported = leaf_set.closest(key)
    best = min(refs, key=lambda r: (r.node_id.distance(key), r.node_id.value))
    assert reported.node_id.distance(key) == best.node_id.distance(key)


@given(st.lists(ids, min_size=3, max_size=40, unique=True), ids)
def test_leafset_closer_than_owner_improves_distance(values, key_value):
    owner = NodeId(values[0])
    leaf_set = LeafSet(owner, size=16)
    for i, value in enumerate(values[1:], start=1):
        leaf_set.add(NodeRef(NodeId(value), i, 0))
    key = NodeId(key_value)
    candidate = leaf_set.closer_than_owner(key)
    if candidate is not None:
        assert candidate.node_id.distance(key) <= owner.distance(key)


@given(st.lists(ids, min_size=2, max_size=50, unique=True))
def test_routing_table_entries_share_claimed_prefix(values):
    owner = NodeId(values[0])
    table = RoutingTable(owner)
    for i, value in enumerate(values[1:], start=1):
        table.add(NodeRef(NodeId(value), i, 0, proximity_ms=float(i)))
    for ref in table.entries():
        row = owner.shared_prefix_len(ref.node_id)
        assert table.entry(row, ref.node_id.digit(row)) is not None


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                min_size=1, max_size=50),
       st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                min_size=1, max_size=50))
def test_aggregates_hierarchical_property(left, right):
    """combine(agg(left), agg(right)) == agg(left + right) — the paper's
    'hierarchical computation property' that makes tree roll-up valid."""
    for fn in (SumFunction(), MinFunction(), MaxFunction(), AvgFunction()):
        def fold(values):
            acc = fn.zero()
            for v in values:
                acc = fn.combine(acc, fn.lift(v))
            return acc

        combined = fn.combine(fold(left), fold(right))
        direct = fold(left + right)
        a, b = fn.finalize(combined), fn.finalize(direct)
        if isinstance(a, float) and isinstance(b, float):
            assert math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-6)
        else:
            assert a == b


@given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False),
                min_size=1, max_size=100))
def test_percentile_bounds_and_monotonicity(values):
    p0 = percentile(values, 0)
    p50 = percentile(values, 50)
    p100 = percentile(values, 100)
    assert p0 == min(values)
    assert p100 == max(values)
    assert p0 <= p50 <= p100


@given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
                min_size=1, max_size=100))
def test_cdf_is_monotone_and_ends_at_one(values):
    points = cdf_points(values)
    fractions = [f for _, f in points]
    assert fractions == sorted(fractions)
    assert fractions[-1] == 1.0
    xs = [x for x, _ in points]
    assert xs == sorted(xs)


@given(st.lists(st.floats(min_value=0.001, max_value=1e6, allow_nan=False),
                min_size=1, max_size=50))
def test_jain_fairness_in_unit_interval(values):
    index = jain_fairness(values)
    assert 1.0 / len(values) - 1e-9 <= index <= 1.0 + 1e-9


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                min_size=1, max_size=50))
def test_stddev_zero_iff_constant(values):
    sd = stddev(values)
    assert sd >= 0
    if len(set(values)) == 1:
        # Identical inputs: zero up to float summation error.
        assert sd <= max(abs(values[0]), 1.0) * 1e-7


_attr_names = st.text(alphabet="abcdefgh_", min_size=1, max_size=10)
_ops = st.sampled_from(["=", "<", "<=", ">", ">=", "<>"])
_values = st.one_of(
    st.integers(min_value=0, max_value=10_000),
    st.text(alphabet="abcxyz", min_size=1, max_size=8),
)


@given(st.integers(min_value=1, max_value=99),
       st.lists(st.tuples(_attr_names, _ops, _values), min_size=1, max_size=5))
def test_sql_round_trip_via_str(k, raw_predicates):
    clauses = []
    for attr, op, value in raw_predicates:
        literal = f"'{value}'" if isinstance(value, str) else str(value)
        clauses.append(f"{attr} {op} {literal}")
    sql = f"SELECT {k} FROM * WHERE " + " AND ".join(clauses)
    query = parse_query(sql)
    reparsed = parse_query(str(query))
    assert reparsed.k == query.k == k
    assert [p.pack() for p in reparsed.predicates] == [p.pack() for p in query.predicates]


@given(st.integers(min_value=0, max_value=2**32))
def test_routing_is_deterministic_per_seed(seed):
    """Two RNGs with the same seed produce identical NodeIds (sim determinism)."""
    assert NodeId.random(random.Random(seed)) == NodeId.random(random.Random(seed))
