"""Unit tests for tree naming and the hybrid hierarchy."""

import pytest

from repro.core.naming import (
    AttributeHierarchy,
    instance_tree,
    predicate_tree_name,
    site_tree,
)


class TestTreeNames:
    def test_equality_tree(self):
        assert predicate_tree_name("CPU_model", "=", "Intel Core i7") == \
            "CPU_model=Intel Core i7"

    def test_boolean_true_collapses_to_attribute_tree(self):
        assert predicate_tree_name("GPU", "=", True) == "GPU"

    def test_threshold_tree(self):
        assert predicate_tree_name("CPU_utilization", "<", 10.0) == \
            "CPU_utilization<10"
        assert predicate_tree_name("CPU_utilization", "<", 10) == \
            "CPU_utilization<10"

    def test_site_tree_prefixes(self):
        assert site_tree("Tokyo", "GPU") == "Tokyo/GPU"

    def test_instance_tree_uses_canonical_equality_form(self):
        assert instance_tree("Virginia", "c3.large") == \
            "Virginia/instance_type=c3.large"


class TestHierarchy:
    @pytest.fixture
    def hierarchy(self):
        h = AttributeHierarchy()
        h.link("CPU/Intel", "CPU")
        h.link("CPU/AMD", "CPU")
        h.link("CPU/Intel/i7", "CPU/Intel")
        h.link("CPU/Intel/i5", "CPU/Intel")
        return h

    def test_expand_includes_descendants(self, hierarchy):
        trees = set(hierarchy.expand("CPU"))
        assert trees == {"CPU", "CPU/Intel", "CPU/AMD", "CPU/Intel/i7", "CPU/Intel/i5"}

    def test_expand_subtree(self, hierarchy):
        assert set(hierarchy.expand("CPU/Intel")) == \
            {"CPU/Intel", "CPU/Intel/i7", "CPU/Intel/i5"}

    def test_expand_leaf_is_itself(self, hierarchy):
        assert hierarchy.expand("CPU/AMD") == ["CPU/AMD"]

    def test_expand_unknown_is_itself(self, hierarchy):
        assert hierarchy.expand("Disk") == ["Disk"]

    def test_parent_children(self, hierarchy):
        assert hierarchy.parent("CPU/Intel") == "CPU"
        assert hierarchy.parent("CPU") is None
        assert hierarchy.children("CPU/Intel") == ["CPU/Intel/i5", "CPU/Intel/i7"]

    def test_roots(self, hierarchy):
        assert hierarchy.roots() == ["CPU"]

    def test_is_known(self, hierarchy):
        assert hierarchy.is_known("CPU")
        assert hierarchy.is_known("CPU/Intel/i7")
        assert not hierarchy.is_known("GPU")

    def test_self_link_rejected(self, hierarchy):
        with pytest.raises(ValueError):
            hierarchy.link("X", "X")

    def test_cycle_rejected(self, hierarchy):
        with pytest.raises(ValueError):
            hierarchy.link("CPU", "CPU/Intel/i7")

    def test_relink_moves_subtree(self, hierarchy):
        hierarchy.link("CPU/Intel/i7", "CPU/AMD")  # contrived but legal
        assert hierarchy.parent("CPU/Intel/i7") == "CPU/AMD"
        assert "CPU/Intel/i7" not in hierarchy.children("CPU/Intel")

    def test_unlink(self, hierarchy):
        hierarchy.unlink("CPU/Intel/i7")
        assert hierarchy.parent("CPU/Intel/i7") is None
        assert "CPU/Intel/i7" not in hierarchy.expand("CPU")

    def test_tree_count(self, hierarchy):
        assert hierarchy.tree_count() == 5

    def test_hybrid_avoids_duplicate_trees(self):
        """The paper's motivating example: Intel CPU / AMD CPU / CPU would
        be three overlapping flat trees; the hierarchy keeps the overlap
        structural instead of duplicated membership."""
        flat_tree_count = 3  # CPU + Intel-CPU + AMD-CPU, all with members
        h = AttributeHierarchy()
        h.link("CPU/Intel", "CPU")
        h.link("CPU/AMD", "CPU")
        # Members live only in leaves; CPU itself needs no member list.
        leaf_trees = [t for t in h.expand("CPU") if not h.children(t)]
        assert len(leaf_trees) == 2 < flat_tree_count
