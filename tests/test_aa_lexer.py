"""Unit tests for the Luette lexer."""

import pytest

from repro.aa.errors import LuetteSyntaxError
from repro.aa.lexer import tokenize


def kinds(source):
    return [(t.type, t.value) for t in tokenize(source)[:-1]]  # drop EOF


def test_empty_source_yields_eof_only():
    tokens = tokenize("")
    assert len(tokens) == 1 and tokens[0].type == "EOF"


def test_numbers():
    assert kinds("1 2.5 1e3 2E-2 0x1f") == [
        ("NUMBER", 1.0), ("NUMBER", 2.5), ("NUMBER", 1000.0),
        ("NUMBER", 0.02), ("NUMBER", 31.0),
    ]


def test_leading_dot_number():
    assert kinds(".5")[0] == ("NUMBER", 0.5)


def test_strings_both_quotes():
    assert kinds("'a' \"b\"") == [("STRING", "a"), ("STRING", "b")]


def test_string_escapes():
    assert kinds(r'"a\nb\t\"q\""') == [("STRING", 'a\nb\t"q"')]


def test_bad_escape_raises():
    with pytest.raises(LuetteSyntaxError):
        tokenize(r'"\q"')


def test_unterminated_string_raises():
    with pytest.raises(LuetteSyntaxError):
        tokenize('"abc')
    with pytest.raises(LuetteSyntaxError):
        tokenize('"abc\ndef"')


def test_keywords_vs_names():
    tokens = kinds("if iffy end endx nil nilx")
    assert tokens == [
        ("KEYWORD", "if"), ("NAME", "iffy"), ("KEYWORD", "end"),
        ("NAME", "endx"), ("KEYWORD", "nil"), ("NAME", "nilx"),
    ]


def test_multi_char_operators_maximal_munch():
    assert [v for _, v in kinds("== ~= <= >= .. = < >")] == [
        "==", "~=", "<=", ">=", "..", "=", "<", ">",
    ]


def test_comments_are_skipped():
    assert kinds("1 -- a comment\n2") == [("NUMBER", 1.0), ("NUMBER", 2.0)]


def test_long_comments_span_lines():
    assert kinds("1 --[[ multi\nline ]] 2") == [("NUMBER", 1.0), ("NUMBER", 2.0)]


def test_unterminated_long_comment_raises():
    with pytest.raises(LuetteSyntaxError):
        tokenize("--[[ never ends")


def test_line_and_column_tracking():
    tokens = tokenize("a\n  b")
    assert (tokens[0].line, tokens[0].column) == (1, 1)
    assert (tokens[1].line, tokens[1].column) == (2, 3)


def test_unexpected_character_raises_with_position():
    with pytest.raises(LuetteSyntaxError) as excinfo:
        tokenize("a @ b")
    assert excinfo.value.line == 1


def test_underscore_names():
    assert kinds("_x __y a_b") == [("NAME", "_x"), ("NAME", "__y"), ("NAME", "a_b")]


def test_hash_length_operator():
    assert kinds("#t")[0] == ("OP", "#")


def test_malformed_hex_raises():
    with pytest.raises(LuetteSyntaxError):
        tokenize("0x")
