"""Tests for the query executor's step-1 probe cache (bounded staleness).

The five-step protocol opens every query with a size-probe round.  With
``probe_cache_ms > 0`` a query interface reuses probe answers younger
than the bound, so repeated queries skip step 1 entirely; any locally
observed tree change (via the Scribe tree-change listener) drops the
cached answer immediately, and entries older than the bound miss.
"""

import pytest

from repro.core.naming import predicate_tree_name, site_tree
from repro.core.plane import RBay, RBayConfig
from repro.query.plan import plan_query
from repro.query.sql import parse_query
from repro.workloads.generator import FederationWorkload, WorkloadSpec


def build_plane(probe_cache_ms=0.0, seed=31):
    """A dressed 8-site plane with the probe cache set as requested."""
    plane = RBay(RBayConfig(seed=seed, nodes_per_site=10, jitter=False,
                            probe_cache_ms=probe_cache_ms)).build()
    workload = FederationWorkload(plane, WorkloadSpec(password="pw")).apply()
    plane.sim.run()
    return plane, workload


def popular_type(workload, site_name):
    counts = workload.site_instance_population(site_name)
    return max(counts, key=counts.get)


def run_query(plane, customer, sql):
    """One query, surplus reservations released, plane settled."""
    result = customer.query_once(sql, payload={"password": "pw"}).result()
    customer.release_all(result)
    plane.sim.run()
    return result


class TestProbeCacheHits:
    def test_repeat_query_skips_probe_round(self):
        plane, workload = build_plane(probe_cache_ms=60_000.0)
        itype = popular_type(workload, "Virginia")
        customer = plane.make_customer("c1", "Virginia")
        sql = f"SELECT 1 FROM Virginia WHERE instance_type = '{itype}';"

        plane.network.reset_counters()
        first = run_query(plane, customer, sql)
        cold_messages = plane.network.messages_sent
        assert first.satisfied

        plane.network.reset_counters()
        second = run_query(plane, customer, sql)
        warm_messages = plane.network.messages_sent
        assert second.satisfied
        assert warm_messages < cold_messages
        assert plane.counters.get("query.probe_cache.hit") >= 1

    def test_warm_query_is_not_slower(self):
        plane, workload = build_plane(probe_cache_ms=60_000.0)
        itype = popular_type(workload, "Tokyo")
        customer = plane.make_customer("c2", "Tokyo")
        sql = f"SELECT 1 FROM Tokyo WHERE instance_type = '{itype}';"
        first = run_query(plane, customer, sql)
        second = run_query(plane, customer, sql)
        assert second.latency_ms <= first.latency_ms

    def test_disabled_cache_always_probes(self):
        plane, workload = build_plane(probe_cache_ms=0.0)
        itype = popular_type(workload, "Virginia")
        customer = plane.make_customer("c3", "Virginia")
        sql = f"SELECT 1 FROM Virginia WHERE instance_type = '{itype}';"
        run_query(plane, customer, sql)
        run_query(plane, customer, sql)
        assert plane.counters.get("query.probe_cache.hit") == 0


class TestProbeCacheInvalidation:
    def test_membership_change_invalidates(self):
        plane, workload = build_plane(probe_cache_ms=3_600_000.0)
        itype = popular_type(workload, "Virginia")
        customer = plane.make_customer("c4", "Virginia")
        sql = f"SELECT 1 FROM Virginia WHERE instance_type = '{itype}';"
        topic = site_tree("Virginia",
                          predicate_tree_name("instance_type", "=", itype))

        first = run_query(plane, customer, sql)
        old_size = first.tree_sizes[topic]

        # The customer's home node joins the tree: its Scribe instance
        # notifies the co-located query app, which must drop the entry.
        home = customer.home
        home.app("scribe").join(home, topic, scope="site")
        plane.sim.run()
        assert plane.counters.get("query.probe_cache.invalidate") >= 1

        second = run_query(plane, customer, sql)
        assert second.tree_sizes[topic] == old_size + 1

    def test_entries_older_than_ttl_miss(self):
        plane, workload = build_plane(probe_cache_ms=1_000.0)
        itype = popular_type(workload, "Virginia")
        customer = plane.make_customer("c5", "Virginia")
        sql = f"SELECT 1 FROM Virginia WHERE instance_type = '{itype}';"
        run_query(plane, customer, sql)
        hits_after_cold = plane.counters.get("query.probe_cache.hit")
        plane.settle(5_000.0)  # stale now: age > probe_cache_ms
        run_query(plane, customer, sql)
        assert plane.counters.get("query.probe_cache.hit") == hits_after_cold

    def test_fresh_entry_within_ttl_hits(self):
        plane, workload = build_plane(probe_cache_ms=1_000_000.0)
        itype = popular_type(workload, "Virginia")
        customer = plane.make_customer("c6", "Virginia")
        sql = f"SELECT 1 FROM Virginia WHERE instance_type = '{itype}';"
        run_query(plane, customer, sql)
        hits_after_cold = plane.counters.get("query.probe_cache.hit")
        run_query(plane, customer, sql)
        assert plane.counters.get("query.probe_cache.hit") > hits_after_cold


class TestPlannerHints:
    def test_plan_orders_topics_by_cached_sizes(self):
        plane, workload = build_plane(probe_cache_ms=3_600_000.0)
        itype = popular_type(workload, "Virginia")
        customer = plane.make_customer("c7", "Virginia")
        sql = f"SELECT 1 FROM Virginia WHERE instance_type = '{itype}';"
        run_query(plane, customer, sql)

        hints = customer.home.app("query").probe_size_hints()
        assert hints, "a completed query must leave fresh probe answers"
        assert customer.home.cache_sizes()["probe_cache"] >= len(hints)
        query = parse_query(sql)
        plan = plan_query(query, plane.context, size_hints=hints)
        assert plan.cached_probes >= 1
        assert "probe cache" in plan.explain()
        # Known-size topics precede unknown ones, ascending by size.
        for topics in plan.probes_per_site.values():
            known = [t for t in topics if t in hints]
            assert known == sorted(known, key=lambda t: hints[t])
            boundary = len(known)
            assert all(t not in hints for t in topics[boundary:])

    def test_no_hints_yields_no_cached_probes(self):
        plane, workload = build_plane(probe_cache_ms=0.0)
        itype = popular_type(workload, "Virginia")
        query = parse_query(
            f"SELECT 1 FROM Virginia WHERE instance_type = '{itype}';")
        plan = plan_query(query, plane.context)
        assert plan.cached_probes == 0
        assert "probe cache" not in plan.explain()
