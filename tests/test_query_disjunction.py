"""Tests for OR / parenthesized WHERE clauses (DNF execution)."""

import pytest

from repro.core.plane import RBay, RBayConfig
from repro.query.sql import SQLSyntaxError, parse_query


class TestParsing:
    def test_simple_or(self):
        query = parse_query("SELECT 1 FROM * WHERE a = 1 OR b = 2")
        assert len(query.where) == 2
        assert query.is_disjunctive()

    def test_and_binds_tighter_than_or(self):
        query = parse_query("SELECT 1 FROM * WHERE a = 1 AND b = 2 OR c = 3")
        assert len(query.where) == 2
        assert [p.attribute for p in query.where[0]] == ["a", "b"]
        assert [p.attribute for p in query.where[1]] == ["c"]

    def test_parentheses_group_or(self):
        query = parse_query("SELECT 1 FROM * WHERE (a = 1 OR b = 2) AND c = 3")
        assert len(query.where) == 2
        for conjunction in query.where:
            assert conjunction[-1].attribute == "c"

    def test_nested_parentheses(self):
        query = parse_query(
            "SELECT 1 FROM * WHERE ((a = 1 OR b = 2) AND (c = 3 OR d = 4))")
        assert len(query.where) == 4

    def test_plain_and_stays_single_conjunct(self):
        query = parse_query("SELECT 1 FROM * WHERE a = 1 AND b = 2")
        assert not query.is_disjunctive()
        assert len(query.predicates) == 2

    def test_unbalanced_paren_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_query("SELECT 1 FROM * WHERE (a = 1 OR b = 2")

    def test_dnf_explosion_guarded(self):
        clause = " AND ".join(f"(a{i} = 1 OR b{i} = 2)" for i in range(10))
        with pytest.raises(SQLSyntaxError):
            parse_query(f"SELECT 1 FROM * WHERE {clause}")

    def test_str_round_trip(self):
        query = parse_query("SELECT 2 FROM * WHERE (a = 1 OR b = 2) AND c < 3")
        reparsed = parse_query(str(query))
        assert len(reparsed.where) == len(query.where)
        assert [[p.pack() for p in conj] for conj in reparsed.where] == \
               [[p.pack() for p in conj] for conj in query.where]


class TestExecution:
    @pytest.fixture(scope="class")
    def plane(self):
        plane = RBay(RBayConfig(seed=888, nodes_per_site=10, jitter=False)).build()
        plane.sim.run()
        admin = plane.admin("Virginia")
        nodes = plane.site_nodes("Virginia")
        for node in nodes[:3]:
            admin.post_resource(node, "GPU", True)
        for node in nodes[3:6]:
            admin.post_resource(node, "FPGA", True)
        # One node has both.
        admin.post_resource(nodes[0], "FPGA", True)
        plane.sim.run()
        return plane

    def run(self, plane, sql, name="joe"):
        customer = plane.make_customer(name, "Virginia")
        result = customer.query_once(sql).result()
        customer.release_all(result)
        plane.sim.run()
        return result

    def test_or_unions_both_trees(self, plane):
        result = self.run(plane,
                          "SELECT 10 FROM Virginia WHERE GPU = true OR FPGA = true;")
        # GPU on {0,1,2}, FPGA on {0,3,4,5} -> 6 distinct nodes, node 0
        # deduplicated across branches.
        assert len(result.entries) == 6
        addresses = [e["address"] for e in result.entries]
        assert len(addresses) == len(set(addresses))

    def test_or_with_k_satisfied_from_either_branch(self, plane):
        result = self.run(plane,
                          "SELECT 4 FROM Virginia WHERE GPU = true OR FPGA = true;")
        assert result.satisfied and len(result.entries) == 4

    def test_single_branch_behaviour_unchanged(self, plane):
        result = self.run(plane, "SELECT 3 FROM Virginia WHERE GPU = true;")
        assert result.satisfied and len(result.entries) == 3

    def test_or_across_sites(self, plane):
        admin = plane.admin("Tokyo")
        node = plane.site_nodes("Tokyo")[0]
        admin.post_resource(node, "GPU", True)
        plane.sim.run()
        result = self.run(plane,
                          "SELECT 10 FROM * WHERE GPU = true OR FPGA = true;",
                          name="multi")
        sites = {e["site"] for e in result.entries}
        assert {"Virginia", "Tokyo"} <= sites

    def test_conjunction_inside_disjunct_filters(self, plane):
        plane_nodes = plane.site_nodes("Virginia")
        for node in plane_nodes[:3]:
            node.define_attribute("mem", 64.0)
        result = self.run(
            plane,
            "SELECT 10 FROM Virginia WHERE (GPU = true AND mem >= 32) OR FPGA = true;",
            name="conj",
        )
        for entry in result.entries:
            node = plane.network.host(entry["address"])
            assert (node.has_attribute("FPGA")
                    or (node.has_attribute("GPU")
                        and node.attribute_value("mem") >= 32))
