"""Meta-tests: documentation and packaging hygiene.

The paper-reproduction deliverable includes "doc comments on every public
item"; these tests enforce it mechanically so it cannot rot.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro", "repro.sim", "repro.net", "repro.pastry", "repro.scribe",
    "repro.aa", "repro.query", "repro.core", "repro.baselines",
    "repro.workloads", "repro.metrics", "repro.ext", "repro.check",
]


def iter_modules():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        yield package
        if hasattr(package, "__path__"):
            for info in pkgutil.iter_modules(package.__path__):
                yield importlib.import_module(f"{package_name}.{info.name}")


def public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exports documented at their source
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


def test_every_module_has_a_docstring():
    missing = [m.__name__ for m in iter_modules() if not (m.__doc__ or "").strip()]
    assert not missing, f"undocumented modules: {missing}"


def test_every_public_class_and_function_has_a_docstring():
    missing = []
    for module in iter_modules():
        for name, obj in public_members(module):
            if not (obj.__doc__ or "").strip():
                missing.append(f"{module.__name__}.{name}")
    assert not missing, f"undocumented public items: {missing}"


def test_every_public_class_method_is_documented_or_trivial():
    """Public methods need docstrings unless they are dunder/inherited."""
    missing = []
    for module in iter_modules():
        for class_name, cls in public_members(module):
            if not inspect.isclass(cls):
                continue
            for method_name, method in vars(cls).items():
                if method_name.startswith("_"):
                    continue
                if not inspect.isfunction(method):
                    continue
                doc = (method.__doc__ or "").strip()
                if doc:
                    continue
                # Tolerate short delegations/accessors (≤ 6 statements):
                # their names are self-describing.
                try:
                    source_lines = inspect.getsource(method).splitlines()
                except OSError:
                    continue
                body = [l for l in source_lines if l.strip()
                        and not l.strip().startswith(("def ", "@", "#"))]
                if len(body) <= 6:
                    continue
                missing.append(f"{module.__name__}.{class_name}.{method_name}")
    assert not missing, f"undocumented public methods: {missing}"


def test_version_is_exposed():
    assert repro.__version__ == "1.0.0"


def test_repo_documents_exist():
    import pathlib

    root = pathlib.Path(repro.__file__).resolve().parents[2]
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "LICENSE",
                 "docs/architecture.md", "docs/protocol.md", "docs/api.md"):
        assert (root / name).exists(), name
