"""AsyncioTransport unit tests: real sockets, Network-parity semantics."""

import pytest

from repro.net.message import Message
from repro.net.network import FaultDecision, Host, NetworkError
from repro.net.site import SiteRegistry
from repro.transport.asyncio_transport import AsyncioTransport
from repro.transport.realtime import RealtimeScheduler


class Recorder(Host):
    def __init__(self, site):
        super().__init__(site)
        self.received = []

    def on_message(self, msg):
        self.received.append(msg)


class Echo(Host):
    """Replies to every ping with a pong (exercises send-from-handler)."""

    def __init__(self, site):
        super().__init__(site)
        self.pings = 0

    def on_message(self, msg):
        if msg.kind == "ping":
            self.pings += 1
            self.send(msg.src, Message(kind="pong",
                                       payload={"n": msg.payload["n"]}))


@pytest.fixture
def rig():
    sched = RealtimeScheduler(time_scale=0.01, poll_interval_s=0.0005)
    registry = SiteRegistry()
    registry.add("A", "r")
    registry.add("B", "r")
    sites = list(registry)
    net = AsyncioTransport(sched, connect_timeout_s=0.5,
                           connect_retries=1, connect_backoff_s=0.02)
    yield sched, sites, net
    net.close()
    sched.close()


def conserve(net):
    return (net.messages_sent
            == net.messages_delivered + net.messages_dropped
            + net.messages_in_flight)


def test_ping_pong_over_real_sockets(rig):
    sched, sites, net = rig
    a = Recorder(sites[0])
    b = Echo(sites[1])
    net.attach(a)
    net.attach(b)
    assert net.host_count == 2 and net.has_host(a.address)
    assert net.port_of(a.address) is not None  # a real listening socket
    for n in range(10):
        a.send(b.address, Message(kind="ping", payload={"n": n}))
    assert sched.run_until(lambda: len(a.received) == 10, timeout=20_000.0)
    assert b.pings == 10
    assert sorted(m.payload["n"] for m in a.received) == list(range(10))
    # Per-destination frames arrive in send order over one connection.
    assert [m.payload["n"] for m in a.received] == list(range(10))
    assert net.messages_sent == 20
    assert net.messages_delivered == 20
    assert net.wire_bytes_sent > 0
    assert conserve(net)


def test_messages_decoded_copies_not_shared_objects(rig):
    sched, sites, net = rig
    a = Recorder(sites[0])
    b = Recorder(sites[1])
    net.attach(a)
    net.attach(b)
    original = Message(kind="data", payload={"list": [1, 2]})
    a.send(b.address, original)
    assert sched.run_until(lambda: b.received, timeout=20_000.0)
    got = b.received[0]
    assert got.payload == original.payload
    assert got.payload is not original.payload  # crossed the codec


def test_unknown_destination_dropped(rig):
    sched, sites, net = rig
    a = Recorder(sites[0])
    net.attach(a)
    a.send(999, Message(kind="x", payload={}))
    assert net.messages_dropped == 1
    assert conserve(net)


def test_detached_sender_suppressed(rig):
    sched, sites, net = rig
    a = Recorder(sites[0])
    b = Recorder(sites[1])
    net.attach(a)
    net.attach(b)
    net.detach(a)
    a.send(b.address, Message(kind="x", payload={}))
    assert net.messages_suppressed == 1
    assert net.messages_sent == 0
    assert not net.has_host(a.address)


def test_detach_reattach_keeps_stable_port(rig):
    sched, sites, net = rig
    a = Recorder(sites[0])
    b = Recorder(sites[1])
    net.attach(a)
    net.attach(b)
    port = net.port_of(b.address)
    net.detach(b)
    sched.run_for(50.0)  # let the server close
    net.reattach(b)
    assert net.port_of(b.address) == port
    a.send(b.address, Message(kind="hello-again", payload={}))
    assert sched.run_until(lambda: b.received, timeout=20_000.0)
    assert conserve(net)


def test_reattach_never_attached_raises(rig):
    _sched, sites, net = rig
    ghost = Recorder(sites[0])
    with pytest.raises(NetworkError):
        net.reattach(ghost)


def test_cut_drops_then_heal_resumes(rig):
    sched, sites, net = rig
    a = Recorder(sites[0])
    b = Recorder(sites[1])
    net.attach(a)
    net.attach(b)
    a.send(b.address, Message(kind="before", payload={}))
    assert sched.run_until(lambda: len(b.received) == 1, timeout=20_000.0)
    net.cut(b.address)
    a.send(b.address, Message(kind="during", payload={}))
    assert sched.run_until(lambda: net.messages_dropped == 1,
                           timeout=20_000.0)
    assert len(b.received) == 1
    net.heal(b.address)
    a.send(b.address, Message(kind="after", payload={}))
    assert sched.run_until(lambda: len(b.received) == 2, timeout=20_000.0)
    assert [m.kind for m in b.received] == ["before", "after"]
    assert conserve(net)


def test_fault_filter_drop_and_duplicates(rig):
    sched, sites, net = rig
    a = Recorder(sites[0])
    b = Recorder(sites[1])
    net.attach(a)
    net.attach(b)

    def filt(src, dst, msg):
        if msg.kind == "drop-me":
            return FaultDecision(drop=True)
        if msg.kind == "dup-me":
            return FaultDecision(duplicates=1)
        return None

    net.fault_filter = filt
    a.send(b.address, Message(kind="drop-me", payload={}))
    assert net.messages_dropped == 1
    a.send(b.address, Message(kind="dup-me", payload={}))
    assert sched.run_until(lambda: len(b.received) == 2, timeout=20_000.0)
    assert net.messages_sent == 3  # the duplicate is an extra wire packet
    assert conserve(net)


def test_host_lookup_and_errors(rig):
    _sched, sites, net = rig
    a = Recorder(sites[0])
    net.attach(a)
    assert net.host(a.address) is a
    with pytest.raises(NetworkError):
        net.host(12345)


def test_reset_counters(rig):
    sched, sites, net = rig
    a = Recorder(sites[0])
    b = Recorder(sites[1])
    net.attach(a)
    net.attach(b)
    a.send(b.address, Message(kind="x", payload={}))
    assert sched.run_until(lambda: b.received, timeout=20_000.0)
    net.reset_counters()
    assert net.messages_sent == net.messages_in_flight == 0
    assert net.messages_delivered == 0
    assert net.wire_bytes_sent == 0
    assert conserve(net)


def test_close_is_idempotent(rig):
    _sched, sites, net = rig
    net.attach(Recorder(sites[0]))
    net.close()
    net.close()


def test_loss_rate_requires_rng_and_drops(rig):
    sched, sites, _net = rig
    import random

    with pytest.raises(NetworkError):
        AsyncioTransport(sched, loss_rate=0.5)
    lossy = AsyncioTransport(sched, loss_rate=1.0,
                             loss_rng=random.Random(7))
    try:
        a = Recorder(sites[0])
        b = Recorder(sites[1])
        lossy.attach(a)
        lossy.attach(b)
        a.send(b.address, Message(kind="x", payload={}))
        assert lossy.messages_dropped == 1
        assert lossy.messages_sent == 1
    finally:
        lossy.close()


def test_hosts_iteration_and_delivery_hook(rig):
    sched, sites, net = rig
    a = Recorder(sites[0])
    b = Recorder(sites[1])
    net.attach(a)
    net.attach(b)
    assert set(net.hosts()) == {a, b}
    kinds = []
    net.set_delivery_hook(lambda msg: kinds.append(msg.kind))
    a.send(b.address, Message(kind="hooked", payload={}, trace=[]))
    assert sched.run_until(lambda: b.received, timeout=20_000.0)
    assert kinds == ["hooked"]
    assert b.received[0].trace == [b.address]  # hop recorded on the copy


def test_delivery_to_dead_host_dropped(rig):
    sched, sites, net = rig
    a = Recorder(sites[0])
    b = Recorder(sites[1])
    net.attach(a)
    net.attach(b)
    b.alive = False  # crashed after its server came up
    a.send(b.address, Message(kind="x", payload={}))
    assert sched.run_until(lambda: net.messages_dropped == 1,
                           timeout=20_000.0)
    assert b.received == []
    assert conserve(net)


def test_handler_error_fails_the_pump(rig):
    sched, sites, net = rig

    class Broken(Host):
        def on_message(self, msg):
            raise RuntimeError("handler bug")

    a = Recorder(sites[0])
    b = Broken(sites[1])
    net.attach(a)
    net.attach(b)
    a.send(b.address, Message(kind="boom", payload={}))
    with pytest.raises(RuntimeError, match="handler bug"):
        sched.run_until(lambda: False, timeout=20_000.0)


def test_corrupt_frame_reports_codec_error(rig):
    import socket
    import struct

    from repro.transport.codec import CodecError

    sched, sites, net = rig
    b = Recorder(sites[1])
    net.attach(b)
    garbage = b"\xffnot a message"
    with socket.create_connection(("127.0.0.1", net.port_of(b.address))) as s:
        s.sendall(struct.pack(">I", len(garbage)) + garbage)
    with pytest.raises(CodecError):
        sched.run_until(lambda: net.messages_dropped == 1, timeout=20_000.0)
    assert b.received == []


def serve_plan(port_base):
    from repro.transport.serve import PeerPlan

    doc = PeerPlan.default_document(["A", "B"], port_base=port_base,
                                    stride=4)
    return doc


def test_partitioned_transports_federate_over_planned_ports(rig):
    """Two transports in one process, each owning one site: the in-unit
    analogue of process-per-site serve mode (suppressed shadows, planned
    ports, settle-on-write accounting)."""
    import json
    import os

    from repro.transport.serve import PeerPlan

    sched, sites, _net = rig
    doc = serve_plan(51_000 + (os.getpid() % 2_000) * 4)
    plan_a = PeerPlan.from_json(json.dumps(doc), owned={"A"})
    plan_b = PeerPlan.from_json(json.dumps(doc), owned={"B"})
    net_a = AsyncioTransport(sched, connect_timeout_s=0.5,
                             connect_retries=1, connect_backoff_s=0.02,
                             peer_plan=plan_a)
    net_b = AsyncioTransport(sched, connect_timeout_s=0.5,
                             connect_retries=1, connect_backoff_s=0.02,
                             peer_plan=plan_b)
    try:
        # Same-seed planes attach in the same order everywhere; mirror that.
        a_real = Echo(sites[0])
        b_shadow = Echo(sites[1])
        net_a.attach(a_real)
        net_a.attach(b_shadow)
        a_shadow = Recorder(sites[0])
        b_real = Echo(sites[1])
        net_b.attach(a_shadow)
        net_b.attach(b_real)
        assert net_a.port_of(a_real.address) == doc["sites"]["A"]["port_base"]
        assert net_b.port_of(b_real.address) == doc["sites"]["B"]["port_base"]
        assert net_a.port_of(b_shadow.address) is None  # shadows don't bind

        a_real.send(b_shadow.address, Message(kind="ping", payload={"n": 1}))
        b_shadow.send(a_real.address, Message(kind="ping", payload={"n": 2}))
        assert net_a.messages_suppressed == 1  # the shadow stayed silent
        assert sched.run_until(lambda: b_real.pings == 1, timeout=20_000.0)
        # b_real's pong crossed back through net_b to net_a's served host.
        assert sched.run_until(
            lambda: net_a.messages_delivered == 1, timeout=20_000.0)
        assert net_a.messages_in_flight == 0  # settled at write-completion
        assert net_b.messages_in_flight == 0
    finally:
        net_a.close()
        net_b.close()


def test_partitioned_connect_failure_becomes_drop(rig):
    """A peer process that never came up: bounded connect retries, then
    the frame dies as a counted drop and protocol timeouts take over."""
    import json
    import os

    from repro.transport.serve import PeerPlan

    sched, sites, _net = rig
    doc = serve_plan(53_000 + (os.getpid() % 2_000) * 4)  # nothing listens
    plan = PeerPlan.from_json(json.dumps(doc), owned={"A"})
    net = AsyncioTransport(sched, connect_timeout_s=0.2,
                           connect_retries=1, connect_backoff_s=0.01,
                           peer_plan=plan)
    try:
        a = Recorder(sites[0])
        ghost = Recorder(sites[1])
        net.attach(a)
        net.attach(ghost)
        a.send(ghost.address, Message(kind="x", payload={}))
        assert sched.run_until(lambda: net.messages_dropped == 1,
                               timeout=20_000.0)
        assert net.messages_in_flight == 0
        assert ghost.received == []
    finally:
        net.close()
