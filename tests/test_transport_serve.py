"""Process-per-site smoke test: two ``rbay serve`` processes federate
over real TCP and answer a cross-site query.

Each process builds the identical same-seed plane and owns one site;
non-owned nodes are shadows whose sends are suppressed, so every message
between the sites crosses a real socket between the two processes.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.transport.serve import PeerPlan, PeerPlanError

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")
QUERY = "SELECT 1 FROM * WHERE CPU_utilization < 10.0;"


def port_base():
    # Derive from the pid so parallel CI runs don't collide.
    return 20_000 + (os.getpid() % 2_000) * 20


class TestPeerPlan:
    def test_default_document_and_endpoints(self):
        doc = PeerPlan.default_document(["Site000", "Site001"],
                                        host="127.0.0.1", port_base=30_000,
                                        stride=10)
        plan = PeerPlan.from_json(json.dumps(doc), owned={"Site000"})
        assert plan.endpoint("Site000", 0) == ("127.0.0.1", 30_000)
        assert plan.endpoint("Site001", 2) == ("127.0.0.1", 30_012)
        assert plan.owned == {"Site000"}

    def test_unknown_site_rejected(self):
        doc = PeerPlan.default_document(["Site000"])
        with pytest.raises(PeerPlanError):
            PeerPlan.from_json(json.dumps(doc), owned={"Nowhere"})
        plan = PeerPlan.from_json(json.dumps(doc), owned={"Site000"})
        with pytest.raises(PeerPlanError):
            plan.endpoint("Nowhere", 0)

    def test_malformed_document_rejected(self):
        with pytest.raises(PeerPlanError):
            PeerPlan.from_json('{"sites": "nope"}', owned=set())

    def test_load_roundtrip(self, tmp_path):
        doc = PeerPlan.default_document(["Site000", "Site001"])
        path = tmp_path / "peers.json"
        path.write_text(json.dumps(doc))
        plan = PeerPlan.load(str(path), owned={"Site001"})
        assert plan.endpoint("Site001", 0)[1] == doc["sites"]["Site001"]["port_base"]


def serve_cmd(peers_path, own, query=False):
    cmd = [sys.executable, "-m", "repro.cli", "serve",
           "--sites", "2", "--nodes", "3", "--no-jitter",
           "--seed", "2017", "--time-scale", "0.05",
           "--peers", str(peers_path), "--own", own,
           "--duration", "6", "--settle-ms", "2000",
           "--peer-timeout", "30"]
    if query:
        cmd += ["--query", QUERY, "--origin", "Site000"]
    return cmd


def test_two_process_federation_answers_cross_site_query(tmp_path):
    doc = PeerPlan.default_document(["Site000", "Site001"],
                                    port_base=port_base(), stride=10)
    peers = tmp_path / "peers.json"
    peers.write_text(json.dumps(doc))
    env = dict(os.environ, PYTHONPATH=REPO_SRC)

    follower = subprocess.Popen(serve_cmd(peers, "Site001"),
                                stdout=subprocess.PIPE,
                                stderr=subprocess.STDOUT, text=True, env=env)
    try:
        leader = subprocess.run(serve_cmd(peers, "Site000", query=True),
                                capture_output=True, text=True,
                                timeout=120, env=env)
    finally:
        try:
            follower.wait(timeout=120)
        except subprocess.TimeoutExpired:
            follower.kill()
            follower.wait()

    out = leader.stdout
    assert leader.returncode == 0, f"leader failed:\n{out}\n{leader.stderr}"
    assert follower.returncode == 0, f"follower failed:\n{follower.stdout}"
    assert "READY owned=Site000" in out

    result_line = next(l for l in out.splitlines() if l.startswith("RESULT "))
    result = json.loads(result_line[len("RESULT "):])
    assert result["satisfied"] is True
    assert result["degraded"] is False
    assert sorted(result["sites_answered"]) == ["Site000", "Site001"]

    done_line = next(l for l in out.splitlines() if l.startswith("DONE "))
    done = json.loads(done_line[len("DONE "):])
    assert done["delivered"] > 0
    assert done["suppressed"] > 0  # shadow nodes stayed silent
