"""Coherence proof for the subtree-accumulator cache.

The tentpole claim of the aggregate cache is *exactness*: a memoized
subtree accumulator, invalidated by dirty flags on every input mutation,
is always bit-identical to a from-scratch recomputation — no matter how
member updates, joins, leaves, and node failures interleave.  This suite
drives a seeded random interleaving of those operations (200 checkpoints
by default; override with ``RBAY_COHERENCE_CHECKS``) and, at every
checkpoint, compares

* the root's answer for every aggregate function (served through the
  memoized ``_own_acc`` path) against a pure-Python model of the member
  population, **exactly** (``==``, not approx — member values are small
  integers so float arithmetic is exact), and
* each node's memoized accumulator against an uncached recomputation.

Aggregate contributions are deliberately heterogeneous per function so
that some functions are carried by exactly one member at times — the
regime where a missed invalidation (e.g. on ``leave``) turns into a
visibly stale parent.
"""

import os
import random

from repro.metrics.counters import CounterRegistry
from repro.net.latency import UniformLatencyModel
from repro.net.network import Network
from repro.net.site import SiteRegistry
from repro.pastry.overlay import Overlay
from repro.scribe.aggregate import make_aggregate
from repro.scribe.scribe import ScribeApplication
from repro.scribe.topic import topic_id
from repro.sim.engine import Simulator
from repro.sim.random_streams import RandomStreams

N_NODES = 20
N_CHECKS = int(os.environ.get("RBAY_COHERENCE_CHECKS", "200"))
MAX_FAILURES = 4
TOPIC = "coherence"
SEED = 20_170_807

#: Which member indices contribute to which aggregate — heterogeneous so
#: leaves/failures routinely remove a function's *only* contributor.
CONTRIBUTES = {
    "sum": lambda i: True,
    "min": lambda i: i % 2 == 0,
    "max": lambda i: i % 3 != 1,
    "avg": lambda i: True,
    "any": lambda i: i % 4 == 0,
    "all": lambda i: True,
    "busy": lambda i: i % 2 == 1,
}

ALL_NAMES = ["count", "sum", "min", "max", "avg", "any", "all", "busy"]


def local_value(name, v):
    """The raw value a member publishes for aggregate ``name``."""
    if name == "any":
        return v > 70
    if name == "all":
        return v < 90
    return v


def expected_values(members, values):
    """Pure-Python model of every finalized aggregate over ``members``."""
    exp = {"count": len(members)}
    sums = [float(values[i]) for i in members if CONTRIBUTES["sum"](i)]
    exp["sum"] = sum(sums, 0.0)
    mins = [float(values[i]) for i in members if CONTRIBUTES["min"](i)]
    exp["min"] = min(mins) if mins else None
    maxs = [float(values[i]) for i in members if CONTRIBUTES["max"](i)]
    exp["max"] = max(maxs) if maxs else None
    avgs = [float(values[i]) for i in members if CONTRIBUTES["avg"](i)]
    exp["avg"] = (sum(avgs, 0.0) / len(avgs)) if avgs else None
    exp["any"] = any(values[i] > 70 for i in members if CONTRIBUTES["any"](i))
    exp["all"] = all(values[i] < 90 for i in members if CONTRIBUTES["all"](i))
    exp["busy"] = sum(1 for i in members
                      if CONTRIBUTES["busy"](i) and values[i] > 50)
    return exp


def build_cached_overlay(cache_enabled=True):
    """A single-site overlay whose Scribe apps share one counter registry."""
    sim = Simulator()
    streams = RandomStreams(777)
    registry = SiteRegistry()
    site = registry.add("S", "X")
    network = Network(sim, UniformLatencyModel(0.3))
    overlay = Overlay(sim, network, streams, registry)
    counters = CounterRegistry()
    for _ in range(N_NODES):
        overlay.create_node(site)
    overlay.bootstrap()
    for node in overlay.nodes:
        app = ScribeApplication(sim, cache_enabled=cache_enabled,
                                counters=counters)
        app.register_function(
            make_aggregate("filter_count", lambda v: v > 50, name="busy"))
        node.register_app(app)
    return sim, overlay, counters


def publish(node, idx, v):
    """Member ``idx`` publishes value ``v`` to every aggregate it carries."""
    app = node.app("scribe")
    for name, carried_by in CONTRIBUTES.items():
        if carried_by(idx):
            app.set_local(node, TOPIC, name, local_value(name, v))


def repair(sim, overlay, rounds=3):
    """Post-failure anti-entropy: stabilize routing, repair trees, re-push."""
    for _ in range(rounds):
        for node in overlay.live_nodes():
            node.stabilize()
            node.app("scribe").maintain(node)
        sim.run()


def check_memo_coherence(overlay):
    """Every node's memoized accumulator == an uncached recomputation."""
    for node in overlay.live_nodes():
        app = node.app("scribe")
        state = app.topics().get(TOPIC)
        if state is None:
            continue
        for name in ALL_NAMES:
            assert app._own_acc(state, name) == app._compute_own_acc(state, name), (
                f"memo diverged at node {node.address} for {name!r}")


def test_random_interleavings_cache_equals_recompute():
    """≥N_CHECKS random op interleavings: cached answers are exact."""
    sim, overlay, counters = build_cached_overlay()
    rng = random.Random(SEED)
    asker = overlay.nodes[0]
    key = topic_id(TOPIC)
    members, values = set(), {}
    alive = set(range(N_NODES))
    failures = 0

    for step in range(N_CHECKS):
        roll = rng.random()
        if roll < 0.05 and failures < MAX_FAILURES and members:
            root = overlay.root_of(key)
            candidates = [i for i in sorted(alive - {0})
                          if overlay.nodes[i] is not root]
            victim = rng.choice(candidates)
            overlay.remove_node(overlay.nodes[victim])
            alive.discard(victim)
            members.discard(victim)
            values.pop(victim, None)
            failures += 1
            sim.run()
            repair(sim, overlay)
        elif roll < 0.40 or not members:
            idx = rng.choice(sorted(alive))
            v = rng.randint(0, 100)
            node = overlay.nodes[idx]
            node.app("scribe").join(node, TOPIC)
            publish(node, idx, v)
            members.add(idx)
            values[idx] = v
        elif roll < 0.70:
            idx = rng.choice(sorted(members))
            v = rng.randint(0, 100)
            publish(overlay.nodes[idx], idx, v)
            values[idx] = v
        else:
            idx = rng.choice(sorted(members))
            node = overlay.nodes[idx]
            node.app("scribe").leave(node, TOPIC)
            members.discard(idx)
            values.pop(idx, None)

        sim.run()
        exp = expected_values(members, values)
        got = asker.app("scribe").query_aggregate(asker, TOPIC,
                                                  ALL_NAMES).result()
        for name in ALL_NAMES:
            assert got[name] == exp[name], (
                f"step {step}: {name!r} cached={got[name]!r} "
                f"expected={exp[name]!r} (members={sorted(members)})")
        check_memo_coherence(overlay)

        if step % 10 == 9:
            # Cross-check against the pull path, which never reads pushed
            # (and therefore never memoized) state.
            fresh = asker.app("scribe").query_aggregate_fresh(
                asker, TOPIC, ALL_NAMES).result()
            for name in ALL_NAMES:
                assert fresh[name] == exp[name], (
                    f"step {step}: pull {name!r} {fresh[name]!r} "
                    f"!= {exp[name]!r}")

    # The run must actually have exercised the cache, not just bypassed it.
    assert counters.get("scribe.acc_cache.hit") > 0
    assert counters.get("scribe.acc_cache.miss") > 0
    assert counters.get("scribe.acc_cache.invalidate") > 0


def test_ttl_zero_reads_are_coherent():
    """max_staleness_ms=0 never serves a cached answer, even a warm one."""
    sim, overlay, _ = build_cached_overlay()
    node = overlay.nodes[3]
    node.app("scribe").join(node, TOPIC)
    node.app("scribe").set_local(node, TOPIC, "sum", 10)
    sim.run()
    asker = overlay.nodes[0]
    app = asker.app("scribe")
    # Warm the asker's result cache through the authoritative path.
    assert app.query_aggregate(asker, TOPIC, ["sum"]).result()["sum"] == 10.0
    # Change the tree behind the asker's back.
    node.app("scribe").set_local(node, TOPIC, "sum", 99)
    sim.run()
    # A tolerant reader may see the stale 10; a TTL=0 reader must not.
    hit, stale = app.result_cache.get((TOPIC, "sum"), sim.now, 1e12)
    assert hit and stale == 10.0
    assert app.query_aggregate(asker, TOPIC, ["sum"],
                               max_staleness_ms=0).result()["sum"] == 99.0


def test_bounded_staleness_reads_skip_messages():
    """Within the bound, a tolerant read is answered locally (0 messages)."""
    sim, overlay, counters = build_cached_overlay()
    node = overlay.nodes[3]
    node.app("scribe").join(node, TOPIC)
    node.app("scribe").set_local(node, TOPIC, "sum", 7)
    sim.run()
    asker = overlay.nodes[0]
    app = asker.app("scribe")
    assert app.query_aggregate(asker, TOPIC, ["sum"]).result()["sum"] == 7.0
    before = overlay.network.messages_sent
    hits_before = counters.get("scribe.result_cache.hit")
    got = app.query_aggregate(asker, TOPIC, ["sum"],
                              max_staleness_ms=60_000).result()
    assert got["sum"] == 7.0
    assert overlay.network.messages_sent == before
    assert counters.get("scribe.result_cache.hit") == hits_before + 1


def test_leave_of_sole_contributor_propagates():
    """Regression: leaving the only contributor of an aggregate must
    re-push that aggregate, not strand the parent's stale accumulator."""
    sim, overlay, _ = build_cached_overlay()
    odd = overlay.nodes[5]   # index 5: the sole "busy" carrier we enroll
    odd.app("scribe").join(odd, TOPIC)
    publish(odd, 5, 80)      # busy counts values > 50
    even = overlay.nodes[4]
    even.app("scribe").join(even, TOPIC)
    publish(even, 4, 60)     # index 4 is even: carries no "busy"
    sim.run()
    asker = overlay.nodes[0]
    assert asker.app("scribe").query_aggregate(
        asker, TOPIC, ["busy"]).result()["busy"] == 1
    odd.app("scribe").leave(odd, TOPIC)
    sim.run()
    assert asker.app("scribe").query_aggregate(
        asker, TOPIC, ["busy"]).result()["busy"] == 0


def test_disabled_cache_still_coherent_and_unused():
    """The ablation arm (cache_enabled=False) computes identical answers."""
    sim, overlay, counters = build_cached_overlay(cache_enabled=False)
    for idx in (2, 3, 4):
        node = overlay.nodes[idx]
        node.app("scribe").join(node, TOPIC)
        publish(node, idx, 10 * idx)
    sim.run()
    asker = overlay.nodes[0]
    got = asker.app("scribe").query_aggregate(asker, TOPIC, ALL_NAMES).result()
    exp = expected_values({2, 3, 4}, {2: 20, 3: 30, 4: 40})
    for name in ALL_NAMES:
        assert got[name] == exp[name]
    assert counters.get("scribe.acc_cache.hit") == 0
    assert counters.get("scribe.acc_cache.miss") == 0
