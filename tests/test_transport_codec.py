"""Wire-codec property suite: canonical bytes, adversarial values,
version/corruption rejection, and incremental framing."""

import math
import random
import struct

import pytest

from repro.net.message import Message
from repro.transport.codec import (
    MAX_FRAME_BYTES,
    WIRE_VERSION,
    CodecError,
    decode_message,
    encode_frame,
    encode_message,
    frame,
    roundtrip_check,
    split_frames,
)


def rt(payload):
    """Round-trip a message with ``payload``; return the decoded copy."""
    msg = Message(kind="t", payload=payload)
    decoded, _body = roundtrip_check(msg)
    return decoded


# ----------------------------------------------------------------------
# Value round trips
# ----------------------------------------------------------------------
ADVERSARIAL_INTS = [0, 1, -1, 127, 128, 255, 256, -128, -129,
                    2**63 - 1, -2**63, 2**128, -2**128, 2**200, -2**200 + 1]

ADVERSARIAL_FLOATS = [0.0, -0.0, 1.5, -1.5, 1e308, -1e308, 5e-324,
                      math.inf, -math.inf, math.nan, 0.1 + 0.2]

ADVERSARIAL_STRINGS = ["", "ascii", "ümlaut", "日本語", "🦀🚀",
                       "a\x00b", "  ", "𝔘𝔫𝔦𝔠𝔬𝔡𝔢"]


@pytest.mark.parametrize("value", ADVERSARIAL_INTS)
def test_int_roundtrip(value):
    decoded = rt({"v": value})
    assert decoded.payload["v"] == value
    assert type(decoded.payload["v"]) is int


@pytest.mark.parametrize("value", ADVERSARIAL_FLOATS)
def test_float_roundtrip_bit_exact(value):
    decoded = rt({"v": value})
    got = decoded.payload["v"]
    assert type(got) is float
    # Bit-exact, which == can't check for NaN / -0.0.
    assert struct.pack(">d", got) == struct.pack(">d", value)


@pytest.mark.parametrize("value", ADVERSARIAL_STRINGS)
def test_str_roundtrip(value):
    assert rt({"v": value}).payload["v"] == value


def test_scalar_and_container_roundtrip():
    payload = {
        "none": None, "t": True, "f": False,
        "bytes": b"\x00\xff\x7f", "empty_list": [], "empty_dict": {},
        "empty_tuple": (), "nested": [{"a": (1, 2, [3, {"b": None}])}],
    }
    decoded = rt(payload)
    assert decoded.payload == payload


def test_tuple_and_list_stay_distinct():
    decoded = rt({"tup": (1, 2), "lst": [1, 2]})
    assert type(decoded.payload["tup"]) is tuple
    assert type(decoded.payload["lst"]) is list


def test_bool_and_int_stay_distinct():
    decoded = rt({"b": True, "i": 1})
    assert decoded.payload["b"] is True
    assert type(decoded.payload["i"]) is int


def test_dict_insertion_order_preserved():
    forward = encode_message(Message(kind="t", payload={"a": 1, "b": 2}))
    backward = encode_message(Message(kind="t", payload={"b": 2, "a": 1}))
    assert forward != backward  # order is part of the canonical bytes
    decoded = decode_message(backward)
    assert list(decoded.payload.keys()) == ["b", "a"]


def test_canonical_bytes_are_deterministic():
    msg = Message(kind="k", payload={"x": [1.5, "s", (2, None)]},
                  src=3, dst=4, hops=2, trace=[1, 2], trace_ctx=("q", 7))
    assert encode_message(msg) == encode_message(msg)
    decoded, body = roundtrip_check(msg)
    assert encode_message(decoded) == body


def test_message_fields_preserved():
    msg = Message(kind="route", payload={"op": "join"}, src=11, dst=22,
                  hops=5, trace=[11, 9], trace_ctx=("trace", 42))
    decoded, _ = roundtrip_check(msg)
    assert decoded.kind == "route"
    assert decoded.src == 11 and decoded.dst == 22 and decoded.hops == 5
    assert decoded.trace == [11, 9]
    assert decoded.trace_ctx == ("trace", 42)
    assert type(decoded.trace_ctx) is tuple
    assert decoded.msg_id == msg.msg_id  # the sender's id travels


def test_decode_does_not_consume_fresh_msg_ids():
    body = encode_message(Message(kind="t", payload={}))
    decode_message(body)
    a = Message(kind="x", payload={})
    decode_message(body)
    b = Message(kind="x", payload={})
    assert b.msg_id == a.msg_id + 1  # decoding allocated no ids between


# ----------------------------------------------------------------------
# Rejection
# ----------------------------------------------------------------------
@pytest.mark.parametrize("payload", [
    {"fn": lambda: None},
    {"set": {1, 2}},
    {"obj": object()},
    {"cls": Message},
    {"nested": [1, {"deep": {"bad": range(3)}}]},
])
def test_unserializable_payloads_rejected(payload):
    with pytest.raises(CodecError):
        encode_message(Message(kind="t", payload=payload))


def test_subclasses_of_wire_types_rejected():
    class SneakyInt(int):
        pass

    class SneakyDict(dict):
        pass

    with pytest.raises(CodecError):
        encode_message(Message(kind="t", payload={"v": SneakyInt(3)}))
    with pytest.raises(CodecError):
        encode_message(Message(kind="t", payload=SneakyDict(a=1)))


def test_error_names_the_offending_path():
    with pytest.raises(CodecError, match=r"payload\['inner'\]\[1\]"):
        encode_message(Message(kind="t", payload={"inner": [1, object()]}))


def test_version_mismatch_rejected():
    body = bytearray(encode_message(Message(kind="t", payload={})))
    body[0] = WIRE_VERSION + 1
    with pytest.raises(CodecError, match="version mismatch"):
        decode_message(bytes(body))


def test_truncated_body_rejected():
    body = encode_message(Message(kind="t", payload={"k": "value"}))
    for cut in (1, len(body) // 2, len(body) - 1):
        with pytest.raises(CodecError):
            decode_message(body[:cut])


def test_trailing_garbage_rejected():
    body = encode_message(Message(kind="t", payload={}))
    with pytest.raises(CodecError, match="trailing"):
        decode_message(body + b"\x00")


def test_unknown_tag_rejected():
    body = encode_message(Message(kind="t", payload={}))
    with pytest.raises(CodecError, match="unknown value tag"):
        decode_message(body[:1] + b"\x7a" + body[2:])


def test_non_string_kind_rejected():
    # Hand-craft a body whose kind field is an int.
    good = encode_message(Message(kind="t", payload={}))
    bad = bytearray()
    bad.append(WIRE_VERSION)
    bad.append(0x49)                       # I tag
    bad += (1).to_bytes(2, "big")
    bad += (7).to_bytes(1, "big", signed=True)
    bad += good[1 + 1 + 4 + 1:]            # skip version + 'S' + len + 't'
    with pytest.raises(CodecError, match="kind"):
        decode_message(bytes(bad))


def test_oversized_frame_rejected():
    with pytest.raises(CodecError, match="cap"):
        frame(b"x" * (MAX_FRAME_BYTES + 1))
    buffer = bytearray((MAX_FRAME_BYTES + 1).to_bytes(4, "big") + b"xxxx")
    with pytest.raises(CodecError, match="cap"):
        split_frames(buffer)


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def test_split_frames_incremental():
    messages = [Message(kind=f"k{i}", payload={"i": i}) for i in range(5)]
    stream = b"".join(encode_frame(m) for m in messages)
    buffer = bytearray()
    decoded = []
    rng = random.Random(7)
    pos = 0
    while pos < len(stream):
        step = rng.randint(1, 9)
        buffer += stream[pos:pos + step]
        pos += step
        for body in split_frames(buffer):
            decoded.append(decode_message(body))
    assert not buffer  # everything consumed
    assert [m.kind for m in decoded] == [m.kind for m in messages]
    assert [m.payload for m in decoded] == [m.payload for m in messages]


def test_randomized_payload_roundtrips():
    rng = random.Random(2017)

    def gen(depth):
        roll = rng.random()
        if depth > 3 or roll < 0.35:
            return rng.choice([
                None, True, False, rng.randint(-2**80, 2**80),
                rng.random() * 10**rng.randint(-10, 10),
                "s" * rng.randint(0, 5), "ü🦀", b"\xff" * rng.randint(0, 4),
            ])
        if roll < 0.6:
            return [gen(depth + 1) for _ in range(rng.randint(0, 4))]
        if roll < 0.8:
            return tuple(gen(depth + 1) for _ in range(rng.randint(0, 4)))
        return {f"k{i}": gen(depth + 1) for i in range(rng.randint(0, 4))}

    for _ in range(200):
        payload = {"v": gen(0)}
        msg = Message(kind="fuzz", payload=payload)
        decoded, body = roundtrip_check(msg)
        assert encode_message(decoded) == body
