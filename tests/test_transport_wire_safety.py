"""Wire-safety audit: every message the protocol stack sends must
survive the codec.

``SimTransport(wire_check=True)`` round-trips every delivery through the
wire codec, so a dressed DES run doubles as an exhaustive serializability
audit of the real protocol traffic.  The REQUIRED set below enumerates
the message kinds a dressed federation is known to put on the wire; if a
new protocol message appears it must either show up here (proving it
crossed the codec) or fail loudly with a :class:`CodecError` naming the
offending field.
"""

import pytest

from repro.core.plane import RBay, RBayConfig
from repro.net.message import Message
from repro.net.network import Host
from repro.net.site import SiteRegistry
from repro.sim.engine import Simulator
from repro.transport.codec import CodecError
from repro.transport.sim import SimTransport
from repro.workloads.generator import FederationWorkload, WorkloadSpec

# Message kinds a dressed 4-site federation demonstrably sends.  Keep in
# sync with the protocol stack: a kind disappearing from this run means
# the audit lost coverage of it.
REQUIRED_WIRE_KINDS = {
    "direct/query/site_query",
    "direct/query/site_result",
    "direct/scribe/agg_push_batch",
    "direct/scribe/agg_value",
    "direct/scribe/child_probe",
    "direct/scribe/parent_set",
    "pastry.ls_rep",
    "pastry.ls_req",
    "route/scribe/agg_get",
    "route/scribe/join",
}


def run_dressed(wire_check):
    plane = RBay(RBayConfig(
        seed=2017, synthetic_sites=4, nodes_per_site=3,
        jitter=False, wire_check=wire_check,
    )).build()
    FederationWorkload(plane, WorkloadSpec(password="rbay")).apply()
    plane.register_buckets("CPU_utilization", 0.0, 100.0, buckets=4)
    plane.sim.run()
    plane.start_maintenance()  # periodic probes/leaf-set exchanges
    plane.settle(5_000.0)
    result = plane.query("SELECT * FROM * GROUP BY CPU_utilization;")
    plane.settle(1_000.0)  # sim.run() never quiesces under maintenance
    return plane, result


def test_every_protocol_kind_crosses_the_codec():
    plane, result = run_dressed(wire_check=True)
    net = plane.network
    assert result.satisfied
    assert net.wire_checked == net.messages_delivered > 0
    missing = REQUIRED_WIRE_KINDS - net.wire_kinds_seen
    assert not missing, f"kinds never audited through the codec: {missing}"


def test_wire_check_is_behaviorally_invisible():
    plane_a, result_a = run_dressed(wire_check=False)
    plane_b, result_b = run_dressed(wire_check=True)
    assert sorted(map(repr, result_a.entries)) == sorted(
        map(repr, result_b.entries))
    assert result_a.satisfied == result_b.satisfied
    assert plane_a.network.messages_delivered == \
        plane_b.network.messages_delivered
    assert plane_a.sim.events_executed == plane_b.sim.events_executed


def test_unserializable_payload_fails_loudly_under_wire_check():
    sim = Simulator()
    registry = SiteRegistry()
    registry.add("A", "r")
    registry.add("B", "r")
    sites = list(registry)
    net = SimTransport(sim, wire_check=True)

    class Silent(Host):
        def on_message(self, msg):
            pass

    a = Silent(sites[0])
    b = Silent(sites[1])
    net.attach(a)
    net.attach(b)
    a.send(b.address, Message(kind="evil", payload={"fn": lambda: None}))
    with pytest.raises(CodecError, match="fn"):
        sim.run()
