"""The paper's anycast-locality claim (§II-B3).

"Pastry's local route convergence ensures that the message reaches a tree
member near the message's sender with high probability.  RBAY uses anycast
to ... quickly discover available resources close to the customer."

We build one *global* tree with members at every site, anycast from random
senders, and check (a) the first member visited is in the sender's own
site far more often than the uniform-membership baseline, and (b) the
cost of reaching that first member is correspondingly small.
"""

import pytest

from repro.net.latency import TableIILatencyModel, make_ec2_registry
from repro.net.network import Network
from repro.pastry.overlay import Overlay
from repro.scribe.scribe import ScribeApplication
from repro.sim.engine import Simulator
from repro.sim.random_streams import RandomStreams

NODES_PER_SITE = 24
MEMBERS_PER_SITE = 8
TRIALS = 120


@pytest.fixture(scope="module")
def tree_world():
    sim = Simulator()
    streams = RandomStreams(4242)
    registry = make_ec2_registry()
    network = Network(sim, TableIILatencyModel())
    overlay = Overlay(sim, network, streams, registry)
    overlay.create_population(NODES_PER_SITE)
    overlay.bootstrap()
    for node in overlay.nodes:
        node.register_app(ScribeApplication(sim))
    rng = streams.stream("members")
    for site in registry:
        site_nodes = [n for n in overlay.nodes if n.site.index == site.index]
        for member in rng.sample(site_nodes, MEMBERS_PER_SITE):
            member.app("scribe").join(member, "shared")
    sim.run()
    return sim, streams, overlay


def first_member_visited(sim, overlay, sender):
    seen = []

    def visitor(node, topic, state):
        seen.append(node)
        return True  # stop at the first member

    for node in overlay.nodes:
        node.app("scribe").anycast_visitor = visitor
    start = sim.now
    result = sender.app("scribe").anycast(sender, "shared", {}).result()
    return seen[0], sim.now - start


def test_anycast_prefers_nearby_members(tree_world):
    sim, streams, overlay = tree_world
    rng = streams.stream("senders")
    local_hits = 0
    for _ in range(TRIALS):
        sender = rng.choice(overlay.nodes)
        member, _ = first_member_visited(sim, overlay, sender)
        if member.site.index == sender.site.index:
            local_hits += 1
    local_fraction = local_hits / TRIALS
    # Uniform membership baseline: 1/8 of members are in the sender's site.
    assert local_fraction > 2.5 / 8, local_fraction


def test_anycast_first_member_cost_tracks_locality(tree_world):
    sim, streams, overlay = tree_world
    rng = streams.stream("senders2")
    local_costs, remote_costs = [], []
    for _ in range(TRIALS):
        sender = rng.choice(overlay.nodes)
        member, elapsed = first_member_visited(sim, overlay, sender)
        (local_costs if member.site.index == sender.site.index
         else remote_costs).append(elapsed)
    assert local_costs, "no local discoveries at all"
    mean_local = sum(local_costs) / len(local_costs)
    if remote_costs:
        mean_remote = sum(remote_costs) / len(remote_costs)
        # Discovering a member in-site is much cheaper than going abroad.
        assert mean_local < mean_remote
