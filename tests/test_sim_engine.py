"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationError, Simulator


def test_clock_starts_at_zero(sim):
    assert sim.now == 0.0


def test_clock_custom_start():
    assert Simulator(start_time=42.0).now == 42.0


def test_schedule_and_run_advances_clock(sim):
    fired = []
    sim.schedule(10.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [10.0]
    assert sim.now == 10.0


def test_events_run_in_time_order(sim):
    order = []
    sim.schedule(5.0, order.append, "b")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(9.0, order.append, "c")
    sim.run()
    assert order == ["a", "b", "c"]


def test_ties_break_by_insertion_order(sim):
    order = []
    for tag in ("first", "second", "third"):
        sim.schedule(3.0, order.append, tag)
    sim.run()
    assert order == ["first", "second", "third"]


def test_negative_delay_rejected(sim):
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_cancel_prevents_execution(sim):
    fired = []
    event = sim.schedule(1.0, fired.append, 1)
    event.cancel()
    sim.run()
    assert fired == []


def test_cancel_is_idempotent(sim):
    event = sim.schedule(1.0, lambda: None)
    event.cancel()
    event.cancel()
    sim.run()


def test_callback_can_schedule_more_work(sim):
    seen = []

    def first():
        seen.append(sim.now)
        sim.schedule(2.0, second)

    def second():
        seen.append(sim.now)

    sim.schedule(1.0, first)
    sim.run()
    assert seen == [1.0, 3.0]


def test_run_until_time_bound(sim):
    fired = []
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(100.0, fired.append, "late")
    sim.run(until=50.0)
    assert fired == ["early"]
    assert sim.now == 50.0
    sim.run()
    assert fired == ["early", "late"]


def test_run_max_events(sim):
    fired = []
    for i in range(10):
        sim.schedule(float(i), fired.append, i)
    sim.run(max_events=3)
    assert fired == [0, 1, 2]


def test_run_until_predicate(sim):
    box = []
    sim.schedule(1.0, box.append, 1)
    sim.schedule(2.0, box.append, 2)
    assert sim.run_until(lambda: len(box) == 1)
    assert box == [1]


def test_run_until_predicate_timeout(sim):
    box = []
    sim.schedule(100.0, box.append, 1)
    assert not sim.run_until(lambda: bool(box), timeout=10.0)


def test_run_until_with_empty_queue_returns_predicate_value(sim):
    assert sim.run_until(lambda: True)
    assert not sim.run_until(lambda: False)


def test_schedule_at_absolute_time(sim):
    fired = []
    sim.schedule_at(7.5, fired.append, "x")
    sim.run()
    assert sim.now == 7.5 and fired == ["x"]


def test_call_soon_runs_at_current_time(sim):
    sim.schedule(5.0, lambda: sim.call_soon(marks.append, sim.now))
    marks = []
    sim.run()
    assert marks == [5.0]


def test_events_executed_counter(sim):
    for i in range(4):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_executed == 4


def test_pending_events_excludes_cancelled(sim):
    keep = sim.schedule(1.0, lambda: None)
    drop = sim.schedule(2.0, lambda: None)
    drop.cancel()
    assert sim.pending_events == 1
    del keep


def test_step_executes_single_event(sim):
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    assert sim.step()
    assert fired == ["a"]
    assert sim.step()
    assert not sim.step()


class TestPeriodicTask:
    def test_fires_repeatedly(self, sim):
        marks = []
        task = sim.schedule_periodic(10.0, lambda: marks.append(sim.now))
        sim.run(until=35.0)
        task.stop()
        assert marks == [10.0, 20.0, 30.0]

    def test_stop_halts_firing(self, sim):
        marks = []
        task = sim.schedule_periodic(10.0, lambda: marks.append(sim.now))
        sim.schedule(15.0, task.stop)
        sim.run(until=100.0)
        assert marks == [10.0]
        assert task.stopped

    def test_jitter_applied(self, sim):
        marks = []
        sim.schedule_periodic(10.0, lambda: marks.append(sim.now), jitter_fn=lambda: 2.5)
        sim.run(until=30.0)
        assert marks == [12.5, 25.0]

    def test_zero_interval_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule_periodic(0.0, lambda: None)

    def test_stop_inside_callback(self, sim):
        marks = []
        holder = {}

        def fire():
            marks.append(sim.now)
            holder["task"].stop()

        holder["task"] = sim.schedule_periodic(5.0, fire)
        sim.run(until=50.0)
        assert marks == [5.0]


class TestBatchedCore:
    """The batch-drain fast path: order parity, pooling, run helpers."""

    @staticmethod
    def _trace_run(batched):
        """Run an identical mixed workload, recording (time, seq) steps."""
        sim = Simulator(batched=batched)
        trace = []
        sim.set_step_hook(lambda t, seq: trace.append((t, seq)))
        fired = []
        for tag in range(4):  # a same-timestamp burst
            sim.post(5.0, fired.append, ("burst", tag))
        sim.schedule(1.0, fired.append, ("early", 0))

        def mid_batch():
            fired.append(("mid", sim.now))
            sim.post(0.0, fired.append, ("joined", sim.now))  # same-time join
            sim.post(2.0, fired.append, ("later", sim.now))

        sim.schedule(5.0, mid_batch)
        doomed = sim.schedule(3.0, fired.append, ("cancelled", 0))
        doomed.cancel()
        sim.run()
        return trace, fired

    def test_batched_order_matches_legacy(self):
        batched_trace, batched_fired = self._trace_run(batched=True)
        legacy_trace, legacy_fired = self._trace_run(batched=False)
        assert batched_trace == legacy_trace
        assert batched_fired == legacy_fired

    def test_post_recycles_events_through_the_pool(self):
        sim = Simulator(batched=True)
        sim.post(1.0, lambda: None)
        sim.run()
        assert len(sim._pool) == 1
        pooled = sim._pool[-1]
        sim.post(2.0, lambda: None)  # reuses the pooled Event object
        assert not sim._pool
        assert sim._heap[0] is pooled
        sim.run()

    def test_unbatched_post_does_not_pool(self):
        sim = Simulator(batched=False)
        sim.post(1.0, lambda: None)
        sim.run()
        assert not sim._pool

    def test_same_time_posts_join_the_running_batch(self):
        sim = Simulator(batched=True)
        order = []

        def first():
            order.append("first")
            sim.post(0.0, order.append, "joined")

        sim.post(1.0, first)
        sim.post(1.0, order.append, "second")
        sim.run()
        assert order == ["first", "second", "joined"]

    def test_run_for(self):
        sim = Simulator(batched=True)
        fired = []
        sim.post(10.0, fired.append, 1)
        sim.post(30.0, fired.append, 2)
        sim.run_for(20.0)
        assert fired == [1] and sim.now == 20.0
        with pytest.raises(SimulationError):
            sim.run_for(-1.0)

    def test_run_until_idle_respects_max_events(self):
        sim = Simulator(batched=True)
        fired = []
        for _ in range(5):
            sim.post(1.0, fired.append, 1)  # one batch of five
        sim.run_until_idle(max_events=3)
        assert len(fired) == 3
        sim.run_until_idle()
        assert len(fired) == 5

    def test_post_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator(batched=True).post(-0.1, lambda: None)
