"""End-to-end scenarios: the paper's motivating use case and failure drills."""

import pytest

from repro.core.naming import site_tree
from repro.core.plane import RBay, RBayConfig
from repro.core.policies import acl_policy, credit_policy, time_window_policy
from repro.workloads.generator import FederationWorkload, WorkloadSpec


class TestMotivatingScenario:
    """Figure 1: Grace, James and Kevin share under different policies;
    Joe queries across all three."""

    @pytest.fixture(scope="class")
    def federation(self):
        plane = RBay(RBayConfig(seed=61, nodes_per_site=8, jitter=False)).build()
        plane.sim.run()
        grace = plane.admin("Virginia")     # time window
        james = plane.admin("Oregon")       # ACL
        kevin = plane.admin("California")   # credit history
        for node in plane.site_nodes("Virginia")[:4]:
            grace.set_gate_policy(node, time_window_policy(node.node_id.value, 22, 6))
            grace.post_resource(node, "Matlab", "8.0")
        for node in plane.site_nodes("Oregon")[:4]:
            james.set_gate_policy(node, acl_policy(node.node_id.value, ["joe"]))
            james.post_resource(node, "Matlab", "8.0")
        for node in plane.site_nodes("California")[:4]:
            kevin.set_gate_policy(node, credit_policy(node.node_id.value, 0.7))
            kevin.post_resource(node, "Matlab", "8.0")
        plane.sim.run()
        return plane

    def sql(self):
        return ("SELECT 12 FROM Virginia, Oregon, California "
                "WHERE Matlab = '8.0';")

    def test_joe_with_good_standing_by_night(self, federation):
        joe = federation.make_customer("joe", "Virginia")
        result = joe.query_once(self.sql(), payload={
            "hour": 23, "credit": 0.9,
        }).result()
        sites = {entry["site"] for entry in result.entries}
        assert sites == {"Virginia", "Oregon", "California"}
        assert len(result.entries) == 12
        joe.release_all(result)
        federation.sim.run()

    def test_daytime_hides_graces_nodes(self, federation):
        joe = federation.make_customer("joe", "Virginia")
        result = joe.query_once(self.sql(), payload={
            "hour": 12, "credit": 0.9,
        }).result()
        sites = {entry["site"] for entry in result.entries}
        assert "Virginia" not in sites
        assert {"Oregon", "California"} <= sites
        joe.release_all(result)
        federation.sim.run()

    def test_stranger_blocked_by_james_acl(self, federation):
        mallory = federation.make_customer("mallory", "Virginia")
        result = mallory.query_once(self.sql(), payload={
            "hour": 23, "credit": 0.9,
        }).result()
        sites = {entry["site"] for entry in result.entries}
        assert "Oregon" not in sites
        mallory.release_all(result)
        federation.sim.run()

    def test_bad_credit_blocked_by_kevin(self, federation):
        joe = federation.make_customer("joe", "Virginia")
        result = joe.query_once(self.sql(), payload={
            "hour": 23, "credit": 0.2,
        }).result()
        sites = {entry["site"] for entry in result.entries}
        assert "California" not in sites


class TestFailureInjection:
    @pytest.fixture
    def federation(self):
        plane = RBay(RBayConfig(seed=62, nodes_per_site=15, jitter=False,
                                maintenance_interval_ms=500.0)).build()
        workload = FederationWorkload(plane, WorkloadSpec(password="pw")).apply()
        plane.sim.run()
        return plane, workload

    def _popular(self, workload, site):
        counts = workload.site_instance_population(site)
        return max(counts, key=counts.get)

    def test_queries_survive_random_node_failures(self, federation):
        plane, workload = federation
        rng = plane.streams.stream("killer")
        itype = self._popular(workload, "Virginia")
        survivors_needed = 1
        # Kill 15% of all nodes (avoiding query-interface bookkeeping).
        victims = rng.sample(plane.nodes, len(plane.nodes) * 15 // 100)
        for victim in victims:
            victim.fail()
        plane.start_maintenance()
        plane.settle(3_000.0)
        live_virginia = [n for n in plane.site_nodes("Virginia") if n.alive]
        customer = plane.make_customer("joe", "Virginia", home=live_virginia[0])
        result = customer.query_once(
            f"SELECT {survivors_needed} FROM Virginia WHERE instance_type = '{itype}';",
            payload={"password": "pw"},
        ).result()
        matching_alive = [
            n for n in live_virginia if n.attribute_value("instance_type") == itype
        ]
        if matching_alive:
            assert result.satisfied
        plane.stop_maintenance()

    def test_gateway_failure_drops_site_but_not_query(self, federation):
        plane, workload = federation
        itype = self._popular(workload, "Virginia")
        tokyo_gateway = plane.context.gateways["Tokyo"]
        plane.network.host(tokyo_gateway).fail()
        customer = plane.make_customer("joe", "Virginia")
        result = customer.query_once(
            f"SELECT 1 FROM * WHERE instance_type = '{itype}';",
            payload={"password": "pw"},
        ).result()
        # Query completes; Tokyo silently contributes nothing.
        assert result.satisfied
        assert "Tokyo" not in result.sites_answered or not any(
            e["site"] == "Tokyo" for e in result.entries
        )

    def test_reserved_node_failure_does_not_wedge_future_queries(self, federation):
        plane, workload = federation
        itype = self._popular(workload, "Oregon")
        customer = plane.make_customer("joe", "Oregon")
        first = customer.query_once(
            f"SELECT 1 FROM Oregon WHERE instance_type = '{itype}';",
            payload={"password": "pw"},
        ).result()
        assert first.satisfied
        plane.network.host(first.entries[0]["address"]).fail()
        plane.start_maintenance()
        plane.settle(3_000.0)
        plane.stop_maintenance()
        second = customer.query_once(
            f"SELECT 1 FROM Oregon WHERE instance_type = '{itype}';",
            payload={"password": "pw"},
        ).result()
        alive_matches = [
            n for n in plane.site_nodes("Oregon")
            if n.alive and n.attribute_value("instance_type") == itype
        ]
        if alive_matches:
            assert second.satisfied
            assert second.entries[0]["address"] != first.entries[0]["address"]


class TestDynamicMembership:
    def test_new_node_becomes_discoverable(self):
        plane = RBay(RBayConfig(seed=63, nodes_per_site=8, jitter=False)).build()
        plane.sim.run()
        newcomer = plane.add_node(plane.registry.by_name("Ireland"),
                                  join_via=plane.nodes[0])
        plane.sim.run()
        admin = plane.admin("Ireland")
        admin.nodes.append(newcomer)
        admin.post_resource(newcomer, "FPGA", True)
        plane.sim.run()
        customer = plane.make_customer("joe", "Ireland")
        result = customer.query_once(
            "SELECT 1 FROM Ireland WHERE FPGA = true;").result()
        assert result.satisfied
        assert result.entries[0]["address"] == newcomer.address

    def test_departed_node_disappears_from_results(self):
        plane = RBay(RBayConfig(seed=64, nodes_per_site=8, jitter=False,
                                maintenance_interval_ms=400.0)).build()
        plane.sim.run()
        admin = plane.admin("Tokyo")
        node = plane.site_nodes("Tokyo")[3]
        admin.post_resource(node, "FPGA", True)
        plane.sim.run()
        node.fail()
        plane.start_maintenance()
        plane.settle(3_000.0)
        plane.stop_maintenance()
        customer = plane.make_customer("joe", "Tokyo")
        result = customer.query_once(
            "SELECT 1 FROM Tokyo WHERE FPGA = true;").result()
        assert not result.satisfied
