"""Labeled metrics: instruments, flat-registry mirroring, determinism."""

import json

import pytest

from repro.metrics.counters import CounterRegistry
from repro.obs.metrics import (
    LabeledCounter,
    LabeledGauge,
    LabeledHistogram,
    MetricsRegistry,
    _label_key,
)


@pytest.fixture
def registry():
    return MetricsRegistry(CounterRegistry())


class TestLabelNormalization:
    def test_kwarg_order_is_irrelevant(self):
        assert _label_key({"site": "A", "step": "probe"}) == \
            _label_key({"step": "probe", "site": "A"})

    def test_values_are_stringified(self):
        assert _label_key({"attempt": 2}) == (("attempt", "2"),)


class TestLabeledCounter:
    def test_increment_and_get_per_label_set(self, registry):
        counter = registry.counter("query.step")
        counter.increment(step="probe", site="A")
        counter.increment(step="probe", site="A")
        counter.increment(step="anycast", site="A")
        assert counter.get(site="A", step="probe") == 2
        assert counter.get(step="anycast", site="A") == 1
        assert counter.get(step="missing") == 0
        assert counter.total() == 3

    def test_increment_mirrors_flat_under_mirror_label(self, registry):
        registry.counter("query.step").increment(step="probe", site="A")
        registry.counter("query.step").increment(step="probe", site="B")
        # The flat family collapses labels onto the first MIRROR_LABEL.
        assert registry.counters.get("query.step.probe") == 2

    def test_mirror_falls_back_to_bare_name(self, registry):
        registry.counter("obs.events").increment(site="A")
        assert registry.counters.get("obs.events") == 1

    def test_mirror_prefers_step_over_kind(self, registry):
        registry.counter("f").increment(step="s", kind="k")
        assert registry.counters.get("f.s") == 1
        assert registry.counters.get("f.k") == 0

    def test_existing_flat_families_are_untouched(self):
        flat = CounterRegistry()
        flat.increment("scribe.acc_cache.hit", 5)
        registry = MetricsRegistry(flat)
        registry.counter("query.step").increment(step="probe")
        assert flat.get("scribe.acc_cache.hit") == 5
        assert flat.get("query.step.probe") == 1


class TestLabeledGauge:
    def test_set_add_get(self, registry):
        gauge = registry.gauge("inflight")
        gauge.set(3.0, site="A")
        assert gauge.get(site="A") == 3.0
        assert gauge.add(2.0, site="A") == 5.0
        assert gauge.add(-1.0, site="B") == -1.0
        assert gauge.get(site="missing") == 0.0


class TestLabeledHistogram:
    def test_observe_count_samples(self, registry):
        hist = registry.histogram("lat")
        for value in (10.0, 20.0, 30.0):
            hist.observe(value, step="probe")
        assert hist.count(step="probe") == 3
        assert hist.samples(step="probe") == [10.0, 20.0, 30.0]
        assert hist.count(step="other") == 0

    def test_summary_statistics(self, registry):
        hist = registry.histogram("lat")
        for value in range(1, 101):
            hist.observe(float(value), step="probe")
        summary = hist.summary(step="probe")
        assert summary["count"] == 100.0
        assert summary["min"] == 1.0
        assert summary["max"] == 100.0
        assert summary["mean"] == pytest.approx(50.5)
        assert summary["p50"] == pytest.approx(50.5)
        assert 90.0 <= summary["p90"] <= 91.0
        assert 99.0 <= summary["p99"] <= 100.0

    def test_summary_raises_on_empty_label_set(self, registry):
        with pytest.raises(KeyError):
            registry.histogram("lat").summary(step="never")

    def test_format_histogram_table(self, registry):
        registry.histogram("lat").observe(12.5, step="probe", site="A")
        table = registry.format_histogram("lat")
        assert "site=A,step=probe" in table
        assert "12.50" in table
        assert registry.format_histogram("nope") == "(no samples for nope)"


class TestMetricsRegistry:
    def test_factories_are_idempotent(self, registry):
        assert registry.counter("c") is registry.counter("c")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_snapshot_is_label_order_independent(self):
        def populate(registry, flipped):
            counter = registry.counter("query.step")
            hist = registry.histogram("lat")
            gauge = registry.gauge("depth")
            if flipped:
                counter.increment(site="A", step="probe")
                hist.observe(5.0, site="A", step="probe")
                gauge.set(2.0, tree="t", site="A")
            else:
                counter.increment(step="probe", site="A")
                hist.observe(5.0, step="probe", site="A")
                gauge.set(2.0, site="A", tree="t")
            return registry.snapshot()

        a = populate(MetricsRegistry(CounterRegistry()), flipped=False)
        b = populate(MetricsRegistry(CounterRegistry()), flipped=True)
        assert a == b
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_snapshot_is_plain_json_data(self, registry):
        registry.counter("c").increment(step="s")
        registry.gauge("g").set(1.5, site="A")
        registry.histogram("h").observe(3.0)
        json.dumps(registry.snapshot())  # must not raise
