"""Concurrency safety: overlapping queries must never double-allocate."""

import pytest

from repro.core.plane import RBay, RBayConfig
from repro.workloads.generator import FederationWorkload, WorkloadSpec


@pytest.fixture
def arena():
    plane = RBay(RBayConfig(seed=404, nodes_per_site=20, jitter=False)).build()
    workload = FederationWorkload(plane, WorkloadSpec(password="pw")).apply()
    plane.sim.run()
    return plane, workload


def popular(workload):
    counts = workload.instance_population()
    return max(counts, key=counts.get)


class TestNoDoubleAllocation:
    def test_concurrent_winners_get_disjoint_nodes(self, arena):
        plane, workload = arena
        itype = popular(workload)
        customers = [
            plane.make_customer(f"c{i}", site.name)
            for i, site in enumerate(plane.registry)
        ]
        futures = [
            customer.request(
                f"SELECT 2 FROM * WHERE instance_type = '{itype}';",
                payload={"password": "pw"},
            )
            for customer in customers
        ]
        outcomes = [future.result() for future in futures]
        winners = [o for o in outcomes if o.satisfied]
        assert winners, "expected at least one satisfied customer"
        allocated = []
        for outcome in winners:
            allocated.extend(outcome.node_ids())
        assert len(allocated) == len(set(allocated)), "node double-allocated"

    def test_every_commit_has_exactly_one_holder(self, arena):
        plane, workload = arena
        itype = popular(workload)
        customers = [plane.make_customer(f"d{i}", "Virginia") for i in range(4)]
        futures = [
            customer.request(
                f"SELECT 3 FROM Virginia WHERE instance_type = '{itype}';",
                payload={"password": "pw"},
            )
            for customer in customers
        ]
        outcomes = [f.result() for f in futures]
        plane.sim.run()
        committed = [n for n in plane.site_nodes("Virginia")
                     if n.reservation.committed]
        # Each committed node belongs to exactly one winner's result.
        holders = {}
        for outcome in outcomes:
            if not outcome.satisfied:
                continue
            for entry in outcome.result.entries:
                assert entry["address"] not in holders
                holders[entry["address"]] = outcome
        assert {n.address for n in committed} == set(holders)

    def test_unsatisfied_outcomes_hold_nothing(self, arena):
        plane, workload = arena
        itype = popular(workload)
        site_count = workload.site_instance_population("Tokyo")[itype]
        # Demand more than exists: everyone fails, nothing stays locked.
        customers = [plane.make_customer(f"e{i}", "Tokyo", max_attempts=2)
                     for i in range(3)]
        futures = [
            c.request(
                f"SELECT {site_count + 5} FROM Tokyo "
                f"WHERE instance_type = '{itype}';",
                payload={"password": "pw"},
            )
            for c in customers
        ]
        outcomes = [f.result() for f in futures]
        assert all(not o.satisfied for o in outcomes)
        # After the reservation hold window, every node is free again.
        plane.settle(plane.config.reservation_hold_ms + 100.0)
        for node in plane.site_nodes("Tokyo"):
            assert node.reservation.is_free()

    def test_release_makes_capacity_reusable(self, arena):
        plane, workload = arena
        itype = popular(workload)
        customer = plane.make_customer("f0", "Oregon")
        sql = f"SELECT 2 FROM Oregon WHERE instance_type = '{itype}';"
        first = customer.query_once(sql, payload={"password": "pw"}).result()
        assert first.satisfied
        plane.sim.run()
        customer.release_all(first)
        plane.sim.run()
        second = customer.query_once(sql, payload={"password": "pw"}).result()
        assert second.satisfied

    def test_interleaved_queries_with_distinct_types_do_not_interfere(self, arena):
        plane, workload = arena
        counts = workload.instance_population()
        # Two different types with enough supply.
        types = sorted(counts, key=counts.get, reverse=True)[:2]
        a = plane.make_customer("g0", "Ireland")
        b = plane.make_customer("g1", "Ireland")
        fa = a.request(f"SELECT 2 FROM * WHERE instance_type = '{types[0]}';",
                       payload={"password": "pw"})
        fb = b.request(f"SELECT 2 FROM * WHERE instance_type = '{types[1]}';",
                       payload={"password": "pw"})
        oa, ob = fa.result(), fb.result()
        assert oa.satisfied and ob.satisfied
        for entry in oa.result.entries:
            node = plane.network.host(entry["address"])
            assert node.attribute_value("instance_type") == types[0]
        for entry in ob.result.entries:
            node = plane.network.host(entry["address"])
            assert node.attribute_value("instance_type") == types[1]
