"""Unit tests for the routing table and leaf set."""

import pytest

from repro.pastry.leafset import LeafSet
from repro.pastry.nodeid import DIGITS, NodeId
from repro.pastry.routing_table import NodeRef, RoutingTable


def make_id(hex_prefix: str) -> NodeId:
    return NodeId(int(hex_prefix.ljust(32, "0"), 16))


def ref(node_id: NodeId, address: int, proximity: float = 1.0) -> NodeRef:
    return NodeRef(node_id, address, 0, proximity)


class TestRoutingTable:
    def test_add_places_by_prefix(self):
        owner = make_id("a0")
        table = RoutingTable(owner)
        peer = ref(make_id("b0"), 1)
        assert table.add(peer)
        assert table.entry(0, 0xB) is peer

    def test_add_second_row(self):
        owner = make_id("ab")
        table = RoutingTable(owner)
        peer = ref(make_id("ac"), 1)
        table.add(peer)
        assert table.entry(1, 0xC) is peer

    def test_rejects_self(self):
        owner = make_id("a0")
        table = RoutingTable(owner)
        assert not table.add(ref(owner, 5))

    def test_proximity_preferred(self):
        owner = make_id("a0")
        table = RoutingTable(owner)
        far = ref(make_id("b0"), 1, proximity=50.0)
        near = ref(make_id("b1"), 2, proximity=1.0)
        table.add(far)
        assert table.add(near)
        assert table.entry(0, 0xB) is near
        # A farther candidate does not displace the near one.
        assert not table.add(ref(make_id("b2"), 3, proximity=90.0))

    def test_next_hop_matches_extra_digit(self):
        owner = make_id("a0")
        table = RoutingTable(owner)
        peer = ref(make_id("b7"), 1)
        table.add(peer)
        assert table.next_hop(make_id("b799")) is peer

    def test_next_hop_missing_entry(self):
        table = RoutingTable(make_id("a0"))
        assert table.next_hop(make_id("c0")) is None

    def test_next_hop_for_own_id_is_none(self):
        owner = make_id("a0")
        table = RoutingTable(owner)
        assert table.next_hop(owner) is None

    def test_remove_by_address(self):
        table = RoutingTable(make_id("a0"))
        table.add(ref(make_id("b0"), 1))
        assert table.remove(1)
        assert table.entry(0, 0xB) is None
        assert not table.remove(1)

    def test_entries_iteration_and_len(self):
        table = RoutingTable(make_id("a0"))
        table.add(ref(make_id("b0"), 1))
        table.add(ref(make_id("c0"), 2))
        assert len(table) == 2
        assert {r.address for r in table.entries()} == {1, 2}


class TestLeafSet:
    def test_size_must_be_even(self):
        with pytest.raises(ValueError):
            LeafSet(NodeId(0), size=3)

    def test_add_and_members(self):
        owner = NodeId(1000)
        leaf_set = LeafSet(owner, size=4)
        assert leaf_set.add(ref(NodeId(1001), 1))
        assert leaf_set.add(ref(NodeId(999), 2))
        assert len(leaf_set) == 2

    def test_rejects_self_and_duplicates(self):
        owner = NodeId(1000)
        leaf_set = LeafSet(owner, size=4)
        assert not leaf_set.add(ref(owner, 1))
        leaf_set.add(ref(NodeId(1001), 2))
        assert not leaf_set.add(ref(NodeId(1001), 2))

    def test_keeps_closest_per_side(self):
        owner = NodeId(0)
        leaf_set = LeafSet(owner, size=4)  # two per side
        for i, value in enumerate((10, 20, 30), start=1):
            leaf_set.add(ref(NodeId(value), i))
        members = {r.node_id.value for r in leaf_set.members()}
        assert members == {10, 20}

    def test_covers_when_not_full(self):
        leaf_set = LeafSet(NodeId(0), size=8)
        leaf_set.add(ref(NodeId(100), 1))
        assert leaf_set.covers(NodeId(1 << 100))

    def test_covers_arc_when_full(self):
        owner = NodeId(1000)
        leaf_set = LeafSet(owner, size=2)
        leaf_set.add(ref(NodeId(1100), 1))
        leaf_set.add(ref(NodeId(900), 2))
        assert leaf_set.covers(NodeId(1050))
        assert not leaf_set.covers(NodeId(5000))

    def test_closest_member(self):
        owner = NodeId(1000)
        leaf_set = LeafSet(owner, size=4)
        leaf_set.add(ref(NodeId(1100), 1))
        leaf_set.add(ref(NodeId(900), 2))
        assert leaf_set.closest(NodeId(1090)).node_id.value == 1100

    def test_closest_empty_raises(self):
        with pytest.raises(LookupError):
            LeafSet(NodeId(0), size=2).closest(NodeId(1))

    def test_closer_than_owner(self):
        owner = NodeId(1000)
        leaf_set = LeafSet(owner, size=4)
        leaf_set.add(ref(NodeId(2000), 1))
        # Key near owner: no member closer.
        assert leaf_set.closer_than_owner(NodeId(1001)) is None
        # Key near member: member wins.
        assert leaf_set.closer_than_owner(NodeId(1999)).address == 1

    def test_closer_than_owner_tie_breaks_to_lower_id(self):
        owner = NodeId(1000)
        leaf_set = LeafSet(owner, size=4)
        leaf_set.add(ref(NodeId(998), 1))
        # Key 999 is distance 1 from both owner and member: lower id wins,
        # so every node agrees on the same root.
        chosen = leaf_set.closer_than_owner(NodeId(999))
        assert chosen is not None and chosen.node_id.value == 998

    def test_remove(self):
        leaf_set = LeafSet(NodeId(0), size=4)
        leaf_set.add(ref(NodeId(5), 1))
        assert leaf_set.remove(1)
        assert not leaf_set.remove(1)
        assert len(leaf_set) == 0

    def test_contains_by_address(self):
        leaf_set = LeafSet(NodeId(0), size=4)
        leaf_set.add(ref(NodeId(5), 7))
        assert 7 in leaf_set
        assert 8 not in leaf_set
