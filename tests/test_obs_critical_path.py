"""Critical-path extraction on hand-built span trees.

The invariant under test: the returned segments are disjoint,
chronological, and exactly cover ``[root.start_ms, root.end_ms]`` — so
their durations always sum to the measured end-to-end latency, whatever
the tree shape (overlapping children, retries, backoff waits, noise from
other traces).
"""

import pytest

from repro.obs.critical_path import (
    PathSegment,
    critical_path,
    format_breakdown,
    format_path,
    step_breakdown,
)
from repro.obs.spans import Span


def make_span(span_id, name, start, end, parent_id=None, trace_id=1,
              kind="span", **labels):
    return Span(trace_id=trace_id, span_id=span_id, parent_id=parent_id,
                name=name, category="test", start_ms=start, end_ms=end,
                kind=kind, labels=labels)


def assert_exact_cover(segments, root):
    """Disjoint, chronological, and covering [root.start, root.end]."""
    assert segments, "empty path for a non-empty window"
    assert segments[0].start_ms == root.start_ms
    assert segments[-1].end_ms == root.end_ms
    for before, after in zip(segments, segments[1:]):
        assert before.end_ms == after.start_ms, "gap or overlap in the path"
    total = sum(seg.duration_ms for seg in segments)
    assert total == pytest.approx(root.duration_ms, abs=1e-9)


class TestSimpleTrees:
    def test_childless_root_is_one_leaf_segment(self):
        root = make_span(1, "query", 0.0, 50.0)
        segments = critical_path(root, [root])
        assert len(segments) == 1
        seg = segments[0]
        # A leaf occupies its whole slice; it is not a gap, so not "self".
        assert (seg.span, seg.self_time) == (root, False)
        assert_exact_cover(segments, root)

    def test_single_child_splits_the_window(self):
        root = make_span(1, "query", 0.0, 100.0)
        child = make_span(2, "probe", 20.0, 60.0, parent_id=1, step="probe")
        segments = critical_path(root, [root, child])
        assert [(s.span.name, s.start_ms, s.end_ms, s.self_time)
                for s in segments] == [
            ("query", 0.0, 20.0, True),
            ("probe", 20.0, 60.0, False),
            ("query", 60.0, 100.0, True),
        ]
        assert_exact_cover(segments, root)

    def test_unfinished_root_raises(self):
        root = make_span(1, "query", 0.0, None)
        with pytest.raises(ValueError):
            critical_path(root, [root])

    def test_instants_and_open_children_never_gate(self):
        root = make_span(1, "query", 0.0, 40.0)
        spans = [
            root,
            make_span(2, "fault", 10.0, 10.0, parent_id=1, kind="instant"),
            make_span(3, "open", 5.0, None, parent_id=1),
        ]
        segments = critical_path(root, spans)
        assert len(segments) == 1
        assert segments[0].self_time

    def test_other_traces_are_ignored(self):
        root = make_span(1, "query", 0.0, 40.0)
        alien = make_span(9, "noise", 0.0, 40.0, parent_id=1, trace_id=7)
        segments = critical_path(root, [root, alien])
        assert len(segments) == 1
        assert segments[0].span is root


class TestOverlapAndRetries:
    def build_retry_tree(self):
        """A query whose site step times out once and retries after a
        backoff wait; a probe overlaps the site attempt's start."""
        root = make_span(1, "query", 0.0, 100.0, step="coordinate")
        probe = make_span(2, "query.probe", 10.0, 40.0, parent_id=1,
                          step="probe")
        site = make_span(3, "query.site", 20.0, 90.0, parent_id=1,
                         step="site_rtt")
        attempt1 = make_span(4, "query.site", 30.0, 50.0, parent_id=3,
                             step="site_rtt", attempt=1)
        backoff = make_span(5, "query.backoff", 50.0, 60.0, parent_id=3,
                            step="backoff", retry_of="site")
        attempt2 = make_span(6, "query.site", 60.0, 85.0, parent_id=3,
                             step="site_rtt", attempt=2)
        return root, [root, probe, site, attempt1, backoff, attempt2]

    def test_retry_tree_path_and_exact_sum(self):
        root, spans = self.build_retry_tree()
        segments = critical_path(root, spans)
        assert_exact_cover(segments, root)
        names = [(s.span.span_id, s.self_time, s.start_ms, s.end_ms)
                 for s in segments]
        assert names == [
            (1, True, 0.0, 10.0),    # root self before the probe
            (2, False, 10.0, 20.0),  # probe until the site span starts
            (3, True, 20.0, 30.0),   # site self before attempt 1
            (4, False, 30.0, 50.0),  # attempt 1 (timed out)
            (5, False, 50.0, 60.0),  # backoff wait
            (6, False, 60.0, 85.0),  # attempt 2
            (3, True, 85.0, 90.0),   # site self after the last attempt
            (1, True, 90.0, 100.0),  # root self (settle)
        ]

    def test_retries_and_backoff_are_attributed_to_steps(self):
        root, spans = self.build_retry_tree()
        totals = step_breakdown(critical_path(root, spans))
        assert totals["backoff"] == pytest.approx(10.0)
        assert totals["site_rtt"] == pytest.approx(60.0)  # 10+20+25+5
        assert totals["probe"] == pytest.approx(10.0)
        assert totals["coordinate"] == pytest.approx(20.0)
        assert sum(totals.values()) == pytest.approx(root.duration_ms)

    def test_overlapping_children_only_gate_where_latest(self):
        """Two concurrent fan-outs: only the gating portions land."""
        root = make_span(1, "query", 0.0, 100.0)
        fast = make_span(2, "site-a", 10.0, 40.0, parent_id=1, step="site_rtt")
        slow = make_span(3, "site-b", 15.0, 95.0, parent_id=1, step="site_rtt")
        segments = critical_path(root, [root, fast, slow])
        assert_exact_cover(segments, root)
        by_span = [(s.span.span_id, s.start_ms, s.end_ms) for s in segments]
        assert by_span == [
            (1, 0.0, 10.0),
            (2, 10.0, 15.0),   # only the part before the slow span started
            (3, 15.0, 95.0),
            (1, 95.0, 100.0),
        ]

    def test_equal_end_tiebreak_picks_larger_span_id(self):
        root = make_span(1, "query", 0.0, 50.0)
        a = make_span(2, "a", 0.0, 50.0, parent_id=1)
        b = make_span(3, "b", 0.0, 50.0, parent_id=1)
        segments = critical_path(root, [root, a, b])
        assert segments == [PathSegment(b, 0.0, 50.0, self_time=False)]

    def test_child_overhanging_the_window_is_clamped(self):
        root = make_span(1, "query", 10.0, 60.0)
        # Started before the root window and ends after it (e.g. a span
        # from a sibling retry); only the in-window part may be charged.
        wide = make_span(2, "wide", 0.0, 80.0, parent_id=1)
        segments = critical_path(root, [root, wide])
        assert segments == [PathSegment(wide, 10.0, 60.0, self_time=False)]


class TestFormatting:
    def test_step_falls_back_to_span_name(self):
        span = make_span(1, "scribe.agg_get", 0.0, 5.0)
        assert PathSegment(span, 0.0, 5.0, False).step == "scribe.agg_get"
        labeled = make_span(2, "scribe.agg_get", 0.0, 5.0, step="aggregate")
        assert PathSegment(labeled, 0.0, 5.0, False).step == "aggregate"

    def test_format_breakdown_has_shares_and_total(self):
        root = make_span(1, "query", 0.0, 100.0)
        child = make_span(2, "probe", 0.0, 25.0, parent_id=1, step="probe")
        text = format_breakdown(critical_path(root, [root, child]))
        assert "probe" in text
        assert "25.0%" in text
        assert "total" in text
        assert "100.0%" in text

    def test_format_path_marks_gap_segments_only(self):
        root = make_span(1, "query", 0.0, 10.0)
        child = make_span(2, "probe", 2.0, 6.0, parent_id=1, step="probe")
        text = format_path(critical_path(root, [root, child]))
        assert "query (self)" in text
        assert "probe (self)" not in text
