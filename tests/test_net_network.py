"""Unit tests for the simulated network."""

import random

import pytest

from repro.net.latency import UniformLatencyModel, make_ec2_registry
from repro.net.message import Message
from repro.net.network import FaultDecision, Host, Network, NetworkError


class Recorder(Host):
    def __init__(self, site):
        super().__init__(site)
        self.received = []

    def on_message(self, msg):
        self.received.append((msg, self.network.sim.now))


@pytest.fixture
def net(sim):
    return Network(sim, UniformLatencyModel(1.5))


@pytest.fixture
def hosts(net, registry):
    pair = [Recorder(registry[0]), Recorder(registry[1])]
    for host in pair:
        net.attach(host)
    return pair


def test_attach_assigns_sequential_addresses(net, registry):
    a = Recorder(registry[0])
    b = Recorder(registry[0])
    assert net.attach(a) == 0
    assert net.attach(b) == 1
    assert net.host(0) is a and net.host(1) is b


def test_unknown_address_raises(net):
    with pytest.raises(NetworkError):
        net.host(99)


def test_delivery_with_model_latency(sim, net, hosts):
    a, b = hosts
    a.send(b.address, Message(kind="ping"))
    sim.run()
    assert len(b.received) == 1
    _, at = b.received[0]
    assert at == 1.5


def test_message_src_dst_filled(sim, net, hosts):
    a, b = hosts
    a.send(b.address, Message(kind="ping"))
    sim.run()
    msg, _ = b.received[0]
    assert msg.src == a.address and msg.dst == b.address


def test_send_to_missing_host_drops(sim, net, hosts):
    a, _ = hosts
    a.send(1234, Message(kind="ping"))
    sim.run()
    assert net.messages_dropped == 1


def test_detached_host_receives_nothing(sim, net, hosts):
    a, b = hosts
    a.send(b.address, Message(kind="ping"))
    net.detach(b)
    sim.run()
    assert b.received == []
    assert net.messages_dropped == 1


def test_detach_then_send_also_drops(sim, net, hosts):
    a, b = hosts
    net.detach(b)
    a.send(b.address, Message(kind="ping"))
    sim.run()
    assert net.messages_dropped == 1


def test_loss_rate_drops_fraction(sim, registry):
    net = Network(sim, UniformLatencyModel(0.1), loss_rate=0.5,
                  loss_rng=random.Random(0))
    a, b = Recorder(registry[0]), Recorder(registry[0])
    net.attach(a), net.attach(b)
    for _ in range(400):
        a.send(b.address, Message(kind="ping"))
    sim.run()
    assert 120 < len(b.received) < 280  # ~200 expected


def test_loss_rate_without_rng_rejected(sim):
    with pytest.raises(NetworkError):
        Network(sim, UniformLatencyModel(), loss_rate=0.1)


def test_traffic_counters(sim, net, hosts):
    a, b = hosts
    for _ in range(3):
        a.send(b.address, Message(kind="ping", payload={"x": 1}))
    sim.run()
    assert net.messages_sent == 3
    assert net.messages_delivered == 3
    assert net.per_host_sent[a.address] == 3
    assert net.per_host_received[b.address] == 3
    assert net.per_host_bytes_in[b.address] > 0
    net.reset_counters()
    assert net.messages_sent == 0
    assert net.per_host_received[b.address] == 0


def test_delivery_hook_observes(sim, net, hosts):
    a, b = hosts
    seen = []
    net.set_delivery_hook(lambda m: seen.append(m.kind))
    a.send(b.address, Message(kind="ping"))
    sim.run()
    assert seen == ["ping"]


def test_trace_collects_path(sim, net, hosts):
    a, b = hosts
    msg = Message(kind="ping", trace=[])
    a.send(b.address, msg)
    sim.run()
    assert msg.trace == [b.address]


def test_send_requires_attachment(registry):
    host = Recorder(registry[0])
    with pytest.raises(NetworkError):
        host.send(0, Message(kind="ping"))


def test_host_count(net, hosts):
    assert net.host_count == 2


class TestConservation:
    """sent == delivered + dropped + in_flight, at every instant."""

    def assert_conserved(self, net):
        assert net.messages_sent == (net.messages_delivered
                                     + net.messages_dropped
                                     + net.messages_in_flight)

    def test_in_flight_gauge_tracks_pending_deliveries(self, sim, net, hosts):
        a, b = hosts
        for _ in range(4):
            a.send(b.address, Message(kind="ping"))
        assert net.messages_in_flight == 4
        self.assert_conserved(net)
        sim.run()
        assert net.messages_in_flight == 0
        assert net.messages_delivered == 4
        self.assert_conserved(net)

    def test_in_flight_to_crashed_host_counts_as_dropped(self, sim, net, hosts):
        a, b = hosts
        a.send(b.address, Message(kind="ping"))
        net.detach(b)  # crashes while the packet is on the wire
        sim.run()
        assert net.messages_dropped == 1
        assert net.messages_delivered == 0
        self.assert_conserved(net)

    def test_reset_counters_preserves_in_flight(self, sim, net, hosts):
        a, b = hosts
        a.send(b.address, Message(kind="ping"))
        net.reset_counters()
        # The pending packet is still owed a delivery; the identity must
        # hold again once it lands.
        assert net.messages_sent == 1 and net.messages_in_flight == 1
        sim.run()
        assert net.messages_delivered == 1
        self.assert_conserved(net)


class TestReattach:
    def test_reattach_restores_old_address(self, sim, net, hosts):
        a, b = hosts
        address = b.address
        net.detach(b)
        net.reattach(b)
        assert b.address == address
        assert b.alive and net.host(address) is b
        a.send(address, Message(kind="ping"))
        sim.run()
        assert len(b.received) == 1

    def test_reattach_never_attached_rejected(self, net, registry):
        with pytest.raises(NetworkError):
            net.reattach(Recorder(registry[0]))

    def test_reattach_occupied_address_rejected(self, net, hosts, registry):
        _, b = hosts
        net.detach(b)
        usurper = Recorder(registry[0])
        usurper.address = b.address
        net._hosts[b.address] = usurper
        with pytest.raises(NetworkError):
            net.reattach(b)

    def test_reattach_is_idempotent(self, net, hosts):
        _, b = hosts
        net.detach(b)
        net.reattach(b)
        net.reattach(b)  # occupant is the host itself: fine
        assert b.alive


class TestSuppression:
    """Crashed senders emit nothing — suppressed outside the conservation sum."""

    def test_detached_sender_is_suppressed(self, sim, net, hosts):
        a, b = hosts
        net.detach(a)
        a.send(b.address, Message(kind="ping"))
        sim.run()
        assert net.messages_suppressed == 1
        assert net.messages_sent == 0 and net.messages_dropped == 0
        assert b.received == []

    def test_dead_flag_alone_suppresses(self, sim, net, hosts):
        a, b = hosts
        a.alive = False
        a.send(b.address, Message(kind="ping"))
        sim.run()
        assert net.messages_suppressed == 1
        assert b.received == []

    def test_recovered_sender_sends_again(self, sim, net, hosts):
        a, b = hosts
        net.detach(a)
        net.reattach(a)
        a.send(b.address, Message(kind="ping"))
        sim.run()
        assert net.messages_suppressed == 0
        assert len(b.received) == 1


class TestFaultFilter:
    def test_drop_decision_counts_dropped(self, sim, net, hosts):
        a, b = hosts
        net.fault_filter = lambda src, dst, msg: FaultDecision(drop=True)
        a.send(b.address, Message(kind="ping"))
        sim.run()
        assert b.received == []
        assert net.messages_sent == 1 and net.messages_dropped == 1
        assert net.messages_in_flight == 0

    def test_duplicates_are_extra_sent_packets(self, sim, net, hosts):
        a, b = hosts
        net.fault_filter = lambda src, dst, msg: FaultDecision(duplicates=2)
        a.send(b.address, Message(kind="ping", payload={"x": 1}))
        sim.run()
        assert len(b.received) == 3
        # Each copy is a wire packet: counted in sent, bytes, and per-host.
        assert net.messages_sent == 3
        assert net.messages_delivered == 3
        assert net.per_host_sent[a.address] == 3
        assert net.messages_sent == net.messages_delivered + net.messages_dropped

    def test_extra_delay_shifts_delivery(self, sim, net, hosts):
        a, b = hosts
        net.fault_filter = lambda src, dst, msg: FaultDecision(extra_delay_ms=40.0)
        a.send(b.address, Message(kind="ping"))
        sim.run()
        _, at = b.received[0]
        assert at == pytest.approx(41.5)  # 1.5 model latency + 40 injected

    def test_none_decision_delivers_normally(self, sim, net, hosts):
        a, b = hosts
        net.fault_filter = lambda src, dst, msg: None
        a.send(b.address, Message(kind="ping"))
        sim.run()
        assert len(b.received) == 1
        assert net.messages_dropped == 0


class TestMessage:
    def test_size_accounts_for_payload(self):
        small = Message(kind="a", payload={})
        big = Message(kind="a", payload={"data": "x" * 1000})
        assert big.size_bytes() > small.size_bytes() + 900

    def test_size_handles_nested_containers(self):
        msg = Message(kind="a", payload={"list": [1, 2, {"k": "v"}], "none": None})
        assert msg.size_bytes() > 0

    def test_unique_ids(self):
        assert Message(kind="a").msg_id != Message(kind="a").msg_id

    def test_fork_copies_payload_and_updates(self):
        original = Message(kind="k", payload={"a": 1}, hops=3)
        forked = original.fork(b=2)
        assert forked.payload == {"a": 1, "b": 2}
        assert forked.hops == 3
        assert forked.msg_id != original.msg_id
        assert original.payload == {"a": 1}


class TestDeliveryCoalescing:
    """Same-destination same-time deliveries share one simulator event."""

    @pytest.fixture
    def cnet(self, sim):
        return Network(sim, UniformLatencyModel(1.5), coalesce_delivery=True)

    @pytest.fixture
    def chosts(self, cnet, registry):
        pair = [Recorder(registry[0]), Recorder(registry[1])]
        for host in pair:
            cnet.attach(host)
        return pair

    def test_burst_collapses_to_one_event_same_deliveries(self, sim, cnet, chosts):
        a, b = chosts
        for i in range(5):
            a.send(b.address, Message(kind="ping", payload={"i": i}))
        assert len(cnet._pending_batches) == 1  # one (dst, time) batch
        events_before = sim.events_executed
        sim.run()
        # One delivery event carried all five messages, individually.
        assert sim.events_executed == events_before + 1
        assert [m.payload["i"] for m, _ in b.received] == [0, 1, 2, 3, 4]
        assert len({t for _, t in b.received}) == 1
        assert cnet.messages_delivered == 5
        assert not cnet._pending_batches

    def test_counters_conserved_under_coalescing(self, sim, cnet, chosts):
        a, b = chosts
        for _ in range(3):
            a.send(b.address, Message(kind="ping"))
        assert cnet.messages_in_flight == 3
        assert cnet.messages_sent == (cnet.messages_delivered
                                      + cnet.messages_dropped
                                      + cnet.messages_in_flight)
        sim.run()
        assert cnet.messages_in_flight == 0
        assert cnet.messages_delivered == 3
        assert cnet.messages_sent == cnet.messages_delivered

    def test_coalesced_matches_uncoalesced_deliveries(self, sim, registry):
        def run(coalesce):
            local_sim = type(sim)()
            net = Network(local_sim, UniformLatencyModel(2.0),
                          coalesce_delivery=coalesce)
            src, dst = Recorder(registry[0]), Recorder(registry[1])
            net.attach(src), net.attach(dst)
            for i in range(4):
                src.send(dst.address, Message(kind="ping", payload={"i": i}))
            local_sim.schedule(1.0, lambda: src.send(
                dst.address, Message(kind="late")))
            local_sim.run()
            return [(m.kind, m.payload, t) for m, t in dst.received]

        assert run(coalesce=True) == run(coalesce=False)
