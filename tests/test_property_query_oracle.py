"""End-to-end property test: random queries vs. a brute-force oracle.

A module-scoped federation is dressed with the evaluation workload; random
composite queries are generated from a small grammar and executed through
the full five-step protocol.  A brute-force oracle evaluates the same
predicates over every node's raw attributes.  Invariants:

* every returned node satisfies the oracle's predicate evaluation;
* `satisfied` is truthful: k entries when satisfied, fewer otherwise;
* a satisfied oracle implies a satisfied query whenever k is within the
  oracle's match count (completeness over tree-indexed predicates).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.plane import RBay, RBayConfig
from repro.query.predicates import Predicate
from repro.workloads.ec2 import EC2_INSTANCE_TYPES
from repro.workloads.generator import FederationWorkload, WorkloadSpec

_PLANE_CACHE = {}


def federation():
    if "plane" not in _PLANE_CACHE:
        plane = RBay(RBayConfig(seed=1337, nodes_per_site=18, jitter=False)).build()
        workload = FederationWorkload(plane, WorkloadSpec(password="pw")).apply()
        plane.sim.run()
        _PLANE_CACHE["plane"] = (plane, workload)
    return _PLANE_CACHE["plane"]


# Query grammar: an instance type (tree-indexed) plus optional spec floors.
itypes = st.sampled_from(EC2_INSTANCE_TYPES)
ks = st.integers(min_value=1, max_value=4)
vcpu_floors = st.one_of(st.none(), st.sampled_from([1, 2, 4, 8, 16]))
mem_floors = st.one_of(st.none(), st.sampled_from([1.0, 4.0, 15.0, 60.0]))
site_picks = st.one_of(
    st.none(),
    st.lists(st.sampled_from([name for name, _ in (
        ("Virginia", 0), ("Oregon", 0), ("Tokyo", 0), ("SaoPaulo", 0))]),
        min_size=1, max_size=3, unique=True),
)


def oracle_matches(plane, predicates, sites):
    matches = []
    for node in plane.nodes:
        if sites is not None and node.site.name not in sites:
            continue
        if not node.reservation.is_free():
            continue
        ok = all(
            node.has_attribute(p.attribute)
            and p.matches(node.attribute_value(p.attribute))
            for p in predicates
        )
        if ok:
            matches.append(node)
    return matches


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.function_scoped_fixture])
@given(itype=itypes, k=ks, vcpu=vcpu_floors, mem=mem_floors, sites=site_picks)
def test_query_results_match_oracle(itype, k, vcpu, mem, sites):
    plane, workload = federation()
    predicates = [Predicate("instance_type", "=", itype)]
    clauses = [f"instance_type = '{itype}'"]
    if vcpu is not None:
        predicates.append(Predicate("vcpu", ">=", float(vcpu)))
        clauses.append(f"vcpu >= {vcpu}")
    if mem is not None:
        predicates.append(Predicate("mem_gb", ">=", float(mem)))
        clauses.append(f"mem_gb >= {mem}")
    source = "*" if sites is None else ", ".join(sites)
    sql = f"SELECT {k} FROM {source} WHERE " + " AND ".join(clauses) + ";"

    expected = oracle_matches(plane, predicates, sites)
    customer = plane.make_customer("oracle-user", "Virginia")
    result = customer.query_once(sql, payload={"password": "pw"}).result()

    # Soundness: every returned node satisfies the predicates per oracle.
    expected_addresses = {n.address for n in expected}
    for entry in result.entries:
        assert entry["address"] in expected_addresses, (sql, entry)

    # Truthfulness of `satisfied`.
    if result.satisfied:
        assert len(result.entries) >= k
    else:
        assert len(result.entries) < k

    # Completeness: if the oracle has >= k matches, the query finds them
    # (membership tracks attributes exactly in this static workload).
    if len(expected) >= k:
        assert result.satisfied, (sql, len(expected))

    # Clean up reservations so examples stay independent.
    customer.release_all(result)
    plane.sim.run()
    for node in expected:
        node.reservation.release(result.query_id)
