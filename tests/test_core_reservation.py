"""Unit tests for the reservation table."""

import pytest

from repro.core.reservation import ReservationTable


@pytest.fixture
def table(sim):
    return ReservationTable(sim, hold_ms=100.0)


def test_initially_free(table):
    assert table.is_free()
    assert table.holder() is None


def test_reserve_takes_lock(table):
    assert table.try_reserve(1)
    assert not table.is_free()
    assert table.holder() == 1


def test_conflicting_reservation_rejected(table):
    table.try_reserve(1)
    assert not table.try_reserve(2)


def test_same_query_reservation_idempotent(table):
    assert table.try_reserve(1)
    assert table.try_reserve(1)


def test_reservation_expires_after_hold_window(sim, table):
    table.try_reserve(1)
    sim.schedule(150.0, lambda: None)
    sim.run()
    assert table.is_free()
    assert table.try_reserve(2)


def test_reserve_refreshes_expiry(sim, table):
    table.try_reserve(1)
    sim.schedule(80.0, table.try_reserve, 1)  # refresh at t=80
    sim.run()
    # At t=150 (70ms after refresh) still held.
    sim.schedule(70.0, lambda: None)
    sim.run()
    assert table.holder() == 1


def test_commit_converts_to_lease(sim, table):
    table.try_reserve(1)
    assert table.commit(1, lease_ms=1000.0)
    assert table.committed
    # Reservations would have expired by now, but the lease holds.
    sim.schedule(500.0, lambda: None)
    sim.run()
    assert table.holder() == 1


def test_commit_by_non_holder_rejected(table):
    table.try_reserve(1)
    assert not table.commit(2, lease_ms=100.0)


def test_commit_without_reservation_rejected(table):
    assert not table.commit(1, lease_ms=100.0)


def test_lease_expires(sim, table):
    table.try_reserve(1)
    table.commit(1, lease_ms=200.0)
    sim.schedule(250.0, lambda: None)
    sim.run()
    assert table.is_free()
    assert not table.committed


def test_release_frees_lock(table):
    table.try_reserve(1)
    assert table.release(1)
    assert table.is_free()


def test_release_by_non_holder_rejected(table):
    table.try_reserve(1)
    assert not table.release(2)
    assert table.holder() == 1


def test_release_lease(sim, table):
    table.try_reserve(1)
    table.commit(1, lease_ms=10_000.0)
    assert table.release(1)
    assert table.is_free()


def test_expired_reservation_cannot_commit(sim, table):
    table.try_reserve(1)
    sim.schedule(150.0, lambda: None)
    sim.run()
    assert not table.commit(1, lease_ms=100.0)


def test_active_lease_blocks_competing_reservation(sim, table):
    table.try_reserve(1)
    table.commit(1, lease_ms=1_000.0)
    sim.schedule(500.0, lambda: None)
    sim.run()
    # The hold window (100 ms) is long gone, but the lease still guards.
    assert not table.try_reserve(2)
    assert table.holder() == 1


def test_lease_expiry_frees_node_for_next_query(sim, table):
    table.try_reserve(1)
    table.commit(1, lease_ms=200.0)
    sim.schedule(250.0, lambda: None)
    sim.run()
    assert table.try_reserve(2)
    assert table.holder() == 2
    assert not table.committed


def test_release_after_hold_lapse_returns_false(sim, table):
    """A late release (e.g. from a retransmitted release message) is a no-op."""
    table.try_reserve(1)
    sim.schedule(150.0, lambda: None)
    sim.run()
    assert not table.release(1)
    assert table.is_free()


def test_commit_after_explicit_release_rejected(table):
    table.try_reserve(1)
    table.release(1)
    assert not table.commit(1, lease_ms=100.0)
    assert table.is_free()


def test_recommit_extends_lease(sim, table):
    """The holder may re-commit to push the lease end out (renewal)."""
    table.try_reserve(1)
    table.commit(1, lease_ms=200.0)
    sim.schedule(150.0, table.commit, 1, 200.0)
    sim.run()
    # 250 ms in: the original lease would have lapsed, the renewal holds.
    sim.schedule(100.0, lambda: None)
    sim.run()
    assert table.holder() == 1
    assert table.committed


def test_rereserve_after_commit_keeps_lease(sim, table):
    """A duplicate reserve from the lease-holding query is a no-op.

    Historically it demoted the lease back to a short timed hold, so a
    retried anycast arriving after step 5 settled would silently evict a
    committed customer once the hold window lapsed.  The reserve must
    succeed (the query already owns the node) but leave the lease — and
    its expiry horizon — untouched.
    """
    table.try_reserve(1)
    table.commit(1, lease_ms=10_000.0)
    assert table.try_reserve(1)
    assert table.committed
    sim.schedule(150.0, lambda: None)
    sim.run()
    # Well past the hold window: the lease clock governs, not the hold.
    assert table.holder() == 1
    assert table.committed


def test_rereserve_delayed_duplicate_does_not_evict(sim, table):
    """Regression for the demote bug with the duplicate arriving late:
    the duplicate fires after commit, then the hold window passes."""
    table.try_reserve(7)
    table.commit(7, lease_ms=60_000.0)
    sim.schedule(500.0, table.try_reserve, 7)     # delayed duplicate
    sim.schedule(5_000.0, lambda: None)           # well past hold_ms
    sim.run()
    assert table.holder() == 7
    assert table.committed


def test_committed_false_after_lease_lapse_without_access(sim, table):
    """The ``committed`` property itself triggers lazy GC."""
    table.try_reserve(1)
    table.commit(1, lease_ms=100.0)
    sim.schedule(200.0, lambda: None)
    sim.run()
    assert not table.committed
    assert table.holder() is None
