"""Unit tests for the bucketed range indices (repro.scribe.buckets)."""

import pytest

from repro.scribe.buckets import (
    Bucket,
    BucketIndex,
    BucketSpec,
    interval_contains,
    intervals_overlap,
    predicate_interval,
)


class TestPredicateInterval:
    def test_between_is_closed_on_both_ends(self):
        assert predicate_interval("between", (10, 30)) == (10.0, True, 30.0, True)

    def test_strict_and_inclusive_comparisons(self):
        assert predicate_interval("<", 5) == (None, False, 5.0, False)
        assert predicate_interval("<=", 5) == (None, False, 5.0, True)
        assert predicate_interval(">", 5) == (5.0, False, None, False)
        assert predicate_interval(">=", 5) == (5.0, True, None, False)

    def test_equality_is_a_point_interval(self):
        assert predicate_interval("=", 7) == (7.0, True, 7.0, True)

    def test_non_range_shapes_return_none(self):
        assert predicate_interval("<>", 5) is None
        assert predicate_interval("=", "c3.large") is None
        assert predicate_interval("<", True) is None
        assert predicate_interval("between", (1, "x")) is None
        assert predicate_interval("between", (1,)) is None

    def test_inverted_between_is_empty_not_none(self):
        interval = predicate_interval("between", (30, 10))
        assert interval is not None
        assert not intervals_overlap(interval, (None, False, None, False))


class TestIntervalAlgebra:
    def test_touching_boundaries_need_both_inclusive(self):
        closed_at_10 = (0.0, True, 10.0, True)
        open_at_10 = (10.0, False, 20.0, False)
        from_10 = (10.0, True, 20.0, False)
        assert not intervals_overlap(closed_at_10, open_at_10)
        assert intervals_overlap(closed_at_10, from_10)

    def test_containment_respects_bound_inclusivity(self):
        outer = (0.0, True, 10.0, False)
        assert interval_contains(outer, (0.0, True, 5.0, True))
        assert not interval_contains(outer, (0.0, True, 10.0, True))
        assert not interval_contains((None, False, 10.0, False),
                                     (None, False, None, False))
        assert interval_contains((None, False, None, False),
                                 (1.0, True, 2.0, True))


class TestBucketSpec:
    def test_boundaries_are_evenly_spaced_and_deterministic(self):
        spec = BucketSpec("u", 0.0, 100.0, 4)
        assert [spec.boundary(i) for i in range(5)] == [0, 25, 50, 75, 100]
        assert [b.tree for b in spec.buckets] == [
            "u[0,25)", "u[25,50)", "u[50,75)", "u[75,100)"]

    def test_invalid_specs_are_rejected(self):
        with pytest.raises(ValueError):
            BucketSpec("u", 0.0, 100.0, 0)
        with pytest.raises(ValueError):
            BucketSpec("u", 100.0, 0.0, 4)

    def test_bucket_of_partitions_the_real_line(self):
        spec = BucketSpec("u", 0.0, 100.0, 4)
        assert spec.bucket_of(0).index == 0
        assert spec.bucket_of(24.999).index == 0
        assert spec.bucket_of(25).index == 1
        assert spec.bucket_of(99.999).index == 3
        # Out-of-range values clamp into the infinite edge buckets.
        assert spec.bucket_of(-5).index == 0
        assert spec.bucket_of(150).index == 3
        assert spec.bucket_of("not a number") is None
        assert spec.bucket_of(True) is None

    def test_every_value_lands_in_exactly_one_bucket(self):
        spec = BucketSpec("u", 0.0, 100.0, 7)  # non-exact float boundaries
        for value in [0, 14.2857, 14.2858, 50, 99.9, -1, 101, 100.0 / 7.0]:
            holders = [b for b in spec.buckets if b.contains(value)]
            assert len(holders) == 1
            assert spec.bucket_of(value) == holders[0]

    def test_covering_returns_overlapping_buckets_in_order(self):
        spec = BucketSpec("u", 0.0, 100.0, 4)
        assert [b.index for b in spec.covering("between", (10, 30))] == [0, 1]
        assert [b.index for b in spec.covering("<", 25)] == [0]
        # Inclusive boundary touches the next bucket.
        assert [b.index for b in spec.covering("<=", 25)] == [0, 1]
        assert [b.index for b in spec.covering(">", 74.999)] == [2, 3]
        assert [b.index for b in spec.covering("=", 50)] == [2]
        assert spec.covering("<>", 50) is None
        assert spec.covering("=", "c3.large") is None
        assert spec.covering("between", (60, 40)) == []

    def test_edge_buckets_cover_out_of_range_predicates(self):
        spec = BucketSpec("u", 0.0, 100.0, 4)
        assert [b.index for b in spec.covering("<", -10)] == [0]
        assert [b.index for b in spec.covering(">=", 500)] == [3]

    def test_fully_contained_drives_implied_checks(self):
        spec = BucketSpec("u", 0.0, 100.0, 4)
        middle = spec.buckets[1]  # [25, 50)
        assert spec.fully_contained(middle, "between", (25, 50))
        assert spec.fully_contained(middle, "between", (20, 60))
        assert not spec.fully_contained(middle, "between", (30, 60))
        # Edge buckets extend to infinity, so finite predicates never
        # fully contain them.
        assert not spec.fully_contained(spec.buckets[0], "between", (0, 25))
        assert spec.fully_contained(spec.buckets[0], "<", 25)
        assert spec.fully_contained(spec.buckets[3], ">=", 75)


class TestBucketIndex:
    def test_register_and_lookup(self):
        index = BucketIndex()
        spec = index.register(BucketSpec("u", 0.0, 100.0, 4))
        assert index.spec_for("u") == spec
        assert index.is_bucketed("u")
        assert not index.is_bucketed("other")
        assert index.attributes() == ["u"]
        assert len(index) == 1

    def test_same_registration_is_idempotent_conflict_raises(self):
        index = BucketIndex()
        index.register(BucketSpec("u", 0.0, 100.0, 4))
        index.register(BucketSpec("u", 0.0, 100.0, 4))  # no-op
        with pytest.raises(ValueError):
            index.register(BucketSpec("u", 0.0, 100.0, 8))


class TestBucketTreeNames:
    def test_tree_name_is_canonical_and_site_unqualified(self):
        bucket = Bucket("CPU_utilization", 12.5, 25.0, index=1,
                        first=False, last=False)
        assert bucket.tree == "CPU_utilization[12.5,25)"
        assert bucket.label == bucket.tree
