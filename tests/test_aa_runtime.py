"""Unit tests for active attributes and the AA runtime."""

import pytest

from repro.aa.runtime import AARuntime, ActiveAttribute, HANDLER_NAMES, compile_source


PASSWORD_SOURCE = """
AA = {NodeId = 27, Password = "secret"}

function onGet(caller, payload)
  if payload == AA.Password then
    return AA.NodeId
  end
  return nil
end
"""


class TestActiveAttribute:
    def test_plain_attribute_without_handlers(self):
        attribute = ActiveAttribute("CPU", "Intel 3.40GHz")
        assert attribute.value == "Intel 3.40GHz"
        assert not attribute.has_handler("onGet")
        assert attribute.invoke("onGet", (1, 2), default="fallback") == "fallback"

    def test_figure5_password_handler(self):
        attribute = ActiveAttribute("CPU", "x", PASSWORD_SOURCE)
        assert attribute.invoke("onGet", ("joe", "secret")) == 27
        assert attribute.invoke("onGet", ("joe", "wrong")) is None

    def test_handlers_in_aa_table(self):
        source = """
        AA = {Value = 5}
        AA.onGet = function(caller, payload) return AA.Value * 2 end
        """
        attribute = ActiveAttribute("X", 5, source)
        assert attribute.has_handler("onGet")
        assert attribute.invoke("onGet", (0, 0)) == 10

    def test_handler_names_match_table_one(self):
        assert HANDLER_NAMES == (
            "onGet", "onSubscribe", "onUnsubscribe", "onDeliver", "onTimer"
        )

    def test_value_visible_to_handler(self):
        source = "function onGet(c, p) return AA.Value + 1 end"
        attribute = ActiveAttribute("X", 41, source)
        assert attribute.invoke("onGet", (0, 0)) == 42

    def test_handler_can_mutate_value(self):
        source = "function onDeliver(c, payload) AA.Value = payload return AA.Value end"
        attribute = ActiveAttribute("X", 1, source)
        attribute.invoke("onDeliver", (0, 99))
        assert attribute.value == 99

    def test_set_value_updates_handler_view(self):
        source = "function onGet(c, p) return AA.Value end"
        attribute = ActiveAttribute("X", 1, source)
        attribute.set_value(7)
        assert attribute.invoke("onGet", (0, 0)) == 7

    def test_errors_are_contained_and_logged(self):
        source = "function onGet(c, p) return nil + 1 end"
        attribute = ActiveAttribute("X", 1, source)
        assert attribute.invoke("onGet", (0, 0), default="safe") == "safe"
        assert len(attribute.errors) == 1
        assert attribute.errors[0].handler == "onGet"

    def test_budget_exhaustion_contained(self):
        source = "function onTimer() while true do end end"
        attribute = ActiveAttribute("X", 1, source, instruction_limit=500)
        assert attribute.invoke("onTimer") is None
        assert "budget" in attribute.errors[0].message

    def test_dict_payload_bridged_to_table(self):
        source = "function onGet(c, payload) return payload.password end"
        attribute = ActiveAttribute("X", 1, source)
        assert attribute.invoke("onGet", (0, {"password": "pw"})) == "pw"

    def test_list_return_bridged_to_python(self):
        source = "function onGet(c, p) return {1, 2, 3} end"
        attribute = ActiveAttribute("X", 1, source)
        assert attribute.invoke("onGet", (0, 0)) == [1, 2, 3]

    def test_chunk_cache_shares_asts(self):
        a = compile_source(PASSWORD_SOURCE)
        b = compile_source(PASSWORD_SOURCE)
        assert a is b


class TestAARuntime:
    def test_define_and_value(self):
        runtime = AARuntime()
        runtime.define("GPU", True)
        assert runtime.value("GPU") is True
        assert runtime.value("missing") is None

    def test_redefine_replaces(self):
        runtime = AARuntime()
        runtime.define("X", 1)
        runtime.define("X", 2)
        assert runtime.value("X") == 2

    def test_remove(self):
        runtime = AARuntime()
        runtime.define("X", 1)
        assert runtime.remove("X")
        assert not runtime.remove("X")

    def test_set_value_creates_if_missing(self):
        runtime = AARuntime()
        runtime.set_value("fresh", 5)
        assert runtime.value("fresh") == 5

    def test_on_get_default_for_open_attribute(self):
        runtime = AARuntime()
        runtime.define("X", 10)
        assert runtime.on_get("X", "caller", None, default="open-value") == "open-value"

    def test_on_get_runs_handler(self):
        runtime = AARuntime()
        runtime.define("X", 10, "function onGet(c, p) return AA.Value end")
        assert runtime.on_get("X", "caller") == 10

    def test_on_get_missing_attribute_is_none(self):
        assert AARuntime().on_get("nope", "caller") is None

    def test_subscribe_decisions(self):
        source = """
        function onSubscribe(caller, topic)
          if AA.Value < 10 then return topic end
          return nil
        end
        function onUnsubscribe(caller, topic)
          if AA.Value >= 10 then return topic end
          return nil
        end
        """
        runtime = AARuntime()
        runtime.define("util", 5.0, source)
        assert runtime.should_subscribe("util", 0, "low")
        assert not runtime.should_unsubscribe("util", 0, "low")
        runtime.set_value("util", 50.0)
        assert not runtime.should_subscribe("util", 0, "low")
        assert runtime.should_unsubscribe("util", 0, "low")

    def test_on_deliver_updates_policy_state(self):
        source = """
        AA = {Price = 10}
        function onDeliver(caller, payload)
          if payload.new_price ~= nil then AA.Price = payload.new_price end
          return AA.Price
        end
        function onGet(caller, payload)
          return AA.Price
        end
        """
        runtime = AARuntime()
        runtime.define("rent", 0, source)
        assert runtime.on_deliver("rent", "admin", {"new_price": 25}) == 25
        assert runtime.on_get("rent", "joe") == 25

    def test_on_timer(self):
        source = """
        AA = {Ticks = 0}
        function onTimer()
          AA.Ticks = AA.Ticks + 1
        end
        function onGet(c, p) return AA.Ticks end
        """
        runtime = AARuntime()
        runtime.define("X", 0, source)
        runtime.on_timer("X")
        runtime.on_timer("X")
        assert runtime.on_get("X", 0) == 2

    def test_globals_isolated_between_attributes(self):
        runtime = AARuntime()
        runtime.define("A", 1, "leak = 42\nfunction onGet(c, p) return leak end")
        runtime.define("B", 1, "function onGet(c, p) return leak end")
        assert runtime.on_get("A", 0) == 42
        assert runtime.on_get("B", 0) is None

    def test_stdlib_shared_but_not_writable_across_attributes(self):
        runtime = AARuntime()
        runtime.define("A", 1, "math = 'clobbered'\nfunction onGet(c,p) return math end")
        runtime.define("B", 1, "function onGet(c,p) return math.abs(-1) end")
        assert runtime.on_get("A", 0) == "clobbered"
        assert runtime.on_get("B", 0) == 1  # B's math is the real library

    def test_error_count_aggregates(self):
        runtime = AARuntime()
        runtime.define("A", 1, "function onGet(c, p) error('x') end")
        runtime.on_get("A", 0)
        runtime.on_get("A", 0)
        assert runtime.error_count() == 2
