"""Late/duplicate ``site_result`` orphan-release coverage (ISSUE 5).

When a ``site_result`` reply arrives after the coordinator gave up on
the attempt (the pending future is gone or already resolved), the reply
is an *orphan*: the nodes it names were reserved by the dead attempt and
would otherwise dangle until the hold window lapses.  The coordinator
must release each named reservation explicitly — but only the
*uncommitted* ones, because the same query may have succeeded through a
retried attempt and committed some of those very nodes.

These tests drive the branch directly by handing the coordinator a
crafted ``site_result`` message for a request id it is not waiting on.
"""

import pytest

from repro.core.plane import RBay, RBayConfig
from repro.net.network import Message


@pytest.fixture
def plane():
    return RBay(RBayConfig(seed=7, synthetic_sites=2, nodes_per_site=4,
                           jitter=False)).build()


def orphan_result(entries, query_id=42, request_id=999_999):
    """A site_result for a request the coordinator never heard of."""
    return Message(kind="pastry.direct", payload={
        "app": "query",
        "kind": "site_result",
        "data": {
            "request_id": request_id,
            "query_id": query_id,
            "entries": [{"address": address} for address in entries],
            "tree_sizes": {},
            "visited": len(entries),
        },
    })


def test_orphan_reply_releases_every_uncommitted_entry(plane):
    home = plane.nodes[0]
    first, second = plane.nodes[1], plane.nodes[2]
    first.reservation.try_reserve(42)
    second.reservation.try_reserve(42)

    home.apps["query"].host_message(
        home, orphan_result([first.address, second.address]))
    plane.sim.run()

    assert first.reservation.is_free()
    assert second.reservation.is_free()
    assert plane.counters.get("query.orphan_release") == 1


def test_orphan_release_spares_committed_leases(plane):
    """The retried attempt won: the customer's lease must survive the
    stale attempt's cleanup (regression for the blanket-release bug)."""
    home = plane.nodes[0]
    committed, uncommitted = plane.nodes[1], plane.nodes[2]
    committed.reservation.try_reserve(42)
    committed.reservation.commit(42, lease_ms=60_000.0)
    uncommitted.reservation.try_reserve(42)

    home.apps["query"].host_message(
        home, orphan_result([committed.address, uncommitted.address]))
    plane.sim.run()

    assert committed.reservation.holder() == 42
    assert committed.reservation.committed
    assert uncommitted.reservation.is_free()
    assert plane.counters.get("query.orphan_release") == 1


def test_duplicate_orphan_reply_does_not_double_release(plane):
    """A retransmitted orphan reply counts again but releases nothing new:
    no resurrection, no revocation of the surviving lease."""
    home = plane.nodes[0]
    committed, uncommitted = plane.nodes[1], plane.nodes[2]
    committed.reservation.try_reserve(42)
    committed.reservation.commit(42, lease_ms=60_000.0)
    uncommitted.reservation.try_reserve(42)

    duplicate = orphan_result([committed.address, uncommitted.address])
    home.apps["query"].host_message(home, duplicate)
    plane.sim.run()
    home.apps["query"].host_message(home, duplicate)
    plane.sim.run()

    assert plane.counters.get("query.orphan_release") == 2
    assert committed.reservation.holder() == 42
    assert committed.reservation.committed
    assert uncommitted.reservation.is_free()


def test_orphan_release_is_query_scoped(plane):
    """A stale reply naming a node now reserved by a *different* query
    must not release the new holder."""
    home = plane.nodes[0]
    target = plane.nodes[1]
    target.reservation.try_reserve(77)  # a newer query holds the node

    home.apps["query"].host_message(home, orphan_result([target.address],
                                                        query_id=42))
    plane.sim.run()

    assert target.reservation.holder() == 77


def test_empty_orphan_reply_releases_nothing(plane):
    home = plane.nodes[0]
    home.apps["query"].host_message(home, orphan_result([]))
    plane.sim.run()
    assert plane.counters.get("query.orphan_release") == 0
