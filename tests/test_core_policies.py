"""Unit tests for the canned policy handlers (motivating scenarios of §I)."""

import pytest

from repro.aa.runtime import ActiveAttribute
from repro.core.policies import (
    acl_policy,
    credit_policy,
    expiring_share_policy,
    open_policy,
    password_policy,
    rental_price_policy,
    time_window_policy,
)


def gate(source):
    return ActiveAttribute("access", 0, source)


class TestOpenPolicy:
    def test_always_exposes(self):
        attribute = gate(open_policy(42))
        assert attribute.invoke("onGet", ("anyone", {})) == 42


class TestPasswordPolicy:
    def test_correct_password(self):
        attribute = gate(password_policy(27, "s3cret"))
        assert attribute.invoke("onGet", ("joe", {"password": "s3cret"})) == 27

    def test_wrong_password(self):
        attribute = gate(password_policy(27, "s3cret"))
        assert attribute.invoke("onGet", ("joe", {"password": "nope"})) is None

    def test_missing_payload(self):
        attribute = gate(password_policy(27, "s3cret"))
        assert attribute.invoke("onGet", ("joe", None)) is None

    def test_password_with_quotes_escaped(self):
        attribute = gate(password_policy(1, 'pa"ss'))
        assert attribute.invoke("onGet", ("joe", {"password": 'pa"ss'})) == 1


class TestTimeWindowPolicy:
    """Grace's policy: resources available only after 10 PM (§I)."""

    def test_inside_window(self):
        attribute = gate(time_window_policy(5, 9, 17))
        assert attribute.invoke("onGet", ("joe", {"hour": 12})) == 5

    def test_outside_window(self):
        attribute = gate(time_window_policy(5, 9, 17))
        assert attribute.invoke("onGet", ("joe", {"hour": 20})) is None

    def test_overnight_window_wraps(self):
        grace = gate(time_window_policy(5, 22, 6))  # 10 PM – 6 AM
        assert grace.invoke("onGet", ("joe", {"hour": 23})) == 5
        assert grace.invoke("onGet", ("joe", {"hour": 3})) == 5
        assert grace.invoke("onGet", ("joe", {"hour": 12})) is None

    def test_boundary_hours(self):
        attribute = gate(time_window_policy(5, 9, 17))
        assert attribute.invoke("onGet", ("joe", {"hour": 9})) == 5
        assert attribute.invoke("onGet", ("joe", {"hour": 17})) is None

    def test_missing_hour_denies(self):
        attribute = gate(time_window_policy(5, 9, 17))
        assert attribute.invoke("onGet", ("joe", {})) is None


class TestAclPolicy:
    """James's policy: an access-control model (§I)."""

    def test_allowed_caller(self):
        attribute = gate(acl_policy(7, ["alice", "bob"]))
        assert attribute.invoke("onGet", ("alice", {})) == 7

    def test_denied_caller(self):
        attribute = gate(acl_policy(7, ["alice"]))
        assert attribute.invoke("onGet", ("mallory", {})) is None

    def test_empty_acl_denies_everyone(self):
        attribute = gate(acl_policy(7, []))
        assert attribute.invoke("onGet", ("alice", {})) is None


class TestCreditPolicy:
    """Kevin's policy: good history logs required (§I)."""

    def test_sufficient_credit(self):
        attribute = gate(credit_policy(9, 0.8))
        assert attribute.invoke("onGet", ("joe", {"credit": 0.9})) == 9

    def test_insufficient_credit(self):
        attribute = gate(credit_policy(9, 0.8))
        assert attribute.invoke("onGet", ("joe", {"credit": 0.5})) is None

    def test_exact_threshold_passes(self):
        attribute = gate(credit_policy(9, 0.8))
        assert attribute.invoke("onGet", ("joe", {"credit": 0.8})) == 9

    def test_missing_credit_denies(self):
        attribute = gate(credit_policy(9, 0.8))
        assert attribute.invoke("onGet", ("joe", {})) is None


class TestRentalPricePolicy:
    def test_budget_meets_price(self):
        attribute = gate(rental_price_policy(3, 10.0))
        assert attribute.invoke("onGet", ("joe", {"budget": 15.0})) == 3
        assert attribute.invoke("onGet", ("joe", {"budget": 5.0})) is None

    def test_price_change_via_deliver(self):
        attribute = gate(rental_price_policy(3, 10.0))
        attribute.invoke("onDeliver", ("admin", {"new_price": 4.0}))
        assert attribute.invoke("onGet", ("joe", {"budget": 5.0})) == 3


class TestExpiringSharePolicy:
    def test_before_deadline(self):
        attribute = gate(expiring_share_policy(2, 1000.0))
        assert attribute.invoke("onGet", ("joe", {"now": 500.0})) == 2

    def test_after_deadline(self):
        attribute = gate(expiring_share_policy(2, 1000.0))
        assert attribute.invoke("onGet", ("joe", {"now": 1500.0})) is None

    def test_extension_via_deliver(self):
        attribute = gate(expiring_share_policy(2, 1000.0))
        attribute.invoke("onDeliver", ("admin", {"new_expiration": 9000.0}))
        assert attribute.invoke("onGet", ("joe", {"now": 1500.0})) == 2


class TestPolicyHygiene:
    def test_no_policy_leaks_handler_errors(self):
        for source in (
            open_policy(1),
            password_policy(1, "x"),
            time_window_policy(1, 0, 24),
            acl_policy(1, ["a"]),
            credit_policy(1, 0.5),
            rental_price_policy(1, 1.0),
            expiring_share_policy(1, 1.0),
        ):
            attribute = gate(source)
            attribute.invoke("onGet", ("x", {"password": "p", "hour": 1,
                                             "credit": 1.0, "budget": 1.0,
                                             "now": 0.0}))
            assert attribute.errors == [], source
