"""The frozen public API: import surface, facade round-trip, removals."""

import dataclasses

import pytest

import repro
from repro import QueryOptions, QueryResult, RBay, RBayConfig
from repro.query.sql import parse_query
from repro.workloads.generator import FederationWorkload, WorkloadSpec


class TestImportSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_dir_advertises_the_surface(self):
        listed = dir(repro)
        for name in repro.__all__:
            assert name in listed

    def test_unknown_name_raises_attribute_error(self):
        with pytest.raises(AttributeError):
            repro.NoSuchExport

    def test_version_is_a_plain_string(self):
        assert repro.__version__ == "1.0.0"

    def test_query_package_all_resolves(self):
        import repro.query as query_pkg

        for name in query_pkg.__all__:
            assert getattr(query_pkg, name) is not None


@pytest.fixture(scope="module")
def small_plane():
    """A dressed 2-site synthetic plane for facade round-trips."""
    plane = RBay(RBayConfig(seed=11, nodes_per_site=8, synthetic_sites=2,
                            jitter=False, query_window=2)).build()
    workload = FederationWorkload(plane, WorkloadSpec(
        gate_policies=False, utilization_thresholds=(),
        active_subscriptions=False)).apply()
    plane.sim.run()
    return plane, workload


class TestFacadeRoundTrip:
    def test_query_returns_frozen_result(self, small_plane):
        plane, workload = small_plane
        counts = workload.site_instance_population("Site000")
        itype = max(counts, key=counts.get)
        result = plane.query(
            f"SELECT 1 FROM * WHERE instance_type = '{itype}';",
            options=QueryOptions(origin="Site000", caller="api-test"))
        assert isinstance(result, QueryResult)
        assert result.satisfied and len(result.entries) == 1
        assert result.entries[0]["site"] in ("Site000", "Site001")
        assert result.latency_ms > 0.0
        with pytest.raises(dataclasses.FrozenInstanceError):
            result.satisfied = False
        # Give the node back so later tests see a clean plane.
        home = plane.site_nodes("Site000")[0]
        for entry in result.entries:
            home.send_app(entry["address"], "query", "release",
                          {"query_id": result.query_id})
        plane.sim.run()

    def test_submit_admits_through_the_window(self, small_plane):
        plane, workload = small_plane
        counts = workload.site_instance_population("Site001")
        itype = max(counts, key=counts.get)
        sql = f"SELECT 1 FROM Site001 WHERE instance_type = '{itype}';"
        admitted_before = plane.admission.admitted
        futures = [plane.submit(sql, options=QueryOptions(
            origin="Site001", caller=f"burst-{i}")) for i in range(4)]
        # window=2: the other two wait in FIFO order.
        assert plane.admission.in_flight == 2
        assert plane.admission.queued == 2
        results = [f.result() for f in futures]
        assert plane.admission.admitted == admitted_before + 4
        assert plane.admission.in_flight == 0
        for result in results:
            home = plane.site_nodes("Site001")[0]
            for entry in result.entries:
                home.send_app(entry["address"], "query", "release",
                              {"query_id": result.query_id})
        plane.sim.run()

    def test_options_k_overrides_the_parsed_k(self, small_plane):
        plane, workload = small_plane
        counts = workload.site_instance_population("Site000")
        itype = max(counts, key=counts.get)
        result = plane.query(
            f"SELECT 99 FROM Site000 WHERE instance_type = '{itype}';",
            options=QueryOptions(origin="Site000", k=1))
        assert result.requested == 1


class TestOptionsAndResultTypes:
    def test_query_options_frozen_and_keyword_only(self):
        opts = QueryOptions(caller="x", deadline_ms=100.0)
        with pytest.raises(dataclasses.FrozenInstanceError):
            opts.caller = "y"
        with pytest.raises(TypeError):
            QueryOptions({"payload": True})  # positional rejected

    def test_query_options_defaults(self):
        opts = QueryOptions()
        assert opts.payload is None and opts.caller is None
        assert opts.deadline_ms is None and opts.retries is None
        assert opts.k is None and opts.origin is None

    def test_query_result_defaults_are_empty_tuples(self):
        result = QueryResult(query_id=1)
        assert result.entries == ()
        assert result.sites_queried == ()
        assert result.node_ids() == []


class TestRetiredShims:
    """The pre-1.0 deprecation shims are gone, not just discouraged."""

    def test_public_query_context_name_is_gone(self):
        import repro.query.executor as executor

        assert not hasattr(executor, "QueryContext")
        assert "QueryContext" not in repro.__all__

    def test_legacy_execute_kwargs_are_rejected(self, small_plane):
        plane, workload = small_plane
        counts = workload.site_instance_population("Site000")
        itype = max(counts, key=counts.get)
        home = plane.site_nodes("Site000")[0]
        app = home.apps["query"]
        query = parse_query(
            f"SELECT 1 FROM Site000 WHERE instance_type = '{itype}';")
        for kwargs in ({"caller": "legacy"}, {"timeout": 5_000.0},
                       {"payload": {"x": 1}}):
            with pytest.raises(TypeError):
                app.execute(home, query, **kwargs)

    def test_options_bundle_is_the_only_entry(self, small_plane):
        plane, workload = small_plane
        counts = workload.site_instance_population("Site000")
        itype = max(counts, key=counts.get)
        home = plane.site_nodes("Site000")[0]
        app = home.apps["query"]
        query = parse_query(
            f"SELECT 1 FROM Site000 WHERE instance_type = '{itype}';")
        future = app.execute(home, query, QueryOptions(
            caller="options", deadline_ms=5_000.0))
        result = future.result()
        assert isinstance(result, QueryResult)
        for entry in result.entries:
            home.send_app(entry["address"], "query", "release",
                          {"query_id": result.query_id})
        plane.sim.run()
