"""Integration tests for SiteAdmin and Customer behaviour."""

import pytest

from repro.core.naming import site_tree
from repro.core.plane import RBay, RBayConfig
from repro.core.policies import rental_price_policy


@pytest.fixture
def plane():
    plane = RBay(RBayConfig(seed=31, nodes_per_site=10, jitter=False)).build()
    plane.sim.run()
    return plane


class TestAdminPosting:
    def test_post_resource_makes_node_discoverable(self, plane):
        admin = plane.admin("Virginia")
        node = plane.site_nodes("Virginia")[0]
        admin.post_resource(node, "Matlab", "9.0")
        plane.sim.run()
        customer = plane.make_customer("joe", "Virginia")
        result = customer.query_once(
            "SELECT 1 FROM Virginia WHERE Matlab = '9.0';").result()
        assert result.satisfied
        assert result.entries[0]["address"] == node.address

    def test_hide_resource_withdraws_it(self, plane):
        admin = plane.admin("Oregon")
        node = plane.site_nodes("Oregon")[0]
        admin.post_resource(node, "Matlab", "9.0")
        plane.sim.run()
        admin.hide_resource(node, "Matlab", value="9.0")
        plane.sim.run()
        customer = plane.make_customer("joe", "Oregon")
        result = customer.query_once(
            "SELECT 1 FROM Oregon WHERE Matlab = '9.0';").result()
        assert not result.entries

    def test_admin_cannot_touch_foreign_site(self, plane):
        admin = plane.admin("Virginia")
        foreign = plane.site_nodes("Tokyo")[0]
        with pytest.raises(PermissionError):
            admin.post_resource(foreign, "Matlab", "9.0")

    def test_membership_predicate_respected(self, plane):
        admin = plane.admin("Ireland")
        node = plane.site_nodes("Ireland")[0]
        admin.post_resource(node, "licenses", 0,
                            tree="licenses-available",
                            membership=lambda v: (v or 0) > 0)
        plane.sim.run()
        topic = site_tree("Ireland", "licenses-available")
        assert plane.tree_size(topic, via=node, scope="site") == 0
        node.update_attribute("licenses", 3)
        node.maintenance_tick()
        plane.sim.run()
        assert plane.tree_size(topic, via=node, scope="site") == 1


class TestAdminCommands:
    def test_broadcast_triggers_on_deliver(self, plane):
        admin = plane.admin("Virginia")
        nodes = plane.site_nodes("Virginia")[:4]
        for node in nodes:
            node.define_attribute("rent", 0, rental_price_policy(node.node_id.value, 10.0))
            admin.post_resource(node, "for_rent", True, tree="for_rent")
        plane.sim.run()
        admin.broadcast_command(nodes[0], "for_rent", "rent", {"new_price": 4.0})
        plane.sim.run()
        for node in nodes:
            attribute = node.aa.get("rent")
            assert attribute.aa_table.get("Price") == 4.0

    def test_price_change_affects_subsequent_queries(self, plane):
        admin = plane.admin("Tokyo")
        node = plane.site_nodes("Tokyo")[0]
        admin.set_gate_policy(node, rental_price_policy(node.node_id.value, 100.0))
        admin.post_resource(node, "for_rent", True, tree="for_rent")
        plane.sim.run()
        customer = plane.make_customer("joe", "Tokyo")
        sql = "SELECT 1 FROM Tokyo WHERE for_rent = true;"
        result = customer.query_once(sql, payload={"budget": 50.0}).result()
        assert not result.entries  # too expensive
        admin.broadcast_command(node, "for_rent", "access", {"new_price": 30.0})
        plane.sim.run()
        result = customer.query_once(sql, payload={"budget": 50.0}).result()
        assert result.satisfied


class TestCustomer:
    def test_release_all_frees_leases(self, plane):
        admin = plane.admin("Sydney")
        node = plane.site_nodes("Sydney")[0]
        admin.post_resource(node, "GPU", True)
        plane.sim.run()
        customer = plane.make_customer("joe", "Sydney")
        result = customer.query_once("SELECT 1 FROM Sydney WHERE GPU = true;").result()
        assert result.satisfied
        plane.sim.run()
        assert node.reservation.committed
        customer.release_all(result)
        plane.sim.run()
        assert node.reservation.is_free()

    def test_customer_home_is_in_requested_site(self, plane):
        customer = plane.make_customer("joe", "Singapore")
        assert customer.home.site.name == "Singapore"

    def test_unknown_site_rejected(self, plane):
        with pytest.raises(KeyError):
            plane.make_customer("joe", "Mars")

    def test_request_resolves_even_when_nothing_matches(self, plane):
        customer = plane.make_customer("joe", "Virginia", max_attempts=2)
        outcome = customer.request(
            "SELECT 1 FROM Virginia WHERE nothing = 'ever';").result()
        assert outcome.gave_up and not outcome.satisfied
        assert outcome.attempts == 2
