"""Unit tests for the Luette parser."""

import pytest

from repro.aa import ast_nodes as ast
from repro.aa.errors import LuetteSyntaxError
from repro.aa.parser import parse


def only_statement(source):
    chunk = parse(source)
    assert len(chunk.statements) == 1
    return chunk.statements[0]


class TestExpressions:
    def expr(self, source):
        stmt = only_statement(f"return {source}")
        assert isinstance(stmt, ast.Return)
        return stmt.value

    def test_literals(self):
        assert self.expr("nil").value is None
        assert self.expr("true").value is True
        assert self.expr("false").value is False
        assert self.expr("42").value == 42.0
        assert self.expr("'hi'").value == "hi"

    def test_precedence_mul_over_add(self):
        node = self.expr("1 + 2 * 3")
        assert node.op == "+"
        assert node.right.op == "*"

    def test_left_associativity(self):
        node = self.expr("10 - 4 - 3")
        assert node.op == "-"
        assert node.left.op == "-"

    def test_power_right_associative(self):
        node = self.expr("2 ^ 3 ^ 2")
        assert node.op == "^"
        assert node.right.op == "^"

    def test_concat_right_associative(self):
        node = self.expr("'a' .. 'b' .. 'c'")
        assert node.op == ".."
        assert node.right.op == ".."

    def test_comparison_below_and_or(self):
        node = self.expr("a < b and c > d")
        assert node.op == "and"
        assert node.left.op == "<" and node.right.op == ">"

    def test_or_binds_loosest(self):
        node = self.expr("a and b or c")
        assert node.op == "or"
        assert node.left.op == "and"

    def test_unary_not_above_comparison(self):
        node = self.expr("not a == b")
        assert node.op == "=="
        assert isinstance(node.left, ast.UnOp) and node.left.op == "not"

    def test_unary_minus_below_power(self):
        node = self.expr("-a ^ 2")
        assert isinstance(node, ast.UnOp) and node.op == "-"
        assert node.operand.op == "^"

    def test_parentheses_override(self):
        node = self.expr("(1 + 2) * 3")
        assert node.op == "*"
        assert node.left.op == "+"

    def test_index_chain(self):
        node = self.expr("a.b.c")
        assert isinstance(node, ast.Index)
        assert node.key.value == "c"
        assert isinstance(node.obj, ast.Index)

    def test_bracket_index(self):
        node = self.expr("t[1 + 2]")
        assert isinstance(node, ast.Index)
        assert isinstance(node.key, ast.BinOp)

    def test_call_with_args(self):
        node = self.expr("f(1, 'x', g())")
        assert isinstance(node, ast.Call)
        assert len(node.args) == 3
        assert isinstance(node.args[2], ast.Call)

    def test_method_style_call_on_index(self):
        node = self.expr("string.sub(s, 1, 3)")
        assert isinstance(node, ast.Call)
        assert isinstance(node.func, ast.Index)

    def test_anonymous_function(self):
        node = self.expr("function(x) return x end")
        assert isinstance(node, ast.FunctionExpr)
        assert node.params == ["x"]

    def test_length_operator(self):
        node = self.expr("#t")
        assert isinstance(node, ast.UnOp) and node.op == "#"


class TestTables:
    def table(self, source):
        node = only_statement(f"return {source}").value
        assert isinstance(node, ast.TableConstructor)
        return node

    def test_array_part(self):
        node = self.table("{1, 2, 3}")
        assert len(node.array_items) == 3 and not node.keyed_items

    def test_keyed_part(self):
        node = self.table("{x = 1, ['y'] = 2}")
        assert len(node.keyed_items) == 2

    def test_mixed_with_semicolons(self):
        node = self.table("{1; x = 2; 3}")
        assert len(node.array_items) == 2 and len(node.keyed_items) == 1

    def test_trailing_comma(self):
        node = self.table("{1, 2,}")
        assert len(node.array_items) == 2

    def test_nested_tables(self):
        node = self.table("{inner = {1}}")
        assert isinstance(node.keyed_items[0][1], ast.TableConstructor)


class TestStatements:
    def test_local_multi_assignment(self):
        stmt = only_statement("local a, b = 1, 2")
        assert isinstance(stmt, ast.LocalAssign)
        assert stmt.names == ["a", "b"] and len(stmt.values) == 2

    def test_local_without_value(self):
        stmt = only_statement("local a")
        assert stmt.values == []

    def test_global_assignment(self):
        stmt = only_statement("x = 5")
        assert isinstance(stmt, ast.Assign)

    def test_parallel_swap(self):
        stmt = only_statement("a, b = b, a")
        assert len(stmt.targets) == 2 and len(stmt.values) == 2

    def test_index_assignment(self):
        stmt = only_statement("t.x = 1")
        assert isinstance(stmt.targets[0], ast.Index)

    def test_cannot_assign_to_call(self):
        with pytest.raises(LuetteSyntaxError):
            parse("f() = 1")

    def test_expression_statement_must_be_call(self):
        with pytest.raises(LuetteSyntaxError):
            parse("1 + 2")

    def test_if_elseif_else(self):
        stmt = only_statement("if a then x = 1 elseif b then x = 2 else x = 3 end")
        assert isinstance(stmt, ast.If)
        assert len(stmt.arms) == 2
        assert stmt.orelse is not None

    def test_while(self):
        stmt = only_statement("while a do b = 1 end")
        assert isinstance(stmt, ast.While)

    def test_numeric_for_with_step(self):
        stmt = only_statement("for i = 1, 10, 2 do x = i end")
        assert isinstance(stmt, ast.NumericFor)
        assert stmt.step is not None

    def test_generic_for(self):
        stmt = only_statement("for k, v in pairs(t) do x = k end")
        assert isinstance(stmt, ast.GenericFor)
        assert stmt.names == ["k", "v"]

    def test_function_declaration(self):
        stmt = only_statement("function f(a, b) return a end")
        assert isinstance(stmt, ast.FunctionDecl)
        assert stmt.func.params == ["a", "b"]
        assert not stmt.is_local

    def test_dotted_function_declaration(self):
        stmt = only_statement("function t.f() end")
        assert isinstance(stmt.target, ast.Index)

    def test_local_function(self):
        stmt = only_statement("local function f() end")
        assert stmt.is_local

    def test_local_function_cannot_be_dotted(self):
        with pytest.raises(LuetteSyntaxError):
            parse("local function a.b() end")

    def test_return_ends_block(self):
        chunk = parse("return 1")
        assert isinstance(chunk.statements[-1], ast.Return)

    def test_bare_return(self):
        stmt = only_statement("return")
        assert stmt.value is None

    def test_break(self):
        chunk = parse("while true do break end")
        loop = chunk.statements[0]
        assert isinstance(loop.body.statements[-1], ast.Break)

    def test_do_block(self):
        stmt = only_statement("do x = 1 end")
        assert isinstance(stmt, ast.Block)

    def test_semicolons_skipped(self):
        chunk = parse("x = 1; y = 2;;")
        assert len(chunk.statements) == 2

    def test_trailing_garbage_rejected(self):
        with pytest.raises(LuetteSyntaxError):
            parse("x = 1 end")

    def test_missing_end_rejected(self):
        with pytest.raises(LuetteSyntaxError):
            parse("if a then x = 1")

    def test_missing_then_rejected(self):
        with pytest.raises(LuetteSyntaxError):
            parse("if a x = 1 end")
