"""Message loss resilience and whole-system determinism."""

import pytest

from repro.core.plane import RBay, RBayConfig
from repro.workloads.generator import FederationWorkload, WorkloadSpec
from repro.workloads.queries import QueryWorkload


class TestDeterminism:
    """Two planes with the same seed must behave identically — the property
    every experiment in benchmarks/ depends on."""

    def build_and_run(self, seed):
        plane = RBay(RBayConfig(seed=seed, nodes_per_site=10, jitter=True)).build()
        workload = FederationWorkload(plane, WorkloadSpec(password="pw")).apply()
        plane.sim.run()
        generator = QueryWorkload(plane.streams.stream("det"),
                                  [s.name for s in plane.registry], k=1)
        customer = plane.make_customer("det-user", "Virginia")
        outcomes = []
        for sql, payload in generator.stream("Virginia", 4, 12):
            result = customer.query_once(sql, payload=payload).result()
            outcomes.append((sql, result.satisfied, tuple(result.node_ids()),
                             round(result.latency_ms, 6)))
        return outcomes

    def test_identical_seeds_identical_outcomes(self):
        assert self.build_and_run(1234) == self.build_and_run(1234)

    def test_different_seeds_differ(self):
        a = self.build_and_run(1)
        b = self.build_and_run(2)
        assert a != b


class TestLossResilience:
    @pytest.fixture
    def lossy_plane(self):
        plane = RBay(RBayConfig(seed=77, nodes_per_site=12, jitter=False,
                                loss_rate=0.02)).build()
        workload = FederationWorkload(plane, WorkloadSpec(password="pw")).apply()
        plane.sim.run()
        return plane, workload

    def test_network_actually_drops(self, lossy_plane):
        plane, _ = lossy_plane
        assert plane.network.messages_dropped > 0

    def test_queries_usually_succeed_under_light_loss(self, lossy_plane):
        plane, workload = lossy_plane
        counts = workload.site_instance_population("Virginia")
        itype = max(counts, key=counts.get)
        customer = plane.make_customer("lossy", "Virginia", max_attempts=5)
        wins = 0
        for _ in range(10):
            outcome = customer.request(
                f"SELECT 1 FROM Virginia WHERE instance_type = '{itype}';",
                payload={"password": "pw"},
            ).result()
            wins += outcome.satisfied
            if outcome.satisfied:
                customer.release_all(outcome.result)
                plane.sim.run()
        assert wins >= 8  # light loss, local site: the retry loop covers it

    def test_multi_site_query_completes_despite_drops(self, lossy_plane):
        plane, workload = lossy_plane
        counts = workload.instance_population()
        itype = max(counts, key=counts.get)
        customer = plane.make_customer("lossy2", "Singapore")
        result = customer.query_once(
            f"SELECT 2 FROM * WHERE instance_type = '{itype}';",
            payload={"password": "pw"},
        ).result()
        # The query resolves (timeouts bound lost sub-requests) even if a
        # site's answer was dropped.
        assert result.finished_at >= result.started_at

    def test_heavy_loss_still_terminates(self):
        plane = RBay(RBayConfig(seed=78, nodes_per_site=8, jitter=False,
                                loss_rate=0.25)).build()
        workload = FederationWorkload(plane, WorkloadSpec(password="pw")).apply()
        plane.sim.run()
        customer = plane.make_customer("storm", "Tokyo", max_attempts=2)
        outcome = customer.request(
            "SELECT 1 FROM * WHERE instance_type = 'c3.large';",
            payload={"password": "pw"},
        ).result()
        # No hang: the request resolved one way or the other.
        assert outcome.attempts >= 1

    def test_aggregates_converge_after_loss_stops(self):
        plane = RBay(RBayConfig(seed=79, nodes_per_site=10, jitter=False,
                                loss_rate=0.1, maintenance_interval_ms=500.0)).build()
        plane.sim.run()
        admin = plane.admin("Oregon")
        nodes = plane.site_nodes("Oregon")
        for node in nodes:
            admin.post_resource(node, "GPU", True)
        plane.sim.run()
        # Stop the loss, then let maintenance re-push aggregation state.
        plane.network.loss_rate = 0.0
        plane.start_maintenance()
        plane.settle(6_000.0)
        plane.stop_maintenance()
        from repro.core.naming import site_tree

        size = plane.tree_size(site_tree("Oregon", "GPU"), via=nodes[0], scope="site")
        assert size == len(nodes)
