"""Unit tests for named random streams."""

from repro.sim.random_streams import RandomStreams


def test_same_seed_same_sequence():
    a = RandomStreams(5).stream("x")
    b = RandomStreams(5).stream("x")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_are_independent():
    streams = RandomStreams(5)
    a = [streams.stream("a").random() for _ in range(5)]
    b = [streams.stream("b").random() for _ in range(5)]
    assert a != b


def test_different_seeds_differ():
    a = RandomStreams(1).stream("x").random()
    b = RandomStreams(2).stream("x").random()
    assert a != b


def test_stream_is_cached():
    streams = RandomStreams(0)
    assert streams.stream("x") is streams.stream("x")


def test_draws_in_one_stream_do_not_affect_another():
    one = RandomStreams(9)
    two = RandomStreams(9)
    one.stream("noise").random()  # extra draw only in `one`
    assert one.stream("signal").random() == two.stream("signal").random()


def test_fork_is_deterministic():
    a = RandomStreams(3).fork("site-a").stream("x").random()
    b = RandomStreams(3).fork("site-a").stream("x").random()
    assert a == b


def test_fork_differs_from_parent():
    parent = RandomStreams(3)
    child = parent.fork("site-a")
    assert parent.stream("x").random() != child.stream("x").random()


def test_master_seed_property():
    assert RandomStreams(77).master_seed == 77
