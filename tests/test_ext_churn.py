"""Tests for churn tracking, prediction, and QoS-aware selection."""

import pytest

from repro.core.plane import RBay, RBayConfig
from repro.ext.churn import ChurnPredictor, ChurnTracker
from repro.ext.crypto_auth import KeyPair, auth_payload, keyed_gate_policy, sign_challenge
from repro.ext.selection import QoSSelector, StabilityAwareCustomer
from repro.sim.engine import Simulator


@pytest.fixture
def tracker(sim):
    return ChurnTracker(sim)


class TestHistory:
    def test_fresh_node_has_full_uptime(self, sim, tracker):
        tracker.mark_up(1)
        sim.schedule(1_000.0, lambda: None)
        sim.run()
        assert tracker.history(1).uptime_ratio(sim.now) == pytest.approx(1.0)

    def test_downtime_reduces_ratio(self, sim, tracker):
        tracker.mark_up(1)
        sim.schedule(500.0, tracker.mark_down, 1)
        sim.schedule(1_000.0, lambda: None)
        sim.run()
        assert tracker.history(1).uptime_ratio(sim.now) == pytest.approx(0.5)

    def test_flap_counting(self, sim, tracker):
        tracker.mark_up(1)
        for t in (100.0, 300.0):
            sim.schedule(t, tracker.mark_down, 1)
            sim.schedule(t + 100.0, tracker.mark_up, 1)
        sim.run()
        assert tracker.history(1).flaps == 2

    def test_duplicate_marks_are_idempotent(self, sim, tracker):
        tracker.mark_up(1)
        tracker.mark_up(1)
        tracker.mark_down(1)
        tracker.mark_down(1)
        assert tracker.history(1).flaps == 1

    def test_lease_outcomes(self, tracker):
        tracker.record_lease_outcome(1, completed=True)
        tracker.record_lease_outcome(1, completed=False)
        history = tracker.history(1)
        assert history.lease_completions == 1
        assert history.lease_failures == 1

    def test_recovery_refreshes_last_up(self, sim, tracker):
        """Coming back up must stamp ``last_up`` with the recovery time —
        stability scoring reads it as 'seen alive this recently'."""
        tracker.mark_up(1)
        sim.schedule(400.0, tracker.mark_down, 1)
        sim.schedule(900.0, tracker.mark_up, 1)
        sim.schedule(2_000.0, lambda: None)
        sim.run()
        history = tracker.history(1)
        assert history.is_up()
        assert history.last_up == 900.0
        assert history.flaps == 1

    def test_observe_population(self, sim, tracker):
        class FakeNode:
            def __init__(self, address, alive):
                self.address = address
                self.alive = alive

        nodes = [FakeNode(1, True), FakeNode(2, False)]
        tracker.observe_population(nodes)
        assert tracker.history(1).is_up()
        nodes[0].alive = False
        tracker.observe_population(nodes)
        assert not tracker.history(1).is_up()
        assert tracker.history(1).flaps == 1


class TestPredictor:
    def test_unknown_node_gets_prior(self, tracker):
        predictor = ChurnPredictor(tracker, prior=0.4)
        assert predictor.stability(99) == 0.4

    def test_stable_node_scores_high(self, sim, tracker):
        tracker.mark_up(1)
        sim.schedule(10_000.0, lambda: None)
        sim.run()
        predictor = ChurnPredictor(tracker)
        assert predictor.stability(1) > 0.9

    def test_flappy_node_scores_low(self, sim, tracker):
        tracker.mark_up(1)
        tracker.mark_up(2)
        # Node 2 flaps every 100 ms for a while.
        for i in range(20):
            sim.schedule(100.0 * (2 * i + 1), tracker.mark_down, 2)
            sim.schedule(100.0 * (2 * i + 2), tracker.mark_up, 2)
        sim.schedule(10_000.0, lambda: None)
        sim.run()
        predictor = ChurnPredictor(tracker)
        assert predictor.stability(2) < predictor.stability(1)

    def test_broken_leases_reduce_score(self, sim, tracker):
        tracker.mark_up(1)
        tracker.mark_up(2)
        sim.schedule(10_000.0, lambda: None)
        sim.run()
        for _ in range(5):
            tracker.record_lease_outcome(1, completed=True)
            tracker.record_lease_outcome(2, completed=False)
        predictor = ChurnPredictor(tracker)
        assert predictor.stability(1) > predictor.stability(2)

    def test_scores_bounded(self, sim, tracker):
        tracker.mark_up(1)
        sim.run()
        predictor = ChurnPredictor(tracker)
        assert 0.0 <= predictor.stability(1) <= 1.0

    def test_rank_orders_by_stability(self, sim, tracker):
        tracker.mark_up(1)
        tracker.mark_up(2)
        sim.schedule(100.0, tracker.mark_down, 2)
        sim.schedule(5_000.0, lambda: None)
        sim.run()
        predictor = ChurnPredictor(tracker)
        assert predictor.rank([2, 1]) == [1, 2]


class TestQoSSelector:
    def make(self, sim, stabilities):
        tracker = ChurnTracker(sim)
        predictor = ChurnPredictor(tracker)
        predictor.stability = lambda address: stabilities.get(address, 0.5)
        return QoSSelector(predictor)

    def test_select_keeps_most_stable(self, sim):
        selector = self.make(sim, {1: 0.2, 2: 0.9, 3: 0.6})
        entries = [{"address": a} for a in (1, 2, 3)]
        kept, surplus = selector.select(entries, 2)
        assert [e["address"] for e in kept] == [2, 3]
        assert [e["address"] for e in surplus] == [1]

    def test_select_all_when_k_none(self, sim):
        selector = self.make(sim, {})
        entries = [{"address": a} for a in (1, 2)]
        kept, surplus = selector.select(entries, None)
        assert len(kept) == 2 and not surplus

    def test_blended_score_uses_order_value(self, sim):
        tracker = ChurnTracker(sim)
        selector = QoSSelector(ChurnPredictor(tracker), stability_weight=0.0)
        # With weight 0 the ranking is purely by order value (smaller better).
        entries = [{"address": 1, "order_value": 90.0},
                   {"address": 2, "order_value": 1.0}]
        kept, _ = selector.select(entries, 1)
        assert kept[0]["address"] == 2

    def test_invalid_weight_rejected(self, sim):
        with pytest.raises(ValueError):
            QoSSelector(ChurnPredictor(ChurnTracker(sim)), stability_weight=2.0)

    def test_negative_k_rejected(self, sim):
        # Regression: ordered[:k] with k < 0 silently kept all-but-|k|
        # entries instead of failing — a caller bug (e.g. a miscomputed
        # over-ask) looked like a successful partial selection.
        selector = self.make(sim, {1: 0.2, 2: 0.9, 3: 0.6})
        entries = [{"address": a} for a in (1, 2, 3)]
        with pytest.raises(ValueError, match="k must be >= 0"):
            selector.select(entries, -1)

    def test_zero_k_keeps_nothing(self, sim):
        selector = self.make(sim, {1: 0.2, 2: 0.9})
        entries = [{"address": a} for a in (1, 2)]
        kept, surplus = selector.select(entries, 0)
        assert kept == [] and len(surplus) == 2


class TestStabilityAwareCustomer:
    @pytest.fixture
    def plane(self):
        plane = RBay(RBayConfig(seed=71, nodes_per_site=12, jitter=False)).build()
        plane.sim.run()
        admin = plane.admin("Virginia")
        for node in plane.site_nodes("Virginia")[:8]:
            admin.post_resource(node, "GPU", True)
        plane.sim.run()
        return plane

    def test_keeps_k_most_stable_and_releases_rest(self, plane):
        tracker = ChurnTracker(plane.sim)
        predictor = ChurnPredictor(tracker)
        gpu_nodes = [n for n in plane.site_nodes("Virginia") if n.has_attribute("GPU")]
        # Give every GPU node history; make two of them flappy.
        for node in gpu_nodes:
            tracker.mark_up(node.address)
        flappy = {gpu_nodes[0].address, gpu_nodes[1].address}
        for address in flappy:
            for i in range(10):
                plane.sim.schedule(10.0 * (2 * i + 1), tracker.mark_down, address)
                plane.sim.schedule(10.0 * (2 * i + 2), tracker.mark_up, address)
        plane.settle(60_000.0)

        customer = StabilityAwareCustomer(
            "joe", plane.site_nodes("Virginia")[0],
            plane.streams.stream("qos"), QoSSelector(predictor), overask=3.0,
        )
        result = customer.query_stable(
            "SELECT 2 FROM Virginia WHERE GPU = true;").result()
        assert result.satisfied and len(result.entries) == 2
        chosen = {entry["address"] for entry in result.entries}
        assert not (chosen & flappy)  # flappy nodes were ranked out
        plane.sim.run()
        # Surplus reservations were released.
        held = [n for n in gpu_nodes if not n.reservation.is_free()]
        assert len(held) == 2

    def test_invalid_overask_rejected(self, plane):
        tracker = ChurnTracker(plane.sim)
        with pytest.raises(ValueError):
            StabilityAwareCustomer(
                "x", plane.nodes[0], plane.streams.stream("x"),
                QoSSelector(ChurnPredictor(tracker)), overask=0.5,
            )


class TestCryptoAuth:
    def test_sign_is_deterministic_and_keyed(self):
        alice = KeyPair.generate("alice", seed="s1")
        bob = KeyPair.generate("bob", seed="s1")
        assert sign_challenge(alice, "c") == sign_challenge(alice, "c")
        assert sign_challenge(alice, "c") != sign_challenge(bob, "c")
        assert sign_challenge(alice, "c1") != sign_challenge(alice, "c2")

    def test_gate_accepts_valid_tag(self):
        from repro.aa.runtime import ActiveAttribute

        alice = KeyPair.generate("alice", seed="s1")
        gate = ActiveAttribute("access", 0,
                               keyed_gate_policy(7, "node-7-challenge", [alice]))
        payload = auth_payload(alice, "node-7-challenge")
        assert gate.invoke("onGet", ("alice", payload)) == 7

    def test_gate_rejects_wrong_key(self):
        from repro.aa.runtime import ActiveAttribute

        alice = KeyPair.generate("alice", seed="s1")
        mallory = KeyPair.generate("alice", seed="attacker")  # forged identity
        gate = ActiveAttribute("access", 0,
                               keyed_gate_policy(7, "node-7-challenge", [alice]))
        payload = auth_payload(mallory, "node-7-challenge")
        assert gate.invoke("onGet", ("alice", payload)) is None

    def test_tag_does_not_replay_across_nodes(self):
        from repro.aa.runtime import ActiveAttribute

        alice = KeyPair.generate("alice", seed="s1")
        gate_a = ActiveAttribute("access", 0,
                                 keyed_gate_policy(1, "challenge-A", [alice]))
        gate_b = ActiveAttribute("access", 0,
                                 keyed_gate_policy(2, "challenge-B", [alice]))
        payload_for_a = auth_payload(alice, "challenge-A")
        assert gate_a.invoke("onGet", ("alice", payload_for_a)) == 1
        assert gate_b.invoke("onGet", ("alice", payload_for_a)) is None

    def test_unknown_principal_rejected(self):
        from repro.aa.runtime import ActiveAttribute

        alice = KeyPair.generate("alice", seed="s1")
        eve = KeyPair.generate("eve", seed="s2")
        gate = ActiveAttribute("access", 0,
                               keyed_gate_policy(7, "ch", [alice]))
        assert gate.invoke("onGet", ("eve", auth_payload(eve, "ch"))) is None

    def test_missing_payload_fields_rejected(self):
        from repro.aa.runtime import ActiveAttribute

        alice = KeyPair.generate("alice", seed="s1")
        gate = ActiveAttribute("access", 0,
                               keyed_gate_policy(7, "ch", [alice]))
        assert gate.invoke("onGet", ("alice", None)) is None
        assert gate.invoke("onGet", ("alice", {})) is None
        assert gate.invoke("onGet", ("alice", {"principal": "alice"})) is None

    def test_end_to_end_query_with_keyed_gate(self):
        plane = RBay(RBayConfig(seed=72, nodes_per_site=8, jitter=False)).build()
        plane.sim.run()
        admin = plane.admin("Tokyo")
        alice = KeyPair.generate("alice", seed="fed")
        node = plane.site_nodes("Tokyo")[0]
        challenge = f"node-{node.node_id.hex()[:8]}"
        admin.set_gate_policy(node, keyed_gate_policy(
            node.node_id.value, challenge, [alice]))
        admin.post_resource(node, "TPU", True)
        plane.sim.run()
        customer = plane.make_customer("alice", "Tokyo")
        good = customer.query_once("SELECT 1 FROM Tokyo WHERE TPU = true;",
                                   payload=auth_payload(alice, challenge)).result()
        assert good.satisfied
        customer.release_all(good)
        plane.sim.run()
        eve = KeyPair.generate("eve", seed="evil")
        bad = customer.query_once("SELECT 1 FROM Tokyo WHERE TPU = true;",
                                  payload=auth_payload(eve, challenge)).result()
        assert not bad.entries
