"""Exporter determinism and end-to-end tracing on a live 4-site plane.

Two claims from the observability plane's contract are pinned here:

* **Byte determinism** — two planes built from the same seed export
  byte-identical JSON and Chrome ``trace_event`` files (span ids come
  from per-recorder counters, dict keys are sorted, ordering is total).
* **Exact attribution** — on a real multi-site query the exported span
  tree covers every executed protocol step, and the critical-path
  segment durations sum to the measured end-to-end latency (within the
  1% acceptance bound; in practice exactly), retries and backoff waits
  included.
"""

import itertools
import json

import pytest

import repro.query.executor as executor_mod
from repro.core.plane import RBay, RBayConfig
from repro.faults import MessageRule
from repro.obs import critical_path, step_breakdown, to_chrome_trace, to_json
from repro.obs.spans import SpanRecorder
from repro.sim.engine import Simulator
from repro.workloads.generator import FederationWorkload, WorkloadSpec


def reset_protocol_ids():
    """Query/request ids are process-global; pin them so two same-seed
    runs in one process stay byte-comparable."""
    executor_mod._query_ids = itertools.count(1)
    executor_mod._request_ids = itertools.count(1)


def build_traced_plane(seed=424, jitter=False, tracing=True):
    plane = RBay(RBayConfig(
        seed=seed,
        synthetic_sites=4,
        nodes_per_site=5,
        jitter=jitter,
        tracing=tracing,
    )).build()
    workload = FederationWorkload(plane, WorkloadSpec(
        gate_policies=False, utilization_thresholds=())).apply()
    plane.sim.run()
    plane.settle(1_000.0)
    return plane, workload


def popular_type(workload, site):
    counts = workload.site_instance_population(site)
    return max(counts, key=counts.get)


def run_query(plane, workload, select=2, timeout=60_000.0):
    site = plane.registry[0].name
    sql = (f"SELECT {select} FROM * "
           f"WHERE instance_type = '{popular_type(workload, site)}';")
    customer = plane.make_customer("obs-test", site)
    result = customer.query_once(sql, timeout=timeout).result()
    plane.sim.run()
    return result


class TestExportDeterminism:
    def exports(self, seed):
        reset_protocol_ids()
        plane, workload = build_traced_plane(seed=seed, jitter=True)
        result = run_query(plane, workload)
        spans = plane.obs.recorder.spans()
        return result, to_json(spans), to_chrome_trace(spans)

    def test_same_seed_yields_identical_bytes(self):
        result_a, json_a, chrome_a = self.exports(2017)
        result_b, json_b, chrome_b = self.exports(2017)
        assert result_a.satisfied and result_b.satisfied
        assert json_a == json_b
        assert chrome_a == chrome_b

    def test_different_seed_yields_different_bytes(self):
        _, json_a, _ = self.exports(2017)
        _, json_b, _ = self.exports(2018)
        assert json_a != json_b


class TestJsonExport:
    def test_open_spans_keep_null_end(self):
        recorder = SpanRecorder(Simulator())
        recorder.start("open", category="test", site="A")
        payload = json.loads(to_json(recorder.spans()))
        assert payload[0]["end_ms"] is None
        assert payload[0]["name"] == "open"

    def test_spans_are_sorted_and_labels_jsonable(self):
        sim = Simulator()
        recorder = SpanRecorder(sim)
        recorder.instant("b", weird=object())
        recorder.instant("a", n=1)
        payload = json.loads(to_json(recorder.spans()))
        assert [p["name"] for p in payload] == ["b", "a"]  # by span id
        assert isinstance(payload[0]["labels"]["weird"], str)


class TestChromeExport:
    @pytest.fixture(scope="class")
    def document(self):
        plane, workload = build_traced_plane()
        result = run_query(plane, workload)
        assert result.satisfied
        return json.loads(to_chrome_trace(plane.obs.recorder.spans()))

    def test_document_shape(self, document):
        assert document["displayTimeUnit"] == "ms"
        assert isinstance(document["traceEvents"], list)
        assert document["traceEvents"], "no events exported"

    def test_process_metadata_names_plane_and_sites(self, document):
        meta = [e for e in document["traceEvents"] if e["ph"] == "M"]
        names = [e["args"]["name"] for e in meta]
        assert names[0] == "plane"
        assert names[1:] == sorted(names[1:])  # sites in sorted pid order
        assert [e["pid"] for e in meta] == list(range(len(meta)))

    def test_duration_events_are_perfetto_loadable(self, document):
        xs = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert xs
        for event in xs:
            assert isinstance(event["ts"], int)
            assert isinstance(event["dur"], int)
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            assert event["dur"] >= 0
            assert "span_id" in event["args"]

    def test_instant_events_are_thread_scoped(self, document):
        instants = [e for e in document["traceEvents"] if e["ph"] == "i"]
        assert instants
        assert all(e["s"] == "t" for e in instants)

    def test_open_spans_are_omitted(self):
        recorder = SpanRecorder(Simulator())
        recorder.start("open")
        recorder.end(recorder.start("closed"))
        document = json.loads(to_chrome_trace(recorder.spans()))
        names = [e["name"] for e in document["traceEvents"] if e["ph"] == "X"]
        assert names == ["closed"]


class TestEndToEndAttribution:
    @pytest.fixture(scope="class")
    def traced_query(self):
        plane, workload = build_traced_plane()
        result = run_query(plane, workload)
        assert result.satisfied
        root = plane.obs.query_roots()[-1]
        spans = plane.obs.recorder.trace(root.trace_id)
        return plane, result, root, spans

    def test_span_tree_covers_all_executed_steps(self, traced_query):
        _, _, _, spans = traced_query
        steps = {s.labels.get("step") for s in spans}
        assert {"probe", "anycast", "site_rtt", "site_exec",
                "commit_release"} <= steps

    def test_root_span_matches_reported_latency(self, traced_query):
        _, result, root, _ = traced_query
        assert root.duration_ms == pytest.approx(result.latency_ms, rel=1e-9)

    def test_critical_path_sums_to_end_to_end_latency(self, traced_query):
        _, result, root, spans = traced_query
        segments = critical_path(root, spans)
        total = sum(seg.duration_ms for seg in segments)
        assert total == pytest.approx(result.latency_ms, rel=0.01)
        # The segments are a disjoint chronological cover.
        assert segments[0].start_ms == root.start_ms
        assert segments[-1].end_ms == root.end_ms
        for before, after in zip(segments, segments[1:]):
            assert before.end_ms == after.start_ms

    def test_step_histogram_and_flat_mirror_are_fed(self, traced_query):
        plane, _, _, _ = traced_query
        hist = plane.obs.metrics.histogram(plane.obs.STEP_HISTOGRAM)
        assert hist.series(), "no step durations observed"
        assert plane.counters.get("query.step.probe") > 0
        assert "probe" in plane.obs.step_summary()


class TestRetriesOnTheCriticalPath:
    def test_forced_site_timeout_produces_backoff_spans(self):
        plane, workload = build_traced_plane(seed=77)
        plane.context.site_timeout_ms = 800.0
        injector = plane.install_faults()
        # Drop the coordinator->gateway requests for one timeout window,
        # then heal so the retries succeed.
        rule = MessageRule(name="cut-site-query", drop_prob=1.0,
                           kind_prefix="direct/query/site_query")
        injector.start_rule(rule)
        plane.sim.schedule_at(plane.sim.now + 1_000.0,
                              lambda: injector.end_rule(rule))
        result = run_query(plane, workload)
        assert result.satisfied
        assert result.retries >= 1

        root = plane.obs.query_roots()[-1]
        spans = plane.obs.recorder.trace(root.trace_id)
        timeouts = [s for s in spans
                    if s.name == "query.site" and s.status == "timeout"]
        backoffs = [s for s in spans if s.name == "query.backoff"]
        assert timeouts, "the dropped attempts never produced timeout spans"
        assert backoffs, "retries never produced backoff spans"
        assert all(s.labels["retry_of"] == "site" for s in backoffs)
        assert all(s.labels["step"] == "backoff" for s in backoffs)

        totals = step_breakdown(critical_path(root, spans))
        assert totals.get("backoff", 0.0) > 0.0, \
            "the backoff wait never landed on the critical path"
        assert sum(totals.values()) == pytest.approx(result.latency_ms,
                                                     rel=0.01)


class TestTracingIsInert:
    def test_tracing_on_and_off_simulate_identically(self):
        def fingerprint(tracing):
            reset_protocol_ids()
            plane, workload = build_traced_plane(seed=9, tracing=tracing)
            result = run_query(plane, workload)
            return (result.satisfied, result.latency_ms, result.retries,
                    plane.network.messages_sent)

        assert fingerprint(tracing=False) == fingerprint(tracing=True)
