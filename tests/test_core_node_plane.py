"""Integration tests for RBayNode and the RBay plane facade."""

import pytest

from repro.core.naming import site_tree
from repro.core.node import GATE_ATTRIBUTE, SubscriptionSpec
from repro.core.plane import RBay, RBayConfig
from repro.core.policies import password_policy
from repro.query.predicates import Predicate


class TestPlaneConstruction:
    def test_builds_eight_ec2_sites_by_default(self, small_plane):
        assert len(small_plane.registry) == 8
        assert len(small_plane.nodes) == 80

    def test_every_node_has_apps(self, small_plane):
        for node in small_plane.nodes:
            assert "scribe" in node.apps and "query" in node.apps and "join" in node.apps

    def test_gateways_cover_every_site(self, small_plane):
        for site in small_plane.registry:
            assert site.name in small_plane.context.gateways

    def test_gateway_lives_in_its_site(self, small_plane):
        for site_name, address in small_plane.context.gateways.items():
            host = small_plane.network.host(address)
            assert host.site.name == site_name

    def test_site_nodes_filter(self, small_plane):
        tokyo = small_plane.site_nodes("Tokyo")
        assert len(tokyo) == 10
        assert all(n.site.name == "Tokyo" for n in tokyo)

    def test_synthetic_site_mode(self):
        plane = RBay(RBayConfig(seed=1, nodes_per_site=4, synthetic_sites=5,
                                jitter=False)).build()
        assert len(plane.registry) == 5
        assert len(plane.nodes) == 20

    def test_double_build_rejected(self, small_plane):
        with pytest.raises(RuntimeError):
            small_plane.build()

    def test_deterministic_construction(self):
        a = RBay(RBayConfig(seed=5, nodes_per_site=5, jitter=False)).build()
        b = RBay(RBayConfig(seed=5, nodes_per_site=5, jitter=False)).build()
        assert [n.node_id.value for n in a.nodes] == [n.node_id.value for n in b.nodes]

    def test_dynamic_add_node(self):
        plane = RBay(RBayConfig(seed=2, nodes_per_site=5, jitter=False)).build()
        newcomer = plane.add_node(plane.registry[0], join_via=plane.nodes[0])
        plane.sim.run()
        assert newcomer in plane.nodes
        assert "scribe" in newcomer.apps


class TestNodeAttributes:
    @pytest.fixture
    def plane(self):
        plane = RBay(RBayConfig(seed=3, nodes_per_site=6, jitter=False)).build()
        plane.sim.run()
        return plane

    def test_define_and_read(self, plane):
        node = plane.nodes[0]
        node.define_attribute("GPU", True)
        assert node.attribute_value("GPU") is True
        assert node.has_attribute("GPU")

    def test_update_via_monitor_path(self, plane):
        node = plane.nodes[0]
        node.define_attribute("util", 10.0)
        node.update_attribute("util", 90.0)
        assert node.attribute_value("util") == 90.0

    def test_remove(self, plane):
        node = plane.nodes[0]
        node.define_attribute("X", 1)
        assert node.remove_attribute("X")
        assert not node.has_attribute("X")

    def test_check_predicates(self, plane):
        node = plane.nodes[0]
        node.define_attribute("cpu", 4.0)
        node.define_attribute("os", "linux")
        assert node.check_predicates([Predicate("cpu", ">=", 2), Predicate("os", "=", "linux")])
        assert not node.check_predicates([Predicate("cpu", ">=", 8)])
        assert not node.check_predicates([Predicate("missing", "=", 1)])

    def test_authorize_open_by_default(self, plane):
        node = plane.nodes[0]
        assert node.authorize("joe", None) == node.node_id.value

    def test_authorize_with_gate(self, plane):
        node = plane.nodes[0]
        node.define_attribute(GATE_ATTRIBUTE, 0, password_policy(7, "pw"))
        assert node.authorize("joe", {"password": "pw"}) == 7
        assert node.authorize("joe", {"password": "xx"}) is None

    def test_authorize_injects_trusted_time(self, plane):
        node = plane.nodes[0]
        source = "function onGet(c, p) return p.now end"
        node.define_attribute(GATE_ATTRIBUTE, 0, source)
        assert node.authorize("joe", {}) == pytest.approx(plane.sim.now)


class TestSubscriptionLifecycle:
    @pytest.fixture
    def plane(self):
        plane = RBay(RBayConfig(seed=4, nodes_per_site=8, jitter=False,
                                maintenance_interval_ms=500.0)).build()
        plane.sim.run()
        return plane

    def test_predicate_membership_follows_value(self, plane):
        topic = site_tree("Virginia", "util<10")
        nodes = plane.site_nodes("Virginia")[:4]
        for node in nodes:
            node.define_attribute("util", 5.0)
            node.subscribe(SubscriptionSpec(topic=topic, attribute="util", scope="site",
                                            default_predicate=lambda v: v < 10))
        plane.sim.run()
        assert plane.tree_size(topic, via=nodes[0], scope="site") == 4
        # Overload two nodes; next maintenance tick should drop them.
        nodes[0].update_attribute("util", 95.0)
        nodes[1].update_attribute("util", 95.0)
        for node in nodes:
            node.maintenance_tick()
        plane.sim.run()
        assert plane.tree_size(topic, via=nodes[2], scope="site") == 2

    def test_aa_handler_membership(self, plane):
        from repro.core.policies import utilization_subscription

        topic = site_tree("Tokyo", "CPU_utilization<10%")
        nodes = plane.site_nodes("Tokyo")[:3]
        for node in nodes:
            node.define_attribute("CPU_utilization", 5.0, utilization_subscription(10.0))
            node.subscribe(SubscriptionSpec(topic=topic, attribute="CPU_utilization",
                                            scope="site"))
        plane.sim.run()
        assert plane.tree_size(topic, via=nodes[0], scope="site") == 3
        nodes[0].update_attribute("CPU_utilization", 80.0)
        for node in nodes:
            node.maintenance_tick()
        plane.sim.run()
        assert plane.tree_size(topic, via=nodes[1], scope="site") == 2
        # Paper's example: the node re-subscribes when load drops again.
        nodes[0].update_attribute("CPU_utilization", 3.0)
        for node in nodes:
            node.maintenance_tick()
        plane.sim.run()
        assert plane.tree_size(topic, via=nodes[1], scope="site") == 3

    def test_unsubscribe_leaves_tree(self, plane):
        topic = site_tree("Oregon", "static")
        nodes = plane.site_nodes("Oregon")[:3]
        for node in nodes:
            node.subscribe(SubscriptionSpec(topic=topic, scope="site"))
        plane.sim.run()
        nodes[0].unsubscribe(topic)
        plane.sim.run()
        assert plane.tree_size(topic, via=nodes[1], scope="site") == 2

    def test_start_stop_maintenance(self, plane):
        plane.start_maintenance()
        plane.settle(2_000.0)
        plane.stop_maintenance()
        before = plane.sim.events_executed
        plane.settle(5_000.0)
        # No periodic storm after stop (allow a little residual work).
        assert plane.sim.events_executed - before < len(plane.nodes)

    def test_attribute_on_timer_invoked_by_maintenance(self, plane):
        node = plane.nodes[0]
        source = """
        AA = {Ticks = 0}
        function onTimer() AA.Ticks = AA.Ticks + 1 end
        function onGet(c, p) return AA.Ticks end
        """
        node.define_attribute("ticker", 0, source)
        node.maintenance_tick()
        node.maintenance_tick()
        assert node.aa.on_get("ticker", 0) == 2


class TestSyntheticFederationScale:
    def test_hundred_site_federation(self):
        """A 100-site synthetic federation builds, routes, and answers."""
        plane = RBay(RBayConfig(seed=3000, synthetic_sites=100, nodes_per_site=4,
                                jitter=False)).build()
        plane.sim.run()
        assert len(plane.registry) == 100
        assert len(plane.nodes) == 400
        # Post a resource at a far site and find it from site 0.
        target_site = plane.registry[50]
        admin = plane.admins[target_site.name]
        node = plane.site_nodes(target_site.name)[0]
        admin.post_resource(node, "telescope", True)
        plane.sim.run()
        customer = plane.make_customer("astro", plane.registry[0].name)
        result = customer.query_once(
            f"SELECT 1 FROM {target_site.name} WHERE telescope = true;").result()
        assert result.satisfied
        # Ring distance 50 at 15 ms/hop: latency reflects the distance.
        assert result.latency_ms > 100.0

    def test_full_fanout_over_hundred_sites(self):
        plane = RBay(RBayConfig(seed=3001, synthetic_sites=100, nodes_per_site=3,
                                jitter=False)).build()
        plane.sim.run()
        for site in list(plane.registry)[:10]:
            admin = plane.admins[site.name]
            admin.post_resource(plane.site_nodes(site.name)[0], "GPU", True)
        plane.sim.run()
        customer = plane.make_customer("wide", plane.registry[0].name)
        result = customer.query_once("SELECT 10 FROM * WHERE GPU = true;").result()
        assert result.satisfied
        assert len(result.sites_queried) == 100
