"""Integration tests for Scribe trees: join/leave/multicast/anycast."""

import pytest

from repro.pastry.nodeid import NodeId
from repro.scribe.topic import topic_id


@pytest.fixture
def members(sim, streams, scribe_overlay):
    """30 nodes subscribed to topic 'GPU'."""
    rng = streams.stream("members")
    chosen = rng.sample(scribe_overlay.nodes, 30)
    for node in chosen:
        node.app("scribe").join(node, "GPU")
    sim.run()
    return scribe_overlay, chosen


def scribe(node):
    return node.app("scribe")


class TestTopicNaming:
    def test_topic_id_is_hash_of_name_and_creator(self):
        assert topic_id("GPU") == NodeId.from_key("GPU#rbay")
        assert topic_id("GPU", "alice") == NodeId.from_key("GPU#alice")

    def test_different_topics_different_roots(self):
        assert topic_id("GPU") != topic_id("CPU")


class TestJoinLeave:
    def test_root_is_closest_node_to_topic_id(self, sim, members):
        overlay, chosen = members
        expected_root = overlay.root_of(topic_id("GPU"))
        state = scribe(expected_root).topics().get("GPU")
        assert state is not None and state.is_root

    def test_members_are_connected_to_tree(self, members):
        _, chosen = members
        for node in chosen:
            state = scribe(node).topics()["GPU"]
            assert state.member
            assert state.in_tree()

    def test_tree_size_counts_members(self, sim, members):
        overlay, chosen = members
        asker = overlay.nodes[0]
        assert scribe(asker).tree_size(asker, "GPU").result() == 30

    def test_rejoin_is_idempotent(self, sim, members):
        overlay, chosen = members
        node = chosen[0]
        scribe(node).join(node, "GPU")
        sim.run()
        asker = overlay.nodes[1]
        assert scribe(asker).tree_size(asker, "GPU").result() == 30

    def test_leave_updates_size(self, sim, members):
        overlay, chosen = members
        for node in chosen[:10]:
            scribe(node).leave(node, "GPU")
        sim.run()
        asker = overlay.nodes[0]
        assert scribe(asker).tree_size(asker, "GPU").result() == 20

    def test_leave_nonmember_is_noop(self, sim, members):
        overlay, chosen = members
        outsider = next(n for n in overlay.nodes if n not in chosen)
        scribe(outsider).leave(outsider, "GPU")
        sim.run()
        asker = overlay.nodes[0]
        assert scribe(asker).tree_size(asker, "GPU").result() == 30

    def test_forwarder_keeps_tree_alive_for_members_below(self, sim, members):
        """Leaving forwarders with children must not orphan the children."""
        overlay, chosen = members
        # Leave half the members; sizes must stay consistent afterwards.
        for node in chosen[0:30:2]:
            scribe(node).leave(node, "GPU")
        sim.run()
        asker = overlay.nodes[2]
        assert scribe(asker).tree_size(asker, "GPU").result() == 15

    def test_empty_topic_size_zero(self, sim, scribe_overlay):
        node = scribe_overlay.nodes[0]
        assert scribe(node).tree_size(node, "never-joined").result() == 0


class TestMulticast:
    def test_reaches_every_member_exactly_once(self, sim, members):
        overlay, chosen = members
        got = []
        for node in overlay.nodes:
            scribe(node).multicast_handler = (
                lambda n, topic, body: got.append((n.address, body["x"]))
            )
        scribe(chosen[0]).multicast(chosen[0], "GPU", {"x": 42})
        sim.run()
        assert len(got) == 30
        assert len({address for address, _ in got}) == 30
        assert all(value == 42 for _, value in got)

    def test_nonmembers_do_not_receive(self, sim, members):
        overlay, chosen = members
        got = []
        member_addresses = {n.address for n in chosen}
        for node in overlay.nodes:
            scribe(node).multicast_handler = (
                lambda n, topic, body: got.append(n.address)
            )
        scribe(overlay.nodes[0]).multicast(overlay.nodes[0], "GPU", {})
        sim.run()
        assert set(got) <= member_addresses

    def test_multicast_from_nonmember_works(self, sim, members):
        overlay, chosen = members
        outsider = next(n for n in overlay.nodes if n not in chosen)
        got = []
        for node in chosen:
            scribe(node).multicast_handler = lambda n, t, b: got.append(1)
        scribe(outsider).multicast(outsider, "GPU", {"cmd": "hide"})
        sim.run()
        assert len(got) == 30

    def test_multicast_empty_topic_is_silent(self, sim, scribe_overlay):
        node = scribe_overlay.nodes[0]
        scribe(node).multicast(node, "ghost", {"x": 1})
        sim.run()  # must not raise


class TestAnycast:
    def test_finds_k_members(self, sim, members):
        overlay, chosen = members

        def visitor(node, topic, state):
            state["found"].append(node.address)
            return len(state["found"]) >= 5

        for node in overlay.nodes:
            scribe(node).anycast_visitor = visitor
        result = scribe(overlay.nodes[3]).anycast(
            overlay.nodes[3], "GPU", {"found": []}
        ).result()
        assert result["satisfied"]
        assert len(result["found"]) == 5
        assert len(set(result["found"])) == 5

    def test_exhausts_when_not_enough(self, sim, members):
        overlay, chosen = members

        def visitor(node, topic, state):
            state["found"].append(node.address)
            return len(state["found"]) >= 500

        for node in overlay.nodes:
            scribe(node).anycast_visitor = visitor
        result = scribe(overlay.nodes[1]).anycast(
            overlay.nodes[1], "GPU", {"found": []}
        ).result()
        assert not result["satisfied"]
        assert result["visited_members"] == 30

    def test_anycast_on_empty_topic_exhausts_immediately(self, sim, scribe_overlay):
        node = scribe_overlay.nodes[0]
        result = scribe(node).anycast(node, "void", {"found": []}).result()
        assert not result["satisfied"]
        assert result["visited_members"] == 0

    def test_dfs_visits_every_member_at_most_once(self, sim, members):
        overlay, chosen = members
        visits = []

        def visitor(node, topic, state):
            visits.append(node.address)
            return False

        for node in overlay.nodes:
            scribe(node).anycast_visitor = visitor
        scribe(overlay.nodes[5]).anycast(overlay.nodes[5], "GPU", {}).result()
        assert len(visits) == len(set(visits)) == 30


class TestChurnRepair:
    def test_member_failure_heals_after_maintenance(self, sim, members):
        overlay, chosen = members
        chosen[4].fail()
        sim.run()
        for _ in range(3):
            for node in overlay.live_nodes():
                scribe(node).maintain(node)
            sim.run()
        asker = overlay.live_nodes()[0]
        assert scribe(asker).tree_size(asker, "GPU").result() == 29

    def test_root_failure_reconverges_on_new_root(self, sim, members):
        overlay, chosen = members
        old_root = overlay.root_of(topic_id("GPU"))
        old_root.fail()
        sim.run()
        for _ in range(3):
            for node in overlay.live_nodes():
                scribe(node).maintain(node)
            sim.run()
        expected = 30 - (1 if old_root in chosen else 0)
        asker = overlay.live_nodes()[3]
        assert scribe(asker).tree_size(asker, "GPU").result() == expected

    def test_multicast_still_works_after_failures(self, sim, members):
        overlay, chosen = members
        dead = chosen[:3]
        for node in dead:
            node.fail()
        sim.run()
        for _ in range(3):
            for node in overlay.live_nodes():
                scribe(node).maintain(node)
            sim.run()
        got = []
        live_members = [n for n in chosen if n.alive]
        for node in live_members:
            scribe(node).multicast_handler = lambda n, t, b: got.append(n.address)
        sender = overlay.live_nodes()[0]
        scribe(sender).multicast(sender, "GPU", {})
        sim.run()
        assert len(set(got)) == len(live_members)


class TestSiteScopedTrees:
    def test_site_tree_confined_to_site(self, sim, scribe_overlay):
        overlay = scribe_overlay
        site0_nodes = [n for n in overlay.nodes if n.site.index == 0][:8]
        for node in site0_nodes:
            scribe(node).join(node, "Virginia/c3.large", scope="site")
        sim.run()
        for node in overlay.nodes:
            state = scribe(node).topics().get("Virginia/c3.large")
            if state is not None and state.in_tree():
                assert node.site.index == 0

    def test_same_topic_name_different_sites_are_disjoint(self, sim, scribe_overlay):
        overlay = scribe_overlay
        site0 = [n for n in overlay.nodes if n.site.index == 0][:5]
        site1 = [n for n in overlay.nodes if n.site.index == 1][:7]
        for node in site0:
            scribe(node).join(node, "S0/tree", scope="site")
        for node in site1:
            scribe(node).join(node, "S1/tree", scope="site")
        sim.run()
        a0 = site0[0]
        a1 = site1[0]
        assert scribe(a0).tree_size(a0, "S0/tree", scope="site").result() == 5
        assert scribe(a1).tree_size(a1, "S1/tree", scope="site").result() == 7
