"""Oracle-backed property suite for the range planner (ISSUE 6 tentpole).

Each seed builds a small federation with randomly-bucketed numeric
attributes and zipf-skewed values, then fires random range / GROUP BY
queries through the full five-step protocol twice — planner on (the
default) and planner off (``QueryOptions(planner=False)``, the
bucket-unaware flood baseline) — and checks both against a brute-force
oracle over every node's raw attributes:

* range results are row-identical (same address set) to the oracle;
* planner-on and planner-off agree exactly;
* GROUP BY rows equal the oracle's per-bucket counts, whether they were
  answered by roll-up pushdown or by the collect path.

``RBAY_ORACLE_SEEDS`` scales the seed count (default 20; the coverage
gate lowers it to keep its instrumented run fast).
"""

import os
import random

import pytest

from repro.core.plane import RBay, RBayConfig
from repro.query.options import QueryOptions
from repro.query.predicates import Predicate
from repro.workloads.skewed import zipf_weights

SEEDS = int(os.environ.get("RBAY_ORACLE_SEEDS", "20"))

ATTRIBUTES = ["CPU_utilization", "mem_free", "disk_io"]
QUERIES_PER_SEED = 5


def build_plane(rng, seed):
    """A small federation with 1-2 randomly-bucketed skewed attributes."""
    plane = RBay(RBayConfig(
        seed=seed, synthetic_sites=3, nodes_per_site=6, jitter=False,
        probe_cache_ms=rng.choice([0.0, 5_000.0]),
    )).build()
    schema = {}
    for attribute in rng.sample(ATTRIBUTES, rng.choice([1, 2])):
        lo = rng.uniform(0.0, 50.0)
        hi = lo + rng.uniform(10.0, 500.0)
        count = rng.randint(2, 6)
        weights = zipf_weights(count, rng.uniform(0.0, 1.5))
        width = (hi - lo) / count
        for node in plane.nodes:
            if rng.random() < 0.1:
                continue  # ~10% of nodes lack the attribute entirely
            index = rng.choices(range(count), weights=weights)[0]
            value = lo + width * index + rng.uniform(0.0, width)
            node.define_attribute(attribute, value)
        # Values exist before registration, so each node joins its
        # correct bucket tree immediately.
        schema[attribute] = plane.register_buckets(attribute, lo, hi, count)
    plane.settle(3_000.0)
    return plane, schema


def random_range_sql(rng, attribute, lo, hi):
    """One random range predicate as SQL text (sometimes literal-on-left)."""
    span = hi - lo
    a = lo + rng.uniform(-0.2, 1.2) * span
    b = lo + rng.uniform(-0.2, 1.2) * span
    a, b = max(0.0, a), max(0.0, b)
    shape = rng.randrange(4)
    if shape == 0:
        low, high = min(a, b), max(a, b)
        if rng.random() < 0.1:
            low, high = high, low  # inverted BETWEEN accepts nothing
        return (f"{attribute} BETWEEN {low:g} AND {high:g}",
                Predicate(attribute, "between", (low, high)))
    op = rng.choice(["<", "<=", ">", ">="])
    if shape == 1:
        mirrored = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]
        return (f"{a:g} {mirrored} {attribute}", Predicate(attribute, op, a))
    return (f"{attribute} {op} {a:g}", Predicate(attribute, op, a))


def oracle_addresses(plane, predicates):
    return sorted(
        node.address for node in plane.nodes
        if all(node.has_attribute(p.attribute)
               and p.matches(node.attribute_value(p.attribute))
               for p in predicates))


def oracle_groups(plane, predicates, group_attr, spec):
    counts = {}
    for node in plane.nodes:
        if not all(node.has_attribute(p.attribute)
                   and p.matches(node.attribute_value(p.attribute))
                   for p in predicates):
            continue
        if not node.has_attribute(group_attr):
            continue
        bucket = spec.bucket_of(node.attribute_value(group_attr))
        counts[bucket.label] = counts.get(bucket.label, 0) + 1
    return sorted(counts.items())


def release_everywhere(plane, query_id):
    for node in plane.nodes:
        node.reservation.release(query_id)


def run_both_arms(plane, sql):
    on = plane.query(sql)
    release_everywhere(plane, on.query_id)
    off = plane.query(sql, options=QueryOptions(planner=False))
    release_everywhere(plane, off.query_id)
    return on, off


@pytest.mark.parametrize("seed", range(SEEDS))
def test_range_queries_match_oracle_planner_on_and_off(seed):
    rng = random.Random(seed * 7919 + 13)
    plane, schema = build_plane(rng, seed)
    for _ in range(QUERIES_PER_SEED):
        attribute = rng.choice(sorted(schema))
        spec = schema[attribute]
        clause, predicate = random_range_sql(rng, attribute, spec.lo, spec.hi)
        sql = f"SELECT * FROM * WHERE {clause}"
        on, off = run_both_arms(plane, sql)
        expected = oracle_addresses(plane, [predicate])
        got_on = sorted(e["address"] for e in on.entries)
        got_off = sorted(e["address"] for e in off.entries)
        assert got_on == expected, (seed, sql)
        assert got_off == expected, (seed, sql)


@pytest.mark.parametrize("seed", range(SEEDS))
def test_group_by_matches_oracle_planner_on_and_off(seed):
    rng = random.Random(seed * 104729 + 7)
    plane, schema = build_plane(rng, seed)
    for _ in range(QUERIES_PER_SEED):
        group_attr = rng.choice(sorted(schema))
        spec = schema[group_attr]
        predicates = []
        sql = f"SELECT * FROM * GROUP BY {group_attr}"
        if rng.random() < 0.6:
            # Sometimes boundary-aligned (pushdown-eligible), sometimes not.
            if rng.random() < 0.5:
                cut = spec.boundary(rng.randint(1, spec.count - 1))
                clause = f"{group_attr} >= {cut:g}"
                predicates = [Predicate(group_attr, ">=", cut)]
            else:
                clause, predicate = random_range_sql(
                    rng, group_attr, spec.lo, spec.hi)
                predicates = [predicate]
            sql = (f"SELECT * FROM * WHERE {clause} "
                   f"GROUP BY {group_attr}")
        on, off = run_both_arms(plane, sql)
        expected = oracle_groups(plane, predicates, group_attr, spec)
        got_on = sorted((e["group"], e["count"]) for e in on.entries)
        got_off = sorted((e["group"], e["count"]) for e in off.entries)
        assert got_on == expected, (seed, sql)
        assert got_off == expected, (seed, sql)
        # Group queries must never leave reservations behind.
        for node in plane.nodes:
            assert node.reservation.is_free(), (seed, sql, node.address)
