"""Unit tests for the concurrent-query admission window."""

import pytest

from repro.metrics.counters import CounterRegistry
from repro.query.admission import AdmissionController
from repro.sim.futures import Future


def make_thunk(sim, started, tag):
    """A thunk that records its admission and returns a manual Future."""
    inner = Future(sim)

    def start():
        started.append(tag)
        return inner

    return start, inner


class TestAdmissionWindow:
    def test_window_must_be_positive(self, sim):
        with pytest.raises(ValueError):
            AdmissionController(sim, window=0)

    def test_bounds_in_flight_and_queues_fifo(self, sim):
        admission = AdmissionController(sim, window=2)
        started, inners, dones = [], [], []
        for tag in range(5):
            start, inner = make_thunk(sim, started, tag)
            inners.append(inner)
            dones.append(admission.submit(start))

        assert started == [0, 1]  # only the window is admitted
        assert admission.in_flight == 2 and admission.queued == 3
        assert admission.max_queued == 3

        inners[0].resolve("r0")
        assert started == [0, 1, 2]  # a slot freed -> FIFO next admitted
        assert admission.in_flight == 2 and admission.queued == 2
        assert dones[0].resolved and dones[0].value == "r0"

        for i in (1, 2, 3, 4):
            inners[i].resolve(f"r{i}")
        assert started == [0, 1, 2, 3, 4]
        assert admission.in_flight == 0 and admission.queued == 0
        assert [d.value for d in dones] == ["r0", "r1", "r2", "r3", "r4"]

    def test_forwards_exception_values_and_keeps_pumping(self, sim):
        admission = AdmissionController(sim, window=1)
        started, boom = [], RuntimeError("boom")
        start_a, inner_a = make_thunk(sim, started, "a")
        start_b, inner_b = make_thunk(sim, started, "b")
        done_a = admission.submit(start_a)
        done_b = admission.submit(start_b)

        inner_a.resolve(boom)
        assert done_a.resolved and done_a.value is boom
        assert started == ["a", "b"]  # the failure released its slot
        inner_b.resolve("ok")
        assert done_b.value == "ok"

    def test_wait_stats_by_label(self, sim):
        admission = AdmissionController(sim, window=1)
        started = []
        start_a, inner_a = make_thunk(sim, started, "a")
        start_b, inner_b = make_thunk(sim, started, "b")
        admission.submit(start_a, label="east")
        admission.submit(start_b, label="west")

        # "east" admitted instantly; "west" waits until the slot frees.
        sim.schedule(250.0, lambda: inner_a.resolve("r0"))
        sim.run()
        inner_b.resolve("r1")

        stats = admission.wait_stats()
        assert stats["east"] == {"count": 1.0, "mean_ms": 0.0, "max_ms": 0.0}
        assert stats["west"]["count"] == 1.0
        assert stats["west"]["mean_ms"] == pytest.approx(250.0)
        assert stats["west"]["max_ms"] == pytest.approx(250.0)

    def test_wait_stats_pools_unlabeled_under_empty_string(self, sim):
        admission = AdmissionController(sim, window=2)
        started = []
        for tag in range(2):
            start, inner = make_thunk(sim, started, tag)
            admission.submit(start)
            inner.resolve(tag)
        assert list(admission.wait_stats()) == [""]
        assert admission.wait_stats()[""]["count"] == 2.0

    def test_admitted_counter_and_registry(self, sim):
        counters = CounterRegistry()
        admission = AdmissionController(sim, window=4, counters=counters)
        started = []
        for tag in range(3):
            start, inner = make_thunk(sim, started, tag)
            admission.submit(start)
            inner.resolve(tag)
        assert admission.admitted == 3
        assert counters.get("query.admitted") == 3
        assert admission.max_queued <= 1
