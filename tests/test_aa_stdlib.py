"""Unit tests for the sandbox standard library."""

import math

import pytest

from repro.aa.errors import LuetteRuntimeError, SandboxViolation
from repro.aa.interpreter import Interpreter
from repro.aa.parser import parse
from repro.aa.stdlib import MAX_STRING_LENGTH, make_sandbox_globals
from repro.aa.values import luette_to_python


def run(source, rng=None):
    interp = Interpreter(make_sandbox_globals(rng))
    return luette_to_python(interp.run_chunk(parse(source)))


class TestBaseFunctions:
    def test_type(self):
        assert run("return type(nil)") == "nil"
        assert run("return type(true)") == "boolean"
        assert run("return type(1)") == "number"
        assert run("return type('s')") == "string"
        assert run("return type({})") == "table"
        assert run("return type(type)") == "function"

    def test_tostring(self):
        assert run("return tostring(nil)") == "nil"
        assert run("return tostring(true)") == "true"
        assert run("return tostring(3)") == "3"
        assert run("return tostring(3.5)") == "3.5"

    def test_tonumber(self):
        assert run("return tonumber('12')") == 12
        assert run("return tonumber('0x10')") == 16
        assert run("return tonumber('nope') == nil") is True
        assert run("return tonumber(true) == nil") is True

    def test_error_raises(self):
        with pytest.raises(LuetteRuntimeError, match="boom"):
            run("error('boom')")

    def test_assert_passthrough_and_failure(self):
        assert run("return assert(5)") == 5
        with pytest.raises(LuetteRuntimeError, match="assertion failed"):
            run("assert(false)")
        with pytest.raises(LuetteRuntimeError, match="custom"):
            run("assert(nil, 'custom')")

    def test_pairs_requires_table(self):
        with pytest.raises(LuetteRuntimeError):
            run("for k in pairs(5) do end")


class TestMathLib:
    def test_basics(self):
        assert run("return math.abs(-4)") == 4
        assert run("return math.floor(2.7)") == 2
        assert run("return math.ceil(2.1)") == 3
        assert run("return math.sqrt(16)") == 4

    def test_sqrt_of_negative_is_nan(self):
        value = run("return math.sqrt(-1)")
        assert value != value

    def test_min_max_variadic(self):
        assert run("return math.max(1, 9, 4)") == 9
        assert run("return math.min(1, 9, 4)") == 1
        with pytest.raises(LuetteRuntimeError):
            run("return math.max()")

    def test_constants(self):
        assert run("return math.huge") == float("inf")
        assert run("return math.pi") == pytest.approx(math.pi)

    def test_log(self):
        assert run("return math.log(math.exp(1))") == pytest.approx(1.0)
        assert run("return math.log(8, 2)") == pytest.approx(3.0)

    def test_fmod(self):
        assert run("return math.fmod(7, 3)") == pytest.approx(1.0)

    def test_random_disabled_without_rng(self):
        with pytest.raises(SandboxViolation):
            run("return math.random()")

    def test_random_with_host_rng(self):
        import random

        value = run("return math.random(1, 10)", rng=random.Random(0))
        assert 1 <= value <= 10

    def test_number_coercion_error(self):
        with pytest.raises(LuetteRuntimeError):
            run("return math.abs({})")


class TestStringLib:
    def test_len_sub(self):
        assert run("return string.len('hello')") == 5
        assert run("return string.sub('hello', 2, 4)") == "ell"
        assert run("return string.sub('hello', 2)") == "ello"
        assert run("return string.sub('hello', -3)") == "llo"
        assert run("return string.sub('hello', 4, 2)") == ""

    def test_case(self):
        assert run("return string.upper('abc')") == "ABC"
        assert run("return string.lower('ABC')") == "abc"

    def test_rep_and_reverse(self):
        assert run("return string.rep('ab', 3)") == "ababab"
        assert run("return string.reverse('abc')") == "cba"

    def test_rep_size_guard(self):
        with pytest.raises(SandboxViolation):
            run(f"return string.rep('x', {MAX_STRING_LENGTH + 1})")

    def test_find_plain(self):
        assert run("return string.find('hello world', 'world')") == 7
        assert run("return string.find('hello', 'xyz') == nil") is True
        assert run("return string.find('aaa', 'a', 2)") == 2

    def test_byte_char(self):
        assert run("return string.byte('A')") == 65
        assert run("return string.char(72, 105)") == "Hi"
        assert run("return string.byte('A', 5) == nil") is True

    def test_format(self):
        assert run("return string.format('%d-%s-%x', 10, 'a', 255)") == "10-a-ff"
        assert run("return string.format('100%%')") == "100%"

    def test_format_bad_spec(self):
        with pytest.raises(LuetteRuntimeError):
            run("return string.format('%q', 1)")

    def test_string_methods_via_index(self):
        # s.sub style access resolves through the string library.
        assert run("local s = 'hello' return s.sub(s, 1, 2)") == "he"


class TestTableLib:
    def test_insert_append(self):
        assert run("local t = {1} table.insert(t, 2) return t[2]") == 2

    def test_insert_at_position(self):
        assert run("local t = {1, 3} table.insert(t, 2, 2) return t[2]") == 2

    def test_insert_out_of_bounds(self):
        with pytest.raises(LuetteRuntimeError):
            run("local t = {} table.insert(t, 5, 'x')")

    def test_remove_returns_value_and_shifts(self):
        source = """
        local t = {1, 2, 3}
        local removed = table.remove(t, 1)
        return removed .. ':' .. t[1] .. ':' .. #t
        """
        assert run(source) == "1:2:2"

    def test_remove_from_empty_is_nil(self):
        assert run("local t = {} return table.remove(t) == nil") is True

    def test_concat(self):
        assert run("return table.concat({1, 2, 3}, '-')") == "1-2-3"
        assert run("return table.concat({})") == ""

    def test_concat_rejects_tables(self):
        with pytest.raises(LuetteRuntimeError):
            run("return table.concat({{}})")

    def test_sort_default(self):
        assert run("local t = {3, 1, 2} table.sort(t) return table.concat(t, ',')") == "1,2,3"

    def test_sort_with_comparator(self):
        source = """
        local t = {1, 3, 2}
        table.sort(t, function(a, b) return a > b end)
        return table.concat(t, ',')
        """
        assert run(source) == "3,2,1"

    def test_sort_incomparable_rejected(self):
        with pytest.raises(LuetteRuntimeError):
            run("local t = {1, 'a'} table.sort(t)")


class TestExclusions:
    @pytest.mark.parametrize("library", ["os", "io", "require", "dofile",
                                         "load", "loadstring", "package", "debug"])
    def test_excluded_library_raises_on_use(self, library):
        with pytest.raises(SandboxViolation):
            run(f"return {library}()")

    def test_excluded_library_raises_on_index(self):
        with pytest.raises(SandboxViolation):
            run("return os.time()")

    def test_excluded_library_is_present_but_unusable(self):
        # The name resolves (not nil) so error messages are informative.
        assert run("return type(os) == 'nil'") is False


class TestFormatModifiers:
    def test_width_and_alignment(self):
        assert run("return string.format('%5d', 42)") == "   42"
        assert run("return string.format('%-5d|', 42)") == "42   |"
        assert run("return string.format('%05d', 42)") == "00042"

    def test_float_precision(self):
        assert run("return string.format('%6.2f', 3.14159)") == "  3.14"
        assert run("return string.format('%.1f', 2.55)") == "2.5"

    def test_string_padding(self):
        assert run("return string.format('%-8s|', 'ab')") == "ab      |"
        assert run("return string.format('%8s|', 'ab')") == "      ab|"

    def test_hex_padding(self):
        assert run("return string.format('%04x', 255)") == "00ff"
        assert run("return string.format('%X', 255)") == "FF"

    def test_scientific(self):
        assert run("return string.format('%e', 12345.0)") == "1.234500e+04"

    def test_overlong_width_rejected(self):
        with pytest.raises(LuetteRuntimeError):
            run("return string.format('%99999999999d', 1)")

    def test_trailing_modifier_rejected(self):
        with pytest.raises(LuetteRuntimeError):
            run("return string.format('%5')")
