"""Regression pins for the three skew-stress bugfixes (ISSUE 7).

Each test fails against the pre-fix code:

1. planner cardinality hints surviving churn — ``scribe.maintain`` used
   to detach from a dead parent without firing the tree-change
   notification, so the query layer kept pricing probe-vs-flood from a
   hint describing the pre-crash tree;
2. bucket re-subscription after crash/recover — a recovered node
   re-announced to Pastry but never replayed the tree joins the network
   suppressed while it was down, leaving it a member on paper but
   detached from its value bucket's tree;
3. anti-entropy resurrection — ``_on_agg_push`` re-adopted any pusher,
   including under a pruned topic state, resurrecting an empty tree that
   ``_maybe_prune`` had just dissolved (and that nothing could dissolve
   again).
"""

from repro.core.naming import site_tree
from repro.core.plane import RBay, RBayConfig
from repro.scribe.topic import topic_id


def build_bucketed_plane(seed, probe_cache_ms=0.0, utilization=20.0):
    plane = RBay(RBayConfig(
        seed=seed,
        synthetic_sites=2,
        nodes_per_site=6,
        jitter=False,
        probe_cache_ms=probe_cache_ms,
    )).build()
    plane.sim.run()
    for node in plane.nodes:
        node.define_attribute("CPU_utilization", utilization)
    plane.register_buckets("CPU_utilization", 0.0, 100.0, 4)
    plane.sim.run()
    return plane


# ----------------------------------------------------------------------
# 1. Planner hints must die with the tree path they were priced against
# ----------------------------------------------------------------------
def test_cardinality_hint_invalidated_when_parent_dies():
    plane = build_bucketed_plane(seed=23, probe_cache_ms=60_000.0)
    # A node that reaches its bucket tree through a parent link (i.e. is
    # not itself the rendezvous root of the only populated bucket).
    c, state = next((n, s) for n in plane.nodes
                    for s in n.scribe.topics().values()
                    if s.parent is not None and s.member)
    qapp = c.app("query")
    topic = state.topic
    # Prime the probe cache the way a completed probe round would.
    qapp.probe_cache.put(topic, 5, plane.sim.now)
    assert topic in qapp.cardinality_hints(c)

    injector = plane.install_faults()
    parent = next(n for n in plane.nodes if n.address == state.parent)
    injector.crash_node(plane.nodes.index(parent))
    # The next maintenance pass notices the dead parent and detaches; the
    # planner must stop trusting the hint in the same pass — before any
    # re-join lands — or it will route a probe at an unreachable tree.
    c.scribe.maintain(c)
    assert topic not in qapp.cardinality_hints(c)


def test_cardinality_hint_invalidated_on_reparenting():
    plane = build_bucketed_plane(seed=29, probe_cache_ms=60_000.0)
    c, state = next((n, s) for n in plane.nodes
                    for s in n.scribe.topics().values()
                    if s.parent is not None and s.member)
    qapp = c.app("query")
    qapp.probe_cache.put(state.topic, 5, plane.sim.now)
    assert state.topic in qapp.cardinality_hints(c)
    # A parent_set from a different node re-homes this branch: the old
    # hint described the old path.
    other = next(n for n in plane.nodes
                 if n.address not in (c.address, state.parent))
    c.scribe._on_parent_set(c, state.topic, other.address)
    assert state.topic not in qapp.cardinality_hints(c)


# ----------------------------------------------------------------------
# 2. Recovery must replay joins the network suppressed while down
# ----------------------------------------------------------------------
def test_recovered_node_rejoins_its_new_bucket_tree():
    plane = build_bucketed_plane(seed=31)
    # Pick a node that is NOT the site-scope rendezvous root of the bucket
    # tree that 90.0 lands in: the root's own join delivers in-process, so
    # it would wire itself up even without the recovery replay.  Only a
    # non-root node's join actually crosses the (suppressed) network.
    spec = plane.context.bucket_index.spec_for("CPU_utilization")
    bucket = next(bk for bk in spec.buckets if bk.contains(90.0))
    site = plane.nodes[0].site.name
    key = topic_id(site_tree(site, bucket.tree),
                   plane.nodes[0].scribe.creator)
    root = min(plane.site_nodes(site),
               key=lambda n: (n.node_id.distance(key), n.node_id.value))
    b = next(n for n in plane.site_nodes(site) if n is not root)
    index = plane.nodes.index(b)
    injector = plane.install_faults()
    injector.crash_node(index)
    # The monitoring feed moves the value across a bucket boundary while
    # the host is down: the eager re-bucketing runs locally (leave + join)
    # but every message it sends is suppressed.
    b.update_attribute("CPU_utilization", 90.0)
    plane.sim.run()
    injector.recover_node(index)
    plane.sim.run()

    topic = site_tree(b.site.name, bucket.tree)
    state = b.scribe.topics()[topic]
    assert state.member
    assert state.parent is not None or state.is_root, (
        "recovered node is a member on paper but detached from its bucket")
    # And the tree agrees: the size read reaches the recovered node.
    via = next(n for n in plane.site_nodes(b.site.name) if n is not b)
    assert plane.tree_size(topic, via=via, scope="site") == 1


# ----------------------------------------------------------------------
# 3. agg_push anti-entropy must not resurrect pruned topic state
# ----------------------------------------------------------------------
def test_agg_push_does_not_resurrect_pruned_state(sim, scribe_overlay):
    """A stale pusher hitting a dissolved branch must be disowned, not
    re-adopted (pre-fix: the vestige adopted the pusher, recreating an
    unprunable empty tree and pinning the pusher to a dead branch)."""
    f, m = scribe_overlay.nodes[0], scribe_overlay.nodes[1]
    sf, sm = f.app("scribe"), m.app("scribe")
    # F's state for the topic is a pruned vestige: no role at all.
    state_f = sf.topic_state("ghost")
    assert not state_f.in_tree()
    # M missed the dissolution and still believes F is its parent.
    state_m = sm.topic_state("ghost")
    state_m.member = True
    state_m.local["count"] = 1
    state_m.parent = f.address
    sm._repush_all(m, state_m)
    sim.run()

    assert not state_f.in_tree(), "pruned state was resurrected"
    assert state_f.children == {}
    # The pusher was told its parent is gone; maintenance can now re-join
    # it at the live rendezvous instead of feeding a dead branch.
    assert state_m.parent is None
