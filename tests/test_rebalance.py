"""Hot-tree rebalancing: hysteresis trigger, replica protocol, diversion.

The unit half drives :class:`~repro.scribe.rebalance.Rebalancer` against
crafted topic states to pin the windowed-hysteresis decision rules; the
integration half builds a real overlay, heats one topic root, and checks
the full promote → divert → demote lifecycle keeps aggregates exact.
"""

import pytest

from repro.net.latency import UniformLatencyModel, make_ec2_registry
from repro.net.network import Network
from repro.pastry.overlay import Overlay
from repro.scribe.rebalance import RebalanceConfig, Rebalancer
from repro.scribe.scribe import ScribeApplication, TopicState
from repro.scribe.topic import topic_id
from repro.sim.random_streams import RandomStreams

MEMBERS = 20

#: Aggressive knobs so a handful of test reads count as "hot".
CFG = RebalanceConfig(hot_threshold=5, cool_threshold=1, window_ms=100.0,
                      hot_windows=1, cool_windows=2, max_replicas=2,
                      min_children=2)


# ----------------------------------------------------------------------
# Unit: the windowed hysteresis trigger
# ----------------------------------------------------------------------
class FakeSim:
    def __init__(self):
        self.now = 0.0


class FakeScribe:
    def __init__(self, states):
        self._states = states
        self.promoted = []
        self.demoted = []

    def topics(self):
        return self._states

    def _promote_replicas(self, node, state):
        self.promoted.append(state.topic)
        state.replicas = {999: None}
        return True

    def _demote_replicas(self, node, state):
        self.demoted.append(state.topic)
        state.replicas = {}


def root_state(topic="hot", children=2):
    state = TopicState(topic, topic_id(topic))
    state.is_root = True
    for i in range(children):
        state.children[100 + i] = None
    return state


def make_trigger(config, states):
    sim = FakeSim()
    scribe = FakeScribe(states)
    rebalancer = Rebalancer(sim, config)
    rebalancer.tick(None, scribe)  # opens the first window
    return sim, scribe, rebalancer


def close_window(sim, scribe, rebalancer, load, topic="hot"):
    for _ in range(load):
        rebalancer.record(topic)
    sim.now += rebalancer.config.window_ms
    rebalancer.tick(None, scribe)


class TestHysteresis:
    CONFIG = RebalanceConfig(hot_threshold=10, cool_threshold=3,
                             window_ms=100.0, hot_windows=2, cool_windows=2,
                             max_replicas=2, min_children=2)

    def test_one_hot_window_is_not_enough(self):
        sim, scribe, reb = make_trigger(self.CONFIG, {"hot": root_state()})
        close_window(sim, scribe, reb, load=50)
        assert scribe.promoted == []
        assert reb.streaks("hot")["hot"] == 1

    def test_consecutive_hot_windows_promote_once(self):
        sim, scribe, reb = make_trigger(self.CONFIG, {"hot": root_state()})
        close_window(sim, scribe, reb, load=50)
        close_window(sim, scribe, reb, load=50)
        assert scribe.promoted == ["hot"]
        assert reb.promotions == 1
        # Streak was consumed; staying hot does not re-promote while the
        # replica set stands.
        close_window(sim, scribe, reb, load=50)
        close_window(sim, scribe, reb, load=50)
        assert scribe.promoted == ["hot"]

    def test_dead_zone_window_resets_the_hot_streak(self):
        sim, scribe, reb = make_trigger(self.CONFIG, {"hot": root_state()})
        close_window(sim, scribe, reb, load=50)
        close_window(sim, scribe, reb, load=5)   # between cool and hot
        close_window(sim, scribe, reb, load=50)
        assert scribe.promoted == []
        assert reb.streaks("hot") == {"hot": 1, "cool": 0}

    def test_cool_windows_demote_a_replicated_root(self):
        sim, scribe, reb = make_trigger(self.CONFIG, {"hot": root_state()})
        close_window(sim, scribe, reb, load=50)
        close_window(sim, scribe, reb, load=50)
        assert scribe.promoted == ["hot"]
        close_window(sim, scribe, reb, load=0)
        assert scribe.demoted == []
        close_window(sim, scribe, reb, load=0)
        assert scribe.demoted == ["hot"]
        assert reb.demotions == 1

    def test_a_hot_window_interrupts_the_cool_streak(self):
        sim, scribe, reb = make_trigger(self.CONFIG, {"hot": root_state()})
        close_window(sim, scribe, reb, load=50)
        close_window(sim, scribe, reb, load=50)
        close_window(sim, scribe, reb, load=0)
        close_window(sim, scribe, reb, load=50)  # hot again
        close_window(sim, scribe, reb, load=0)
        assert scribe.demoted == []

    def test_non_root_topics_never_trigger(self):
        state = root_state()
        state.is_root = False
        state.parent = 5
        sim, scribe, reb = make_trigger(self.CONFIG, {"hot": state})
        close_window(sim, scribe, reb, load=50)
        close_window(sim, scribe, reb, load=50)
        assert scribe.promoted == []

    def test_promotion_needs_enough_children_to_spread(self):
        sim, scribe, reb = make_trigger(self.CONFIG,
                                        {"hot": root_state(children=1)})
        close_window(sim, scribe, reb, load=50)
        close_window(sim, scribe, reb, load=50)
        assert scribe.promoted == []

    def test_window_load_accounting(self):
        sim, scribe, reb = make_trigger(self.CONFIG, {"hot": root_state()})
        reb.record("hot")
        reb.record("hot")
        assert reb.window_load("hot") == 2
        sim.now += 10.0  # window still open: tick is a no-op
        reb.tick(None, scribe)
        assert reb.window_load("hot") == 2
        sim.now += self.CONFIG.window_ms
        reb.tick(None, scribe)
        assert reb.window_load("hot") == 0  # window closed and reset


# ----------------------------------------------------------------------
# Integration: a real overlay with one heated topic
# ----------------------------------------------------------------------
def node_scribe(node):
    return node.app("scribe")


@pytest.fixture
def hot_overlay(sim):
    """Overlay with rebalancing scribes; 20 members on topic 'GPU'."""
    network = Network(sim, UniformLatencyModel(0.5))
    streams = RandomStreams(1234)
    overlay = Overlay(sim, network, streams, make_ec2_registry(),
                      isolation=True)
    overlay.create_population(6)
    overlay.bootstrap()
    for node in overlay.nodes:
        node.register_app(ScribeApplication(sim, rebalance=CFG))
    members = overlay.nodes[:MEMBERS]
    for node in members:
        node_scribe(node).join(node, "GPU")
    sim.run()
    return overlay, network, members


def heat_and_tick(sim, overlay, root, readers=10):
    """One open window of reads at the root, then a window-closing tick."""
    sc = node_scribe(root)
    sc.maintain(root)  # opens the accounting window
    sim.run()
    for node in overlay.nodes[-readers:]:
        node_scribe(node).tree_size(node, "GPU").result()
    sim.schedule_at(sim.now + 2 * CFG.window_ms, lambda: sc.maintain(root))
    sim.run()
    return sc.topics()["GPU"]


def find_root(overlay):
    root = overlay.root_of(topic_id("GPU"))
    assert node_scribe(root).topics()["GPU"].is_root
    return root


def by_address(overlay, address):
    return next(n for n in overlay.nodes if n.address == address)


class TestPromotion:
    def test_hot_root_spawns_acknowledged_replicas(self, sim, hot_overlay):
        overlay, _, members = hot_overlay
        root = find_root(overlay)
        state = heat_and_tick(sim, overlay, root)
        assert state.replicas, "hot root did not replicate"
        assert len(state.replicas) <= CFG.max_replicas
        for addr in state.replicas:
            assert addr in state.children
            rstate = node_scribe(by_address(overlay, addr)).topics()["GPU"]
            assert rstate.replica_of == root.address
            assert rstate.parent == root.address

    def test_replica_snapshots_match_the_root(self, sim, hot_overlay):
        overlay, _, members = hot_overlay
        root = find_root(overlay)
        state = heat_and_tick(sim, overlay, root)
        sim.run()
        for addr in state.replicas:
            rstate = node_scribe(by_address(overlay, addr)).topics()["GPU"]
            assert rstate.replica_values is not None
            assert rstate.replica_values.get("count") == MEMBERS

    def test_aggregates_stay_exact_through_reparenting(self, sim, hot_overlay):
        overlay, _, members = hot_overlay
        root = find_root(overlay)
        heat_and_tick(sim, overlay, root)
        sim.run()
        asker = overlay.nodes[-1]
        assert node_scribe(asker).tree_size(asker, "GPU").result() == MEMBERS
        # Membership changes after the split keep rolling up correctly.
        leaver = members[0]
        node_scribe(leaver).leave(leaver, "GPU")
        sim.run()
        assert node_scribe(asker).tree_size(asker, "GPU").result() == MEMBERS - 1

    def test_promote_metric_is_recorded(self, sim, hot_overlay):
        overlay, _, _ = hot_overlay
        root = find_root(overlay)
        heat_and_tick(sim, overlay, root)
        assert node_scribe(root).rebalancer.promotions == 1


class TestDiversion:
    def test_reader_learns_hints_and_diverts_to_a_replica(self, sim, hot_overlay):
        overlay, network, _ = hot_overlay
        root = find_root(overlay)
        state = heat_and_tick(sim, overlay, root)
        assert state.replicas
        asker = overlay.nodes[-1]
        sc = node_scribe(asker)
        # First read is routed to the root and piggybacks the replica set.
        assert sc.tree_size(asker, "GPU").result() == MEMBERS
        assert sorted(sc._replica_hints["GPU"]) == sorted(state.replicas)
        # Second read goes straight to a replica: the root sees no traffic.
        before_root = network.per_host_received[root.address]
        replica_before = {a: network.per_host_received[a]
                          for a in state.replicas}
        assert sc.tree_size(asker, "GPU").result() == MEMBERS
        assert network.per_host_received[root.address] == before_root
        assert any(network.per_host_received[a] > replica_before[a]
                   for a in state.replicas)

    def test_stale_hint_falls_back_to_routed_read(self, sim, hot_overlay):
        overlay, _, _ = hot_overlay
        asker = overlay.nodes[-1]
        bystander = overlay.nodes[-2]
        sc = node_scribe(asker)
        # Poison the hint with a node that is not a replica at all.
        sc._replica_hints["GPU"] = [bystander.address]
        assert sc.tree_size(asker, "GPU").result() == MEMBERS
        # The unreplicated root's reply retracted the bogus hint.
        assert "GPU" not in sc._replica_hints


class TestDemotion:
    def test_cool_windows_dissolve_the_replica_set(self, sim, hot_overlay):
        overlay, _, _ = hot_overlay
        root = find_root(overlay)
        sc = node_scribe(root)
        state = heat_and_tick(sim, overlay, root)
        assert state.replicas
        replica_addrs = sorted(state.replicas)
        # Quiet windows: only the root's own maintenance self-join lands,
        # which stays at or below cool_threshold.
        for k in range(1, 2 + CFG.cool_windows):
            sim.schedule_at(sim.now + k * 2 * CFG.window_ms,
                            lambda: sc.maintain(root))
        sim.run()
        assert not state.replicas
        assert sc.rebalancer.demotions == 1
        for addr in replica_addrs:
            rstate = node_scribe(by_address(overlay, addr)).topics()["GPU"]
            assert rstate.replica_of is None
            assert rstate.replica_values is None
        asker = overlay.nodes[-1]
        assert node_scribe(asker).tree_size(asker, "GPU").result() == MEMBERS

    def test_replica_of_a_dead_root_self_demotes(self, sim, hot_overlay):
        overlay, network, _ = hot_overlay
        root = find_root(overlay)
        state = heat_and_tick(sim, overlay, root)
        assert state.replicas
        replica = by_address(overlay, sorted(state.replicas)[0])
        network.detach(root)
        rsc = node_scribe(replica)
        rsc.maintain(replica)
        rstate = rsc.topics()["GPU"]
        assert rstate.replica_of is None
        assert rstate.replica_values is None


class TestPlacement:
    def test_closest_neighbors_are_live_deterministic_and_exclude_self(
            self, sim, hot_overlay):
        overlay, network, _ = hot_overlay
        node = overlay.nodes[0]
        key = topic_id("GPU")
        picks = node.closest_neighbors(key, 3)
        assert len(picks) <= 3
        assert node.address not in [p.address for p in picks]
        assert picks == node.closest_neighbors(key, 3)
        if picks:
            dead = by_address(overlay, picks[0].address)
            network.detach(dead)
            again = node.closest_neighbors(key, 3)
            assert dead.address not in [p.address for p in again]
