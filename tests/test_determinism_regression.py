"""Determinism regression: the rewritten core replays pinned signatures.

The hot-path rewrite (slotted messages, Event free-list, hop caches,
latency memoization, delivery coalescing) is only admissible because it
changes *wall time*, never *simulated history*.  This suite holds that
line: it re-runs the scale workload against signatures pinned in
``benchmarks/results/scale_signatures.json`` and fails on the first
byte that moves.

Two tiers:

* **small spec** (4x8 nodes, sub-second per arm) — both arms, two
  seeds; runs in every tier-1 pass and catches nearly any ordering or
  RNG drift within seconds.
* **full spec** (the checked-in 1,024-node acceptance configuration) —
  both arms, two seeds; slower (the unbatched ablation is the cost),
  but it is the exact artifact ``benchmarks/results/scale.json`` pins,
  so the acceptance numbers and this suite can never drift apart.
  Set ``RBAY_SKIP_FULL_DETERMINISM=1`` to keep only the small tier when
  iterating locally.

Regenerating (after a *deliberate* semantic change): run this module as
a script — ``PYTHONPATH=src python -m tests.test_determinism_regression``
— and paste the printed matrix into the JSON, explaining the change in
the commit message.
"""

import dataclasses
import json
import os
from pathlib import Path

import pytest

from repro.workloads.scale import ScaleSpec, run_scale

PINS_PATH = (Path(__file__).resolve().parent.parent
             / "benchmarks" / "results" / "scale_signatures.json")
PINS = json.loads(PINS_PATH.read_text())

SEEDS = (2017, 4242)
ARMS = ("batched", "unbatched")

SMALL_SPEC = ScaleSpec(sites=4, nodes_per_site=8, duration_ms=2_000.0,
                       queries=16, query_burst=8, query_window=4)


def _spec(base: ScaleSpec, seed: int, arm: str) -> ScaleSpec:
    return dataclasses.replace(base, seed=seed, batching=(arm == "batched"))


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("arm", ARMS)
def test_small_spec_signature_is_pinned(seed, arm):
    metrics = run_scale(_spec(SMALL_SPEC, seed, arm))
    want = PINS["small_spec"]["seeds"][str(seed)][arm]
    assert metrics["signature"] == want, (
        f"small-spec {arm} seed={seed} signature drifted: simulated history "
        f"changed (got {metrics['signature'][:16]}..., "
        f"pinned {want[:16]}...)")


@pytest.mark.skipif(os.environ.get("RBAY_SKIP_FULL_DETERMINISM") == "1",
                    reason="full 1,024-node determinism matrix skipped "
                           "(RBAY_SKIP_FULL_DETERMINISM=1)")
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("arm", ARMS)
def test_full_spec_signature_is_pinned(seed, arm):
    metrics = run_scale(_spec(ScaleSpec(), seed, arm))
    want = PINS["full_spec"]["seeds"][str(seed)][arm]
    assert metrics["signature"] == want, (
        f"1,024-node {arm} seed={seed} signature drifted: the optimized "
        f"core no longer replays the pinned history (got "
        f"{metrics['signature'][:16]}..., pinned {want[:16]}...)")


def _print_matrix() -> None:
    """Regeneration helper (see module docstring)."""
    for label, base in (("small_spec", SMALL_SPEC), ("full_spec", ScaleSpec())):
        print(f"{label}:")
        for seed in SEEDS:
            for arm in ARMS:
                m = run_scale(_spec(base, seed, arm))
                print(f'  "{seed}" {arm}: "{m["signature"]}"'
                      f'  ({m["events_per_sec"]:,.0f} ev/s)')


if __name__ == "__main__":
    _print_matrix()
