"""Live 4-site end-to-end: the whole protocol stack on real TCP sockets.

One plane, four synthetic sites, asyncio transport with a compressed
clock.  Exercises the full lifecycle over the wire: protocol join of a
new node, subscription + attribute update with re-bucketing, a range
query with GROUP BY, and an induced connection drop that must surface
as a *degraded* result with the failed site named — the live analogue
of the sim chaos tests.
"""

import pytest

from repro.core.plane import RBay, RBayConfig
from repro.query.options import QueryOptions
from repro.workloads.generator import FederationWorkload, WorkloadSpec

SEED = 2017
PASSWORD = "rbay"


@pytest.fixture(scope="module")
def live_plane():
    plane = RBay(RBayConfig(
        seed=SEED,
        synthetic_sites=4,
        nodes_per_site=3,
        jitter=False,
        transport="asyncio",
        time_scale=0.02,
        connect_timeout_ms=500.0,
        connect_retries=1,
    )).build()
    try:
        FederationWorkload(plane, WorkloadSpec(password=PASSWORD)).apply()
        plane.register_buckets("CPU_utilization", 0.0, 100.0, buckets=4)
        plane.sim.run()
        yield plane
    finally:
        plane.close()


def q(plane, sql, **kwargs):
    return plane.query(sql, options=QueryOptions(
        payload={"password": PASSWORD}, **kwargs))


def groups(result):
    return {e["group"]: e["count"] for e in result.entries}


def test_live_query_with_group_by(live_plane):
    result = q(live_plane, "SELECT * FROM * GROUP BY CPU_utilization;")
    assert result.satisfied and not result.degraded
    got = groups(result)
    assert sum(got.values()) == len(live_plane.nodes)
    assert len(result.sites_answered) == 4


def test_live_range_query_with_group_by(live_plane):
    unrestricted = groups(q(live_plane,
                            "SELECT * FROM * GROUP BY CPU_utilization;"))
    result = q(live_plane,
               "SELECT * FROM * WHERE CPU_utilization >= 25.0 "
               "AND CPU_utilization < 75.0 GROUP BY CPU_utilization;")
    assert result.satisfied and not result.degraded
    # The range-restricted grouping is exactly the middle two buckets of
    # the unrestricted one.
    middle = {label: count for label, count in unrestricted.items()
              if label in ("CPU_utilization[25,50)", "CPU_utilization[50,75)")}
    assert groups(result) == middle


def test_live_protocol_join_over_sockets(live_plane):
    plane = live_plane
    site = plane.registry.by_name("Site002")
    before = len(plane.nodes)
    seed_node = plane.site_nodes("Site002")[0]
    node = plane.add_node(site, join_via=seed_node)  # join runs on the wire
    plane.settle(2_000.0)
    assert len(plane.nodes) == before + 1
    assert plane.network.has_host(node.address)
    assert plane.network.port_of(node.address) is not None
    # The joined node carries data; an attribute update re-evaluates its
    # eager bucket memberships, after which it shows up in group counts.
    node.define_attribute("CPU_utilization", 30.0)
    plane.settle(1_000.0)
    node.update_attribute("CPU_utilization", 31.0)
    plane.settle(2_000.0)
    result = q(plane, "SELECT * FROM * GROUP BY CPU_utilization;")
    assert sum(groups(result).values()) == len(plane.nodes)


def test_live_attribute_update_rebuckets(live_plane):
    plane = live_plane
    node = plane.site_nodes("Site000")[1]
    baseline = groups(q(plane, "SELECT * FROM * GROUP BY CPU_utilization;"))
    node.update_attribute("CPU_utilization", 99.0)  # move to the top bucket
    plane.settle(2_000.0)
    moved = groups(q(plane, "SELECT * FROM * GROUP BY CPU_utilization;"))
    assert sum(moved.values()) == sum(baseline.values())
    top = max(moved)  # bucket labels sort; the hottest bucket gained
    assert moved[top] >= baseline.get(top, 0)
    assert moved != baseline or baseline.get(top, 0) > 0


def test_live_connection_drop_degrades_result(live_plane):
    plane = live_plane
    victim = "Site003"
    gateway = plane.context.gateways[victim]
    # Tight timeouts keep the degraded path fast (virtual ms).
    old_site, old_probe = (plane.context.site_timeout_ms,
                           plane.context.probe_timeout_ms)
    plane.context.site_timeout_ms = 1_500.0
    plane.context.probe_timeout_ms = 750.0
    try:
        plane.network.cut(gateway)
        result = q(plane, "SELECT * FROM * GROUP BY CPU_utilization;",
                   retries=0)
        assert result.degraded
        assert victim in result.failed_sites
        assert victim not in result.sites_answered
        assert sum(groups(result).values()) > 0  # partial data, not empty
    finally:
        plane.network.heal(gateway)
        plane.context.site_timeout_ms = old_site
        plane.context.probe_timeout_ms = old_probe
    healed = q(plane, "SELECT * FROM * GROUP BY CPU_utilization;")
    assert not healed.degraded
    assert victim in healed.sites_answered
