"""Shared fixtures: simulators, overlays, and small federated planes."""

from __future__ import annotations

import pytest

from repro.core.plane import RBay, RBayConfig
from repro.net.latency import TableIILatencyModel, UniformLatencyModel, make_ec2_registry
from repro.net.network import Network
from repro.pastry.overlay import Overlay
from repro.scribe.scribe import ScribeApplication
from repro.sim.engine import Simulator
from repro.sim.random_streams import RandomStreams


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def streams():
    return RandomStreams(1234)


@pytest.fixture
def registry():
    return make_ec2_registry()


@pytest.fixture
def network(sim):
    return Network(sim, UniformLatencyModel(0.5))


@pytest.fixture
def ec2_network(sim):
    return Network(sim, TableIILatencyModel())


def build_overlay(sim, network, streams, registry, per_site=12, isolation=False):
    overlay = Overlay(sim, network, streams, registry, isolation=isolation)
    overlay.create_population(per_site)
    overlay.bootstrap()
    return overlay


@pytest.fixture
def overlay(sim, network, streams, registry):
    return build_overlay(sim, network, streams, registry)


@pytest.fixture
def scribe_overlay(sim, network, streams, registry):
    """An overlay whose nodes all carry a ScribeApplication."""
    ov = build_overlay(sim, network, streams, registry, per_site=12, isolation=True)
    for node in ov.nodes:
        node.register_app(ScribeApplication(sim))
    return ov


@pytest.fixture(scope="module")
def small_plane():
    """A built 8-site plane with 10 nodes/site, module-scoped for speed."""
    plane = RBay(RBayConfig(seed=7, nodes_per_site=10, jitter=False)).build()
    plane.sim.run()
    return plane
