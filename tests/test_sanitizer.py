"""Unit + regression tests for the runtime invariant sanitizer.

Two kinds of coverage live here:

* **harness mechanics** — registry plumbing, sweep cadence, quiescent
  idle-hook checks, the grace window, fail-fast, report serialization,
  and the zero-cost-off guarantee;
* **pinned pre-fix regressions** — each protocol bug fixed in this
  change is re-introduced via monkeypatch and the sanitizer must catch
  it, then the same scenario must run silent against the fixed code.
  These tests are the executable form of the case studies in
  ``docs/architecture.md`` §10.
"""

import pytest

from repro.check import (
    Invariant,
    InvariantRegistry,
    InvariantViolationError,
    Sanitizer,
    SanitizerReport,
    Violation,
)
from repro.core.plane import RBay, RBayConfig
from repro.core.reservation import ReservationTable
from repro.scribe.scribe import ScribeApplication

EXPECTED_INVARIANTS = [
    "tree_structure",
    "aggregate_coherence",
    "reservation_hygiene",
    "message_conservation",
    "child_acc_residency",
    "replica_set_agreement",
    "replica_child_partition",
    "replica_value_coherence",
]


def build_plane(seed=11, **overrides):
    cfg = dict(
        seed=seed,
        synthetic_sites=2,
        nodes_per_site=4,
        jitter=False,
        sanitize=True,
        sanitize_sweep_events=0,  # tests drive sweeps explicitly
    )
    cfg.update(overrides)
    return RBay(RBayConfig(**cfg)).build()


# ----------------------------------------------------------------------
# Registry plumbing
# ----------------------------------------------------------------------
def test_default_registry_holds_the_builtin_invariants():
    registry = InvariantRegistry.default()
    assert registry.names() == EXPECTED_INVARIANTS
    assert len(registry) == len(EXPECTED_INVARIANTS)
    for name in EXPECTED_INVARIANTS:
        assert name in registry
    assert "no_such_invariant" not in registry


def test_registry_register_replace_unregister():
    registry = InvariantRegistry()
    probe = Invariant(name="probe", check=lambda ctx: [])
    registry.register(probe)
    assert "probe" in registry and len(registry) == 1
    replacement = Invariant(name="probe", check=lambda ctx: [("x", "y")])
    registry.register(replacement)
    assert len(registry) == 1
    assert list(registry)[0] is replacement
    registry.unregister("probe")
    assert "probe" not in registry
    registry.unregister("probe")  # unknown names are a no-op


# ----------------------------------------------------------------------
# Harness wiring
# ----------------------------------------------------------------------
def test_sanitize_off_installs_nothing():
    plane = RBay(RBayConfig(seed=3, synthetic_sites=2, nodes_per_site=3,
                            jitter=False)).build()
    assert plane.sanitizer is None
    assert plane.sim._step_hook is None
    assert plane.sim._idle_hook is None
    assert all(node.reservation.watcher is None for node in plane.nodes)
    assert plane.context.result_listeners == []


def test_sanitize_on_wires_hooks_and_watchers():
    plane = build_plane(sanitize_sweep_events=100)
    san = plane.sanitizer
    assert san is not None
    assert plane.sim._step_hook == san._on_step
    assert plane.sim._idle_hook == san._on_idle
    assert all(node.reservation.watcher == san._on_reservation_event
               for node in plane.nodes)
    assert san._on_result in plane.context.result_listeners
    injector = plane.install_faults()
    assert san._on_fault in injector.listeners


def test_detach_restores_everything():
    plane = build_plane(sanitize_sweep_events=100)
    plane.sanitizer.detach()
    assert plane.sim._step_hook is None
    assert plane.sim._idle_hook is None
    assert all(node.reservation.watcher is None for node in plane.nodes)
    assert plane.context.result_listeners == []


def test_sweep_cadence_counts_simulator_events():
    plane = build_plane(sanitize_sweep_events=20)
    for i in range(100):
        plane.sim.schedule(float(i), lambda: None)
    plane.sim.run()
    san = plane.sanitizer
    assert san.sweeps >= 4  # 100 events at a 20-event cadence
    assert plane.counters.get("sanitizer.sweep") == san.sweeps
    assert san.report.ok, san.report.format()


def test_quiescent_check_fires_on_idle_drain():
    plane = build_plane()
    plane.sim.schedule(10.0, lambda: None)
    plane.sim.run()
    san = plane.sanitizer
    assert san.quiescent_checks >= 1
    assert plane.counters.get("sanitizer.quiescent_check") == san.quiescent_checks
    assert san.report.ok, san.report.format()


def test_sanitizer_does_not_perturb_the_run():
    """Observational guarantee: same seed, same traffic, sanitize on/off."""
    outcomes = []
    for sanitize in (False, True):
        plane = RBay(RBayConfig(seed=19, synthetic_sites=2, nodes_per_site=4,
                                jitter=False, sanitize=sanitize,
                                sanitize_sweep_events=50)).build()
        plane.start_maintenance()
        plane.settle(2_000.0)
        plane.stop_maintenance()
        plane.sim.run()
        outcomes.append((plane.network.messages_sent,
                         plane.sim.events_executed,
                         round(plane.sim.now, 6)))
    assert outcomes[0] == outcomes[1]


# ----------------------------------------------------------------------
# Check semantics: quiescent-only, grace, fail-fast
# ----------------------------------------------------------------------
def test_quiescent_only_invariants_skipped_during_sweeps():
    plane = build_plane()
    plane.sanitizer.registry.register(Invariant(
        name="always_fails", check=lambda ctx: [("t", "boom")],
        quiescent_only=True))
    plane.sanitizer.sweep()
    assert plane.sanitizer.report.ok
    plane.sanitizer.check_quiescent()
    report = plane.sanitizer.report
    assert not report.ok
    assert report.counts() == {"always_fails": 1}
    assert report.violations[0].quiescent


def test_grace_window_defers_sweep_reports():
    plane = build_plane(sanitize_grace_ms=500.0)
    failing = [True]
    plane.sanitizer.registry.register(Invariant(
        name="flappy", grace=True,
        check=lambda ctx: [("t", "bad")] if failing[0] else []))
    plane.sanitizer.sweep()
    assert plane.sanitizer.report.ok  # candidate only, not yet reported
    # Advance past the grace window, keeping one event pending so the
    # drain stops short of quiescence (which checks strictly).
    plane.sim.schedule(600.0, lambda: None)
    plane.sim.schedule(10_000.0, lambda: None)
    plane.sim.run(until=700.0)
    plane.sanitizer.sweep()
    report = plane.sanitizer.report
    assert report.counts() == {"flappy": 1}
    assert not report.violations[0].quiescent


def test_grace_candidates_reset_when_the_condition_heals():
    plane = build_plane(sanitize_grace_ms=500.0)
    failing = [True]
    plane.sanitizer.registry.register(Invariant(
        name="flappy", grace=True,
        check=lambda ctx: [("t", "bad")] if failing[0] else []))
    plane.sanitizer.sweep()          # candidate appears
    failing[0] = False
    plane.sanitizer.sweep()          # healed: candidate dropped
    failing[0] = True
    plane.sim.schedule(600.0, lambda: None)
    plane.sim.schedule(10_000.0, lambda: None)
    plane.sim.run(until=700.0)
    plane.sanitizer.sweep()          # fresh candidate, clock restarts
    assert plane.sanitizer.report.ok


def test_fail_fast_raises_on_first_violation():
    plane = build_plane(sanitize_fail_fast=True)
    plane.sanitizer.registry.register(Invariant(
        name="always_fails", check=lambda ctx: [("t", "boom")]))
    with pytest.raises(InvariantViolationError) as exc:
        plane.sanitizer.sweep()
    assert exc.value.violations[0].invariant == "always_fails"
    assert "boom" in str(exc.value)


def test_duplicate_violations_reported_once():
    plane = build_plane()
    plane.sanitizer.registry.register(Invariant(
        name="always_fails", check=lambda ctx: [("t", "boom")]))
    plane.sanitizer.sweep()
    plane.sanitizer.sweep()
    assert plane.sanitizer.report.counts() == {"always_fails": 1}


def test_report_serialization_round_trip():
    violation = Violation(invariant="tree_structure", subject="load",
                          detail="two roots", time_ms=1234.5, seed=7,
                          quiescent=True, trace_ctx=(42, 9))
    report = SanitizerReport(violations=(violation,), sweeps=3,
                             quiescent_checks=2,
                             invariants=("tree_structure",))
    assert not report.ok
    assert report.counts() == {"tree_structure": 1}
    as_dict = report.to_dict()
    assert as_dict["ok"] is False
    assert as_dict["sweeps"] == 3
    assert as_dict["violations"][0]["trace_ctx"] == [42, 9]
    text = report.format()
    assert "tree_structure" in text and "two roots" in text
    assert "seed=7" in violation.describe()
    assert "quiescent" in violation.describe()


# ----------------------------------------------------------------------
# Reservation lifecycle mirror
# ----------------------------------------------------------------------
def test_commit_without_settled_result_is_flagged():
    plane = build_plane()
    table = plane.nodes[0].reservation
    table.try_reserve(5)
    table.commit(5, lease_ms=1_000.0)
    report = plane.sanitizer.report
    assert report.counts() == {"reservation_hygiene": 1}
    assert "never settled" in report.violations[0].detail


def test_commit_after_settled_result_is_clean():
    plane = build_plane()
    san = plane.sanitizer
    san.finished_queries.add(5)
    san.satisfied_committed.add(5)
    table = plane.nodes[0].reservation
    table.try_reserve(5)
    table.commit(5, lease_ms=1_000.0)
    assert san.report.ok, san.report.format()


# ----------------------------------------------------------------------
# Pinned regression: the try_reserve demote-after-commit bug
# ----------------------------------------------------------------------
def _buggy_try_reserve(self, query_id):
    """The historical ``ReservationTable.try_reserve``: a duplicate
    reserve from the lease-holding query demoted the committed lease back
    to a short timed hold."""
    self._gc()
    if self._holder is not None and self._holder != query_id:
        return False
    self._holder = query_id
    self._committed = False
    self._expires_at = self._sim.now + self.hold_ms
    self._notify("reserved", query_id)
    return True


def test_sanitizer_catches_prefix_demote_bug(monkeypatch):
    plane = build_plane()
    san = plane.sanitizer
    san.finished_queries.add(9)
    san.satisfied_committed.add(9)
    table = plane.nodes[0].reservation
    table.try_reserve(9)
    table.commit(9, lease_ms=60_000.0)
    assert san.report.ok
    monkeypatch.setattr(ReservationTable, "try_reserve", _buggy_try_reserve)
    assert table.try_reserve(9)  # the delayed duplicate anycast arrives
    report = san.report
    assert report.counts() == {"reservation_hygiene": 1}
    assert "demoted" in report.violations[0].detail
    assert not table.committed  # the lease really was demoted


def test_fixed_try_reserve_keeps_the_lease_silent():
    plane = build_plane()
    san = plane.sanitizer
    san.finished_queries.add(9)
    san.satisfied_committed.add(9)
    table = plane.nodes[0].reservation
    table.try_reserve(9)
    table.commit(9, lease_ms=60_000.0)
    assert table.try_reserve(9)  # same duplicate against the fixed table
    assert table.committed
    assert san.report.ok, san.report.format()


# ----------------------------------------------------------------------
# Pinned regression: the _maybe_prune missing-former_parent bug
# ----------------------------------------------------------------------
def _buggy_maybe_prune(self, node, state):
    """The historical ``ScribeApplication._maybe_prune``: a goodbye to an
    unreachable parent was silently dropped instead of deferred, so a
    crash-recovered parent kept the pruned branch's accumulator forever."""
    if state.member or state.children or state.is_root:
        return
    if state.parent is not None and node.network.has_host(state.parent):
        node.send_app(state.parent, self.name, "leave",
                      {"topic": state.topic})
    state.parent = None


def _run_prune_scenario(plane, topic="san/prune"):
    """Crash a leaf's parent, have the leaf leave while the parent is
    down, recover the parent, then run one maintenance round on the
    *leaf only* (the parent's own child-probe anti-entropy would mask the
    bug) and drain to quiescence."""
    for node in plane.nodes:
        node.scribe.join(node, topic)
    plane.sim.run()
    assert plane.sanitizer.report.ok, plane.sanitizer.report.format()

    by_addr = {node.address: node for node in plane.nodes}
    leaf = next(node for node in plane.nodes
                if (state := node.scribe.topics()[topic]).member
                and state.parent is not None and not state.children)
    parent = by_addr[leaf.scribe.topics()[topic].parent]

    injector = plane.install_faults()
    injector.crash_node(plane.nodes.index(parent))
    leaf.scribe.leave(leaf, topic)
    plane.sim.run()

    injector.recover_node(plane.nodes.index(parent))
    plane.sim.schedule(50.0, leaf.scribe.maintain, leaf)
    plane.sim.run()
    return plane.sanitizer.report


def test_sanitizer_catches_prefix_prune_bug(monkeypatch):
    monkeypatch.setattr(ScribeApplication, "_maybe_prune", _buggy_maybe_prune)
    report = _run_prune_scenario(build_plane(seed=23))
    assert "aggregate_coherence" in report.counts(), report.format()


def test_fixed_prune_defers_goodbye_and_stays_coherent():
    report = _run_prune_scenario(build_plane(seed=23))
    assert report.ok, report.format()


# ----------------------------------------------------------------------
# Direct invariant failure branches (each check must actually fire)
# ----------------------------------------------------------------------
from repro.check.invariants import (  # noqa: E402  (kept near their tests)
    _values_close,
    check_aggregate_coherence,
    check_child_acc_residency,
    check_message_conservation,
    check_reservation_hygiene,
    check_tree_structure,
)
from repro.check.sanitizer import SanitizerContext


TOPIC = "san/direct"


@pytest.fixture
def tree_plane():
    """A sanitized plane with every node joined to one global topic."""
    plane = build_plane(seed=31)
    for node in plane.nodes:
        node.scribe.join(node, TOPIC)
    plane.sim.run()
    assert plane.sanitizer.report.ok, plane.sanitizer.report.format()
    return plane


def _ctx(plane, quiescent=False):
    return SanitizerContext(plane, plane.sanitizer, quiescent=quiescent)


def _details(check, plane, quiescent=False):
    return [detail for _subject, detail in check(_ctx(plane, quiescent))]


def _tree_parts(plane):
    """(root_node, root_state, leaf_node, leaf_state, parent_state)."""
    states = {node: node.scribe.topics()[TOPIC] for node in plane.nodes}
    root = next(n for n, s in states.items() if s.is_root)
    leaf = next(n for n, s in states.items()
                if s.parent is not None and not s.children)
    by_addr = {n.address: n for n in plane.nodes}
    parent = by_addr[states[leaf].parent]
    return root, states[root], leaf, states[leaf], states[parent]


def test_tree_check_flags_unlisted_child(tree_plane):
    _, _, leaf, leaf_state, parent_state = _tree_parts(tree_plane)
    del parent_state.children[leaf.address]
    assert any("does not list it as a child" in d
               for d in _details(check_tree_structure, tree_plane))


def test_tree_check_flags_unacknowledged_child(tree_plane):
    _, _, _, leaf_state, _ = _tree_parts(tree_plane)
    leaf_state.parent = None  # child forgot, parent still lists it
    assert any("acknowledges neither" in d
               for d in _details(check_tree_structure, tree_plane))


def test_tree_check_flags_root_with_parent(tree_plane):
    _, root_state, leaf, _, _ = _tree_parts(tree_plane)
    root_state.parent = leaf.address
    assert any("still holds a parent pointer" in d
               for d in _details(check_tree_structure, tree_plane))


def test_tree_check_flags_parent_cycle(tree_plane):
    _, _, leaf, leaf_state, parent_state = _tree_parts(tree_plane)
    parent_state.parent = leaf.address  # now each points at the other
    parent_state.is_root = False
    assert any("cycles at" in d
               for d in _details(check_tree_structure, tree_plane))


def test_tree_check_flags_multiple_roots(tree_plane):
    _, _, _, leaf_state, _ = _tree_parts(tree_plane)
    leaf_state.is_root = True
    assert any("multiple live roots" in d
               for d in _details(check_tree_structure, tree_plane))


def test_tree_check_flags_missing_root(tree_plane):
    _, root_state, _, _, _ = _tree_parts(tree_plane)
    root_state.is_root = False
    assert any("no live root" in d
               for d in _details(check_tree_structure, tree_plane))


def test_tree_check_flags_mis_anchored_root(tree_plane):
    root, root_state, leaf, leaf_state, _ = _tree_parts(tree_plane)
    # Move the root flag to a node the routing oracle disagrees with.
    root_state.is_root = False
    leaf_state.is_root = True
    leaf_state.parent = None
    assert any("anchors the key at" in d
               for d in _details(check_tree_structure, tree_plane))


def test_coherence_check_flags_corrupt_accumulator(tree_plane):
    _, _, _, _, parent_state = _tree_parts(tree_plane)
    child_addr = next(iter(parent_state.child_acc["count"]))
    parent_state.child_acc["count"][child_addr] = 5  # silent over-count
    details = _details(check_aggregate_coherence, tree_plane, quiescent=True)
    assert any("member ground truth" in d for d in details)


def test_residency_check_flags_foreign_accumulator(tree_plane):
    _, root_state, _, _, _ = _tree_parts(tree_plane)
    root_state.child_acc.setdefault("count", {})[999_983] = 7
    assert any("neither a child nor a tracked former-parent" in d
               for d in _details(check_child_acc_residency, tree_plane))


def test_conservation_check_flags_leaks_and_inflight():
    plane = build_plane()
    net = plane.network
    net.messages_sent += 3  # books don't balance any more
    assert any("sent=" in d
               for d in _details(check_message_conservation, plane))
    net.messages_sent -= 3
    net.messages_in_flight += 1
    net.messages_sent += 1
    assert any("still in flight at quiescence" in d
               for d in _details(check_message_conservation, plane,
                                 quiescent=True))
    net.messages_in_flight -= 2
    assert any("negative in_flight" in d
               for d in _details(check_message_conservation, plane))


def test_hygiene_check_flags_unknown_query():
    plane = build_plane()
    plane.nodes[0].reservation.try_reserve(4_242)
    assert any("unknown query" in d
               for d in _details(check_reservation_hygiene, plane))


def test_hygiene_check_flags_over_long_hold():
    plane = build_plane()
    san = plane.sanitizer
    san.finished_queries.add(8)
    table = plane.nodes[0].reservation
    table.try_reserve(8)
    table._expires_at = plane.sim.now + 10 * table.hold_ms
    assert any("beyond one hold window" in d
               for d in _details(check_reservation_hygiene, plane))


def test_hygiene_check_flags_hold_surviving_settlement():
    plane = build_plane()
    san = plane.sanitizer
    san.finished_queries.add(8)
    plane.nodes[0].reservation.try_reserve(8)
    assert any("survived to quiescence" in d
               for d in _details(check_reservation_hygiene, plane,
                                 quiescent=True))


def test_values_close_semantics():
    assert _values_close(1.0, 1.0 + 1e-12)
    assert not _values_close(1.0, 1.1)
    assert _values_close((1.0, "a"), [1.0 + 1e-12, "a"])
    assert not _values_close((1.0,), (1.0, 2.0))
    assert _values_close("x", "x")
    assert not _values_close(1.5, "x")  # TypeError branch -> plain ==
