"""Tests for the administrative-isolation manager (§III-E)."""

import pytest

from repro.core.plane import RBay, RBayConfig
from repro.pastry.isolation import IsolationManager
from repro.pastry.nodeid import NodeId


@pytest.fixture
def plane():
    plane = RBay(RBayConfig(seed=111, nodes_per_site=8, jitter=False)).build()
    plane.sim.run()
    return plane


class TestGatewayElection:
    def test_every_site_gets_gateways(self, plane):
        manager = IsolationManager()
        gateways = manager.elect_gateways(plane.nodes)
        assert set(gateways) == {s.index for s in plane.registry}
        for refs in gateways.values():
            assert len(refs) == 2

    def test_gateways_are_lowest_ids_in_site(self, plane):
        manager = IsolationManager()
        manager.elect_gateways(plane.nodes)
        for site in plane.registry:
            members = sorted(plane.site_nodes(site.name),
                             key=lambda n: n.node_id.value)
            primary = manager.gateway(site.index)
            assert primary.address == members[0].address

    def test_election_is_deterministic(self, plane):
        a = IsolationManager().elect_gateways(plane.nodes)
        b = IsolationManager().elect_gateways(plane.nodes)
        assert {k: [r.address for r in v] for k, v in a.items()} == \
               {k: [r.address for r in v] for k, v in b.items()}

    def test_dead_nodes_not_elected(self, plane):
        site = plane.registry[0]
        members = sorted(plane.site_nodes(site.name), key=lambda n: n.node_id.value)
        members[0].fail()
        manager = IsolationManager()
        manager.elect_gateways(plane.nodes)
        assert manager.gateway(site.index).address == members[1].address

    def test_live_gateway_failover(self, plane):
        manager = IsolationManager()
        manager.elect_gateways(plane.nodes)
        site = plane.registry[2]
        primary = manager.gateway(site.index)
        backup = manager.gateway(site.index, rank=1)
        plane.network.host(primary.address).fail()
        live = manager.live_gateway(site.index, plane.network)
        assert live.address == backup.address

    def test_live_gateway_none_when_all_dead(self, plane):
        manager = IsolationManager()
        manager.elect_gateways(plane.nodes)
        site = plane.registry[3]
        for rank in range(2):
            ref = manager.gateway(site.index, rank)
            plane.network.host(ref.address).fail()
        assert manager.live_gateway(site.index, plane.network) is None

    def test_invalid_gateway_count_rejected(self):
        with pytest.raises(ValueError):
            IsolationManager(gateways_per_site=0)

    def test_gateway_rank_out_of_range_is_none(self, plane):
        manager = IsolationManager(gateways_per_site=1)
        manager.elect_gateways(plane.nodes)
        assert manager.gateway(0, rank=5) is None


class TestSiteRootOracle:
    def test_site_root_matches_overlay_oracle(self, plane):
        key = NodeId.from_key("some-topic")
        for site in plane.registry:
            expected = plane.overlay.root_of(key, site_index=site.index)
            actual = IsolationManager.site_root(plane.nodes, site.index, key)
            assert actual is expected

    def test_site_root_skips_dead_nodes(self, plane):
        key = NodeId.from_key("another-topic")
        site = plane.registry[1]
        victim = IsolationManager.site_root(plane.nodes, site.index, key)
        victim.fail()
        replacement = IsolationManager.site_root(plane.nodes, site.index, key)
        assert replacement is not victim
        assert replacement.site.index == site.index

    def test_empty_site_raises(self, plane):
        with pytest.raises(LookupError):
            IsolationManager.site_root(plane.nodes, 999, NodeId(1))


class TestConfinementCheck:
    def test_confined_topic_passes(self, plane):
        admin = plane.admin("Tokyo")
        for node in plane.site_nodes("Tokyo")[:4]:
            admin.post_resource(node, "TPU", True)
        plane.sim.run()
        assert IsolationManager.verify_site_confinement(plane.nodes, "Tokyo/TPU")

    def test_unknown_topic_trivially_confined(self, plane):
        assert IsolationManager.verify_site_confinement(plane.nodes, "ghost/topic")
