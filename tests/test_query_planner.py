"""Golden tests pinning the cost-based planner's choices.

Each test fabricates cardinality hints and asserts the exact strategy and
bucket subset the planner must pick.  The golden-plan comparisons diff
``PredicateRoute.describe()`` strings, so a costing regression fails with
a readable plan diff instead of a bare boolean.
"""

import pytest

from repro.core.naming import site_tree
from repro.query.executor import _QueryContext
from repro.query.planner import (
    DEFAULT_SIZE_ESTIMATE,
    group_label,
    plan_group_pushdown,
    route_predicate,
    route_predicates,
)
from repro.query.predicates import Predicate
from repro.scribe.buckets import BucketSpec
from repro.sim.engine import Simulator

SITE = "A"


@pytest.fixture()
def context():
    ctx = _QueryContext(Simulator(), [SITE])
    ctx.bucket_index.register(BucketSpec("u", 0.0, 100.0, 4))
    return ctx


def hints_for(sizes):
    """Site-qualified hint dict from {unqualified tree: size}."""
    return {site_tree(SITE, tree): size for tree, size in sizes.items()}


class TestDirectRoutes:
    def test_unbucketed_attribute_uses_legacy_candidate_trees(self, context):
        route = route_predicate(context, Predicate("GPU", "=", True), 5,
                                {}, SITE)
        assert route.strategy == "direct"
        assert route.trees == ["GPU"]
        assert route.exact and not route.bucketed

    def test_non_numeric_literal_on_bucketed_attribute_stays_direct(
            self, context):
        route = route_predicate(context, Predicate("u", "=", "high"), 5,
                                {}, SITE)
        assert route.strategy == "direct"
        assert route.trees == ["u=high"]


class TestBucketRoutes:
    def test_between_probes_only_overlapping_buckets(self, context):
        route = route_predicate(context, Predicate("u", "between", (10, 30)),
                                None, {}, SITE)
        assert route.strategy == "probe"
        assert route.trees == ["u[0,25)", "u[25,50)"]
        # The first bucket extends to -inf: membership does not imply the
        # predicate, so the step-4 check stays strict.
        assert route.exact is False

    def test_fully_contained_subset_is_exact(self, context):
        route = route_predicate(context, Predicate("u", ">=", 75), None,
                                {}, SITE)
        assert route.strategy == "probe"
        assert route.trees == ["u[75,100)"]
        assert route.exact is True

    def test_all_sizes_cached_skips_the_probe_round(self, context):
        hints = hints_for({"u[0,25)": 6, "u[25,50)": 2})
        route = route_predicate(context, Predicate("u", "between", (10, 30)),
                                None, hints, SITE)
        assert route.strategy == "anycast"
        assert route.estimates == {"u[0,25)": 6, "u[25,50)": 2}
        assert route.costs["anycast"] == 8  # visits only, zero probes

    def test_partially_cached_subset_still_probes(self, context):
        hints = hints_for({"u[0,25)": 6})
        route = route_predicate(context, Predicate("u", "between", (10, 30)),
                                None, hints, SITE)
        assert route.strategy == "probe"
        # 1 uncached bucket = 2 messages, plus estimated visits.
        assert route.costs["probe"] == 2 + 6 + DEFAULT_SIZE_ESTIMATE

    def test_k_caps_the_visit_component(self, context):
        hints = hints_for({"u[0,25)": 50, "u[25,50)": 50})
        route = route_predicate(context, Predicate("u", "between", (10, 30)),
                                3, hints, SITE)
        assert route.costs["anycast"] == 3

    def test_planner_off_floods_the_whole_family(self, context):
        route = route_predicate(context, Predicate("u", "between", (10, 30)),
                                None, {}, SITE, planner_on=False)
        assert route.strategy == "flood"
        assert route.trees == ["u[0,25)", "u[25,50)", "u[50,75)", "u[75,100)"]
        assert route.exact is False

    def test_not_equal_operator_floods(self, context):
        route = route_predicate(context, Predicate("u", "<>", 50), None,
                                {}, SITE)
        assert route.strategy == "flood"
        assert len(route.trees) == 4

    def test_empty_interval_searches_nothing(self, context):
        route = route_predicate(context, Predicate("u", "between", (60, 40)),
                                None, {}, SITE)
        assert route.strategy == "empty"
        assert route.trees == []
        assert route.exact is True

    def test_probe_never_costs_more_than_flood(self, context):
        for predicate in [Predicate("u", "between", (10, 30)),
                          Predicate("u", "<", 5),
                          Predicate("u", ">=", 99)]:
            route = route_predicate(context, predicate, None, {}, SITE)
            assert route.costs["probe"] <= route.costs["flood"], predicate


class TestGoldenPlans:
    """String-compared plans: a regression shows up as a plan diff."""

    def test_conjunction_plan_is_pinned(self, context):
        hints = hints_for({"u[75,100)": 3})
        routes = route_predicates(
            context,
            [Predicate("u", ">=", 75), Predicate("GPU", "=", True)],
            5, hints, SITE)
        golden = [
            "u >= 75  ->  anycast  1 bucket(s)  [cost anycast=3, probe=3, "
            "flood=11]  (all 1 bucket size(s) cached)",
            "GPU = True  ->  direct  1 tree(s)  (no bucket index)",
        ]
        assert [r.describe() for r in routes] == golden

    def test_planner_off_plan_is_pinned(self, context):
        routes = route_predicates(
            context, [Predicate("u", "between", (10, 30))], None, {}, SITE,
            planner_on=False)
        golden = [
            "u BETWEEN 10 AND 30  ->  flood  4 bucket(s)  [cost flood=40]  "
            "(planner off)",
        ]
        assert [r.describe() for r in routes] == golden


class TestGroupPushdown:
    def test_pushdown_when_predicates_align_with_buckets(self, context):
        buckets = plan_group_pushdown(
            context, [Predicate("u", ">=", 75)], "u")
        assert [b.index for b in buckets] == [3]

    def test_no_predicates_pushes_down_every_bucket(self, context):
        buckets = plan_group_pushdown(context, [], "u")
        assert [b.index for b in buckets] == [0, 1, 2, 3]

    def test_partial_overlap_disables_pushdown(self, context):
        assert plan_group_pushdown(
            context, [Predicate("u", "between", (10, 30))], "u") is None

    def test_foreign_predicate_disables_pushdown(self, context):
        assert plan_group_pushdown(
            context, [Predicate("GPU", "=", True)], "u") is None

    def test_unbucketed_group_attribute_disables_pushdown(self, context):
        assert plan_group_pushdown(context, [], "vcpu") is None

    def test_planner_off_disables_pushdown(self, context):
        assert plan_group_pushdown(context, [Predicate("u", ">=", 75)], "u",
                                   planner_on=False) is None

    def test_intersection_across_predicates(self, context):
        buckets = plan_group_pushdown(
            context, [Predicate("u", ">=", 25), Predicate("u", "<", 75)], "u")
        assert [b.index for b in buckets] == [1, 2]


class TestGroupLabel:
    def test_bucketed_numeric_value_labels_by_bucket(self, context):
        assert group_label(context, "u", 30.0) == "u[25,50)"

    def test_unbucketed_value_labels_canonically(self, context):
        assert group_label(context, "vcpu", 8.0) == "8"
        assert group_label(context, "u", "n/a") == "n/a"
