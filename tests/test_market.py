"""Tests for the elastic marketplace: DEPAS auto-scaling + spot pricing
+ the open-loop market workload."""

import dataclasses

import pytest

from repro.core.plane import RBay, RBayConfig
from repro.ext.autoscale import AutoscaleConfig, SiteAutoscaler
from repro.ext.economy import PRICE_ATTRIBUTE, SpotPricer
from repro.faults import FaultSchedule
from repro.workloads.market import (
    MARKET_ATTRIBUTE,
    MARKET_TREE,
    MarketSpec,
    run_market,
    user_credit,
    zipf_cumulative,
)


class AlwaysActuate:
    """RNG stub: every probabilistic coin-flip lands on 'act'."""

    def random(self):
        return 0.0


class NeverActuate:
    def random(self):
        return 1.0


@pytest.fixture
def plane():
    plane = RBay(RBayConfig(seed=91, synthetic_sites=1, nodes_per_site=8,
                            jitter=False)).build()
    plane.sim.run()
    return plane


def make_scaler(plane, *, enabled=True, rng=None, config=None, price=5.0):
    site = plane.nodes[0].site.name
    pool = plane.site_nodes(site)[1:]
    return SiteAutoscaler(
        plane.admin(site), pool,
        config or AutoscaleConfig(),
        rng=rng or AlwaysActuate(),
        metrics=plane.obs.metrics,
        attribute=MARKET_ATTRIBUTE,
        value=True,
        price_of=lambda: price,
        enabled=enabled,
    )


class TestAutoscaleConfig:
    def test_defaults_valid(self):
        AutoscaleConfig()

    @pytest.mark.parametrize("kwargs", [
        {"low": 0.8, "high": 0.5},          # inverted band
        {"low": -0.1},                       # below 0
        {"high": 1.5},                       # above 1
        {"low": 0.5, "high": 0.5},           # empty band
        {"gain": 0.0},
        {"gain": -1.0},
        {"min_instances": -1},
    ])
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            AutoscaleConfig(**kwargs)


class TestSiteAutoscaler:
    def test_start_posts_initial_instances(self, plane):
        scaler = make_scaler(plane)
        scaler.start(3)
        plane.sim.run()
        assert scaler.instances == 3
        # Provisioning is not elasticity: no actuations counted yet.
        assert scaler.scaled_out == 0
        for node in scaler.active:
            assert node.attribute_value(PRICE_ATTRIBUTE) == 5.0
            assert node.attribute_value(MARKET_ATTRIBUTE) is True

    def test_empty_posting_set_reads_fully_utilized(self, plane):
        scaler = make_scaler(plane, config=AutoscaleConfig(min_instances=0))
        assert scaler.utilization() == 1.0

    def test_scale_out_under_pressure(self, plane):
        scaler = make_scaler(plane)
        scaler.start(1)
        plane.sim.run()
        scaler.active[0].reservation.try_reserve(1)  # util = 1.0 >= high
        scaler.tick()
        plane.sim.run()
        assert scaler.instances == 2
        assert scaler.scaled_out == 1

    def test_scale_in_when_idle(self, plane):
        scaler = make_scaler(plane)
        scaler.start(3)
        plane.sim.run()
        scaler.tick()  # util 0.0 <= low
        plane.sim.run()
        assert scaler.instances == 2
        assert scaler.scaled_in == 1
        # The withdrawn node left the market tree and lost the attribute.
        retired = scaler.spare[0]
        assert retired.attribute_value(MARKET_ATTRIBUTE) is None

    def test_scale_in_respects_min_instances(self, plane):
        scaler = make_scaler(plane)
        scaler.start(1)
        plane.sim.run()
        scaler.tick()
        assert scaler.instances == 1 and scaler.scaled_in == 0

    def test_scale_out_respects_max_instances(self, plane):
        scaler = make_scaler(plane, config=AutoscaleConfig(max_instances=2))
        scaler.start(2)
        plane.sim.run()
        for node in scaler.active:
            node.reservation.try_reserve(7)
        scaler.tick()
        assert scaler.instances == 2 and scaler.scaled_out == 0

    def test_scale_in_skips_leased_instances(self, plane):
        scaler = make_scaler(plane)
        scaler.start(2)
        plane.sim.run()
        last = scaler.active[-1]
        first = scaler.active[0]
        last.reservation.try_reserve(3)
        last.reservation.commit(3, lease_ms=60_000.0)
        scaler._retire_one()
        plane.sim.run()
        # The leased (most recent) posting survives; the idle one goes.
        assert scaler.active == [last]
        assert first in scaler.spare

    def test_retire_noop_when_all_leased(self, plane):
        scaler = make_scaler(plane)
        scaler.start(2)
        plane.sim.run()
        for i, node in enumerate(scaler.active):
            node.reservation.try_reserve(i + 1)
            node.reservation.commit(i + 1, lease_ms=60_000.0)
        scaler._retire_one()
        assert scaler.instances == 2 and scaler.scaled_in == 0

    def test_disabled_arm_publishes_but_never_actuates(self, plane):
        scaler = make_scaler(plane, enabled=False)
        scaler.start(2)
        plane.sim.run()
        util = scaler.tick()  # idle: an enabled scaler would retire one
        assert util == 0.0
        assert scaler.instances == 2
        assert scaler.scaled_in == 0 and scaler.scaled_out == 0
        site = plane.nodes[0].site.name
        gauges = plane.obs.metrics
        assert gauges.gauge("market.site.utilization").get(site=site) == 0.0
        assert gauges.gauge("market.site.instances").get(site=site) == 2.0

    def test_probability_gate_can_decline(self, plane):
        scaler = make_scaler(plane, rng=NeverActuate())
        scaler.start(1)
        plane.sim.run()
        scaler.active[0].reservation.try_reserve(1)
        scaler.tick()
        assert scaler.instances == 1  # coin-flip said no


class TestSpotPricer:
    def make(self, plane, **kwargs):
        site = plane.nodes[0].site.name
        return SpotPricer(plane.admin(site), plane.site_nodes(site)[0],
                          MARKET_TREE, plane.obs.metrics,
                          price=kwargs.pop("price", 8.0), **kwargs)

    def set_util(self, plane, value):
        site = plane.nodes[0].site.name
        plane.obs.metrics.gauge("market.site.utilization").set(
            value, site=site)

    def test_validates_parameters(self, plane):
        with pytest.raises(ValueError):
            self.make(plane, floor=0.0)
        with pytest.raises(ValueError):
            self.make(plane, floor=10.0, ceiling=5.0)
        with pytest.raises(ValueError):
            self.make(plane, low=0.9, high=0.5)

    def test_raises_price_when_hot(self, plane):
        pricer = self.make(plane, gain=0.25)
        self.set_util(plane, 0.9)
        assert pricer.tick() == pytest.approx(10.0)
        assert pricer.changes == 1

    def test_lowers_price_when_idle_and_clamps_at_floor(self, plane):
        pricer = self.make(plane, price=1.2, floor=1.0, gain=0.5)
        self.set_util(plane, 0.0)
        assert pricer.tick() == pytest.approx(1.0)  # 0.6 clamped to floor
        assert pricer.tick() == pytest.approx(1.0)
        assert pricer.changes == 1  # the clamped re-tick is not a change

    def test_clamps_at_ceiling(self, plane):
        pricer = self.make(plane, price=60.0, ceiling=64.0, gain=0.5)
        self.set_util(plane, 1.0)
        assert pricer.tick() == pytest.approx(64.0)

    def test_dead_band_holds_price(self, plane):
        pricer = self.make(plane)
        self.set_util(plane, 0.5)
        assert pricer.tick() == pytest.approx(8.0)
        assert pricer.changes == 0

    def test_reprice_reaches_market_gates(self, plane):
        site = plane.nodes[0].site.name
        admin = plane.admin(site)
        scaler = make_scaler(plane, price=8.0)
        scaler.start(2)
        plane.sim.run()
        pricer = self.make(plane, gain=0.5)
        self.set_util(plane, 1.0)
        pricer.tick()
        plane.sim.run()
        for node in scaler.active:
            assert node.attribute_value(PRICE_ATTRIBUTE) == pytest.approx(12.0)
            assert node.authorize("j", {"budget": 12.5}) is not None
            assert node.authorize("j", {"budget": 11.5}) is None


class TestPopulationHelpers:
    def test_zipf_cumulative_is_monotone_and_memoized(self):
        table = zipf_cumulative(100, 1.1)
        assert table is zipf_cumulative(100, 1.1)
        assert len(table) == 100
        assert all(b > a for a, b in zip(table, table[1:]))

    def test_user_credit_is_deterministic_and_bounded(self):
        values = [user_credit(uid) for uid in range(2000)]
        assert values == [user_credit(uid) for uid in range(2000)]
        assert all(0.0 <= v <= 1.0 for v in values)
        # The hash spreads: a fair share of users sit below a 0.05 floor.
        assert 0 < sum(1 for v in values if v < 0.05) < 400


SMALL = MarketSpec(sites=2, nodes_per_site=5, users=4_000,
                   arrival_rate_per_s=8.0, duration_ms=1_800.0,
                   spike_start_ms=600.0, spike_ms=600.0, seed=17)


class TestRunMarket:
    def test_smoke_metrics_shape(self):
        metrics = run_market(SMALL)
        assert metrics["arrivals"] > 0
        assert metrics["distinct_users"] <= metrics["arrivals"]
        assert 0.0 <= metrics["satisfied_demand"] <= 1.0
        assert 0.0 < metrics["jain_fairness"] <= 1.0
        assert set(metrics["revenue_per_site"]) == {"Site000", "Site001"}
        assert metrics["units_granted"] <= metrics["units_demanded"]
        assert metrics["purchases"] > 0
        assert metrics["admission"]["admitted"] == metrics["arrivals"]
        assert len(metrics["signature"]) == 64

    def test_same_seed_replays_identically(self):
        assert run_market(SMALL)["signature"] == \
            run_market(SMALL)["signature"]

    def test_seeds_diverge(self):
        other = dataclasses.replace(SMALL, seed=18)
        assert run_market(SMALL)["signature"] != \
            run_market(other)["signature"]

    def test_sanitizer_rides_along_clean(self):
        metrics = run_market(dataclasses.replace(SMALL, sanitize=True))
        assert metrics["sanitizer"]["violations"] == []
        # The signature is sealed before the sanitizer drain.
        assert metrics["signature"] == run_market(SMALL)["signature"]

    def test_fixed_arm_never_scales(self):
        metrics = run_market(dataclasses.replace(SMALL, autoscale=False))
        assert metrics["scale_out_events"] == 0
        assert metrics["scale_in_events"] == 0
        assert all(v == SMALL.initial_instances for v in
                   metrics["final_instances_per_site"].values())

    def test_chaos_market_stays_hygienic(self):
        # A mid-window partition plus a crashed (non-gateway) server:
        # reservation hygiene and aggregate coherence must hold through
        # scale-out/scale-in under faults, and arrivals during the
        # partition surface as typed errors, not hangs.
        schedule = (FaultSchedule()
                    .crash(8, at_ms=1_200.0, recover_at_ms=1_900.0)
                    .partition("Site000", "Site001",
                               start_ms=1_400.0, end_ms=2_000.0))
        metrics = run_market(dataclasses.replace(
            SMALL, sanitize=True, fault_schedule=schedule))
        assert metrics["sanitizer"]["violations"] == []
        assert metrics["arrivals"] > 0
