"""Unit tests for the Luette interpreter."""

import pytest

from repro.aa.errors import InstructionLimitExceeded, LuetteRuntimeError
from repro.aa.interpreter import Interpreter
from repro.aa.parser import parse
from repro.aa.stdlib import make_sandbox_globals
from repro.aa.values import LuetteTable, luette_to_python


def run(source, limit=200_000):
    interp = Interpreter(make_sandbox_globals(), instruction_limit=limit)
    return luette_to_python(interp.run_chunk(parse(source)))


class TestArithmetic:
    def test_basic_math(self):
        assert run("return 1 + 2 * 3 - 4 / 2") == 5

    def test_modulo_is_floored(self):
        assert run("return -5 % 3") == 1  # Lua semantics, unlike C
        assert run("return 5 % -3") == -1

    def test_power(self):
        assert run("return 2 ^ 10") == 1024

    def test_division_by_zero_is_inf(self):
        assert run("return 1 / 0") == float("inf")
        assert run("return -1 / 0") == float("-inf")

    def test_modulo_by_zero_is_nan(self):
        result = run("return 1 % 0")
        assert result != result  # NaN

    def test_unary_minus(self):
        assert run("return -(3 + 4)") == -7

    def test_type_error_on_adding_string(self):
        with pytest.raises(LuetteRuntimeError):
            run("return {} + 1")


class TestStringsAndComparison:
    def test_concat_coerces_numbers(self):
        assert run("return 'x' .. 1 .. 'y'") == "x1y"

    def test_concat_table_fails(self):
        with pytest.raises(LuetteRuntimeError):
            run("return 'x' .. {}")

    def test_string_comparison(self):
        assert run("return 'abc' < 'abd'") is True

    def test_mixed_comparison_fails(self):
        with pytest.raises(LuetteRuntimeError):
            run("return 1 < 'a'")

    def test_equality_across_types_is_false(self):
        assert run("return 1 == '1'") is False
        assert run("return nil == false") is False

    def test_table_equality_is_identity(self):
        assert run("local t = {} return t == t") is True
        assert run("return {} == {}") is False

    def test_length_of_string(self):
        assert run("return #'hello'") == 5


class TestTruthiness:
    def test_only_nil_and_false_are_falsy(self):
        assert run("if 0 then return 'zero-true' end") == "zero-true"
        assert run("if '' then return 'empty-true' end") == "empty-true"
        assert run("if nil then return 1 else return 2 end") == 2
        assert run("if false then return 1 else return 2 end") == 2

    def test_and_or_return_operands(self):
        assert run("return nil or 'fallback'") == "fallback"
        assert run("return 1 and 2") == 2
        assert run("return false and error('never')") is False

    def test_not(self):
        assert run("return not nil") is True
        assert run("return not 0") is False


class TestControlFlow:
    def test_if_chain(self):
        source = """
        local x = 7
        if x < 5 then return 'small'
        elseif x < 10 then return 'medium'
        else return 'large' end
        """
        assert run(source) == "medium"

    def test_while_with_break(self):
        source = """
        local i = 0
        while true do
          i = i + 1
          if i >= 5 then break end
        end
        return i
        """
        assert run(source) == 5

    def test_numeric_for(self):
        assert run("local s = 0 for i = 1, 10 do s = s + i end return s") == 55

    def test_numeric_for_with_step(self):
        assert run("local s = 0 for i = 10, 1, -2 do s = s + i end return s") == 30

    def test_numeric_for_zero_step_rejected(self):
        with pytest.raises(LuetteRuntimeError):
            run("for i = 1, 2, 0 do end")

    def test_numeric_for_no_iterations(self):
        assert run("local s = 0 for i = 5, 1 do s = s + 1 end return s") == 0

    def test_generic_for_pairs(self):
        source = """
        local t = {a = 1, b = 2, c = 3}
        local total = 0
        for k, v in pairs(t) do total = total + v end
        return total
        """
        assert run(source) == 6

    def test_generic_for_ipairs_stops_at_gap(self):
        source = """
        local t = {10, 20}
        t[4] = 40
        local total = 0
        for i, v in ipairs(t) do total = total + v end
        return total
        """
        assert run(source) == 30

    def test_break_inside_for(self):
        source = """
        local last = 0
        for i = 1, 100 do
          last = i
          if i == 3 then break end
        end
        return last
        """
        assert run(source) == 3


class TestFunctions:
    def test_recursion(self):
        source = """
        local function fact(n)
          if n <= 1 then return 1 end
          return n * fact(n - 1)
        end
        return fact(6)
        """
        assert run(source) == 720

    def test_closures_capture_environment(self):
        source = """
        local function counter()
          local n = 0
          return function()
            n = n + 1
            return n
          end
        end
        local c = counter()
        c()
        c()
        return c()
        """
        assert run(source) == 3

    def test_missing_args_are_nil(self):
        assert run("local function f(a, b) return b end return f(1) == nil") is True

    def test_extra_args_ignored(self):
        assert run("local function f(a) return a end return f(1, 2, 3)") == 1

    def test_function_without_return_yields_nil(self):
        assert run("local function f() end return f() == nil") is True

    def test_calling_non_function_fails(self):
        with pytest.raises(LuetteRuntimeError):
            run("local x = 5 return x()")

    def test_stack_overflow_guard(self):
        source = """
        local function loop() return loop() end
        return loop()
        """
        with pytest.raises(LuetteRuntimeError):
            run(source)

    def test_higher_order_functions(self):
        source = """
        local function apply(f, x) return f(x) end
        return apply(function(v) return v * 2 end, 21)
        """
        assert run(source) == 42


class TestTablesRuntime:
    def test_constructor_and_index(self):
        assert run("local t = {x = {y = 9}} return t.x.y") == 9

    def test_array_keys_start_at_one(self):
        assert run("local t = {7, 8} return t[1] + t[2]") == 15

    def test_float_int_key_unification(self):
        assert run("local t = {} t[1] = 'a' return t[1.0]") == "a"

    def test_nil_assignment_deletes(self):
        assert run("local t = {x = 1} t.x = nil return t.x == nil") is True

    def test_nil_index_raises(self):
        with pytest.raises(LuetteRuntimeError):
            run("local t = {} t[nil] = 1")

    def test_indexing_nil_raises(self):
        with pytest.raises(LuetteRuntimeError):
            run("local t = nil return t.x")

    def test_length_border(self):
        assert run("local t = {1, 2, 3} return #t") == 3


class TestScoping:
    def test_local_shadows_outer(self):
        source = """
        local x = 1
        do
          local x = 2
        end
        return x
        """
        assert run(source) == 1

    def test_assignment_reaches_enclosing_scope(self):
        source = """
        local x = 1
        do
          x = 2
        end
        return x
        """
        assert run(source) == 2

    def test_undeclared_global_is_nil(self):
        assert run("return undefined_thing == nil") is True

    def test_loop_variable_is_fresh_each_iteration(self):
        source = """
        local fns = {}
        for i = 1, 3 do
          table.insert(fns, function() return i end)
        end
        return fns[1]() + fns[2]() + fns[3]()
        """
        assert run(source) == 6


class TestInstructionBudget:
    def test_infinite_loop_terminated(self):
        with pytest.raises(InstructionLimitExceeded):
            run("while true do end", limit=500)

    def test_budget_resets_between_chunks(self):
        interp = Interpreter(make_sandbox_globals(), instruction_limit=5_000)
        chunk = parse("local s = 0 for i = 1, 100 do s = s + 1 end return s")
        assert interp.run_chunk(chunk) == 100
        assert interp.run_chunk(chunk) == 100  # second run gets a fresh budget

    def test_instructions_counted(self):
        interp = Interpreter(make_sandbox_globals())
        interp.run_chunk(parse("return 1 + 1"))
        assert interp.instructions_executed > 0

    def test_tight_budget_allows_small_programs(self):
        assert run("return 1 + 1", limit=50) == 2
