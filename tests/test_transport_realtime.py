"""RealtimeScheduler: the wall-clock stand-in for the DES Simulator."""

import pytest

from repro.sim.engine import SimulationError
from repro.transport.realtime import RealtimeScheduler, RealtimeTimeout


@pytest.fixture
def sched():
    s = RealtimeScheduler(time_scale=0.01, poll_interval_s=0.0005)
    yield s
    s.close()


def test_schedule_fires_in_order(sched):
    fired = []
    sched.schedule(20.0, fired.append, "late")
    sched.schedule(5.0, fired.append, "early")
    sched.call_soon(fired.append, "now")
    sched.run()
    assert fired == ["now", "early", "late"]
    assert sched.events_executed == 3
    assert sched.pending_events == 0


def test_now_advances_and_events_stamp_time(sched):
    t0 = sched.now
    seen = []
    sched.schedule(50.0, lambda: seen.append(sched.now))
    sched.run()
    assert seen and seen[0] >= t0 + 50.0 * 0.5  # generous: wall jitter


def test_cancel_prevents_execution(sched):
    fired = []
    event = sched.schedule(10.0, fired.append, "x")
    event.cancel()
    event.cancel()  # idempotent
    sched.run()
    assert fired == []
    assert sched.pending_events == 0


def test_post_and_schedule_at(sched):
    fired = []
    sched.post(1.0, fired.append, "posted")
    sched.schedule_at(sched.now + 2.0, fired.append, "at")
    sched.schedule_at(0.0, fired.append, "past-means-asap")
    sched.run()
    assert sorted(fired) == ["at", "past-means-asap", "posted"]


def test_negative_delay_rejected(sched):
    with pytest.raises(SimulationError):
        sched.schedule(-1.0, lambda: None)
    with pytest.raises(SimulationError):
        sched.run_for(-5.0)


def test_periodic_task_fires_and_stops(sched):
    ticks = []
    task = sched.schedule_periodic(5.0, lambda: ticks.append(sched.now))
    assert not task.stopped
    sched.run_until(lambda: len(ticks) >= 3, timeout=5_000.0)
    task.stop()
    assert task.stopped
    count = len(ticks)
    assert count >= 3
    sched.run()  # daemon timers never block quiescence
    assert len(ticks) == count


def test_periodic_interval_must_be_positive(sched):
    with pytest.raises(SimulationError):
        sched.schedule_periodic(0.0, lambda: None)


def test_run_until_predicate_and_timeout(sched):
    box = []
    sched.schedule(10.0, box.append, 1)
    assert sched.run_until(lambda: box, timeout=5_000.0)
    assert not sched.run_until(lambda: False, timeout=20.0)


def test_callback_errors_propagate_to_pump(sched):
    def boom():
        raise RuntimeError("broken callback")

    sched.schedule(1.0, boom)
    with pytest.raises(RuntimeError, match="broken callback"):
        sched.run()


def test_report_error_surfaces(sched):
    sched.report_error(ValueError("transport died"))
    with pytest.raises(ValueError, match="transport died"):
        sched.run_for(1.0)


def test_step_and_idle_hooks(sched):
    steps = []
    idles = []
    sched.set_step_hook(lambda now, seq: steps.append(seq))
    sched.set_idle_hook(lambda: idles.append(True))
    sched.schedule(1.0, lambda: None)
    sched.schedule(2.0, lambda: None)
    sched.run()
    assert len(steps) == 2
    assert idles == [True]


def test_idle_sources_hold_off_quiescence(sched):
    busy = [True]
    sched.add_idle_source(lambda: not busy[0])
    sched.schedule(5.0, busy.__setitem__, 0, False)
    sched.run()  # returns only once the source reports quiet
    assert not busy[0]


def test_wall_budget_raises(sched):
    sched.max_wall_s = 0.05
    sched.add_idle_source(lambda: False)  # never quiet
    with pytest.raises(RealtimeTimeout):
        sched.run()


def test_close_is_idempotent_and_blocks_scheduling():
    sched = RealtimeScheduler(time_scale=0.01)
    sched.close()
    sched.close()
    with pytest.raises(SimulationError):
        sched.schedule(1.0, lambda: None)
    with pytest.raises(SimulationError):
        sched.run()


def test_run_is_not_reentrant(sched):
    def reenter():
        sched.run()

    sched.schedule(1.0, reenter)
    with pytest.raises(SimulationError, match="not reentrant"):
        sched.run()
