"""Soak test: hours of simulated operation under monitor + churn + queries.

The long-run invariants a production deployment would watch:

* no reservation leaks (everything committed is held by a live lease);
* tree sizes equal ground-truth membership after convergence;
* per-topic state stays bounded (no unbounded growth in children tables);
* the plane keeps answering queries correctly throughout.
"""

import pytest

from repro.core.monitor import AttributeChurn
from repro.core.naming import instance_tree, site_tree
from repro.core.plane import RBay, RBayConfig
from repro.workloads.generator import FederationWorkload, WorkloadSpec
from repro.workloads.queries import QueryWorkload

SIM_HOURS = 0.5  # simulated half-hour of continuous operation


@pytest.fixture(scope="module")
def soaked():
    plane = RBay(RBayConfig(seed=2050, nodes_per_site=12, jitter=True,
                            maintenance_interval_ms=2_000.0,
                            reservation_hold_ms=1_000.0,
                            lease_ms=10_000.0)).build()
    workload = FederationWorkload(plane, WorkloadSpec(password="pw")).apply()
    plane.sim.run()

    # Continuous utilization churn + GPU attribute churn + maintenance.
    plane.monitor.track_many(plane.nodes)
    plane.monitor.start()
    churn = AttributeChurn(plane.sim, plane.streams.stream("soak-churn"),
                           plane.site_nodes("Virginia"), "GPU",
                           value_factory=lambda rng: True,
                           rate=0.1, interval_ms=5_000.0)
    admin = plane.admin("Virginia")
    for node in plane.site_nodes("Virginia"):
        admin.post_resource(node, "GPU", True)
    churn.start()
    plane.start_maintenance()

    # A steady trickle of queries while the system runs.
    generator = QueryWorkload(plane.streams.stream("soak-queries"),
                              [s.name for s in plane.registry], k=1,
                              password="pw")
    customer = plane.make_customer("soaker", "Tokyo")
    outcomes = []
    total_ms = SIM_HOURS * 3_600_000.0
    step_ms = total_ms / 60.0
    for i in range(60):
        plane.settle(step_ms)
        sql, payload = generator.make("Tokyo", 1 + i % 8)
        result = customer.query_once(sql, payload=payload).result()
        outcomes.append(result)
        if result.entries:
            customer.release_all(result)

    churn.stop()
    plane.monitor.stop()
    plane.settle(30_000.0)  # converge with maintenance still running
    plane.stop_maintenance()
    plane.sim.run()
    return plane, workload, outcomes


def test_queries_kept_flowing(soaked):
    plane, workload, outcomes = soaked
    assert len(outcomes) == 60
    satisfied = sum(1 for o in outcomes if o.satisfied)
    # Instance types exist somewhere for most draws; the system must keep
    # answering (the exact rate depends on the Gaussian population).
    assert satisfied >= 30


def test_no_reservation_leaks(soaked):
    plane, workload, outcomes = soaked
    plane.settle(20_000.0)  # exceed reservation hold + lease windows
    for node in plane.nodes:
        if node.alive:
            assert node.reservation.is_free(), node


def test_tree_sizes_match_ground_truth(soaked):
    plane, workload, _ = soaked
    # Churned GPU tree in Virginia:
    truth = sum(1 for n in plane.site_nodes("Virginia")
                if n.alive and n.attribute_value("GPU") is True)
    node = plane.site_nodes("Virginia")[0]
    assert plane.tree_size(site_tree("Virginia", "GPU"),
                           via=node, scope="site") == truth


def test_instance_trees_still_consistent(soaked):
    plane, workload, _ = soaked
    for site_name in ("Tokyo", "Ireland"):
        population = workload.site_instance_population(site_name)
        probe = plane.site_nodes(site_name)[0]
        for itype, expected in population.items():
            if expected == 0:
                continue
            size = plane.tree_size(instance_tree(site_name, itype),
                                   via=probe, scope="site")
            assert size == expected, (site_name, itype)


def test_topic_state_is_bounded(soaked):
    plane, workload, _ = soaked
    # Nobody should accumulate more children than the population of its
    # site (trees are site-scoped) nor hold topics with dead parents.
    for node in plane.nodes:
        if not node.alive:
            continue
        site_size = len(plane.site_nodes(node.site.name))
        for state in node.scribe.topics().values():
            assert len(state.children) <= site_size
            if state.parent is not None:
                assert plane.network.has_host(state.parent)


def test_aa_error_rate_is_zero(soaked):
    """Policy handlers never crashed during the soak."""
    plane, workload, _ = soaked
    total_errors = sum(n.aa.error_count() for n in plane.nodes if n.alive)
    assert total_errors == 0
