"""EngineProtocol conformance: the DES and the live scheduler agree.

The protocol (``repro.sim.EngineProtocol``) names the scheduling surface
the rest of the system may rely on.  This suite drives *both*
implementations — the virtual-time ``Simulator`` and the wall-clock
``RealtimeScheduler`` — through that surface only, so any behavioral
drift between the oracle and the live engine fails here before it can
corrupt a live run.
"""

import pytest

from repro.sim import EngineProtocol, Simulator
from repro.transport.realtime import RealtimeScheduler

#: Virtual milliseconds are compressed 100x for the live engine so the
#: suite stays fast, while delays remain >= 1ms of wall time — far above
#: the event loop's timer granularity, keeping firing order reliable.
TIME_SCALE = 0.01


@pytest.fixture(params=["sim", "realtime"])
def engine(request):
    if request.param == "sim":
        yield Simulator()
    else:
        scheduler = RealtimeScheduler(time_scale=TIME_SCALE, max_wall_s=60.0)
        yield scheduler
        scheduler.close()


class TestProtocolShape:
    def test_simulator_satisfies_protocol(self):
        assert isinstance(Simulator(), EngineProtocol)

    def test_realtime_scheduler_satisfies_protocol(self):
        scheduler = RealtimeScheduler(time_scale=TIME_SCALE)
        try:
            assert isinstance(scheduler, EngineProtocol)
        finally:
            scheduler.close()

    def test_protocol_is_structural(self):
        class Impostor:
            pass

        assert not isinstance(Impostor(), EngineProtocol)


class TestConformance:
    def test_schedule_fires_in_delay_order(self, engine):
        fired = []
        engine.schedule(200.0, fired.append, "late")
        engine.schedule(100.0, fired.append, "early")
        engine.call_soon(fired.append, "soon")
        engine.run_until_idle()
        assert fired == ["soon", "early", "late"]

    def test_post_is_fire_and_forget(self, engine):
        fired = []
        assert engine.post(100.0, fired.append, "posted") is None
        engine.run_until_idle()
        assert fired == ["posted"]

    def test_schedule_at_absolute_time(self, engine):
        fired = []
        engine.schedule_at(engine.now + 150.0, fired.append, "abs")
        engine.run_until_idle()
        assert fired == ["abs"]

    def test_cancel_prevents_execution(self, engine):
        fired = []
        handle = engine.schedule(100.0, fired.append, "cancelled")
        engine.schedule(100.0, fired.append, "kept")
        handle.cancel()
        engine.run_until_idle()
        assert fired == ["kept"]

    def test_run_for_advances_the_clock(self, engine):
        before = engine.now
        engine.run_for(250.0)
        assert engine.now >= before + 250.0

    def test_run_until_predicate(self, engine):
        fired = []
        engine.schedule(100.0, fired.append, 1)
        engine.schedule(200.0, fired.append, 2)
        engine.schedule(10_000.0, fired.append, 3)
        assert engine.run_until(lambda: len(fired) >= 2, timeout=5_000.0)
        assert len(fired) >= 2

    def test_run_until_timeout_returns_false(self, engine):
        assert not engine.run_until(lambda: False, timeout=100.0)

    def test_periodic_task_fires_until_stopped(self, engine):
        hits = []
        task = engine.schedule_periodic(100.0, lambda: hits.append(1))
        assert engine.run_until(lambda: len(hits) >= 3, timeout=30_000.0)
        task.stop()
        assert task.stopped

    def test_events_executed_counts_up(self, engine):
        before = engine.events_executed
        for _ in range(3):
            engine.call_soon(lambda: None)
        engine.run_until_idle()
        assert engine.events_executed >= before + 3

    def test_pending_events_drains_to_zero(self, engine):
        engine.schedule(100.0, lambda: None)
        engine.schedule(200.0, lambda: None)
        assert engine.pending_events >= 2
        engine.run_until_idle()
        assert engine.pending_events == 0

    def test_step_hook_observes_each_event(self, engine):
        steps = []
        engine.set_step_hook(lambda now, seq: steps.append((now, seq)))
        engine.schedule(100.0, lambda: None)
        engine.schedule(200.0, lambda: None)
        engine.run_until_idle()
        assert len(steps) == 2
        engine.set_step_hook(None)
        engine.call_soon(lambda: None)
        engine.run_until_idle()
        assert len(steps) == 2

    def test_idle_source_gates_the_idle_hook(self, engine):
        quiet = [False]
        idled = []
        engine.add_idle_source(lambda: quiet[0])
        engine.set_idle_hook(lambda: idled.append(1))
        # Queue empty but the source reports outstanding work: no idle
        # hook.  (max_events=0 bounds the live pump, which otherwise
        # spins waiting for quiescence that cannot arrive.)
        engine.run_until_idle(max_events=0)
        assert idled == []
        quiet[0] = True
        engine.run_until_idle()
        assert idled == [1]
