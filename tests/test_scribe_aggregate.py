"""Unit tests for aggregation functions and in-tree aggregation."""

import pytest

from repro.scribe.aggregate import (
    AGGREGATE_FACTORIES,
    AGGREGATE_FUNCTIONS,
    AllFunction,
    AnyFunction,
    AvgFunction,
    CountFunction,
    FilterCountFunction,
    MaxFunction,
    MinFunction,
    SumFunction,
    make_aggregate,
)


class TestFunctions:
    def test_registry_contains_core_functions(self):
        for name in ("count", "sum", "min", "max", "avg", "any", "all"):
            assert name in AGGREGATE_FUNCTIONS

    def test_count(self):
        fn = CountFunction()
        assert fn.lift("anything") == 1
        assert fn.combine(fn.zero(), fn.lift(None)) == 1
        assert fn.combine(3, 4) == 7

    def test_sum(self):
        fn = SumFunction()
        acc = fn.zero()
        for value in (1, 2.5, 3):
            acc = fn.combine(acc, fn.lift(value))
        assert acc == 6.5

    def test_min_with_empty_subtrees(self):
        fn = MinFunction()
        assert fn.combine(None, None) is None
        assert fn.combine(None, 5.0) == 5.0
        assert fn.combine(3.0, 5.0) == 3.0

    def test_max(self):
        fn = MaxFunction()
        assert fn.combine(fn.lift(2), fn.lift(9)) == 9.0
        assert fn.finalize(None) is None

    def test_avg_hierarchical_property(self):
        """avg over a combined set equals avg of the union of leaves."""
        fn = AvgFunction()
        left = fn.combine(fn.lift(10), fn.lift(20))
        right = fn.lift(60)
        assert fn.finalize(fn.combine(left, right)) == pytest.approx(30.0)

    def test_avg_empty_is_none(self):
        fn = AvgFunction()
        assert fn.finalize(fn.zero()) is None

    def test_any_all(self):
        any_fn, all_fn = AnyFunction(), AllFunction()
        assert any_fn.combine(False, True) is True
        assert any_fn.zero() is False
        assert all_fn.combine(True, False) is False
        assert all_fn.zero() is True

    def test_filter_count(self):
        fn = FilterCountFunction(lambda v: v < 10, name="below10")
        acc = fn.zero()
        for value in (5, 15, 3):
            acc = fn.combine(acc, fn.lift(value))
        assert acc == 2
        assert fn.name == "below10"

    def test_make_aggregate_returns_shared_builtin(self):
        assert make_aggregate("sum") is AGGREGATE_FUNCTIONS["sum"]

    def test_make_aggregate_filter_count_with_predicate(self):
        fn = make_aggregate("filter_count", lambda v: v > 10, name="busy")
        assert isinstance(fn, FilterCountFunction)
        assert fn.name == "busy"
        assert fn.lift(42) == 1 and fn.lift(3) == 0
        # Parameterized lookups construct fresh instances every time.
        assert make_aggregate("filter_count", lambda v: True) is not fn

    def test_make_aggregate_unknown_name_raises(self):
        with pytest.raises(KeyError):
            make_aggregate("no_such_aggregate")

    def test_make_aggregate_args_to_nonparameterized_raises(self):
        with pytest.raises(KeyError):
            make_aggregate("sum", lambda v: v)

    def test_filter_count_registered_as_factory(self):
        assert AGGREGATE_FACTORIES["filter_count"] is FilterCountFunction
        assert "filter_count" not in AGGREGATE_FUNCTIONS

    def test_combine_associative_commutative(self):
        fn = SumFunction()
        a, b, c = fn.lift(1), fn.lift(2), fn.lift(3)
        assert fn.combine(fn.combine(a, b), c) == fn.combine(a, fn.combine(b, c))
        assert fn.combine(a, b) == fn.combine(b, a)


class TestInTreeAggregation:
    @pytest.fixture
    def tree(self, sim, streams, scribe_overlay):
        rng = streams.stream("agg")
        members = rng.sample(scribe_overlay.nodes, 25)
        for i, node in enumerate(members):
            node.app("scribe").join(node, "util")
            node.app("scribe").set_local(node, "util", "sum", float(i))
            node.app("scribe").set_local(node, "util", "min", float(i))
            node.app("scribe").set_local(node, "util", "max", float(i))
            node.app("scribe").set_local(node, "util", "avg", float(i))
        sim.run()
        return scribe_overlay, members

    def query(self, overlay, names):
        asker = overlay.nodes[0]
        return asker.app("scribe").query_aggregate(asker, "util", names).result()

    def test_sum_at_root(self, tree):
        overlay, members = tree
        values = self.query(overlay, ["sum"])
        assert values["sum"] == sum(range(25))

    def test_min_max_at_root(self, tree):
        overlay, members = tree
        values = self.query(overlay, ["min", "max"])
        assert values["min"] == 0.0
        assert values["max"] == 24.0

    def test_avg_at_root(self, tree):
        overlay, members = tree
        values = self.query(overlay, ["avg"])
        assert values["avg"] == pytest.approx(12.0)

    def test_update_propagates(self, sim, tree):
        overlay, members = tree
        node = members[0]
        node.app("scribe").set_local(node, "util", "max", 999.0)
        sim.run()
        assert self.query(overlay, ["max"])["max"] == 999.0

    def test_clear_local_removes_contribution(self, sim, tree):
        overlay, members = tree
        top = members[24]
        top.app("scribe").clear_local(top, "util", "max")
        sim.run()
        assert self.query(overlay, ["max"])["max"] == 23.0

    def test_leave_removes_contribution(self, sim, tree):
        overlay, members = tree
        top = members[24]
        top.app("scribe").leave(top, "util")
        sim.run()
        assert self.query(overlay, ["sum"])["sum"] == sum(range(24))

    def test_unknown_aggregate_returns_none(self, tree):
        overlay, _ = tree
        assert self.query(overlay, ["nonsense"])["nonsense"] is None

    def test_unknown_local_aggregate_raises(self, scribe_overlay):
        node = scribe_overlay.nodes[0]
        with pytest.raises(KeyError):
            node.app("scribe").set_local(node, "t", "bogus", 1)

    def test_aggregation_survives_member_failure(self, sim, tree):
        overlay, members = tree
        members[24].fail()
        sim.run()
        for _ in range(3):
            for node in overlay.live_nodes():
                node.app("scribe").maintain(node)
            sim.run()
        values = self.query(overlay, ["max"])
        assert values["max"] == 23.0
