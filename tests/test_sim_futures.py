"""Unit tests for simulation futures."""

import pytest

from repro.sim.futures import Future, FutureError, FutureTimeout, gather


def test_resolve_and_value(sim):
    future = Future(sim)
    future.resolve(41)
    assert future.resolved
    assert future.value == 41


def test_value_before_resolve_raises(sim):
    with pytest.raises(FutureError):
        Future(sim).value


def test_double_resolve_raises(sim):
    future = Future(sim)
    future.resolve(1)
    with pytest.raises(FutureError):
        future.resolve(2)


def test_try_resolve_reports_effect(sim):
    future = Future(sim)
    assert future.try_resolve(1)
    assert not future.try_resolve(2)
    assert future.value == 1


def test_callback_after_resolution_fires_immediately(sim):
    future = Future(sim)
    future.resolve("x")
    got = []
    future.add_callback(got.append)
    assert got == ["x"]


def test_callbacks_fire_in_order(sim):
    future = Future(sim)
    got = []
    future.add_callback(lambda v: got.append(("a", v)))
    future.add_callback(lambda v: got.append(("b", v)))
    future.resolve(9)
    assert got == [("a", 9), ("b", 9)]


def test_timeout_resolves_with_future_timeout(sim):
    future = Future(sim, timeout=10.0)
    sim.run()
    assert future.timed_out()
    assert isinstance(future.value, FutureTimeout)


def test_resolution_cancels_timeout(sim):
    future = Future(sim, timeout=10.0)
    sim.schedule(5.0, future.resolve, "ok")
    sim.run()
    assert future.value == "ok"
    assert not future.timed_out()


def test_result_drives_simulator(sim):
    future = Future(sim)
    sim.schedule(3.0, future.resolve, 123)
    assert future.result() == 123
    assert sim.now == 3.0


def test_result_raises_on_timeout(sim):
    future = Future(sim, timeout=1.0)
    with pytest.raises(FutureTimeout):
        future.result()


class TestGather:
    def test_gathers_in_order(self, sim):
        futures = [Future(sim) for _ in range(3)]
        combined = gather(sim, futures)
        # Resolve out of order.
        futures[2].resolve("c")
        futures[0].resolve("a")
        futures[1].resolve("b")
        assert combined.value == ["a", "b", "c"]

    def test_empty_gather_resolves(self, sim):
        combined = gather(sim, [])
        sim.run()
        assert combined.value == []

    def test_individual_timeouts_appear_in_results(self, sim):
        fast = Future(sim)
        slow = Future(sim, timeout=5.0)
        combined = gather(sim, [fast, slow])
        fast.resolve(1)
        sim.run()
        assert combined.value[0] == 1
        assert isinstance(combined.value[1], FutureTimeout)

    def test_overall_timeout(self, sim):
        never = Future(sim)
        combined = gather(sim, [never], timeout=5.0)
        sim.run()
        assert combined.timed_out()

    def test_gather_with_pre_resolved(self, sim):
        done = Future(sim)
        done.resolve("pre")
        pending = Future(sim)
        combined = gather(sim, [done, pending])
        pending.resolve("post")
        assert combined.value == ["pre", "post"]
