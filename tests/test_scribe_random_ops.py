"""Property-style tests: random operation sequences against tree invariants."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.net.latency import UniformLatencyModel
from repro.net.network import Network
from repro.net.site import SiteRegistry
from repro.pastry.overlay import Overlay
from repro.scribe.scribe import ScribeApplication
from repro.sim.engine import Simulator
from repro.sim.random_streams import RandomStreams

N_NODES = 24

# op = (node index, join?)  — applied in order, then invariants checked.
op_sequences = st.lists(
    st.tuples(st.integers(min_value=0, max_value=N_NODES - 1), st.booleans()),
    min_size=1,
    max_size=40,
)


def build_overlay():
    sim = Simulator()
    streams = RandomStreams(2024)
    registry = SiteRegistry()
    site = registry.add("S", "X")
    network = Network(sim, UniformLatencyModel(0.3))
    overlay = Overlay(sim, network, streams, registry)
    for _ in range(N_NODES):
        overlay.create_node(site)
    overlay.bootstrap()
    for node in overlay.nodes:
        node.register_app(ScribeApplication(sim))
    return sim, overlay


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(op_sequences)
def test_tree_size_matches_membership_after_any_op_sequence(ops):
    sim, overlay = build_overlay()
    expected = set()
    for index, join in ops:
        node = overlay.nodes[index]
        if join:
            node.app("scribe").join(node, "T")
            expected.add(index)
        else:
            node.app("scribe").leave(node, "T")
            expected.discard(index)
    sim.run()
    asker = overlay.nodes[0]
    size = asker.app("scribe").tree_size(asker, "T").result()
    assert size == len(expected)


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(op_sequences)
def test_multicast_reaches_exactly_current_members(ops):
    sim, overlay = build_overlay()
    expected = set()
    for index, join in ops:
        node = overlay.nodes[index]
        if join:
            node.app("scribe").join(node, "T")
            expected.add(index)
        else:
            node.app("scribe").leave(node, "T")
            expected.discard(index)
    sim.run()
    got = set()
    for i, node in enumerate(overlay.nodes):
        node.app("scribe").multicast_handler = (
            lambda n, t, b, i=i: got.add(i)
        )
    overlay.nodes[0].app("scribe").multicast(overlay.nodes[0], "T", {})
    sim.run()
    assert got == expected


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(op_sequences)
def test_tree_structure_is_acyclic_and_rooted(ops):
    """Parent pointers never form a cycle; all in-tree nodes reach the root."""
    sim, overlay = build_overlay()
    for index, join in ops:
        node = overlay.nodes[index]
        if join:
            node.app("scribe").join(node, "T")
        else:
            node.app("scribe").leave(node, "T")
    sim.run()
    by_address = {node.address: node for node in overlay.nodes}
    for node in overlay.nodes:
        state = node.app("scribe").topics().get("T")
        if state is None or not state.in_tree():
            continue
        seen = set()
        current = node
        while True:
            assert current.address not in seen, "cycle in tree parents"
            seen.add(current.address)
            current_state = current.app("scribe").topics().get("T")
            if current_state is None or current_state.parent is None:
                break
            current = by_address[current_state.parent]
        # The walk ended at a node with no parent: the root (or a detached
        # node that never got members, which must then have no children).
        final_state = current.app("scribe").topics().get("T")
        assert final_state.is_root or not final_state.children


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(op_sequences, st.lists(st.floats(min_value=0, max_value=100),
                              min_size=N_NODES, max_size=N_NODES))
def test_aggregate_sum_matches_membership(ops, values):
    sim, overlay = build_overlay()
    expected = set()
    for index, join in ops:
        node = overlay.nodes[index]
        if join:
            node.app("scribe").join(node, "T")
            node.app("scribe").set_local(node, "T", "sum", values[index])
            expected.add(index)
        else:
            node.app("scribe").leave(node, "T")
            expected.discard(index)
    sim.run()
    asker = overlay.nodes[0]
    result = asker.app("scribe").query_aggregate(asker, "T", ["sum"]).result()
    expected_sum = sum(values[i] for i in expected)
    assert result["sum"] == pytest.approx(expected_sum)
