"""Tests for the Past and Ganglia baselines."""

import pytest

from repro.baselines.ganglia import GangliaFederation
from repro.baselines.past import PastStore
from repro.net.latency import TableIILatencyModel, make_ec2_registry
from repro.net.network import Network
from repro.query.predicates import Predicate


class TestPastStore:
    def test_put_get(self):
        store = PastStore()
        store.put("GPU", 1)
        store.put("GPU", 2)
        assert store.get("GPU") == [1, 2]

    def test_get_missing_is_none(self):
        assert PastStore().get("nope") is None

    def test_get_ignores_payload(self):
        store = PastStore()
        store.put("GPU", 1)
        assert store.get("GPU", payload={"password": "x"}) == [1]

    def test_get_returns_copy(self):
        store = PastStore()
        store.put("GPU", 1)
        store.get("GPU").append(99)
        assert store.get("GPU") == [1]

    def test_remove_whole_attribute(self):
        store = PastStore()
        store.put("GPU", 1)
        assert store.remove("GPU")
        assert store.get("GPU") is None
        assert not store.remove("GPU")

    def test_remove_single_node(self):
        store = PastStore()
        store.put("GPU", 1)
        store.put("GPU", 2)
        assert store.remove("GPU", 1)
        assert store.get("GPU") == [2]
        assert not store.remove("GPU", 99)

    def test_remove_last_node_drops_attribute(self):
        store = PastStore()
        store.put("GPU", 1)
        store.remove("GPU", 1)
        assert store.attribute_count() == 0

    def test_len(self):
        store = PastStore()
        store.put("a", 1)
        store.put("b", 1)
        assert len(store) == 2


@pytest.fixture
def ganglia(sim):
    registry = make_ec2_registry()
    network = Network(sim, TableIILatencyModel())
    federation = GangliaFederation(sim, network, registry.by_name("Virginia"))
    next_id = [0]
    for site in registry:
        ids = list(range(next_id[0], next_id[0] + 10))
        next_id[0] += 10
        federation.add_cluster(site, ids)
    for i, node in enumerate(federation.nodes):
        node.set_attribute("GPU", i % 2 == 0)
        node.set_attribute("util", float(i % 100))
    return federation, registry


class TestGanglia:
    def test_snapshot_flows_to_manager(self, sim, ganglia):
        federation, registry = ganglia
        federation.start(announce_interval_ms=100.0, poll_interval_ms=100.0)
        sim.run(until=1_000.0)
        federation.stop()
        assert len(federation.manager.global_snapshot) == len(federation.nodes)

    def test_query_served_from_snapshot(self, sim, ganglia):
        federation, registry = ganglia
        federation.start(announce_interval_ms=100.0, poll_interval_ms=100.0)
        sim.run(until=1_000.0)
        federation.stop()
        client = federation.make_client(registry.by_name("Tokyo"))
        future = client.query(federation.manager.address,
                              [Predicate("GPU", "=", True)], k=5)
        node_ids = future.result()
        assert len(node_ids) == 5
        assert all(nid % 2 == 0 for nid in node_ids)

    def test_site_filter(self, sim, ganglia):
        federation, registry = ganglia
        federation.start(announce_interval_ms=100.0, poll_interval_ms=100.0)
        sim.run(until=1_000.0)
        federation.stop()
        client = federation.make_client(registry.by_name("Tokyo"))
        node_ids = client.query(federation.manager.address,
                                [Predicate("GPU", "=", True)],
                                sites=["Virginia"]).result()
        assert node_ids
        assert all(federation.manager.node_sites[nid] == "Virginia" for nid in node_ids)

    def test_central_policy_checks_burden_manager(self, sim, ganglia):
        federation, registry = ganglia
        for node in federation.nodes:
            federation.manager.policies[node.node_id] = (
                lambda payload: payload == "pw"
            )
        federation.start(announce_interval_ms=100.0, poll_interval_ms=100.0)
        sim.run(until=500.0)
        federation.stop()
        client = federation.make_client(registry.by_name("Tokyo"))
        good = client.query(federation.manager.address,
                            [Predicate("GPU", "=", True)], payload="pw").result()
        bad = client.query(federation.manager.address,
                           [Predicate("GPU", "=", True)], payload="x").result()
        assert good and not bad
        assert federation.manager.policy_checks > 0

    def test_manager_inbound_bandwidth_grows_with_nodes(self, sim):
        registry = make_ec2_registry()

        def run_federation(nodes_per_site):
            from repro.sim.engine import Simulator

            local_sim = Simulator()
            network = Network(local_sim, TableIILatencyModel())
            federation = GangliaFederation(local_sim, network, registry[0])
            next_id = 0
            for site in registry:
                federation.add_cluster(site, list(range(next_id, next_id + nodes_per_site)))
                next_id += nodes_per_site
            for node in federation.nodes:
                node.set_attribute("blob", "x" * 100)
            federation.start(announce_interval_ms=100.0, poll_interval_ms=100.0)
            local_sim.run(until=1_000.0)
            federation.stop()
            return federation.manager_inbound_bytes()

        small = run_federation(5)
        large = run_federation(20)
        assert large > small * 3  # inbound load scales with federation size

    def test_query_latency_includes_manager_rtt(self, sim, ganglia):
        federation, registry = ganglia
        federation.start(announce_interval_ms=50.0, poll_interval_ms=50.0)
        sim.run(until=500.0)
        federation.stop()
        client = federation.make_client(registry.by_name("Tokyo"))
        start = sim.now
        client.query(federation.manager.address,
                     [Predicate("GPU", "=", True)], k=1).result()
        elapsed = sim.now - start
        # Manager sits in Virginia; Tokyo's RTT to Virginia is ~191.6 ms.
        assert elapsed >= 191.0
