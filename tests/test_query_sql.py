"""Unit tests for the SQL-subset parser."""

import pytest

from repro.query.sql import Query, SQLSyntaxError, parse_query


def test_paper_figure6_query():
    query = parse_query(
        'SELECT 5 FROM * WHERE CPU_model = "Intel Core i7" '
        "AND CPU_utilization < 10% GROUPBY CPU_utilization DESC;"
    )
    assert query.k == 5
    assert query.sites is None
    assert len(query.predicates) == 2
    first, second = query.predicates
    assert (first.attribute, first.op, first.value) == ("CPU_model", "=", "Intel Core i7")
    assert (second.attribute, second.op, second.value) == ("CPU_utilization", "<", 10.0)
    assert query.order_by == "CPU_utilization"
    assert query.descending


def test_select_star_means_unbounded():
    assert parse_query("SELECT * FROM * WHERE a = 1").k is None


def test_select_nodeid_alias():
    assert parse_query("SELECT NodeId FROM * WHERE a = 1").k is None


def test_select_zero_rejected():
    with pytest.raises(SQLSyntaxError):
        parse_query("SELECT 0 FROM *")


def test_site_list():
    query = parse_query("SELECT 1 FROM 'Virginia', Tokyo WHERE x = 1")
    assert query.sites == ["Virginia", "Tokyo"]


def test_where_is_optional():
    query = parse_query("SELECT 1 FROM Virginia")
    assert query.predicates == []


def test_operators():
    query = parse_query(
        "SELECT 1 FROM * WHERE a = 1 AND b < 2 AND c <= 3 AND d > 4 "
        "AND e >= 5 AND f <> 6 AND g != 7 AND h == 8"
    )
    ops = [p.op for p in query.predicates]
    assert ops == ["=", "<", "<=", ">", ">=", "<>", "<>", "="]


def test_value_types():
    query = parse_query(
        "SELECT 1 FROM * WHERE s = 'text' AND n = 2.5 AND p < 15% "
        "AND t = true AND f = false AND w = bareword"
    )
    values = [p.value for p in query.predicates]
    assert values == ["text", 2.5, 15.0, True, False, "bareword"]


def test_string_escapes():
    query = parse_query(r"SELECT 1 FROM * WHERE s = 'it\'s'")
    assert query.predicates[0].value == "it's"


def test_keywords_case_insensitive():
    query = parse_query("select 2 from * where A = 1 groupby A desc")
    assert query.k == 2 and query.descending


def test_order_by_alternative_syntax():
    query = parse_query("SELECT 1 FROM * WHERE a = 1 ORDER BY a ASC")
    assert query.order_by == "a" and not query.descending


def test_groupby_default_ascending():
    query = parse_query("SELECT 1 FROM * WHERE a = 1 GROUPBY a")
    assert not query.descending


def test_limit_clause():
    query = parse_query("SELECT * FROM * WHERE a = 1 LIMIT 7")
    assert query.k == 7


def test_attribute_names_allow_dots_and_dashes():
    query = parse_query("SELECT 1 FROM * WHERE instance_type = 'c3.8xlarge'")
    assert query.predicates[0].value == "c3.8xlarge"


def test_trailing_semicolon_optional():
    parse_query("SELECT 1 FROM *")
    parse_query("SELECT 1 FROM *;")


def test_missing_select_rejected():
    with pytest.raises(SQLSyntaxError):
        parse_query("FROM * WHERE a = 1")


def test_missing_from_rejected():
    with pytest.raises(SQLSyntaxError):
        parse_query("SELECT 1 WHERE a = 1")


def test_trailing_garbage_rejected():
    with pytest.raises(SQLSyntaxError):
        parse_query("SELECT 1 FROM * WHERE a = 1 banana banana")


def test_bad_predicate_rejected():
    with pytest.raises(SQLSyntaxError):
        parse_query("SELECT 1 FROM * WHERE = 1")


def test_unexpected_character_rejected():
    with pytest.raises(SQLSyntaxError):
        parse_query("SELECT 1 FROM * WHERE a = $")


def test_str_round_trip_parses():
    original = parse_query(
        "SELECT 3 FROM Virginia, Tokyo WHERE a = 'x' AND b < 5 GROUPBY b DESC"
    )
    reparsed = parse_query(str(original))
    assert reparsed.k == original.k
    assert reparsed.sites == original.sites
    assert [p.pack() for p in reparsed.predicates] == [p.pack() for p in original.predicates]
    assert reparsed.order_by == original.order_by
    assert reparsed.descending == original.descending


def test_query_helpers():
    query = parse_query("SELECT 1 FROM * WHERE a = 1 AND b < 2")
    assert len(query.equality_predicates()) == 1


# ----------------------------------------------------------------------
# Range extensions (ISSUE 6): BETWEEN, GROUP BY, literal-on-left.
# ----------------------------------------------------------------------
def test_between_parses_to_tuple_value():
    query = parse_query(
        "SELECT * FROM * WHERE CPU_utilization BETWEEN 10 AND 30")
    predicate = query.predicates[0]
    assert (predicate.op, predicate.value) == ("between", (10.0, 30.0))
    assert predicate.is_range()


def test_between_binds_tighter_than_and():
    query = parse_query(
        "SELECT * FROM * WHERE u BETWEEN 10 AND 30 AND GPU = true")
    assert [p.op for p in query.predicates] == ["between", "="]


def test_between_matches_is_inclusive():
    predicate = parse_query(
        "SELECT * FROM * WHERE u BETWEEN 10 AND 30").predicates[0]
    assert predicate.matches(10.0) and predicate.matches(30.0)
    assert not predicate.matches(9.999) and not predicate.matches(30.001)


def test_between_with_percent_literals():
    predicate = parse_query(
        "SELECT * FROM * WHERE u BETWEEN 10% AND 30%").predicates[0]
    assert predicate.value == (10.0, 30.0)


def test_literal_on_left_comparison_is_mirrored():
    # Regression: ``5 < CPU_utilization`` used to fail to parse; it must
    # normalize to the identical predicate as ``CPU_utilization > 5``.
    left = parse_query("SELECT * FROM * WHERE 5 < CPU_utilization")
    right = parse_query("SELECT * FROM * WHERE CPU_utilization > 5")
    assert left.predicates[0].pack() == right.predicates[0].pack()


def test_literal_on_left_mirrors_every_comparison():
    pairs = [("5 < u", (">", 5.0)), ("5 <= u", (">=", 5.0)),
             ("5 > u", ("<", 5.0)), ("5 >= u", ("<=", 5.0)),
             ("5 = u", ("=", 5.0)), ("5 <> u", ("<>", 5.0))]
    for clause, (op, value) in pairs:
        predicate = parse_query(f"SELECT * FROM * WHERE {clause}").predicates[0]
        assert (predicate.op, predicate.value) == (op, value), clause


def test_group_by_two_words_sets_group_by():
    query = parse_query("SELECT * FROM * WHERE u > 5 GROUP BY u")
    assert query.group_by == "u"
    assert query.order_by is None


def test_group_by_without_where():
    assert parse_query("SELECT * FROM * GROUP BY u").group_by == "u"


def test_group_by_coexists_with_groupby_ordering():
    query = parse_query(
        "SELECT * FROM * WHERE u > 5 GROUP BY u GROUPBY u DESC")
    assert query.group_by == "u" and query.order_by == "u"
    assert query.descending


def test_group_by_requires_by_and_name():
    with pytest.raises(SQLSyntaxError):
        parse_query("SELECT * FROM * GROUP u")
    with pytest.raises(SQLSyntaxError):
        parse_query("SELECT * FROM * GROUP BY")


def test_between_requires_and():
    with pytest.raises(SQLSyntaxError):
        parse_query("SELECT * FROM * WHERE u BETWEEN 10 30")


def test_range_round_trip_parses():
    original = parse_query(
        "SELECT * FROM * WHERE u BETWEEN 10 AND 30 GROUP BY u")
    reparsed = parse_query(str(original))
    assert [p.pack() for p in reparsed.predicates] == [
        p.pack() for p in original.predicates]
    assert reparsed.group_by == original.group_by
