"""Sim-as-oracle acceptance: the live transport must match the DES."""

import json

from repro.transport.oracle import (
    compare_reports,
    dump_divergences,
    run_reference_workload,
    validate_live_against_sim,
)


def test_live_run_matches_sim_oracle(tmp_path):
    """THE acceptance check: same seed, same query results, same
    aggregates, sanitizer clean on both backends."""
    dump = tmp_path / "divergences.json"
    divergences = validate_live_against_sim(dump_path=str(dump))
    assert divergences == []
    assert not dump.exists()  # no divergence, no dump


def test_sim_report_is_reproducible():
    a = run_reference_workload("sim")
    b = run_reference_workload("sim")
    assert a == b
    assert a["sanitizer"] == []
    assert all(q["satisfied"] for q in a["queries"])


def test_compare_reports_flags_injected_divergence(tmp_path):
    a = run_reference_workload("sim")
    b = json.loads(json.dumps(a))  # deep copy
    b["meta"]["transport"] = "asyncio"   # allowed to differ
    assert compare_reports(a, b) == []
    b["queries"][0]["satisfied"] = False
    b["queries"][1]["entries"] = b["queries"][1]["entries"][1:]
    b["sanitizer"] = ["conservation: off by one"]
    divergences = compare_reports(a, b)
    assert len(divergences) == 3
    assert any("satisfied" in d for d in divergences)
    assert any("entries" in d for d in divergences)
    assert any("sanitizer" in d for d in divergences)

    dump = tmp_path / "div.json"
    dump_divergences(str(dump), a, b, divergences)
    doc = json.loads(dump.read_text())
    assert doc["divergences"] == divergences
    assert doc["sim"]["meta"]["transport"] == "sim"
    assert doc["live"]["meta"]["transport"] == "asyncio"
