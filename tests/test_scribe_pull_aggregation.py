"""Tests for on-demand (pull) aggregation."""

import pytest


@pytest.fixture
def tree(sim, streams, scribe_overlay):
    rng = streams.stream("pull")
    members = rng.sample(scribe_overlay.nodes, 24)
    for i, member in enumerate(members):
        member.app("scribe").join(member, "P")
        member.app("scribe").set_local(member, "P", "sum", float(i))
        member.app("scribe").set_local(member, "P", "max", float(i))
    sim.run()
    return scribe_overlay, members


def pull(overlay, names, topic="P"):
    asker = overlay.nodes[0]
    return asker.app("scribe").query_aggregate_fresh(asker, topic, names).result()


def test_pull_matches_push(sim, tree):
    overlay, members = tree
    asker = overlay.nodes[0]
    pushed = asker.app("scribe").query_aggregate(asker, "P", ["sum", "max", "count"]).result()
    pulled = pull(overlay, ["sum", "max", "count"])
    assert pulled == pushed


def test_pull_sees_unflushed_changes_immediately(sim, tree):
    overlay, members = tree
    # Mutate a member's local value *without* triggering the push pipeline.
    state = members[3].app("scribe").topics()["P"]
    state.local["max"] = 9_999.0
    assert pull(overlay, ["max"])["max"] == 9_999.0
    # The pushed view lags until the next flush/maintenance.
    asker = overlay.nodes[0]
    stale = asker.app("scribe").query_aggregate(asker, "P", ["max"]).result()
    assert stale["max"] == 23.0


def test_pull_on_empty_topic(sim, scribe_overlay):
    values = pull(scribe_overlay, ["sum", "count"], topic="never-built")
    assert values["count"] == 0
    assert values["sum"] == 0.0


def test_pull_unknown_aggregate_is_none(sim, tree):
    overlay, _ = tree
    assert pull(overlay, ["made-up"])["made-up"] is None


def test_pull_skips_dead_children(sim, tree):
    overlay, members = tree
    victim = members[5]
    victim.fail()
    values = pull(overlay, ["count"])
    # The victim's subtree members that routed through it are unreachable
    # for this pull, but the walk terminates and excludes the dead node.
    assert values["count"] <= 23
    assert values["count"] >= 1


def test_pull_avg_consistency(sim, tree):
    overlay, members = tree
    for i, member in enumerate(members):
        member.app("scribe").set_local(member, "P", "avg", float(i))
    sim.run()
    values = pull(overlay, ["avg"])
    assert values["avg"] == pytest.approx(sum(range(24)) / 24)


def test_concurrent_pulls_do_not_interfere(sim, tree):
    overlay, members = tree
    asker_a = overlay.nodes[0]
    asker_b = overlay.nodes[1]
    fa = asker_a.app("scribe").query_aggregate_fresh(asker_a, "P", ["sum"])
    fb = asker_b.app("scribe").query_aggregate_fresh(asker_b, "P", ["count"])
    sim.run()
    assert fa.value["sum"] == float(sum(range(24)))
    assert fb.value["count"] == 24
