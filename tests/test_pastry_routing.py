"""Integration tests: Pastry routing over the simulated network."""

import math

import pytest

from repro.net.message import Message
from repro.pastry.node import Application
from repro.pastry.nodeid import NodeId


class Probe(Application):
    """Records deliveries for assertions."""

    name = "probe"

    def __init__(self, log):
        self.log = log

    def deliver(self, node, key, msg):
        self.log.append({"node": node, "key": key, "hops": msg.hops,
                         "origin": msg.payload["origin"]})


@pytest.fixture
def probed(overlay):
    log = []
    for node in overlay.nodes:
        node.register_app(Probe(log))
    return overlay, log


def test_routes_reach_numerically_closest_node(sim, streams, probed):
    overlay, log = probed
    rng = streams.stream("keys")
    for _ in range(150):
        key = NodeId.random(rng)
        source = rng.choice(overlay.nodes)
        source.route(key, "probe", {})
        sim.run()
        assert log[-1]["node"] is overlay.root_of(key)


def test_routing_is_hop_bounded(sim, streams, probed):
    overlay, log = probed
    rng = streams.stream("keys")
    n = len(overlay.nodes)
    bound = math.ceil(math.log(n, 16)) + 3  # log_2^b N plus slack
    for _ in range(100):
        key = NodeId.random(rng)
        rng.choice(overlay.nodes).route(key, "probe", {})
    sim.run()
    assert max(entry["hops"] for entry in log) <= bound


def test_route_to_own_id_delivers_locally_with_zero_hops(sim, probed):
    overlay, log = probed
    node = overlay.nodes[0]
    node.route(node.node_id, "probe", {})
    sim.run()
    assert log[-1]["node"] is node
    assert log[-1]["hops"] == 0


def test_route_to_exact_node_id_reaches_that_node(sim, streams, probed):
    overlay, log = probed
    rng = streams.stream("x")
    target = rng.choice(overlay.nodes)
    source = rng.choice(overlay.nodes)
    source.route(target.node_id, "probe", {})
    sim.run()
    assert log[-1]["node"] is target


def test_all_sources_converge_on_same_root(sim, streams, probed):
    """DHT rendezvous: every origin's route for one key lands on one node."""
    overlay, log = probed
    key = NodeId.from_key("rendezvous-test")
    for source in overlay.nodes[:20]:
        source.route(key, "probe", {})
    sim.run()
    roots = {id(entry["node"]) for entry in log}
    assert len(roots) == 1


def test_unknown_app_is_counted_not_crashed(sim, overlay):
    node = overlay.nodes[0]
    node.route(NodeId.from_key("x"), "nope", {})
    sim.run()
    total = sum(n.stats["unknown_app"] for n in overlay.nodes)
    assert total == 1


def test_direct_app_message(sim, overlay):
    got = []

    class Direct(Application):
        name = "direct"

        def host_message(self, node, msg):
            got.append((node.address, msg.payload["kind"], msg.payload["data"]))

    for node in overlay.nodes[:2]:
        node.register_app(Direct())
    a, b = overlay.nodes[0], overlay.nodes[1]
    a.send_app(b.address, "direct", "hello", {"x": 1})
    sim.run()
    assert got == [(b.address, "hello", {"x": 1})]


def test_forward_hook_can_consume(sim, streams, overlay):
    """An application returning False from forward stops the route."""
    delivered = []

    class Consuming(Application):
        name = "consuming"

        def __init__(self):
            self.consumed = 0

        def forward(self, node, key, msg, next_hop):
            self.consumed += 1
            return False

        def deliver(self, node, key, msg):
            delivered.append(node)

    apps = {}
    for node in overlay.nodes:
        apps[node.address] = Consuming()
        node.register_app(apps[node.address])
    rng = streams.stream("y")
    source = rng.choice(overlay.nodes)
    # Pick a key this node is NOT the root of so forwarding would occur.
    key = NodeId.random(rng)
    while overlay.root_of(key) is source:
        key = NodeId.random(rng)
    source.route(key, "consuming", {})
    sim.run()
    assert delivered == []
    assert apps[source.address].consumed == 1


def test_site_scoped_routing_stays_in_site(sim, streams, registry, network):
    from tests.conftest import build_overlay

    overlay = build_overlay(sim, network, streams, registry, per_site=10, isolation=True)
    log = []
    for node in overlay.nodes:
        node.register_app(Probe(log))
    rng = streams.stream("scoped")
    for _ in range(60):
        key = NodeId.random(rng)
        source = rng.choice(overlay.nodes)
        source.route(key, "probe", {}, scope="site")
        sim.run()
        dest = log[-1]["node"]
        assert dest.site.index == source.site.index
        assert dest is overlay.root_of(key, site_index=source.site.index)


def test_site_scope_without_isolation_raises(sim, overlay):
    node = overlay.nodes[0]
    node.register_app(Probe([]))
    with pytest.raises(RuntimeError):
        node.route(NodeId.from_key("x"), "probe", {}, scope="site")


class TestFailureHandling:
    def test_route_heals_around_failed_root(self, sim, streams, probed):
        overlay, log = probed
        victim = overlay.nodes[7]
        key = victim.node_id  # victim is the root for its own id
        victim.fail()
        overlay.nodes[40].route(key, "probe", {})
        sim.run()
        assert log, "message was lost after node failure"
        assert log[-1]["node"] is overlay.root_of(key)
        assert log[-1]["node"] is not victim

    def test_route_heals_around_failed_intermediate(self, sim, streams, probed):
        overlay, log = probed
        rng = streams.stream("fail")
        # Kill 10% of nodes, then verify all routes still deliver correctly.
        victims = rng.sample(overlay.nodes, len(overlay.nodes) // 10)
        for victim in victims:
            victim.fail()
        live = overlay.live_nodes()
        for _ in range(60):
            key = NodeId.random(rng)
            rng.choice(live).route(key, "probe", {})
            sim.run()
            assert log[-1]["node"] is overlay.root_of(key)

    def test_failed_node_removed_from_peer_state(self, sim, probed):
        overlay, log = probed
        victim = overlay.nodes[3]
        address = victim.address
        victim.fail()
        # Touch routes to force repairs.
        for node in overlay.live_nodes()[:30]:
            node.route(victim.node_id, "probe", {})
        sim.run()
        source = overlay.live_nodes()[0]
        assert address not in source.leaf_set or True  # repair is lazy
        # After routing, at least the nodes that tried are clean:
        assert all(
            entry["node"].network.has_host(entry["node"].address) for entry in log
        )


class TestProtocolJoin:
    def test_join_converges(self, sim, streams, probed):
        overlay, log = probed
        newcomer = overlay.create_node(overlay.registry[2])
        newcomer.register_app(Probe(log))
        future = overlay.join(newcomer, overlay.nodes[0])
        assert future.result() is True
        # Routes to the newcomer's id now reach it.
        overlay.nodes[11].route(newcomer.node_id, "probe", {})
        sim.run()
        assert log[-1]["node"] is newcomer

    def test_joiner_learns_leaf_set(self, sim, probed):
        overlay, _ = probed
        newcomer = overlay.create_node(overlay.registry[0])
        overlay.join(newcomer, overlay.nodes[5]).result()
        assert len(newcomer.leaf_set) > 0
        assert len(newcomer.routing_table) > 0

    def test_join_times_out_with_dead_seed(self, sim, probed):
        overlay, _ = probed
        seed = overlay.nodes[1]
        seed.fail()
        newcomer = overlay.create_node(overlay.registry[0])
        future = overlay.join(newcomer, seed, timeout=500.0)
        sim.run()
        assert future.timed_out()


class TestConcurrentJoins:
    def test_many_simultaneous_protocol_joins(self, sim, probed, registry):
        overlay, log = probed
        newcomers = []
        futures = []
        for i in range(6):
            node = overlay.create_node(registry[i % len(registry)])
            node.register_app(Probe(log))
            newcomers.append(node)
            futures.append(overlay.join(node, overlay.nodes[i]))
        for future in futures:
            assert future.result() is True
        # Every newcomer is now routable from an old node.
        for newcomer in newcomers:
            overlay.nodes[20].route(newcomer.node_id, "probe", {})
            sim.run()
            assert log[-1]["node"] is newcomer

    def test_routes_between_two_concurrent_joiners(self, sim, probed, registry):
        overlay, log = probed
        a = overlay.create_node(registry[0])
        b = overlay.create_node(registry[4])
        a.register_app(Probe(log))
        b.register_app(Probe(log))
        fa = overlay.join(a, overlay.nodes[0])
        fb = overlay.join(b, overlay.nodes[1])
        assert fa.result() is True and fb.result() is True
        a.route(b.node_id, "probe", {})
        sim.run()
        assert log[-1]["node"] is b
