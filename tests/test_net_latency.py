"""Unit tests for latency models and the Table II matrix."""

import random

import pytest

from repro.net.latency import (
    EC2_RTT_MS,
    EC2_SITES,
    SyntheticLatencyModel,
    TableIILatencyModel,
    UniformLatencyModel,
    make_ec2_registry,
    mean_rtt_ms,
)


def test_table2_has_all_eight_sites():
    names = [name for name, _ in EC2_SITES]
    assert len(names) == 8
    assert names[0] == "Virginia" and names[-1] == "SaoPaulo"


def test_table2_is_symmetric_and_complete():
    names = [name for name, _ in EC2_SITES]
    for a in names:
        for b in names:
            assert EC2_RTT_MS[(a, b)] == EC2_RTT_MS[(b, a)]


def test_table2_values_match_paper():
    # Spot checks straight out of Table II.
    assert EC2_RTT_MS[("Virginia", "Oregon")] == 60.018
    assert EC2_RTT_MS[("Virginia", "Singapore")] == 275.549
    assert EC2_RTT_MS[("Singapore", "SaoPaulo")] == 396.856
    assert EC2_RTT_MS[("Tokyo", "Tokyo")] == 0.435
    assert EC2_RTT_MS[("Ireland", "Sydney")] == 322.284


def test_intra_site_rtts_are_sub_millisecond():
    for name, _ in EC2_SITES:
        assert EC2_RTT_MS[(name, name)] < 1.0


def test_registry_order_matches_table():
    registry = make_ec2_registry()
    assert [s.name for s in registry] == [name for name, _ in EC2_SITES]
    assert registry.by_name("Tokyo").region == "Asia"


def test_uniform_model_constant():
    model = UniformLatencyModel(2.0)
    registry = make_ec2_registry()
    assert model.one_way_delay_ms(registry[0], registry[5]) == 2.0
    assert model.rtt_ms(registry[0], registry[5]) == 4.0


def test_uniform_model_rejects_negative():
    with pytest.raises(ValueError):
        UniformLatencyModel(-1.0)


def test_table2_model_without_jitter_is_half_rtt():
    model = TableIILatencyModel()
    registry = make_ec2_registry()
    virginia, tokyo = registry.by_name("Virginia"), registry.by_name("Tokyo")
    assert model.one_way_delay_ms(virginia, tokyo) == pytest.approx(191.601 / 2)
    assert model.rtt_ms(virginia, tokyo) == pytest.approx(191.601)


def test_table2_model_jitter_preserves_mean():
    model = TableIILatencyModel(rng=random.Random(0), jitter_cv=0.05)
    registry = make_ec2_registry()
    virginia, oregon = registry[0], registry[1]
    measured = mean_rtt_ms(model, [virginia, oregon], samples=400)
    assert measured[("Virginia", "Oregon")] == pytest.approx(60.018, rel=0.05)


def test_unstable_regions_get_more_jitter():
    model = TableIILatencyModel(rng=random.Random(0), jitter_cv=0.01,
                                unstable_jitter_cv=0.5)
    registry = make_ec2_registry()
    virginia, oregon = registry.by_name("Virginia"), registry.by_name("Oregon")
    singapore, saopaulo = registry.by_name("Singapore"), registry.by_name("SaoPaulo")

    def spread(a, b, n=300):
        values = [model.one_way_delay_ms(a, b) for _ in range(n)]
        mu = sum(values) / n
        var = sum((v - mu) ** 2 for v in values) / n
        return (var ** 0.5) / mu

    assert spread(singapore, saopaulo) > spread(virginia, oregon) * 3


def test_nominal_delay_ignores_jitter():
    model = TableIILatencyModel(rng=random.Random(0), jitter_cv=0.5)
    registry = make_ec2_registry()
    a, b = registry[0], registry[3]
    assert model.nominal_one_way_ms(a, b) == pytest.approx(87.407 / 2)


def test_table2_model_unknown_pair_raises():
    from repro.net.site import SiteRegistry

    registry = SiteRegistry()
    x = registry.add("Nowhere", "X")
    model = TableIILatencyModel()
    with pytest.raises(KeyError):
        model.one_way_delay_ms(x, x)


class TestSyntheticModel:
    def test_intra_site(self):
        from repro.net.site import SiteRegistry

        registry = SiteRegistry()
        sites = [registry.add(f"S{i}", "X") for i in range(6)]
        model = SyntheticLatencyModel(6, intra_site_ms=0.3, hop_ms=10.0)
        assert model.one_way_delay_ms(sites[2], sites[2]) == 0.3

    def test_ring_distance(self):
        from repro.net.site import SiteRegistry

        registry = SiteRegistry()
        sites = [registry.add(f"S{i}", "X") for i in range(6)]
        model = SyntheticLatencyModel(6, intra_site_ms=0.0, hop_ms=10.0)
        assert model.one_way_delay_ms(sites[0], sites[1]) == 10.0
        # Wraps around: distance(0, 5) == 1.
        assert model.one_way_delay_ms(sites[0], sites[5]) == 10.0
        assert model.one_way_delay_ms(sites[0], sites[3]) == 30.0
