"""Tests for the synthetic monitoring infrastructure."""

import random

import pytest

from repro.core.monitor import AttributeChurn, SyntheticMonitor, UtilizationWalk
from repro.core.plane import RBay, RBayConfig


@pytest.fixture
def plane():
    plane = RBay(RBayConfig(seed=51, nodes_per_site=5, jitter=False)).build()
    plane.sim.run()
    return plane


class TestUtilizationWalk:
    def test_stays_in_bounds(self):
        walk = UtilizationWalk(random.Random(0), start=50.0, volatility=30.0)
        for _ in range(500):
            value = walk.step()
            assert 0.0 <= value <= 100.0

    def test_clamps_bad_start(self):
        assert UtilizationWalk(random.Random(0), start=150.0).value == 100.0
        assert UtilizationWalk(random.Random(0), start=-5.0).value == 0.0

    def test_mean_reversion_pulls_toward_mean(self):
        walk = UtilizationWalk(random.Random(0), start=100.0, volatility=0.0,
                               reversion=0.5, mean=50.0)
        walk.step()
        assert walk.value == 75.0

    def test_deterministic_given_seed(self):
        a = UtilizationWalk(random.Random(9), start=50.0)
        b = UtilizationWalk(random.Random(9), start=50.0)
        assert [a.step() for _ in range(20)] == [b.step() for _ in range(20)]


class TestSyntheticMonitor:
    def test_updates_attribute_values(self, plane):
        monitor = plane.monitor
        node = plane.nodes[0]
        monitor.track_utilization(node, start=50.0)
        before = node.attribute_value("CPU_utilization")
        monitor.start()
        plane.settle(5_000.0)
        monitor.stop()
        assert monitor.updates_pushed >= 4
        assert node.attribute_value("CPU_utilization") != before

    def test_track_many(self, plane):
        monitor = plane.monitor
        monitor.track_many(plane.nodes[:10])
        monitor.tick()
        assert monitor.updates_pushed == 10

    def test_dead_nodes_skipped(self, plane):
        monitor = plane.monitor
        node = plane.nodes[0]
        monitor.track_utilization(node)
        node.fail()
        monitor.tick()
        assert monitor.updates_pushed == 0

    def test_stop_is_idempotent(self, plane):
        monitor = plane.monitor
        monitor.start()
        monitor.stop()
        monitor.stop()


class TestAttributeChurn:
    def test_flips_attributes(self, plane):
        nodes = plane.nodes[:10]
        churn = AttributeChurn(
            plane.sim, random.Random(0), nodes, "GPU",
            value_factory=lambda rng: True, rate=0.5,
        )
        churn.tick()
        churn.tick()
        assert churn.flips > 0
        present = sum(1 for n in nodes if n.has_attribute("GPU"))
        assert 0 < present <= 10 or churn.flips >= 10

    def test_periodic_operation(self, plane):
        nodes = plane.nodes[:8]
        churn = AttributeChurn(
            plane.sim, random.Random(1), nodes, "Disk",
            value_factory=lambda rng: rng.random(), rate=0.25,
            interval_ms=500.0,
        )
        churn.start()
        plane.settle(3_000.0)
        churn.stop()
        assert churn.flips >= 6

    def test_churned_membership_tracks_through_maintenance(self, plane):
        """Resource churn propagates to tree membership on the next tick —
        the paper's future-work churn experiment in miniature."""
        from repro.core.naming import site_tree
        from repro.core.node import SubscriptionSpec

        site = "Virginia"
        nodes = plane.site_nodes(site)
        topic = site_tree(site, "GPU")
        for node in nodes:
            node.subscribe(SubscriptionSpec(
                topic=topic, attribute="GPU", scope="site",
                default_predicate=lambda v: v is True,
            ))
        plane.sim.run()
        churn = AttributeChurn(plane.sim, random.Random(2), nodes, "GPU",
                               value_factory=lambda rng: True, rate=0.6)
        churn.tick()
        for node in nodes:
            node.maintenance_tick()
        plane.sim.run()
        expected = sum(1 for n in nodes if n.attribute_value("GPU") is True)
        assert plane.tree_size(topic, via=nodes[0], scope="site") == expected
