"""Tests for the Mariposa-style economic layer."""

import pytest

from repro.core.plane import RBay, RBayConfig
from repro.ext.economy import (
    CostAwareCustomer,
    MarketLedger,
    PRICE_ATTRIBUTE,
    post_priced_resource,
    reprice,
)


@pytest.fixture
def market():
    plane = RBay(RBayConfig(seed=321, nodes_per_site=10, jitter=False)).build()
    plane.sim.run()
    admin = plane.admin("Virginia")
    prices = [10.0, 20.0, 30.0, 40.0, 50.0, 60.0]
    nodes = plane.site_nodes("Virginia")[: len(prices)]
    for node, price in zip(nodes, prices):
        post_priced_resource(admin, node, "GPU", True, price)
    plane.sim.run()
    return plane, nodes, prices


def make_buyer(plane, wallet, ledger=None, name="buyer"):
    return CostAwareCustomer(
        name, plane.site_nodes("Virginia")[0],
        plane.streams.stream(f"econ-{name}-{wallet}"), wallet=wallet, ledger=ledger,
    )


class TestPricedPosting:
    def test_price_attribute_advertised(self, market):
        plane, nodes, prices = market
        for node, price in zip(nodes, prices):
            assert node.attribute_value(PRICE_ATTRIBUTE) == price

    def test_gate_enforces_budget(self, market):
        plane, nodes, prices = market
        node = nodes[3]  # price 40
        assert node.authorize("joe", {"budget": 45.0}) is not None
        assert node.authorize("joe", {"budget": 35.0}) is None


class TestCostAwareBuying:
    def test_buys_cheapest_k(self, market):
        plane, nodes, prices = market
        ledger = MarketLedger()
        buyer = make_buyer(plane, wallet=100.0, ledger=ledger)
        result = buyer.buy("SELECT 2 FROM Virginia WHERE GPU = true;").result()
        assert result.satisfied
        paid = sorted(e["order_value"] for e in result.entries)
        assert paid == [10.0, 20.0]
        assert buyer.wallet == pytest.approx(70.0)
        assert ledger.spend_of("buyer") == pytest.approx(30.0)
        assert ledger.revenue_of("Virginia") == pytest.approx(30.0)
        assert ledger.volume() == 2

    def test_wallet_limits_purchases(self, market):
        plane, nodes, prices = market
        buyer = make_buyer(plane, wallet=25.0, name="poor")
        result = buyer.buy("SELECT 2 FROM Virginia WHERE GPU = true;").result()
        # 10 + 20 = 30 > 25: cannot afford two nodes.
        assert not result.satisfied
        assert result.entries == ()
        assert buyer.wallet == pytest.approx(25.0)  # nothing charged

    def test_per_node_gate_blocks_expensive_nodes(self, market):
        plane, nodes, prices = market
        # Wallet 35: the 40/50/60 nodes deny at the gate; 10/20/30 pass.
        buyer = make_buyer(plane, wallet=35.0, name="mid")
        result = buyer.buy("SELECT 3 FROM Virginia WHERE GPU = true;").result()
        # 10+20 = 30 <= 35, but adding 30 exceeds the wallet => only 2 kept,
        # so 3 cannot be satisfied.
        assert not result.satisfied

    def test_surplus_reservations_released(self, market):
        plane, nodes, prices = market
        buyer = make_buyer(plane, wallet=1000.0, name="rich")
        result = buyer.buy("SELECT 1 FROM Virginia WHERE GPU = true;").result()
        assert result.satisfied and len(result.entries) == 1
        plane.sim.run()
        held = [n for n in nodes if not n.reservation.is_free()]
        assert len(held) == 1

    def test_sequential_buyers_share_market(self, market):
        plane, nodes, prices = market
        ledger = MarketLedger()
        first = make_buyer(plane, wallet=100.0, ledger=ledger, name="a")
        second = make_buyer(plane, wallet=100.0, ledger=ledger, name="b")
        ra = first.buy("SELECT 2 FROM Virginia WHERE GPU = true;").result()
        plane.sim.run()
        rb = second.buy("SELECT 2 FROM Virginia WHERE GPU = true;").result()
        assert ra.satisfied and rb.satisfied
        taken_a = {e["address"] for e in ra.entries}
        taken_b = {e["address"] for e in rb.entries}
        assert not taken_a & taken_b
        # Second buyer pays more: the cheap nodes are leased out.
        assert ledger.spend_of("b") > ledger.spend_of("a")


class TestRepricing:
    def test_reprice_updates_gate_and_advertisement(self, market):
        plane, nodes, prices = market
        admin = plane.admin("Virginia")
        reprice(admin, nodes[0], "GPU", 5.0)
        plane.sim.run()
        for node in nodes:
            assert node.attribute_value(PRICE_ATTRIBUTE) == 5.0
            assert node.authorize("joe", {"budget": 6.0}) is not None

    def test_cheaper_prices_open_the_market(self, market):
        plane, nodes, prices = market
        buyer = make_buyer(plane, wallet=15.0, name="tiny")
        before = buyer.buy("SELECT 2 FROM Virginia WHERE GPU = true;").result()
        assert not before.satisfied
        plane.sim.run()
        admin = plane.admin("Virginia")
        reprice(admin, nodes[0], "GPU", 5.0)
        plane.sim.run()
        after = buyer.buy("SELECT 2 FROM Virginia WHERE GPU = true;").result()
        assert after.satisfied
        assert buyer.wallet == pytest.approx(5.0)
