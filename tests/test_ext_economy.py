"""Tests for the Mariposa-style economic layer."""

import pytest

from repro.core.plane import RBay, RBayConfig
from repro.ext.economy import (
    CostAwareCustomer,
    MarketLedger,
    PRICE_ATTRIBUTE,
    cheapest_first,
    choose_cheapest,
    post_priced_resource,
    reprice,
)


@pytest.fixture
def market():
    plane = RBay(RBayConfig(seed=321, nodes_per_site=10, jitter=False)).build()
    plane.sim.run()
    admin = plane.admin("Virginia")
    prices = [10.0, 20.0, 30.0, 40.0, 50.0, 60.0]
    nodes = plane.site_nodes("Virginia")[: len(prices)]
    for node, price in zip(nodes, prices):
        post_priced_resource(admin, node, "GPU", True, price)
    plane.sim.run()
    return plane, nodes, prices


def make_buyer(plane, wallet, ledger=None, name="buyer"):
    return CostAwareCustomer(
        name, plane.site_nodes("Virginia")[0],
        plane.streams.stream(f"econ-{name}-{wallet}"), wallet=wallet, ledger=ledger,
    )


class TestPricedPosting:
    def test_price_attribute_advertised(self, market):
        plane, nodes, prices = market
        for node, price in zip(nodes, prices):
            assert node.attribute_value(PRICE_ATTRIBUTE) == price

    def test_gate_enforces_budget(self, market):
        plane, nodes, prices = market
        node = nodes[3]  # price 40
        assert node.authorize("joe", {"budget": 45.0}) is not None
        assert node.authorize("joe", {"budget": 35.0}) is None


class TestCostAwareBuying:
    def test_buys_cheapest_k(self, market):
        plane, nodes, prices = market
        ledger = MarketLedger()
        buyer = make_buyer(plane, wallet=100.0, ledger=ledger)
        result = buyer.buy("SELECT 2 FROM Virginia WHERE GPU = true;").result()
        assert result.satisfied
        paid = sorted(e["order_value"] for e in result.entries)
        assert paid == [10.0, 20.0]
        assert buyer.wallet == pytest.approx(70.0)
        assert ledger.spend_of("buyer") == pytest.approx(30.0)
        assert ledger.revenue_of("Virginia") == pytest.approx(30.0)
        assert ledger.volume() == 2

    def test_wallet_limits_purchases(self, market):
        plane, nodes, prices = market
        buyer = make_buyer(plane, wallet=25.0, name="poor")
        result = buyer.buy("SELECT 2 FROM Virginia WHERE GPU = true;").result()
        # 10 + 20 = 30 > 25: cannot afford two nodes.
        assert not result.satisfied
        assert result.entries == ()
        assert buyer.wallet == pytest.approx(25.0)  # nothing charged

    def test_per_node_gate_blocks_expensive_nodes(self, market):
        plane, nodes, prices = market
        # Wallet 35: the 40/50/60 nodes deny at the gate; 10/20/30 pass.
        buyer = make_buyer(plane, wallet=35.0, name="mid")
        result = buyer.buy("SELECT 3 FROM Virginia WHERE GPU = true;").result()
        # 10+20 = 30 <= 35, but adding 30 exceeds the wallet => only 2 kept,
        # so 3 cannot be satisfied.
        assert not result.satisfied

    def test_surplus_reservations_released(self, market):
        plane, nodes, prices = market
        buyer = make_buyer(plane, wallet=1000.0, name="rich")
        result = buyer.buy("SELECT 1 FROM Virginia WHERE GPU = true;").result()
        assert result.satisfied and len(result.entries) == 1
        plane.sim.run()
        held = [n for n in nodes if not n.reservation.is_free()]
        assert len(held) == 1

    def test_sequential_buyers_share_market(self, market):
        plane, nodes, prices = market
        ledger = MarketLedger()
        first = make_buyer(plane, wallet=100.0, ledger=ledger, name="a")
        second = make_buyer(plane, wallet=100.0, ledger=ledger, name="b")
        ra = first.buy("SELECT 2 FROM Virginia WHERE GPU = true;").result()
        plane.sim.run()
        rb = second.buy("SELECT 2 FROM Virginia WHERE GPU = true;").result()
        assert ra.satisfied and rb.satisfied
        taken_a = {e["address"] for e in ra.entries}
        taken_b = {e["address"] for e in rb.entries}
        assert not taken_a & taken_b
        # Second buyer pays more: the cheap nodes are leased out.
        assert ledger.spend_of("b") > ledger.spend_of("a")


class TestCheapestTieBreaking:
    def test_cheapest_first_breaks_price_ties_on_address(self):
        # Regression: the pre-fix sort keyed on price alone, so
        # equal-price candidates kept their site-reply arrival order —
        # which shifts with latency jitter and fan-out interleaving.
        entries = [{"address": a, "order_value": 5.0} for a in (9, 3, 7)]
        assert [e["address"] for e in cheapest_first(entries)] == [3, 7, 9]

    def test_choose_cheapest_is_permutation_invariant(self):
        import itertools

        entries = [
            {"address": 4, "order_value": 5.0},
            {"address": 2, "order_value": 5.0},
            {"address": 8, "order_value": 3.0},
            {"address": 6, "order_value": 5.0},
        ]
        expected = None
        for perm in itertools.permutations(entries):
            kept, surplus, total = choose_cheapest(list(perm), 2, 100.0)
            picked = [e["address"] for e in kept]
            if expected is None:
                expected = picked
            assert picked == expected == [8, 2]
            assert total == pytest.approx(8.0)
            assert sorted(e["address"] for e in surplus) == [4, 6]

    def test_choose_cheapest_respects_wallet(self):
        entries = [{"address": a, "order_value": p}
                   for a, p in ((1, 10.0), (2, 20.0), (3, 30.0))]
        kept, surplus, total = choose_cheapest(entries, None, 35.0)
        assert [e["address"] for e in kept] == [1, 2]
        assert total == pytest.approx(30.0)
        assert [e["address"] for e in surplus] == [3]

    def test_equal_price_market_buys_deterministically(self, market):
        plane, nodes, prices = market
        admin = plane.admin("Virginia")
        # Flatten the market: every node reprices to 10, so price no
        # longer discriminates and only the address tie-break orders it.
        reprice(admin, nodes[0], "GPU", 10.0)
        plane.sim.run()
        expected = sorted(n.address for n in nodes)[:2]
        buyer = make_buyer(plane, wallet=100.0, name="tie")
        result = buyer.buy("SELECT 2 FROM Virginia WHERE GPU = true;").result()
        assert result.satisfied
        assert sorted(e["address"] for e in result.entries) == expected


class TestOveraskSatisfactionFloor:
    def test_thin_market_still_satisfies_wanted(self, market):
        # Regression (phantom purchase): with over-ask, ``wanted=4`` at
        # overask 3.0 inflates the reservation width to k=12 — more than
        # the 6 nodes in the market.  Pre-fix the executor compared the
        # match count against the *inflated* k, settled unsatisfied, and
        # released every reservation — while the shopping callback still
        # kept 4 entries, charged the wallet, and recorded revenue for
        # leases that no longer existed.
        plane, nodes, prices = market
        ledger = MarketLedger()
        buyer = make_buyer(plane, wallet=1000.0, ledger=ledger, name="bulk")
        result = buyer.buy("SELECT 4 FROM Virginia WHERE GPU = true;").result()
        assert result.satisfied and len(result.entries) == 4
        assert buyer.wallet == pytest.approx(1000.0 - (10 + 20 + 30 + 40))
        plane.sim.run()
        # The purchased leases actually exist: 4 committed reservations
        # held by this query, the 2 surplus nodes free again.
        committed = [n for n in nodes if n.reservation.committed]
        assert len(committed) == 4
        assert all(n.reservation.holder() == result.query_id
                   for n in committed)
        assert sum(1 for n in nodes if n.reservation.is_free()) == 2

    def test_wanted_more_than_market_still_fails(self, market):
        plane, nodes, prices = market
        buyer = make_buyer(plane, wallet=1000.0, name="greedy")
        result = buyer.buy("SELECT 7 FROM Virginia WHERE GPU = true;").result()
        assert not result.satisfied and result.entries == ()
        plane.sim.run()
        assert all(n.reservation.is_free() for n in nodes)


class TestCreditGate:
    def test_min_credit_denies_low_history_buyers(self, market):
        plane, nodes, prices = market
        admin = plane.admin("Virginia")
        extra = plane.site_nodes("Virginia")[6]
        post_priced_resource(admin, extra, "CPU", True, 10.0, min_credit=0.5)
        plane.sim.run()
        assert extra.authorize("a", {"budget": 50.0, "credit": 0.8}) is not None
        assert extra.authorize("b", {"budget": 50.0, "credit": 0.2}) is None
        # Credit omitted entirely -> denied (nil fails the gate).
        assert extra.authorize("c", {"budget": 50.0}) is None
        # Budget still enforced alongside credit.
        assert extra.authorize("d", {"budget": 5.0, "credit": 0.9}) is None


class TestRepricing:
    def test_reprice_updates_gate_and_advertisement(self, market):
        plane, nodes, prices = market
        admin = plane.admin("Virginia")
        reprice(admin, nodes[0], "GPU", 5.0)
        plane.sim.run()
        for node in nodes:
            assert node.attribute_value(PRICE_ATTRIBUTE) == 5.0
            assert node.authorize("joe", {"budget": 6.0}) is not None

    def test_cheaper_prices_open_the_market(self, market):
        plane, nodes, prices = market
        buyer = make_buyer(plane, wallet=15.0, name="tiny")
        before = buyer.buy("SELECT 2 FROM Virginia WHERE GPU = true;").result()
        assert not before.satisfied
        plane.sim.run()
        admin = plane.admin("Virginia")
        reprice(admin, nodes[0], "GPU", 5.0)
        plane.sim.run()
        after = buyer.buy("SELECT 2 FROM Virginia WHERE GPU = true;").result()
        assert after.satisfied
        assert buyer.wallet == pytest.approx(5.0)
