"""Property-based tests for NodeId ring arithmetic."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pastry.nodeid import BITS, DIGITS, NodeId

ids = st.integers(min_value=0, max_value=(1 << BITS) - 1).map(NodeId)


@given(ids, ids)
def test_distance_symmetric(a, b):
    assert a.distance(b) == b.distance(a)


@given(ids)
def test_distance_to_self_zero(a):
    assert a.distance(a) == 0


@given(ids, ids)
def test_distance_bounded_by_half_ring(a, b):
    assert 0 <= a.distance(b) <= (1 << BITS) // 2


@given(ids, ids, ids)
def test_distance_triangle_inequality(a, b, c):
    assert a.distance(c) <= a.distance(b) + b.distance(c)


@given(ids, ids)
def test_clockwise_distances_sum_to_ring(a, b):
    if a != b:
        assert a.clockwise_distance(b) + b.clockwise_distance(a) == 1 << BITS


@given(ids, ids)
def test_shared_prefix_symmetric_and_bounded(a, b):
    n = a.shared_prefix_len(b)
    assert n == b.shared_prefix_len(a)
    assert 0 <= n <= DIGITS


@given(ids, ids)
def test_shared_prefix_digits_actually_match(a, b):
    n = a.shared_prefix_len(b)
    for i in range(n):
        assert a.digit(i) == b.digit(i)
    if n < DIGITS:
        assert a.digit(n) != b.digit(n)


@given(ids)
def test_digits_reconstruct_value(a):
    value = 0
    for i in range(DIGITS):
        value = (value << 4) | a.digit(i)
    assert value == a.value


@given(ids)
def test_hex_round_trip(a):
    assert NodeId(int(a.hex(), 16)) == a


@given(ids, ids)
def test_is_between_endpoints_inclusive(a, b):
    assert a.is_between(a, b)
    assert b.is_between(a, b)


@given(ids, ids, ids)
def test_every_key_on_exactly_one_arc(low, high, key):
    if low == high:
        return
    on_arc = key.is_between(low, high)
    on_complement = key.is_between(high, low)
    # Every point is on at least one arc; both only at the endpoints.
    assert on_arc or on_complement
    if on_arc and on_complement:
        assert key in (low, high)


@given(st.text(min_size=1, max_size=50))
def test_from_key_deterministic(text):
    assert NodeId.from_key(text) == NodeId.from_key(text)
