"""Trace-context propagation across delivery: the codec-or-in-process
parity fix.

The network stamps outgoing messages with the sender's current context
and restores it around each delivery.  These tests pin the contract the
shared :func:`repro.transport.base.deliver_traced` helper guarantees:

* identical stamping/restoration whether the message crossed the wire
  codec (``wire_check``) or stayed an in-process object;
* no context push (and no leak) when the recorder is disabled;
* a handler calling ``recorder.clear()`` mid-delivery cannot corrupt or
  underflow the context stack.
"""

import pytest

from repro.net.message import Message
from repro.net.network import Host, Network
from repro.net.site import SiteRegistry
from repro.obs.spans import NullRecorder, SpanRecorder
from repro.sim.engine import Simulator
from repro.transport.base import deliver_traced, stamp_trace_ctx
from repro.transport.sim import SimTransport


def make_net(transport_cls=Network, **kwargs):
    sim = Simulator()
    registry = SiteRegistry()
    registry.add("A", "r")
    registry.add("B", "r")
    sites = list(registry)
    net = transport_cls(sim, **kwargs)
    return sim, sites, net


class Probe(Host):
    """Records the recorder's ctx-stack depth seen inside each delivery."""

    def __init__(self, site, recorder=None, on_deliver=None):
        super().__init__(site)
        self.recorder = recorder
        self.on_deliver = on_deliver
        self.seen = []  # (msg.kind, ctx stack depth during handling)

    def on_message(self, msg):
        depth = (len(self.recorder._ctx_stack)
                 if isinstance(self.recorder, SpanRecorder) else 0)
        self.seen.append((msg.kind, depth))
        if self.on_deliver is not None:
            self.on_deliver(msg)


@pytest.mark.parametrize("wire", [False, True])
def test_ctx_restored_identically_with_and_without_codec(wire):
    sim, sites, net = make_net(SimTransport, wire_check=wire)
    recorder = SpanRecorder(sim)
    net.recorder = recorder
    a = Probe(sites[0], recorder)
    b = Probe(sites[1], recorder)
    net.attach(a)
    net.attach(b)

    with recorder.use(recorder.start("query", "step")):
        a.send(b.address, Message(kind="hello", payload={"x": 1}))
    sim.run()

    # The handler ran with exactly the sender's context pushed (depth 1)
    # and the stack is balanced afterwards.
    assert b.seen == [("hello", 1)]
    assert recorder._ctx_stack == []
    assert recorder.current_ctx() is None


@pytest.mark.parametrize("wire", [False, True])
def test_disabled_recorder_never_stamps_or_pushes(wire):
    sim, sites, net = make_net(SimTransport, wire_check=wire)
    net.recorder = NullRecorder()
    a = Probe(sites[0])
    b = Probe(sites[1])
    net.attach(a)
    net.attach(b)
    captured = []
    net.set_delivery_hook(lambda msg: captured.append(msg.trace_ctx))
    a.send(b.address, Message(kind="hello", payload={}))
    sim.run()
    assert captured == [None]   # nothing stamped on the wire
    assert b.seen == [("hello", 0)]


def test_no_push_when_message_predates_tracing():
    """A message with no stamped ctx (recorder enabled later, or sender
    had no active span) must not get a context pushed at delivery."""
    sim, sites, net = make_net()
    recorder = SpanRecorder(sim)
    net.recorder = recorder
    a = Probe(sites[0], recorder)
    b = Probe(sites[1], recorder)
    net.attach(a)
    net.attach(b)
    a.send(b.address, Message(kind="bare", payload={}))  # no active span
    sim.run()
    assert b.seen == [("bare", 0)]
    assert recorder._ctx_stack == []


def test_handler_clearing_recorder_mid_delivery_is_safe():
    """``recorder.clear()`` empties the ctx stack while the delivery's
    context is pushed; restoration must neither raise nor leave junk."""
    sim, sites, net = make_net()
    recorder = SpanRecorder(sim)
    net.recorder = recorder
    a = Probe(sites[0], recorder)
    b = Probe(sites[1], recorder, on_deliver=lambda msg: recorder.clear())
    net.attach(a)
    net.attach(b)
    with recorder.use(recorder.start("query", "step")):
        a.send(b.address, Message(kind="wipe", payload={}))
        a.send(b.address, Message(kind="wipe", payload={}))
    sim.run()  # would IndexError with naive unconditional pop_ctx()
    assert recorder._ctx_stack == []
    assert [kind for kind, _ in b.seen] == ["wipe", "wipe"]


def test_handler_pushing_extra_ctx_is_trimmed():
    """A handler that leaks a pushed context of its own is trimmed back
    to the pre-delivery depth, so one buggy handler cannot poison the
    parentage of every later delivery."""
    sim, sites, net = make_net()
    recorder = SpanRecorder(sim)
    net.recorder = recorder
    a = Probe(sites[0], recorder)
    b = Probe(sites[1], recorder,
              on_deliver=lambda msg: recorder.push_ctx((999, 999)))
    net.attach(a)
    net.attach(b)
    with recorder.use(recorder.start("query", "step")):
        a.send(b.address, Message(kind="leak", payload={}))
    sim.run()
    assert recorder._ctx_stack == []


def test_stamp_trace_ctx_rules():
    sim = Simulator()
    recorder = SpanRecorder(sim)
    msg = Message(kind="k", payload={})
    # No recorder / disabled recorder: untouched.
    stamp_trace_ctx(None, msg)
    assert msg.trace_ctx is None
    stamp_trace_ctx(NullRecorder(), msg)
    assert msg.trace_ctx is None
    # No active context: untouched.
    stamp_trace_ctx(recorder, msg)
    assert msg.trace_ctx is None
    # Active context: stamped as a plain tuple (wire-safe).
    span = recorder.start("s", "step")
    with recorder.use(span):
        stamp_trace_ctx(recorder, msg)
    assert msg.trace_ctx == tuple(span.ctx)
    assert type(msg.trace_ctx) is tuple
    # Already stamped: a forwarding hop must not overwrite the origin.
    with recorder.use(recorder.start("other", "step")):
        stamp_trace_ctx(recorder, msg)
    assert msg.trace_ctx == tuple(span.ctx)


def test_deliver_traced_plain_paths():
    calls = []
    msg = Message(kind="k", payload={}, trace_ctx=(1, 1))
    deliver_traced(None, msg, lambda: calls.append("none"))
    deliver_traced(NullRecorder(), msg, lambda: calls.append("null"))
    bare = Message(kind="k", payload={})
    sim = Simulator()
    recorder = SpanRecorder(sim)
    deliver_traced(recorder, bare, lambda: calls.append("bare"))
    assert calls == ["none", "null", "bare"]
    assert recorder._ctx_stack == []
