"""Integration tests for the five-step query protocol across sites."""

import pytest

from repro.core.plane import RBay, RBayConfig
from repro.workloads.generator import FederationWorkload, WorkloadSpec
from repro.workloads.queries import QueryWorkload


@pytest.fixture(scope="module")
def federation():
    """A workload-dressed 8-site plane, shared across this module."""
    plane = RBay(RBayConfig(seed=11, nodes_per_site=20, jitter=False)).build()
    workload = FederationWorkload(plane, WorkloadSpec(password="pw")).apply()
    plane.sim.run()
    return plane, workload


def popular_type(workload, site_name=None):
    counts = (workload.site_instance_population(site_name)
              if site_name else workload.instance_population())
    return max(counts, key=counts.get)


class TestSingleSiteQueries:
    def test_finds_matching_nodes(self, federation):
        plane, workload = federation
        itype = popular_type(workload, "Virginia")
        customer = plane.make_customer("c1", "Virginia")
        result = customer.query_once(
            f"SELECT 2 FROM Virginia WHERE instance_type = '{itype}';",
            payload={"password": "pw"},
        ).result()
        assert result.satisfied
        assert all(entry["site"] == "Virginia" for entry in result.entries)

    def test_returned_nodes_actually_match(self, federation):
        plane, workload = federation
        itype = popular_type(workload, "Tokyo")
        customer = plane.make_customer("c2", "Tokyo")
        result = customer.query_once(
            f"SELECT 1 FROM Tokyo WHERE instance_type = '{itype}';",
            payload={"password": "pw"},
        ).result()
        node = plane.network.host(result.entries[0]["address"])
        assert node.attribute_value("instance_type") == itype

    def test_wrong_password_yields_nothing(self, federation):
        plane, workload = federation
        itype = popular_type(workload, "Virginia")
        customer = plane.make_customer("c3", "Virginia")
        result = customer.query_once(
            f"SELECT 1 FROM Virginia WHERE instance_type = '{itype}';",
            payload={"password": "wrong"},
        ).result()
        assert not result.entries

    def test_nonexistent_tree_returns_empty(self, federation):
        plane, _ = federation
        customer = plane.make_customer("c4", "Virginia")
        result = customer.query_once(
            "SELECT 1 FROM Virginia WHERE instance_type = 'no.such.type';",
            payload={"password": "pw"},
        ).result()
        assert not result.entries and not result.satisfied

    def test_local_query_is_fast(self, federation):
        plane, workload = federation
        itype = popular_type(workload, "Virginia")
        customer = plane.make_customer("c5", "Virginia")
        result = customer.query_once(
            f"SELECT 1 FROM Virginia WHERE instance_type = '{itype}';",
            payload={"password": "pw"},
        ).result()
        assert result.latency_ms < 50.0  # intra-site RTTs are sub-ms


class TestMultiSiteQueries:
    def test_eight_site_query_reaches_all_sites(self, federation):
        plane, workload = federation
        itype = popular_type(workload)
        customer = plane.make_customer("c6", "Virginia")
        result = customer.query_once(
            f"SELECT 4 FROM * WHERE instance_type = '{itype}';",
            payload={"password": "pw"},
        ).result()
        assert set(result.sites_queried) == {s.name for s in plane.registry}
        assert len(result.sites_answered) == 8

    def test_multi_site_latency_bounded_by_max_rtt(self, federation):
        plane, workload = federation
        itype = popular_type(workload)
        customer = plane.make_customer("c7", "Virginia")
        result = customer.query_once(
            f"SELECT 4 FROM * WHERE instance_type = '{itype}';",
            payload={"password": "pw"},
        ).result()
        # Virginia's worst RTT is Singapore at ~275 ms; allow protocol slack.
        assert result.latency_ms < 275.549 * 1.6

    def test_results_respect_site_filter(self, federation):
        plane, workload = federation
        itype = popular_type(workload)
        customer = plane.make_customer("c8", "Virginia")
        result = customer.query_once(
            f"SELECT 10 FROM Virginia, Tokyo WHERE instance_type = '{itype}';",
            payload={"password": "pw"},
        ).result()
        assert {entry["site"] for entry in result.entries} <= {"Virginia", "Tokyo"}

    def test_groupby_orders_entries(self, federation):
        plane, workload = federation
        itype = popular_type(workload)
        customer = plane.make_customer("c9", "Oregon")
        result = customer.query_once(
            f"SELECT 5 FROM * WHERE instance_type = '{itype}' "
            "GROUPBY CPU_utilization ASC;",
            payload={"password": "pw"},
        ).result()
        values = [entry["order_value"] for entry in result.entries]
        assert values == sorted(values)

    def test_groupby_desc(self, federation):
        plane, workload = federation
        itype = popular_type(workload)
        customer = plane.make_customer("c10", "Oregon")
        result = customer.query_once(
            f"SELECT 5 FROM * WHERE instance_type = '{itype}' "
            "GROUPBY CPU_utilization DESC;",
            payload={"password": "pw"},
        ).result()
        values = [entry["order_value"] for entry in result.entries]
        assert values == sorted(values, reverse=True)


class TestCompositePredicates:
    def test_second_predicate_filters(self, federation):
        plane, workload = federation
        itype = popular_type(workload)
        customer = plane.make_customer("c11", "Ireland")
        result = customer.query_once(
            f"SELECT 20 FROM * WHERE instance_type = '{itype}' "
            "AND CPU_utilization < 40%;",
            payload={"password": "pw"},
        ).result()
        for entry in result.entries:
            node = plane.network.host(entry["address"])
            assert node.attribute_value("CPU_utilization") < 40.0

    def test_impossible_conjunction_is_empty(self, federation):
        plane, workload = federation
        itype = popular_type(workload)
        customer = plane.make_customer("c12", "Ireland")
        result = customer.query_once(
            f"SELECT 1 FROM * WHERE instance_type = '{itype}' "
            "AND CPU_utilization < 0%;",
            payload={"password": "pw"},
        ).result()
        assert not result.entries


class TestReservations:
    def test_satisfied_query_commits_leases(self, federation):
        plane, workload = federation
        itype = popular_type(workload, "Sydney")
        customer = plane.make_customer("c13", "Sydney")
        result = customer.query_once(
            f"SELECT 1 FROM Sydney WHERE instance_type = '{itype}';",
            payload={"password": "pw"},
        ).result()
        assert result.satisfied
        plane.sim.run()
        node = plane.network.host(result.entries[0]["address"])
        assert node.reservation.committed
        # Clean up for other tests.
        customer.release_all(result)
        plane.sim.run()
        assert node.reservation.is_free()

    def test_unsatisfied_query_releases_everything(self, federation):
        plane, workload = federation
        itype = popular_type(workload, "SaoPaulo")
        customer = plane.make_customer("c14", "SaoPaulo")
        result = customer.query_once(
            f"SELECT 500 FROM SaoPaulo WHERE instance_type = '{itype}';",
            payload={"password": "pw"},
        ).result()
        assert not result.satisfied
        plane.sim.run()
        for node in plane.site_nodes("SaoPaulo"):
            assert not node.reservation.committed


class TestBackoffUnderContention:
    def test_exactly_one_contender_wins_scarce_resource(self):
        plane = RBay(RBayConfig(seed=21, nodes_per_site=16, jitter=False)).build()
        workload = FederationWorkload(plane, WorkloadSpec(password="pw")).apply()
        plane.sim.run()
        itype = popular_type(workload, "Virginia")
        available = workload.site_instance_population("Virginia")[itype]
        contenders = [plane.make_customer(f"u{i}", "Virginia") for i in range(3)]
        futures = [
            c.request(f"SELECT {available} FROM Virginia WHERE instance_type = '{itype}';",
                      payload={"password": "pw"})
            for c in contenders
        ]
        outcomes = [f.result() for f in futures]
        winners = [o for o in outcomes if o.satisfied]
        assert len(winners) == 1
        assert all(o.attempts >= 1 for o in outcomes)

    def test_losers_used_backoff(self):
        plane = RBay(RBayConfig(seed=22, nodes_per_site=16, jitter=False)).build()
        workload = FederationWorkload(plane, WorkloadSpec(password="pw")).apply()
        plane.sim.run()
        itype = popular_type(workload, "Tokyo")
        available = workload.site_instance_population("Tokyo")[itype]
        a = plane.make_customer("a", "Tokyo")
        b = plane.make_customer("b", "Tokyo")
        fa = a.request(f"SELECT {available} FROM Tokyo WHERE instance_type = '{itype}';",
                       payload={"password": "pw"})
        fb = b.request(f"SELECT {available} FROM Tokyo WHERE instance_type = '{itype}';",
                       payload={"password": "pw"})
        oa, ob = fa.result(), fb.result()
        loser = ob if oa.satisfied else oa
        assert loser.gave_up
        assert loser.attempts > 1  # the loser re-queried before giving up


class TestQueryWorkloadGenerator:
    def test_origin_always_included(self, federation):
        plane, _ = federation
        rng = plane.streams.stream("qa")
        generator = QueryWorkload(rng, [s.name for s in plane.registry], k=1)
        for n_sites in range(1, 8):
            sql, payload = generator.make("Tokyo", n_sites)
            assert "Tokyo" in sql
            assert payload == {"password": "rbay"}

    def test_eight_sites_becomes_from_star(self, federation):
        plane, _ = federation
        rng = plane.streams.stream("qb")
        generator = QueryWorkload(rng, [s.name for s in plane.registry])
        sql, _ = generator.make("Tokyo", 8)
        assert "FROM *" in sql

    def test_invalid_site_count_rejected(self, federation):
        plane, _ = federation
        rng = plane.streams.stream("qc")
        generator = QueryWorkload(rng, [s.name for s in plane.registry])
        with pytest.raises(ValueError):
            generator.make("Tokyo", 0)
        with pytest.raises(ValueError):
            generator.make("Tokyo", 9)

    def test_stream_yields_count(self, federation):
        plane, _ = federation
        rng = plane.streams.stream("qd")
        generator = QueryWorkload(rng, [s.name for s in plane.registry])
        assert len(list(generator.stream("Tokyo", 3, 10))) == 10


class TestQueryStatistics:
    def test_visited_members_counted(self, federation):
        plane, workload = federation
        plane.settle(61_000.0)  # let leases from earlier tests expire
        itype = popular_type(workload, "Virginia")
        customer = plane.make_customer("stats1", "Virginia")
        result = customer.query_once(
            f"SELECT 1 FROM Virginia WHERE instance_type = '{itype}';",
            payload={"password": "pw"},
        ).result()
        assert result.satisfied
        assert result.visited_members >= 1
        customer.release_all(result)
        plane.sim.run()

    def test_multi_site_visits_accumulate(self, federation):
        plane, workload = federation
        itype = popular_type(workload)
        customer = plane.make_customer("stats2", "Oregon")
        result = customer.query_once(
            f"SELECT 8 FROM * WHERE instance_type = '{itype}';",
            payload={"password": "pw"},
        ).result()
        assert result.visited_members >= len(result.entries)
        customer.release_all(result)
        plane.sim.run()

    def test_empty_query_visits_nobody(self, federation):
        plane, _ = federation
        customer = plane.make_customer("stats3", "Virginia")
        result = customer.query_once(
            "SELECT 1 FROM Virginia WHERE instance_type = 'no.such';",
            payload={"password": "pw"},
        ).result()
        assert result.visited_members == 0


class TestUnknownSites:
    def test_unknown_site_is_skipped(self, federation):
        plane, workload = federation
        itype = popular_type(workload)
        customer = plane.make_customer("u1", "Virginia")
        result = customer.query_once(
            f"SELECT 1 FROM Atlantis WHERE instance_type = '{itype}';",
            payload={"password": "pw"},
        ).result()
        assert not result.satisfied
        assert result.sites_answered == ()

    def test_mixed_known_unknown_sites(self, federation):
        plane, workload = federation
        plane.settle(61_000.0)  # expire earlier leases
        itype = popular_type(workload, "Virginia")
        customer = plane.make_customer("u2", "Virginia")
        result = customer.query_once(
            f"SELECT 1 FROM Virginia, Atlantis WHERE instance_type = '{itype}';",
            payload={"password": "pw"},
        ).result()
        assert result.satisfied
        assert result.sites_answered == ("Virginia",)
        customer.release_all(result)
        plane.sim.run()
