"""Tests for the workload generators."""

import random

import pytest

from repro.core.plane import RBay, RBayConfig
from repro.workloads.ec2 import (
    EC2_INSTANCE_TYPES,
    INSTANCE_SPECS,
    gaussian_tree_assignment,
    gaussian_tree_weights,
    instance_attributes,
    random_attribute_pool,
)
from repro.workloads.generator import FederationWorkload, WorkloadSpec
from repro.workloads.queries import composite_query


class TestEC2Catalog:
    def test_twenty_three_instance_types(self):
        assert len(EC2_INSTANCE_TYPES) == 23
        assert len(INSTANCE_SPECS) == 23

    def test_paper_listed_types_present(self):
        for expected in ("t2.micro", "c3.8xlarge", "g2.2xlarge", "hs1.8xlarge"):
            assert expected in EC2_INSTANCE_TYPES

    def test_weights_sum_to_one_and_peak_centrally(self):
        weights = gaussian_tree_weights()
        assert sum(weights) == pytest.approx(1.0)
        center = len(weights) // 2
        assert weights[center] > weights[0]
        assert weights[center] > weights[-1]

    def test_assignment_follows_gaussian_shape(self):
        rng = random.Random(0)
        assignment = gaussian_tree_assignment(rng, 5_000)
        counts = {t: assignment.count(t) for t in EC2_INSTANCE_TYPES}
        assert counts["c3.8xlarge"] > counts["t2.micro"]
        assert counts["c3.8xlarge"] > counts["hs1.8xlarge"]

    def test_instance_attributes(self):
        attrs = instance_attributes("g2.2xlarge")
        assert attrs["GPU"] is True
        assert attrs["vcpu"] == 8.0
        assert attrs["instance_type"] == "g2.2xlarge"
        assert attrs["family"] == "g2"

    def test_random_attribute_pool(self):
        pool = random_attribute_pool(random.Random(0), 100)
        assert len(pool) == 100
        assert len(set(pool)) == 100  # unique via index suffix


class TestCompositeQuery:
    def test_query_parses_and_targets_type(self):
        from repro.query.sql import parse_query

        rng = random.Random(0)
        sql = composite_query(rng, ["Virginia"], k=2, instance_type="c3.xlarge")
        query = parse_query(sql)
        assert query.k == 2
        assert query.sites == ["Virginia"]
        assert query.predicates[0].value == "c3.xlarge"
        assert len(query.predicates) == 3  # type + two spec floors

    def test_spec_floors_are_satisfiable(self):
        rng = random.Random(0)
        for itype in EC2_INSTANCE_TYPES:
            sql = composite_query(rng, None, instance_type=itype)
            spec = INSTANCE_SPECS[itype]
            from repro.query.sql import parse_query

            query = parse_query(sql)
            by_attr = {p.attribute: p for p in query.predicates}
            assert by_attr["vcpu"].matches(float(spec["vcpu"]))
            assert by_attr["mem_gb"].matches(float(spec["mem_gb"]))


class TestFederationWorkload:
    @pytest.fixture(scope="class")
    def dressed(self):
        plane = RBay(RBayConfig(seed=41, nodes_per_site=15, jitter=False)).build()
        workload = FederationWorkload(plane, WorkloadSpec(
            password="pw", filler_attributes=5)).apply()
        plane.sim.run()
        return plane, workload

    def test_every_node_assigned_a_type(self, dressed):
        plane, workload = dressed
        assert len(workload.instance_of) == len(plane.nodes)

    def test_nodes_carry_standard_attributes(self, dressed):
        plane, workload = dressed
        for node in plane.nodes[:10]:
            assert node.has_attribute("instance_type")
            assert node.has_attribute("vcpu")
            assert node.has_attribute("CPU_utilization")
            assert node.has_attribute("attr_0000")

    def test_gate_policy_installed(self, dressed):
        plane, workload = dressed
        node = plane.nodes[0]
        assert node.authorize("x", {"password": "pw"}) is not None
        assert node.authorize("x", {"password": "no"}) is None

    def test_instance_trees_have_correct_sizes(self, dressed):
        plane, workload = dressed
        from repro.core.naming import instance_tree

        site = "Virginia"
        population = workload.site_instance_population(site)
        node = plane.site_nodes(site)[0]
        for itype, expected in population.items():
            if expected == 0:
                continue
            topic = instance_tree(site, itype)
            assert plane.tree_size(topic, via=node, scope="site") == expected

    def test_utilization_tree_membership_matches_threshold(self, dressed):
        plane, workload = dressed
        from repro.core.naming import site_tree

        site = "Tokyo"
        expected = sum(
            1 for n in plane.site_nodes(site)
            if n.attribute_value("CPU_utilization") < 10.0
        )
        node = plane.site_nodes(site)[0]
        topic = site_tree(site, "CPU_utilization<10")
        assert plane.tree_size(topic, via=node, scope="site") == expected

    def test_population_accounting_consistent(self, dressed):
        plane, workload = dressed
        total = sum(workload.instance_population().values())
        assert total == len(plane.nodes)
        per_site = sum(
            sum(workload.site_instance_population(s.name).values())
            for s in plane.registry
        )
        assert per_site == total


class TestMultiThresholdWorkload:
    @pytest.fixture(scope="class")
    def dressed(self):
        plane = RBay(RBayConfig(seed=42, nodes_per_site=15, jitter=False)).build()
        workload = FederationWorkload(plane, WorkloadSpec(
            password="pw",
            utilization_thresholds=(10.0, 25.0, 50.0),
        )).apply()
        plane.sim.run()
        return plane, workload

    def test_every_threshold_tree_populated_correctly(self, dressed):
        plane, workload = dressed
        from repro.core.naming import predicate_tree_name, site_tree

        site = "Virginia"
        nodes = plane.site_nodes(site)
        for threshold in (10.0, 25.0, 50.0):
            expected = sum(
                1 for n in nodes if n.attribute_value("CPU_utilization") < threshold
            )
            topic = site_tree(site, predicate_tree_name(
                "CPU_utilization", "<", threshold))
            assert plane.tree_size(topic, via=nodes[0], scope="site") == expected

    def test_trees_are_nested_by_construction(self, dressed):
        """size(<10) <= size(<25) <= size(<50): thresholds nest."""
        plane, workload = dressed
        from repro.core.naming import predicate_tree_name, site_tree

        site = "Tokyo"
        probe = plane.site_nodes(site)[0]
        sizes = [
            plane.tree_size(site_tree(site, predicate_tree_name(
                "CPU_utilization", "<", t)), via=probe, scope="site")
            for t in (10.0, 25.0, 50.0)
        ]
        assert sizes[0] <= sizes[1] <= sizes[2]

    def test_query_can_target_any_threshold(self, dressed):
        plane, workload = dressed
        customer = plane.make_customer("multi", "Virginia")
        result = customer.query_once(
            "SELECT 1 FROM * WHERE CPU_utilization < 50%;",
            payload={"password": "pw"},
        ).result()
        assert result.satisfied
        node = plane.network.host(result.entries[0]["address"])
        assert node.attribute_value("CPU_utilization") < 50.0
