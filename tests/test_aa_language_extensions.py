"""Tests for Luette's repeat/until loops and colon method calls."""

import pytest

from repro.aa.errors import InstructionLimitExceeded, LuetteRuntimeError, LuetteSyntaxError
from repro.aa.interpreter import Interpreter
from repro.aa.parser import parse
from repro.aa.stdlib import make_sandbox_globals
from repro.aa.values import luette_to_python


def run(source, limit=200_000):
    interp = Interpreter(make_sandbox_globals(), instruction_limit=limit)
    return luette_to_python(interp.run_chunk(parse(source)))


class TestRepeatUntil:
    def test_basic_loop(self):
        assert run("local i = 0 repeat i = i + 1 until i >= 5 return i") == 5

    def test_body_runs_at_least_once(self):
        assert run("local i = 0 repeat i = i + 1 until true return i") == 1

    def test_condition_sees_loop_locals(self):
        # Lua scopes the until-expression inside the loop body.
        source = """
        local i = 0
        repeat
          i = i + 1
          local done = i >= 3
        until done
        return i
        """
        assert run(source) == 3

    def test_break_inside_repeat(self):
        source = """
        local i = 0
        repeat
          i = i + 1
          if i == 2 then break end
        until false
        return i
        """
        assert run(source) == 2

    def test_budget_terminates_repeat(self):
        with pytest.raises(InstructionLimitExceeded):
            run("repeat until false", limit=500)

    def test_missing_until_rejected(self):
        with pytest.raises(LuetteSyntaxError):
            parse("repeat x = 1 end")

    def test_nested_repeat(self):
        source = """
        local total = 0
        local i = 0
        repeat
          i = i + 1
          local j = 0
          repeat
            j = j + 1
            total = total + 1
          until j >= 3
        until i >= 2
        return total
        """
        assert run(source) == 6


class TestMethodCalls:
    def test_string_methods(self):
        assert run("return ('abc'):upper()") == "ABC"
        assert run("local s = 'hello' return s:len()") == 5
        assert run("local s = 'hello' return s:sub(2, 4)") == "ell"
        assert run("local s = 'a-b' return s:find('-')") == 2

    def test_table_method_receives_self(self):
        source = """
        local counter = {n = 0}
        function counter.bump(self, amount)
          self.n = self.n + amount
          return self.n
        end
        counter:bump(5)
        return counter:bump(2)
        """
        assert run(source) == 7

    def test_method_on_nil_raises(self):
        with pytest.raises(LuetteRuntimeError):
            run("local t = nil return t:anything()")

    def test_method_on_number_raises(self):
        with pytest.raises(LuetteRuntimeError):
            run("local x = 5 return x:next()")

    def test_missing_method_raises_call_error(self):
        with pytest.raises(LuetteRuntimeError):
            run("local t = {} return t:nope()")

    def test_method_call_as_statement(self):
        source = """
        local log = {items = {}}
        function log.add(self, item)
          table.insert(self.items, item)
        end
        log:add('a')
        log:add('b')
        return #log.items
        """
        assert run(source) == 2

    def test_chained_method_calls(self):
        assert run("return ('  pad  '):upper():len()") == 7

    def test_method_in_handler(self):
        """Method syntax works in real AA handlers."""
        from repro.aa.runtime import ActiveAttribute

        source = """
        AA = {Tags = "gpu,fast,cheap"}
        function onGet(caller, payload)
          if AA.Tags:find(payload.want) ~= nil then
            return "match"
          end
          return nil
        end
        """
        attribute = ActiveAttribute("X", 0, source)
        assert attribute.invoke("onGet", (0, {"want": "fast"})) == "match"
        assert attribute.invoke("onGet", (0, {"want": "slow"})) is None
