"""Edge cases across modules that the mainline suites do not reach."""

import random

import pytest

from repro.aa.values import LuetteTable, luette_to_python, python_to_luette, tostring
from repro.core.naming import _canonical_value
from repro.core.plane import RBay, RBayConfig
from repro.net.latency import SyntheticLatencyModel, UniformLatencyModel
from repro.net.message import Message
from repro.net.site import SiteRegistry
from repro.sim.futures import Future


class TestLuetteValueEdges:
    def test_tostring_floats(self):
        assert tostring(3.0) == "3"
        assert tostring(3.25) == "3.25"
        assert tostring(-0.0) == "0"
        assert tostring(1e20) == repr(1e20)

    def test_mixed_table_bridges_to_dict(self):
        table = LuetteTable()
        table.set(1, "a")
        table.set("k", "v")
        bridged = luette_to_python(table)
        assert bridged == {1: "a", "k": "v"}

    def test_pure_array_bridges_to_list(self):
        assert luette_to_python(python_to_luette([1, 2, 3])) == [1, 2, 3]

    def test_nested_python_structures_round_trip(self):
        data = {"servers": [{"name": "a", "cores": 4}, {"name": "b", "cores": 8}]}
        assert luette_to_python(python_to_luette(data)) == data

    def test_table_keys_ordering(self):
        table = LuetteTable()
        table.set("z", 1)
        table.set(1, "first")
        table.set(2, "second")
        keys = table.keys()
        assert keys[:2] == [1, 2]  # array part first

    def test_boolean_keys_are_distinct_from_numbers(self):
        table = LuetteTable()
        table.set(True, "bool")
        table.set(1, "one")
        assert table.get(True) == "bool"
        assert table.get(1) == "one"


class TestCanonicalValue:
    def test_booleans(self):
        assert _canonical_value(True) == "true"
        assert _canonical_value(False) == "false"

    def test_int_float_unify(self):
        assert _canonical_value(10) == _canonical_value(10.0) == "10"

    def test_strings_pass_through(self):
        assert _canonical_value("c3.large") == "c3.large"


class TestMessageEdges:
    def test_size_of_bytes_payload(self):
        assert Message(kind="x", payload={"b": b"12345"}).size_bytes() >= 5

    def test_size_of_bool_and_none(self):
        msg = Message(kind="x", payload={"t": True, "n": None})
        assert msg.size_bytes() > 0

    def test_size_of_unknown_object(self):
        class Odd:
            pass

        assert Message(kind="x", payload={"o": Odd()}).size_bytes() > 0


class TestSyntheticLatency:
    def test_rtt_with_jitter_stays_positive(self):
        registry = SiteRegistry()
        sites = [registry.add(f"S{i}", "X") for i in range(4)]
        model = SyntheticLatencyModel(4, rng=random.Random(0), jitter_cv=0.3)
        for _ in range(100):
            assert model.rtt_ms(sites[0], sites[2]) > 0

    def test_nominal_is_symmetric(self):
        registry = SiteRegistry()
        sites = [registry.add(f"S{i}", "X") for i in range(5)]
        model = SyntheticLatencyModel(5, hop_ms=7.0)
        for a in sites:
            for b in sites:
                assert model.nominal_one_way_ms(a, b) == model.nominal_one_way_ms(b, a)


class TestOverlayEdges:
    def test_remove_node_detaches(self, sim, overlay):
        victim = overlay.nodes[5]
        overlay.remove_node(victim)
        assert not overlay.network.has_host(victim.address)
        assert victim in overlay.nodes  # bookkeeping keeps history
        assert victim not in overlay.live_nodes()

    def test_root_of_skips_dead(self, sim, overlay):
        key = overlay.nodes[3].node_id
        assert overlay.root_of(key) is overlay.nodes[3]
        overlay.nodes[3].fail()
        assert overlay.root_of(key) is not overlay.nodes[3]

    def test_node_by_id(self, overlay):
        node = overlay.nodes[7]
        assert overlay.node_by_id(node.node_id) is node

    def test_duplicate_node_ids_rerolled(self, sim, overlay):
        ids = [n.node_id.value for n in overlay.nodes]
        assert len(ids) == len(set(ids))


class TestPlaneEdges:
    @pytest.fixture(scope="class")
    def plane(self):
        plane = RBay(RBayConfig(seed=654, nodes_per_site=5, jitter=False)).build()
        plane.sim.run()
        return plane

    def test_random_node_site_filter(self, plane):
        rng = random.Random(0)
        for _ in range(10):
            node = plane.random_node(rng, site_name="Tokyo")
            assert node.site.name == "Tokyo"

    def test_settle_advances_clock(self, plane):
        before = plane.sim.now
        plane.settle(100.0)
        assert plane.sim.now >= before + 100.0

    def test_customer_with_explicit_home(self, plane):
        home = plane.site_nodes("Oregon")[2]
        customer = plane.make_customer("x", "Oregon", home=home)
        assert customer.home is home


class TestFutureEdges:
    def test_callbacks_added_during_resolution_fire(self, sim):
        outer = Future(sim)
        fired = []

        def chain(value):
            inner = Future(sim)
            inner.add_callback(fired.append)
            inner.resolve(value * 2)

        outer.add_callback(chain)
        outer.resolve(21)
        assert fired == [42]

    def test_timeout_zero_fires_immediately_on_run(self, sim):
        future = Future(sim, timeout=0.0)
        sim.run()
        assert future.timed_out()


class TestScribeEdges:
    def test_leave_by_root_keeps_rendezvous(self, sim, streams, scribe_overlay):
        from repro.scribe.topic import topic_id

        overlay = scribe_overlay
        root = overlay.root_of(topic_id("edge-topic"))
        root.app("scribe").join(root, "edge-topic")
        others = [n for n in overlay.nodes if n is not root][:5]
        for node in others:
            node.app("scribe").join(node, "edge-topic")
        sim.run()
        root.app("scribe").leave(root, "edge-topic")
        sim.run()
        asker = others[0]
        assert asker.app("scribe").tree_size(asker, "edge-topic").result() == 5

    def test_double_leave_is_harmless(self, sim, scribe_overlay):
        node = scribe_overlay.nodes[0]
        node.app("scribe").join(node, "t2")
        sim.run()
        node.app("scribe").leave(node, "t2")
        node.app("scribe").leave(node, "t2")
        sim.run()
        assert node.app("scribe").tree_size(node, "t2").result() == 0

    def test_anycast_visitor_exception_is_not_raised_into_loop(self, sim, scribe_overlay):
        # A visitor returning False (no match) exhausts gracefully.
        overlay = scribe_overlay
        node = overlay.nodes[0]
        node.app("scribe").join(node, "t3")
        sim.run()
        for n in overlay.nodes:
            n.app("scribe").anycast_visitor = lambda *_: False
        result = node.app("scribe").anycast(node, "t3", {}).result()
        assert not result["satisfied"]
        assert result["visited_members"] == 1
