"""Tests for the exposure-toggle policy and the processing-delay model."""

import pytest

from repro.core.plane import RBay, RBayConfig
from repro.core.policies import exposure_policy
from repro.net.latency import UniformLatencyModel
from repro.net.message import Message
from repro.net.network import Host, Network


class TestExposurePolicy:
    @pytest.fixture
    def market(self):
        plane = RBay(RBayConfig(seed=777, nodes_per_site=8, jitter=False)).build()
        plane.sim.run()
        admin = plane.admin("Ireland")
        nodes = plane.site_nodes("Ireland")[:4]
        for node in nodes:
            admin.set_gate_policy(node, exposure_policy(node.node_id.value, exposed=True))
            admin.post_resource(node, "GPU", True)
        plane.sim.run()
        return plane, admin, nodes

    def query(self, plane, name="joe"):
        customer = plane.make_customer(name, "Ireland")
        result = customer.query_once("SELECT 4 FROM Ireland WHERE GPU = true;").result()
        customer.release_all(result)
        plane.sim.run()
        return result

    def test_exposed_nodes_visible(self, market):
        plane, admin, nodes = market
        assert len(self.query(plane).entries) == 4

    def test_hide_command_withdraws_instantly(self, market):
        plane, admin, nodes = market
        admin.broadcast_command(nodes[0], "GPU", "access", {"exposed": False})
        plane.sim.run()
        assert self.query(plane).entries == ()
        # Membership unchanged: the nodes are hidden, not unsubscribed.
        from repro.core.naming import site_tree

        assert plane.tree_size(site_tree("Ireland", "GPU"),
                               via=nodes[0], scope="site") == 4

    def test_re_expose_restores(self, market):
        plane, admin, nodes = market
        admin.broadcast_command(nodes[0], "GPU", "access", {"exposed": False})
        plane.sim.run()
        admin.broadcast_command(nodes[0], "GPU", "access", {"exposed": True})
        plane.sim.run()
        assert len(self.query(plane).entries) == 4

    def test_initially_hidden_gate(self):
        from repro.aa.runtime import ActiveAttribute

        gate = ActiveAttribute("access", 0, exposure_policy(5, exposed=False))
        assert gate.invoke("onGet", ("joe", {})) is None
        gate.invoke("onDeliver", ("admin", {"exposed": True}))
        assert gate.invoke("onGet", ("joe", {})) == 5


class TestProcessingDelay:
    class Echo(Host):
        def __init__(self, site, log, sim):
            super().__init__(site)
            self.log = log
            self.sim = sim

        def on_message(self, msg):
            self.log.append(self.sim.now)

    def test_processing_delay_added_per_hop(self, sim, registry):
        log = []
        network = Network(sim, UniformLatencyModel(1.0), processing_ms=2.5)
        a = self.Echo(registry[0], log, sim)
        b = self.Echo(registry[0], log, sim)
        network.attach(a), network.attach(b)
        a.send(b.address, Message(kind="ping"))
        sim.run()
        assert log == [3.5]

    def test_plane_config_plumbs_processing_delay(self):
        plane = RBay(RBayConfig(seed=778, nodes_per_site=6, jitter=False,
                                processing_delay_ms=2.0)).build()
        plane.sim.run()
        admin = plane.admin("Virginia")
        node = plane.site_nodes("Virginia")[0]
        admin.post_resource(node, "GPU", True)
        plane.sim.run()
        customer = plane.make_customer("joe", "Virginia")
        result = customer.query_once("SELECT 1 FROM Virginia WHERE GPU = true;").result()
        assert result.satisfied
        # Several protocol hops at >= 2 ms each: well above the pure-network
        # sub-millisecond local latency.
        assert result.latency_ms > 6.0

    def test_processing_delay_brings_local_latency_toward_paper(self):
        """With ~2 ms host cost the local-site query latency lands in the
        tens-of-ms range — the right order of magnitude for the paper's
        <200 ms local measurements on 100:1-shared VMs."""
        from repro.workloads.generator import FederationWorkload, WorkloadSpec
        from repro.workloads.queries import QueryWorkload

        plane = RBay(RBayConfig(seed=779, nodes_per_site=12, jitter=False,
                                processing_delay_ms=2.0)).build()
        workload = FederationWorkload(plane, WorkloadSpec(password="pw")).apply()
        plane.sim.run()
        generator = QueryWorkload(plane.streams.stream("pd"),
                                  [s.name for s in plane.registry], k=1)
        customer = plane.make_customer("joe", "Virginia")
        latencies = []
        for sql, payload in generator.stream("Virginia", 1, 10):
            result = customer.query_once(sql, payload=payload).result()
            latencies.append(result.latency_ms)
        mean = sum(latencies) / len(latencies)
        assert 5.0 < mean < 200.0
