"""Live-mode economy coverage: priced gates + repricing on real sockets.

The sim-side economy tests (tests/test_ext_economy.py) exercise
post/buy/reprice on the DES backend; this module drives the same surface
over the asyncio transport with a compressed clock — AA gate payloads
(budget + credit), priced GROUPBY replies, surplus release fan-out, and
the admin repricing multicast all cross the wire.
"""

import pytest

from repro.core.plane import RBay, RBayConfig
from repro.ext.economy import (
    CostAwareCustomer,
    MarketLedger,
    PRICE_ATTRIBUTE,
    post_priced_resource,
    reprice,
)

SEED = 2017
PRICES = [10.0, 20.0, 30.0, 40.0]


@pytest.fixture(scope="module")
def live_market():
    plane = RBay(RBayConfig(
        seed=SEED,
        synthetic_sites=2,
        nodes_per_site=3,
        jitter=False,
        transport="asyncio",
        time_scale=0.02,
        connect_timeout_ms=500.0,
        connect_retries=1,
    )).build()
    try:
        nodes = (plane.site_nodes("Site000")[1:]
                 + plane.site_nodes("Site001")[1:])
        for node, price in zip(nodes, PRICES):
            post_priced_resource(plane.admin(node.site.name), node,
                                 "GPU", True, price, min_credit=0.5)
        plane.sim.run()
        yield plane, nodes
    finally:
        plane.close()


def make_buyer(plane, wallet, name, credit=0.9, ledger=None):
    return CostAwareCustomer(
        name, plane.site_nodes("Site000")[0],
        plane.streams.stream(f"live-{name}"),
        wallet=wallet, ledger=ledger, overask=2.0, credit=credit)


def test_live_priced_gates_enforce_budget_and_credit(live_market):
    plane, nodes = live_market
    node = nodes[1]  # price 20
    assert node.attribute_value(PRICE_ATTRIBUTE) == 20.0
    assert node.authorize("a", {"budget": 25.0, "credit": 0.9}) is not None
    assert node.authorize("b", {"budget": 15.0, "credit": 0.9}) is None
    assert node.authorize("c", {"budget": 25.0, "credit": 0.1}) is None


def test_live_buy_keeps_cheapest_and_releases_surplus(live_market):
    plane, nodes = live_market
    ledger = MarketLedger()
    buyer = make_buyer(plane, wallet=100.0, name="buyer", ledger=ledger)
    result = buyer.buy("SELECT 2 FROM * WHERE GPU = true;").result()
    assert result.satisfied
    assert sorted(e["order_value"] for e in result.entries) == [10.0, 20.0]
    assert buyer.wallet == pytest.approx(70.0)
    assert ledger.volume() == 2
    plane.sim.run()
    held = [n for n in nodes if not n.reservation.is_free()]
    assert len(held) == 2  # the surplus over-ask reservations went back
    assert all(n.reservation.committed for n in held)
    for node in nodes:
        node.reservation.release(result.query_id)


def test_live_low_credit_buyer_is_denied_everywhere(live_market):
    plane, nodes = live_market
    buyer = make_buyer(plane, wallet=100.0, name="lowcred", credit=0.2)
    result = buyer.buy("SELECT 1 FROM * WHERE GPU = true;").result()
    assert not result.satisfied and result.entries == ()
    assert buyer.wallet == pytest.approx(100.0)


def test_live_reprice_multicast_reopens_market(live_market):
    plane, nodes = live_market
    buyer = make_buyer(plane, wallet=12.0, name="tiny")
    before = buyer.buy("SELECT 2 FROM * WHERE GPU = true;").result()
    assert not before.satisfied
    plane.sim.run()
    for site in ("Site000", "Site001"):
        reprice(plane.admin(site), plane.site_nodes(site)[0], "GPU", 5.0)
    plane.sim.run()
    for node in nodes:
        assert node.attribute_value(PRICE_ATTRIBUTE) == 5.0
    after = buyer.buy("SELECT 2 FROM * WHERE GPU = true;").result()
    assert after.satisfied
    assert buyer.wallet == pytest.approx(2.0)
