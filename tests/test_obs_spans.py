"""Span recorder semantics: parenting, context propagation, bounds, nulls."""

import gc
import sys

import pytest

from repro.obs.spans import (
    NULL_RECORDER,
    NULL_SPAN,
    NullRecorder,
    Span,
    SpanRecorder,
)
from repro.sim.engine import Simulator


@pytest.fixture
def recorder(sim):
    return SpanRecorder(sim)


class TestSpanLifecycle:
    def test_start_and_end_use_the_virtual_clock(self, sim, recorder):
        span = recorder.start("op", category="test")
        assert span.start_ms == sim.now
        assert not span.finished
        assert span.duration_ms == 0.0
        sim.schedule(25.0, lambda: recorder.end(span))
        sim.run()
        assert span.finished
        assert span.end_ms == span.start_ms + 25.0
        assert span.duration_ms == 25.0

    def test_end_sets_status_and_merges_labels(self, recorder):
        span = recorder.start("op", site="Virginia")
        recorder.end(span, status="timeout", attempt=2)
        assert span.status == "timeout"
        assert span.labels == {"site": "Virginia", "attempt": 2}

    def test_instant_is_a_zero_duration_point(self, sim, recorder):
        sim.schedule(10.0, lambda: None)
        sim.run()
        span = recorder.instant("tick", category="event", n=1)
        assert span.kind == "instant"
        assert span.start_ms == span.end_ms == sim.now
        assert span.finished

    def test_spans_filter_by_category(self, recorder):
        recorder.start("a", category="query")
        recorder.instant("b", category="fault")
        assert [s.name for s in recorder.spans("query")] == ["a"]
        assert [s.name for s in recorder.spans()] == ["a", "b"]

    def test_finished_excludes_open_spans(self, recorder):
        open_span = recorder.start("open")
        done = recorder.start("done")
        recorder.end(done)
        assert recorder.finished() == [done]
        assert open_span in recorder.spans()


class TestParenting:
    def test_first_span_is_a_root_of_a_fresh_trace(self, recorder):
        span = recorder.start("root")
        assert span.parent_id is None
        assert span.ctx == (span.trace_id, span.span_id)
        assert recorder.roots() == [span]

    def test_new_trace_forces_a_root_even_under_a_context(self, recorder):
        outer = recorder.start("outer")
        with recorder.use(outer):
            root = recorder.start("fresh", new_trace=True)
        assert root.parent_id is None
        assert root.trace_id != outer.trace_id

    def test_context_stack_parents_nested_spans(self, recorder):
        outer = recorder.start("outer")
        with recorder.use(outer):
            inner = recorder.start("inner")
        assert inner.parent_id == outer.span_id
        assert inner.trace_id == outer.trace_id
        # The stack unwound: the next span is a new root again.
        assert recorder.start("after").parent_id is None

    def test_explicit_parent_beats_the_stack(self, recorder):
        a = recorder.start("a")
        b = recorder.start("b")
        with recorder.use(b):
            child = recorder.start("child", parent=a.ctx)
        assert child.parent_id == a.span_id
        assert child.trace_id == a.trace_id

    def test_use_accepts_span_tuple_or_none(self, recorder):
        span = recorder.start("s")
        with recorder.use(span):
            assert recorder.current_ctx() == span.ctx
        with recorder.use(span.ctx):
            assert recorder.current_ctx() == span.ctx
        with recorder.use(None):
            assert recorder.current_ctx() is None

    def test_trace_and_children_index(self, recorder):
        root = recorder.start("root")
        with recorder.use(root):
            kid1 = recorder.start("kid1")
            kid2 = recorder.instant("kid2")
        other = recorder.start("other")
        assert recorder.trace(root.trace_id) == [root, kid1, kid2]
        index = recorder.children_index()
        assert index[root.span_id] == [kid1, kid2]
        assert other.span_id not in index


class TestDeterminism:
    def test_ids_are_per_recorder_not_global(self):
        def script(recorder):
            root = recorder.start("root")
            with recorder.use(root):
                recorder.start("child")
            recorder.start("other")
            return [(s.trace_id, s.span_id, s.parent_id) for s in recorder]

        first = script(SpanRecorder(Simulator()))
        second = script(SpanRecorder(Simulator()))
        assert first == second
        assert first[0] == (1, 1, None)


class TestBounds:
    def test_full_recorder_drops_but_still_returns_a_span(self, sim):
        recorder = SpanRecorder(sim, max_spans=2)
        recorder.start("a")
        recorder.start("b")
        overflow = recorder.start("c")
        assert len(recorder) == 2
        assert recorder.dropped == 1
        # The caller can still end it without special-casing.
        recorder.end(overflow, status="ok")
        assert overflow.finished

    def test_clear_resets_store_stack_and_dropped(self, sim):
        recorder = SpanRecorder(sim, max_spans=1)
        span = recorder.start("a")
        recorder.push_ctx(span.ctx)
        recorder.start("b")
        recorder.clear()
        assert len(recorder) == 0
        assert recorder.dropped == 0
        assert recorder.current_ctx() is None


class TestNullRecorder:
    def test_is_disabled_and_records_nothing(self):
        rec = NULL_RECORDER
        assert rec.enabled is False
        span = rec.start("anything", site="X")
        rec.end(span)
        rec.instant("event")
        assert len(rec) == 0
        assert rec.spans() == []
        assert rec.finished() == []
        assert rec.roots() == []
        assert rec.trace(1) == []
        assert rec.children_index() == {}
        assert list(rec) == []

    def test_returns_shared_singletons(self):
        # Identity, not equality: the disabled path must not allocate.
        rec = NullRecorder()
        assert rec.start("a") is NULL_SPAN
        assert rec.instant("b") is NULL_SPAN
        assert rec.use(None) is rec.use(NULL_SPAN)

    def test_context_methods_are_safe_noops(self):
        rec = NULL_RECORDER
        rec.push_ctx((1, 1))
        rec.pop_ctx()
        assert rec.current_ctx() is None
        with rec.use((1, 1)):
            pass
        rec.clear()

    def test_disabled_emit_path_allocates_nothing(self):
        """The hot-path guard (`if recorder.enabled: ...`) must be free."""
        rec = NULL_RECORDER
        payload = {"site": "Virginia"}

        def emit_site():
            if rec.enabled:
                rec.instant("pastry.hop", category="pastry", **payload)

        emit_site()  # warm any lazy interpreter state
        gc.collect()
        before = sys.getallocatedblocks()
        for _ in range(10_000):
            emit_site()
        gc.collect()
        after = sys.getallocatedblocks()
        # 10k emissions through a recording path would allocate >=10k
        # blocks; the disabled path must stay at the noise floor.
        assert after - before < 10


class TestSpanDataclass:
    def test_ctx_and_duration_properties(self):
        span = Span(trace_id=3, span_id=7, parent_id=None, name="x",
                    category="c", start_ms=10.0, end_ms=16.5)
        assert span.ctx == (3, 7)
        assert span.duration_ms == 6.5
        assert span.finished
