"""Tests for tracing, ASCII plotting, query plans, the CLI, and tools/."""

import gc
import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.plane import RBay, RBayConfig
from repro.metrics.ascii_plot import ascii_bars, ascii_cdf
from repro.query.plan import plan_query
from repro.query.sql import parse_query
from repro.sim.trace import NULL_TRACER, Tracer, hook_network


class TestTracer:
    def test_emit_and_query(self, sim):
        tracer = Tracer(sim)
        tracer.emit("route", "hop", src=1, dst=2)
        sim.schedule(10.0, tracer.emit, "route", "hop2")
        sim.run()
        assert tracer.count() == 2
        assert tracer.count("route") == 2
        assert tracer.events("route")[1].time == 10.0

    def test_category_filter(self, sim):
        tracer = Tracer(sim, categories=["keep"])
        tracer.emit("keep", "a")
        tracer.emit("drop", "b")
        assert tracer.count() == 1

    def test_bounded_memory(self, sim):
        tracer = Tracer(sim, max_events=3)
        for i in range(10):
            tracer.emit("x", str(i))
        assert len(tracer) == 3
        assert tracer.dropped == 7

    def test_between(self, sim):
        tracer = Tracer(sim)
        for t in (1.0, 5.0, 9.0):
            sim.schedule(t, tracer.emit, "x", "e")
        sim.run()
        assert len(tracer.between(2.0, 8.0)) == 1

    def test_disable(self, sim):
        tracer = Tracer(sim)
        tracer.enabled = False
        tracer.emit("x", "e")
        assert len(tracer) == 0

    def test_clear_and_categories(self, sim):
        tracer = Tracer(sim)
        tracer.emit("b", "x")
        tracer.emit("a", "y")
        assert tracer.categories() == ["a", "b"]
        tracer.clear()
        assert len(tracer) == 0

    def test_format_output(self, sim):
        tracer = Tracer(sim)
        tracer.emit("route", "hop", src=1)
        text = tracer.format()
        assert "route" in text and "src=1" in text

    def test_null_tracer_is_silent(self):
        NULL_TRACER.emit("anything", "goes", x=1)  # no crash, no state

    def test_import_does_not_pull_in_span_machinery(self):
        """``repro.sim.trace`` must stay importable without the obs plane.

        The span recorder is only needed once a real ``Tracer`` is built;
        hot-path modules that merely import this module (directly or via
        ``repro.sim``) must not pay the ``repro.obs`` import cost.  Checked
        in a fresh interpreter so this test is immune to import order in
        the suite.
        """
        code = (
            "import sys\n"
            "import repro.sim.trace\n"
            "assert 'repro.obs.spans' not in sys.modules, 'eager import'\n"
            "from repro.sim.trace import Tracer\n"
            "from repro.sim.engine import Simulator\n"
            "Tracer(Simulator())\n"
            "assert 'repro.obs.spans' in sys.modules, 'lazy import broken'\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True,
            cwd=str(Path(__file__).resolve().parent.parent),
            env={"PYTHONPATH": "src", "PATH": ""},
        )
        assert proc.returncode == 0, proc.stderr

    def test_disabled_tracer_emit_allocates_nothing(self):
        """The disabled flat-trace path must be free, like NULL_RECORDER's."""
        tracer = NULL_TRACER

        def emit():
            if tracer.enabled:
                tracer.emit("pastry.hop", "hop", src=1, dst=2)

        emit()  # warm any lazy interpreter state
        gc.collect()
        before = sys.getallocatedblocks()
        for _ in range(10_000):
            emit()
        gc.collect()
        after = sys.getallocatedblocks()
        assert after - before < 10

    def test_network_hook(self, sim, network, registry):
        from repro.net.message import Message
        from repro.net.network import Host

        class Echo(Host):
            def on_message(self, msg):
                pass

        a, b = Echo(registry[0]), Echo(registry[1])
        network.attach(a), network.attach(b)
        tracer = Tracer(sim)
        hook_network(tracer, network)
        a.send(b.address, Message(kind="ping"))
        sim.run()
        assert tracer.count("net.deliver") == 1


class TestAsciiPlots:
    def test_cdf_renders_markers_and_legend(self):
        text = ascii_cdf({"local": [1, 2, 3], "remote": [10, 20, 30]})
        assert "*=local" in text and "o=remote" in text
        assert "|" in text

    def test_cdf_rejects_empty(self):
        with pytest.raises(ValueError):
            ascii_cdf({})
        with pytest.raises(ValueError):
            ascii_cdf({"x": []})

    def test_cdf_single_value_series(self):
        text = ascii_cdf({"x": [5.0]})
        assert "5" in text

    def test_bars_scale_to_peak(self):
        text = ascii_bars([("a", 10.0), ("b", 5.0)], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_bars_reject_empty(self):
        with pytest.raises(ValueError):
            ascii_bars([])


class TestQueryPlan:
    @pytest.fixture(scope="class")
    def plane(self):
        plane = RBay(RBayConfig(seed=91, nodes_per_site=5, jitter=False)).build()
        plane.sim.run()
        return plane

    def test_plan_targets_requested_sites(self, plane):
        query = parse_query("SELECT 1 FROM Virginia, Tokyo WHERE GPU = true")
        plan = plan_query(query, plane.context)
        assert plan.target_sites == ["Virginia", "Tokyo"]

    def test_plan_star_targets_all_sites(self, plane):
        query = parse_query("SELECT 1 FROM * WHERE GPU = true")
        plan = plan_query(query, plane.context)
        assert len(plan.target_sites) == 8

    def test_probe_topics_are_site_scoped(self, plane):
        query = parse_query("SELECT 1 FROM Tokyo WHERE GPU = true")
        plan = plan_query(query, plane.context)
        assert plan.probes_per_site["Tokyo"] == ["Tokyo/GPU"]

    def test_hierarchy_expansion_marked(self, plane):
        plane.hierarchy.link("CPU/Intel", "CPU")
        query = parse_query("SELECT 1 FROM Tokyo WHERE CPU = true")
        plan = plan_query(query, plane.context)
        assert plan.predicate_plans[0].expanded
        assert set(plan.probes_per_site["Tokyo"]) == {"Tokyo/CPU", "Tokyo/CPU/Intel"}
        plane.hierarchy.unlink("CPU/Intel")

    def test_explain_mentions_all_steps(self, plane):
        query = parse_query(
            "SELECT 5 FROM * WHERE GPU = true AND vcpu >= 4 GROUPBY vcpu DESC")
        text = plan_query(query, plane.context).explain()
        assert "fan-out: 8" in text
        assert "step 1-2" in text and "step 3" in text
        assert "step 4" in text and "step 5" in text
        assert "commit best 5 by vcpu DESC" in text

    def test_total_probes(self, plane):
        query = parse_query("SELECT 1 FROM Virginia, Tokyo WHERE a = 1 AND b = 2")
        plan = plan_query(query, plane.context)
        assert plan.total_probes == 4  # 2 predicates x 2 sites


class TestCLI:
    def run_cli(self, argv, capsys):
        from repro.cli import main

        code = main(argv)
        return code, capsys.readouterr().out

    def test_describe(self, capsys):
        code, out = self.run_cli(
            ["describe", "--nodes", "4", "--no-jitter"], capsys)
        assert code == 0
        assert "8 sites" in out and "Virginia" in out

    def test_query_satisfied(self, capsys):
        # The utilization-threshold tree exists federation-wide, so some
        # node is always below 10% with 48 nodes and the fixed seed.
        code, out = self.run_cli(
            ["query", "SELECT 1 FROM * WHERE CPU_utilization < 10%;",
             "--nodes", "6", "--no-jitter"], capsys)
        assert code == 0
        assert "satisfied: True" in out

    def test_query_unsatisfied_exit_code(self, capsys):
        code, out = self.run_cli(
            ["query", "SELECT 1 FROM * WHERE no_such = 'thing';",
             "--nodes", "4", "--no-jitter"], capsys)
        assert code == 1

    def test_query_show_counters(self, capsys):
        code, out = self.run_cli(
            ["query", "SELECT 1 FROM * WHERE CPU_utilization < 10%;",
             "--nodes", "6", "--no-jitter", "--probe-cache-ms", "60000",
             "--show-counters"], capsys)
        assert code == 0
        assert "counter" in out and "query.probe_cache" in out

    def test_explain(self, capsys):
        code, out = self.run_cli(
            ["explain", "SELECT 2 FROM Tokyo WHERE GPU = true;",
             "--nodes", "4", "--no-jitter"], capsys)
        assert code == 0
        assert "QUERY" in out and "fan-out: 1" in out

    def test_latency_sweep(self, capsys):
        code, out = self.run_cli(
            ["latency", "--origins", "Virginia", "--queries", "2",
             "--nodes", "6", "--no-jitter"], capsys)
        assert code == 0
        assert "8-site" in out

    def test_latency_unknown_origin(self, capsys):
        code, _ = self.run_cli(
            ["latency", "--origins", "Atlantis", "--queries", "1",
             "--nodes", "4", "--no-jitter"], capsys)
        assert code == 2


class TestCLILua:
    def run_cli(self, argv, capsys):
        from repro.cli import main

        code = main(argv)
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_lua_chunk_runs(self, capsys):
        code, out, _ = self.run_cli(
            ["lua", "return 6 * 7"], capsys)
        assert code == 0 and "42" in out

    def test_lua_budget_enforced(self, capsys):
        code, _, err = self.run_cli(
            ["lua", "while true do end", "--budget", "500"], capsys)
        assert code == 1 and "budget" in err

    def test_lua_sandbox_violation_reported(self, capsys):
        code, _, err = self.run_cli(["lua", "return os.time()"], capsys)
        assert code == 1 and "excluded" in err

    def test_lua_syntax_error_reported(self, capsys):
        code, _, err = self.run_cli(["lua", "if if if"], capsys)
        assert code == 1


def load_coverage_checker():
    repo = Path(__file__).resolve().parent.parent
    spec = importlib.util.spec_from_file_location(
        "check_coverage", repo / "tools" / "check_coverage.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


checker = load_coverage_checker()


class TestCoverageChecker:
    def test_executable_lines_finds_nested_bodies(self, tmp_path):
        source = tmp_path / "mod.py"
        source.write_text(
            "def outer():\n"
            "    def inner():\n"
            "        return 1\n"
            "    return inner\n"
            "X = 5\n"
        )
        assert {1, 2, 3, 4, 5} <= checker.executable_lines(source)

    def test_comments_and_blanks_not_executable(self, tmp_path):
        source = tmp_path / "mod.py"
        source.write_text("# comment\n\nY = 1\n")
        lines = checker.executable_lines(source)
        assert 3 in lines and 1 not in lines and 2 not in lines

    def test_default_targets_exist_and_compile(self):
        for target in checker.DEFAULT_TARGETS:
            assert target.exists()
            assert checker.executable_lines(target)

    def test_coverage_ratio(self):
        assert checker.coverage_ratio(set(), set()) == 1.0
        assert checker.coverage_ratio({1, 2}, {1, 2, 3, 4}) == 0.5
        # Hits outside the executable set are ignored, not counted.
        assert checker.coverage_ratio({1, 99}, {1, 2}) == 0.5

    def test_tracer_records_only_watched_files(self, tmp_path):
        source = tmp_path / "traced.py"
        source.write_text("def f():\n    return 2 + 2\n")
        spec = importlib.util.spec_from_file_location("traced_mod", source)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)

        hits = {str(source): set()}
        tracer = checker.make_tracer(hits)
        old = sys.gettrace()
        sys.settrace(tracer)
        try:
            assert module.f() == 4
        finally:
            sys.settrace(old)
        assert 2 in hits[str(source)]
        assert list(hits) == [str(source)]  # nothing foreign was added

    def test_report_rows(self, tmp_path):
        a, b = tmp_path / "a.py", tmp_path / "b.py"
        for f in (a, b):
            f.write_text("Z = 1\n")
        executable = {str(a): {1}, str(b): {1}}
        hits = {str(a): {1}, str(b): set()}
        rows = checker.report(hits, executable)
        assert [row[3] for row in rows] == [1.0, 0.0]
        assert rows[0][1] == 1 and rows[1][1] == 0


def load_api_checker():
    repo = Path(__file__).resolve().parent.parent
    spec = importlib.util.spec_from_file_location(
        "check_api", repo / "tools" / "check_api.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


api_checker = load_api_checker()


class TestApiChecker:
    def test_public_surface_in_sync(self, capsys):
        assert api_checker.main() == 0
        assert "check_api: OK" in capsys.readouterr().out

    def test_docs_table_parser_reads_backticked_names(self):
        text = (f"intro\n{api_checker.DOCS_SECTION}\n\nblah\n"
                "| Name | What |\n|---|---|\n"
                "| `RBay` | facade |\n| `QueryResult` | result |\n\nafter\n")
        assert api_checker._docs_table_names(text) == ["RBay", "QueryResult"]

    def test_docs_table_parser_missing_section(self):
        assert api_checker._docs_table_names("no section here") is None
