"""Unit tests for NodeId arithmetic."""

import random

import pytest

from repro.pastry.nodeid import BASE, BITS, DIGITS, NodeId, as_node_id


def test_constants():
    assert BITS == 128 and BASE == 16 and DIGITS == 32


def test_value_wraps_to_128_bits():
    assert NodeId(1 << 128).value == 0
    assert NodeId((1 << 128) + 5).value == 5


def test_from_key_deterministic():
    assert NodeId.from_key("10.0.0.1") == NodeId.from_key("10.0.0.1")
    assert NodeId.from_key("10.0.0.1") != NodeId.from_key("10.0.0.2")


def test_random_uses_rng():
    a = NodeId.random(random.Random(1))
    b = NodeId.random(random.Random(1))
    assert a == b


def test_digit_extraction():
    node_id = NodeId(int("a" + "0" * 31, 16))
    assert node_id.digit(0) == 0xA
    assert node_id.digit(1) == 0x0
    assert node_id.digit(31) == 0x0


def test_digit_out_of_range():
    with pytest.raises(IndexError):
        NodeId(0).digit(32)
    with pytest.raises(IndexError):
        NodeId(0).digit(-1)


def test_shared_prefix_identical():
    node_id = NodeId(12345)
    assert node_id.shared_prefix_len(node_id) == DIGITS


def test_shared_prefix_first_digit_differs():
    a = NodeId(int("a" + "0" * 31, 16))
    b = NodeId(int("b" + "0" * 31, 16))
    assert a.shared_prefix_len(b) == 0


def test_shared_prefix_partial():
    a = NodeId(int("ab" + "0" * 30, 16))
    b = NodeId(int("ac" + "0" * 30, 16))
    assert a.shared_prefix_len(b) == 1


def test_shared_prefix_differs_within_digit():
    # Same high bits of the digit but different low bit: still 0 shared digits
    # only if the differing bit falls in digit 0.
    a = NodeId(0)
    b = NodeId(1)
    assert a.shared_prefix_len(b) == 31


def test_distance_is_circular():
    a = NodeId(0)
    b = NodeId((1 << 128) - 1)
    assert a.distance(b) == 1


def test_distance_symmetric():
    a, b = NodeId(100), NodeId(5000)
    assert a.distance(b) == b.distance(a) == 4900


def test_clockwise_distance():
    a, b = NodeId(10), NodeId(4)
    assert b.clockwise_distance(a) == 6
    assert a.clockwise_distance(b) == (1 << 128) - 6


def test_is_between_simple_arc():
    assert NodeId(5).is_between(NodeId(1), NodeId(10))
    assert not NodeId(11).is_between(NodeId(1), NodeId(10))


def test_is_between_wrapping_arc():
    low, high = NodeId((1 << 128) - 5), NodeId(5)
    assert NodeId(0).is_between(low, high)
    assert NodeId((1 << 128) - 1).is_between(low, high)
    assert not NodeId(500).is_between(low, high)


def test_hex_width():
    assert len(NodeId(255).hex()) == 32
    assert NodeId(255).hex().endswith("ff")


def test_ordering_and_hash():
    a, b = NodeId(1), NodeId(2)
    assert a < b and a <= b and a != b
    assert len({NodeId(7), NodeId(7)}) == 1


def test_int_conversion():
    assert int(NodeId(42)) == 42


def test_as_node_id_coercion():
    assert as_node_id(5) == NodeId(5)
    existing = NodeId(9)
    assert as_node_id(existing) is existing
