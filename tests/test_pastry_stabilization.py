"""Tests for overlay stabilization under churn."""

import pytest

from repro.pastry.node import Application
from repro.pastry.nodeid import NodeId


class Probe(Application):
    name = "probe"

    def __init__(self, log):
        self.log = log

    def deliver(self, node, key, msg):
        self.log.append(node)


def test_stabilize_removes_dead_members(sim, overlay):
    node = overlay.nodes[0]
    victims = [ref for ref in node.leaf_set.members()][:3]
    for ref in victims:
        overlay.network.host(ref.address).fail()
    removed = node.stabilize()
    assert removed == 3
    member_addresses = {r.address for r in node.leaf_set.members()}
    assert not member_addresses & {v.address for v in victims}


def test_stabilize_noop_when_healthy(sim, overlay):
    node = overlay.nodes[0]
    before = len(node.leaf_set)
    assert node.stabilize() == 0
    assert len(node.leaf_set) == before


def test_stabilize_refills_from_neighbors(sim, overlay):
    node = overlay.nodes[0]
    before = len(node.leaf_set)
    victims = [ref for ref in node.leaf_set.members()][:4]
    for ref in victims:
        overlay.network.host(ref.address).fail()
    node.stabilize()
    sim.run()  # let ls_req / ls_rep exchanges land
    # The leaf set refilled toward its previous occupancy with live nodes.
    assert len(node.leaf_set) >= before - 4
    assert all(overlay.network.has_host(r.address) for r in node.leaf_set.members())


def test_routing_correct_after_heavy_churn_with_stabilization(sim, streams, overlay):
    log = []
    for node in overlay.nodes:
        node.register_app(Probe(log))
    rng = streams.stream("churn")
    victims = rng.sample(overlay.nodes, len(overlay.nodes) // 3)
    for victim in victims:
        victim.fail()
    # Two stabilization rounds across the surviving population.
    for _ in range(2):
        for node in overlay.live_nodes():
            node.stabilize()
        sim.run()
    for _ in range(80):
        key = NodeId.random(rng)
        source = rng.choice(overlay.live_nodes())
        source.route(key, "probe", {})
        sim.run()
        assert log[-1] is overlay.root_of(key)


def test_leaf_sets_purged_after_stabilization(sim, streams, overlay):
    rng = streams.stream("purge")
    victims = rng.sample(overlay.nodes, 10)
    dead = {v.address for v in victims}
    for victim in victims:
        victim.fail()
    for _ in range(2):
        for node in overlay.live_nodes():
            node.stabilize()
        sim.run()
    for node in overlay.live_nodes():
        assert not dead & {r.address for r in node.leaf_set.members()}


def test_maintenance_tick_invokes_stabilization():
    from repro.core.plane import RBay, RBayConfig

    plane = RBay(RBayConfig(seed=55, nodes_per_site=8, jitter=False)).build()
    plane.sim.run()
    node = plane.nodes[0]
    victim_ref = node.leaf_set.members()[0]
    plane.network.host(victim_ref.address).fail()
    node.maintenance_tick()
    plane.sim.run()
    assert victim_ref.address not in {r.address for r in node.leaf_set.members()}
    assert node.stats["stabilize_repairs"] >= 1


def test_periodic_exchange_heals_mutual_knowledge_loss(sim, overlay):
    """Regression: two nodes that purged each other (overlapping crash
    windows — each recovered while absent from the other's leaf set, so
    neither recovery announce reached the other) must re-link through the
    standing neighbor exchange, without any further failure to trigger a
    repair round."""
    a = overlay.nodes[0]
    b_ref = a.leaf_set.members()[0]
    b = overlay.network.host(b_ref.address)
    a.remove_peer(b.address)
    b.remove_peer(a.address)
    assert b.address not in {r.address for r in a.leaf_set.members()}
    for _ in range(6):
        a.stabilize()
        sim.run()
    assert b.address in {r.address for r in a.leaf_set.members()}
    assert a.stats["stabilize_exchanges"] >= 1
