"""Chaos property suite: plane-wide invariants under injected faults.

Each scenario builds a small federation, runs a randomized (but seeded,
fully reproducible) fault schedule — crashes with recovery, a partition,
ambient message loss — while customers keep querying, then quiesces and
asserts the invariants the failure model promises:

* every query completes with a :class:`QueryResult` or a typed
  :class:`QueryError` — never a raw ``FutureTimeout``;
* no reservation outlives its query: every committed lease belongs to a
  query whose caller saw a satisfied result;
* after faults heal and maintenance quiesces, tree aggregates equal
  ground truth (the trees reconverge);
* the network conservation identity ``sent == delivered + dropped``
  holds once traffic drains;
* identical seeds reproduce the run byte-for-byte.

Seed count comes from ``RBAY_CHAOS_SEEDS`` (default 20); the coverage
gate sets it low to keep the tracer fast.
"""

import os
import random

import pytest

from repro.core.plane import RBay, RBayConfig
from repro.faults import FaultSchedule
from repro.query.errors import QueryError
from repro.query.executor import QueryResult
from repro.sim.futures import FutureTimeout
from repro.workloads.generator import FederationWorkload, WorkloadSpec

SEED_COUNT = int(os.environ.get("RBAY_CHAOS_SEEDS", "20"))
SEEDS = list(range(100, 100 + SEED_COUNT))

CHAOS_MS = 6_000.0
QUIESCE_MS = 4_000.0


def run_chaos(seed, crash_fraction=0.3, drop_prob=0.1, partitions=1,
              queries=6, sanitize=True, rebalance=False):
    """One chaos scenario; returns everything the invariants inspect.

    The runtime invariant sanitizer rides along by default — its checks
    are purely observational, so the determinism fingerprint is
    unaffected — and the invariant test asserts its report stays empty.

    ``rebalance=True`` turns on hot-tree root replication with thresholds
    low enough that ordinary chaos traffic triggers promotions, running
    the replica protocol through the same crash/partition schedules.
    """
    plane = RBay(RBayConfig(
        seed=seed,
        synthetic_sites=4,
        nodes_per_site=5,
        jitter=False,
        maintenance_interval_ms=500.0,
        reservation_hold_ms=1_000.0,
        sanitize=sanitize,
        # Chaos runs execute only a few thousand events (batched delivery
        # coalescing), so sweep well below the default cadence.
        sanitize_sweep_events=250,
        rebalance=rebalance,
        rebalance_hot_threshold=6,
        rebalance_cool_threshold=2,
        rebalance_window_ms=500.0,
        rebalance_hot_windows=2,
        rebalance_cool_windows=4,
        rebalance_max_replicas=2,
        rebalance_min_children=2,
    )).build()
    workload = FederationWorkload(plane, WorkloadSpec(
        gate_policies=False, utilization_thresholds=())).apply()
    # Bucketed range index rides along: every node gets a seeded
    # utilization value and joins its value-range bucket tree, so range
    # and GROUP BY queries run under the same fault schedules.
    urng = random.Random(seed * 17 + 3)
    for node in plane.nodes:
        node.define_attribute("CPU_utilization", urng.uniform(0.0, 100.0))
    plane.register_buckets("CPU_utilization", 0.0, 100.0, 4)
    plane.sim.run()
    plane.settle(1_000.0)
    # Tight protocol timeouts keep the simulated runs short.
    plane.context.site_timeout_ms = 1_500.0
    plane.context.probe_timeout_ms = 750.0
    plane.start_maintenance()

    schedule = FaultSchedule.randomized(
        random.Random(seed * 7 + 1),
        duration_ms=CHAOS_MS,
        node_count=len(plane.nodes),
        crash_fraction=crash_fraction,
        mean_downtime_ms=1_500.0,
        site_names=[s.name for s in plane.registry],
        partitions=partitions,
        mean_partition_ms=2_000.0,
        drop_prob=drop_prob,
    ).shifted(plane.sim.now)
    injector = plane.install_faults(schedule)

    # Customers keep querying while the faults play out.
    rng = random.Random(seed * 13 + 5)
    site_names = [s.name for s in plane.registry]
    futures = []
    for i in range(queries):
        site = rng.choice(site_names)
        counts = workload.site_instance_population(site)
        populated = sorted(t for t, n in counts.items() if n > 0)
        itype = rng.choice(populated)
        customer = plane.make_customer(f"chaos-{seed}-{i}", site)
        kind = i % 3
        if kind == 1:
            lo = rng.uniform(0.0, 70.0)
            hi = lo + rng.uniform(5.0, 30.0)
            sql = (f"SELECT 1 FROM {site} WHERE CPU_utilization "
                   f"BETWEEN {lo:g} AND {hi:g};")
        elif kind == 2:
            sql = f"SELECT * FROM {site} GROUP BY CPU_utilization;"
        else:
            sql = f"SELECT 1 FROM {site} WHERE instance_type = '{itype}';"
        at = plane.sim.now + rng.uniform(0.1, 0.9) * CHAOS_MS

        def fire(customer=customer, sql=sql):
            futures.append(customer.query_once(sql, timeout=8_000.0))

        plane.sim.schedule_at(at, fire)

    plane.run(until=plane.sim.now + CHAOS_MS + QUIESCE_MS)
    plane.stop_maintenance()
    plane.sim.run()  # drain every in-flight message and timer
    return plane, workload, injector, futures


def popular_type(workload, site):
    counts = workload.site_instance_population(site)
    return max(counts, key=counts.get)


@pytest.mark.parametrize("seed", SEEDS)
def test_chaos_invariants(seed):
    plane, workload, injector, futures = run_chaos(seed)

    # The schedule healed itself: every crashed node is back.
    assert injector.live_indices == list(range(len(plane.nodes)))
    assert not injector.partitions

    # 1. Every query completed cleanly (typed result, never FutureTimeout).
    assert futures, "no queries fired"
    satisfied_ids = set()
    for future in futures:
        assert future.resolved
        value = future.value
        assert not isinstance(value, FutureTimeout)
        assert isinstance(value, (QueryResult, QueryError))
        if isinstance(value, QueryResult):
            if value.degraded:
                assert value.failed_sites
            if value.satisfied:
                satisfied_ids.add(value.query_id)

    # 2. No leaked reservations: a committed lease must belong to a query
    # whose caller actually got a satisfied answer; uncommitted holds must
    # all have lapsed during quiesce.
    for node in plane.nodes:
        table = node.reservation
        holder = table.holder()
        if holder is None:
            continue
        assert table.committed, (
            f"node {node.address} still holds uncommitted query {holder}")
        assert holder in satisfied_ids, (
            f"node {node.address} leased to unsatisfied query {holder}")

    # 3. Network conservation after drain.
    net = plane.network
    assert net.messages_in_flight == 0
    assert net.messages_sent == net.messages_delivered + net.messages_dropped

    # 4. Aggregates reconverged to ground truth at every site.
    from repro.core.naming import instance_tree

    for site in [s.name for s in plane.registry]:
        itype = popular_type(workload, site)
        expected = workload.site_instance_population(site)[itype]
        via = plane.site_nodes(site)[0]
        got = plane.tree_size(instance_tree(site, itype), via=via, scope="site")
        assert got == expected, (
            f"{site}/{itype}: tree says {got}, ground truth {expected}")

    # 4b. Bucket trees reconverged too: after the faults heal, each
    # site's per-bucket membership equals ground truth over the raw
    # attribute values (crashed nodes re-bucketed on recovery).
    from repro.core.naming import site_tree

    spec = plane.context.bucket_index.spec_for("CPU_utilization")
    for site in [s.name for s in plane.registry]:
        nodes = plane.site_nodes(site)
        via = nodes[0]
        for bucket in spec.buckets:
            expected = sum(
                1 for n in nodes
                if n.has_attribute("CPU_utilization")
                and bucket.contains(n.attribute_value("CPU_utilization")))
            got = plane.tree_size(site_tree(site, bucket.tree), via=via,
                                  scope="site")
            assert got == expected, (
                f"{site}/{bucket.tree}: tree says {got}, "
                f"ground truth {expected}")

    # 5. The runtime sanitizer, watching throughout (periodic sweeps,
    # post-query, post-fault, and the final quiescent check), saw nothing.
    report = plane.sanitizer.report
    assert report.ok, report.format()
    assert report.quiescent_checks > 0


@pytest.mark.parametrize("seed", SEEDS)
def test_chaos_invariants_with_rebalancing(seed):
    """The full chaos schedule with hot-tree replication switched on: the
    replica protocol must survive crashes/partitions with the sanitizer
    (which now watches replica-set agreement, child partitioning, and
    snapshot coherence) clean, and aggregates must still equal ground
    truth once the faults heal."""
    plane, workload, injector, futures = run_chaos(seed, rebalance=True)

    assert injector.live_indices == list(range(len(plane.nodes)))
    assert not injector.partitions

    # Typed completion, exactly as in the rebalance-off suite.
    assert futures, "no queries fired"
    for future in futures:
        assert future.resolved
        assert not isinstance(future.value, FutureTimeout)
        assert isinstance(future.value, (QueryResult, QueryError))

    # Aggregates equal ground truth through promote/demote churn.
    from repro.core.naming import instance_tree, site_tree

    for site in [s.name for s in plane.registry]:
        itype = popular_type(workload, site)
        expected = workload.site_instance_population(site)[itype]
        via = plane.site_nodes(site)[0]
        got = plane.tree_size(instance_tree(site, itype), via=via, scope="site")
        assert got == expected, (
            f"{site}/{itype}: tree says {got}, ground truth {expected}")

    spec = plane.context.bucket_index.spec_for("CPU_utilization")
    for site in [s.name for s in plane.registry]:
        nodes = plane.site_nodes(site)
        via = nodes[0]
        for bucket in spec.buckets:
            expected = sum(
                1 for n in nodes
                if n.has_attribute("CPU_utilization")
                and bucket.contains(n.attribute_value("CPU_utilization")))
            got = plane.tree_size(site_tree(site, bucket.tree), via=via,
                                  scope="site")
            assert got == expected, (
                f"{site}/{bucket.tree}: tree says {got}, "
                f"ground truth {expected}")

    # The sanitizer — including the three replica invariants — is clean.
    report = plane.sanitizer.report
    assert report.ok, report.format()
    assert report.quiescent_checks > 0

    # No replica roles left dangling after the final drain: every surviving
    # replica set is mutually acknowledged.
    for node in plane.nodes:
        for topic, state in node.scribe.topics().items():
            for addr in state.replicas:
                assert addr in state.children, (
                    f"{topic}: replica {addr} at {node.address} "
                    f"is not a child")


def test_rebalancing_chaos_run_is_deterministic():
    """Same seed with rebalancing on: byte-identical decisions and trace."""
    def fingerprint(seed):
        plane, _, injector, futures = run_chaos(seed, rebalance=True)
        promotions = sum(
            n.scribe.rebalancer.promotions for n in plane.nodes)
        demotions = sum(
            n.scribe.rebalancer.demotions for n in plane.nodes)
        outcomes = [
            (f.value.satisfied, f.value.degraded, f.value.retries,
             sorted(f.value.tree_sizes.items()))
            if isinstance(f.value, QueryResult) else repr(f.value)
            for f in futures
        ]
        return (injector.trace_text(), plane.counters.snapshot(),
                plane.network.messages_sent, promotions, demotions, outcomes)

    assert fingerprint(SEEDS[0]) == fingerprint(SEEDS[0])


def test_chaos_run_is_deterministic():
    """Same seed, same schedule: byte-identical trace and counters."""
    def fingerprint(seed):
        plane, _, injector, futures = run_chaos(seed)
        # Query ids come from a process-global counter, so fingerprints
        # compare per-query outcomes positionally instead.
        outcomes = [
            (f.value.satisfied, f.value.degraded, f.value.retries,
             sorted(f.value.tree_sizes.items()))
            if isinstance(f.value, QueryResult) else repr(f.value)
            for f in futures
        ]
        return (injector.trace_text(), plane.counters.snapshot(),
                plane.network.messages_sent, outcomes)

    assert fingerprint(SEEDS[0]) == fingerprint(SEEDS[0])


def test_retries_spent_under_loss_are_counted():
    """Ambient loss must exercise the retry paths, not just timeouts."""
    plane, _, _, futures = run_chaos(SEEDS[0], drop_prob=0.25)
    retried = plane.counters.get("query.retry.site") \
        + plane.counters.get("query.retry.probe") \
        + plane.counters.get("query.retry.anycast")
    assert retried > 0
    assert all(f.resolved for f in futures)
