#!/usr/bin/env python3
"""Profile the event/dispatch hot path (run by ``make profile`` and CI).

Thin CLI over :mod:`repro.workloads.profiling`: runs the deterministic
scale workload under cProfile, prints the per-stage attribution table
(drain loop, routing, message construction, dispatch, aggregation, ...),
and — with ``--check-floor`` — fails (exit 1) when the measured
events/sec regresses more than the allowed fraction below the
``profile_floor`` checked into ``benchmarks/results/scale.json``.

The floor is expressed as a fraction of the checked-in profiled
throughput rather than an absolute number so the gate tracks the
machine the baseline was recorded on; regenerate the floor with
``--write-floor`` after an intentional perf change.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

SCALE_JSON = REPO / "benchmarks" / "results" / "scale.json"

#: Allowed regression vs the checked-in floor (the ISSUE's ">10%" gate).
DEFAULT_TOLERANCE = 0.10


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sites", type=int, default=None,
                        help="synthetic sites (default: the profile spec's 8)")
    parser.add_argument("--nodes", type=int, default=None,
                        help="nodes per site (default: 16)")
    parser.add_argument("--duration", type=float, default=None,
                        help="measured window in simulated ms (default: 3000)")
    parser.add_argument("--seed", type=int, default=None, help="RNG seed")
    parser.add_argument("--top", type=int, default=3,
                        help="heaviest functions listed per stage")
    parser.add_argument("--json-out", default=None, metavar="PATH",
                        help="write the metrics + attribution dict to PATH")
    parser.add_argument("--check-floor", action="store_true",
                        help="fail if events/sec fell more than the tolerance "
                             "below the floor in benchmarks/results/scale.json")
    parser.add_argument("--write-floor", action="store_true",
                        help="record this run's events/sec as the new floor")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed fractional regression for --check-floor")
    args = parser.parse_args(argv)

    from dataclasses import replace

    from repro.workloads.profiling import (PROFILE_SPEC, format_profile,
                                           profile_scale)

    spec = PROFILE_SPEC
    overrides = {k: v for k, v in (
        ("sites", args.sites), ("nodes_per_site", args.nodes),
        ("duration_ms", args.duration), ("seed", args.seed),
    ) if v is not None}
    if overrides:
        spec = replace(spec, **overrides)

    metrics = profile_scale(spec)
    print(format_profile(metrics, top=args.top))

    if args.json_out:
        Path(args.json_out).write_text(json.dumps(metrics, indent=2,
                                                  sort_keys=True) + "\n")
        print(f"wrote profile JSON to {args.json_out}")

    if args.write_floor:
        if overrides:
            print("profile_core: refusing to --write-floor for a non-default "
                  "spec (the floor pins the canonical profile spec)")
            return 1
        doc = json.loads(SCALE_JSON.read_text()) if SCALE_JSON.exists() else {}
        doc["profile_floor"] = {
            "events_per_sec": round(metrics["events_per_sec"], 1),
            "signature": metrics["signature"],
            "spec": metrics["spec"],
        }
        SCALE_JSON.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"recorded profile floor {doc['profile_floor']['events_per_sec']:,.0f} "
              f"events/sec in {SCALE_JSON}")

    if args.check_floor:
        if overrides:
            print("profile_core: --check-floor requires the default spec")
            return 1
        floor = json.loads(SCALE_JSON.read_text()).get("profile_floor")
        if floor is None:
            print("profile_core: FAIL: no profile_floor in scale.json "
                  "(run with --write-floor first)")
            return 1
        if metrics["signature"] != floor["signature"]:
            print("profile_core: FAIL: run signature "
                  f"{metrics['signature'][:16]}… does not match the floor's "
                  f"{floor['signature'][:16]}… — the workload behaviour "
                  "changed; refresh the floor deliberately with --write-floor")
            return 1
        minimum = floor["events_per_sec"] * (1.0 - args.tolerance)
        if metrics["events_per_sec"] < minimum:
            print(f"profile_core: FAIL: {metrics['events_per_sec']:,.0f} "
                  f"events/sec is more than {args.tolerance:.0%} below the "
                  f"checked-in floor of {floor['events_per_sec']:,.0f}")
            return 1
        print(f"profile floor ok: {metrics['events_per_sec']:,.0f} events/sec "
              f">= {minimum:,.0f} (floor {floor['events_per_sec']:,.0f} "
              f"- {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
