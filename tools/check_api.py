#!/usr/bin/env python3
"""Lint the frozen public API surface (run by ``make coverage`` and CI).

Fails (exit 1) when any of these drift apart:

* ``repro.__all__`` — the declared stable surface;
* the lazy-export map ``repro._EXPORTS`` backing it (PEP 562);
* the "Public API & stability" table in ``docs/architecture.md``;
* ``repro.query.__all__`` — the query package's exported helpers.

Also pins the stability contract itself: every public name must resolve
and carry a docstring, ``QueryOptions``/``QueryResult`` must stay frozen
dataclasses, and every ``RBayConfig`` field (the public configuration
knobs, including the sanitizer's) must be listed in ``docs/api.md``.

Finally, a deny-list keeps *retired* surfaces retired: names removed from
the public API (``QueryContext``, the ``execute(payload=/caller=/
timeout=)`` keyword shims) must not reappear in ``repro.__all__``, the
lazy-export map, the query package exports, or the docs.
"""

from __future__ import annotations

import dataclasses
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

DOCS = REPO / "docs" / "architecture.md"
DOCS_SECTION = "## 12. Public API & stability"

API_DOCS = REPO / "docs" / "api.md"
CONFIG_SECTION = "### `RBayConfig`"

#: Retired public names: must never reappear in the export surfaces.
DENY_EXPORTS = ("QueryContext",)

#: Retired spellings: must never reappear in the docs (the docs may of
#: course *mention* QueryOptions fields like ``payload=``; these patterns
#: target the removed entry points specifically).
DENY_DOC_PATTERNS = (
    r"`QueryContext`",
    r"execute\(payload=",
    r"execute\(caller=",
    r"execute\(timeout=",
)


def _fail(errors):
    for error in errors:
        print(f"check_api: FAIL: {error}")
    return 1


def _docs_table_names(text: str):
    """Backticked names from the first column of the section's table."""
    try:
        section = text.split(DOCS_SECTION, 1)[1]
    except IndexError:
        return None
    names = []
    for line in section.splitlines():
        match = re.match(r"\|\s*`([A-Za-z_][A-Za-z0-9_]*)`\s*\|", line)
        if match:
            names.append(match.group(1))
        elif names and not line.startswith("|"):
            break  # table ended
    return names


def main() -> int:
    import repro
    import repro.query as query_pkg

    errors = []

    # 1. Every declared public name resolves and is documented.
    for name in repro.__all__:
        try:
            value = getattr(repro, name)
        except AttributeError as exc:
            errors.append(f"repro.{name} does not resolve: {exc}")
            continue
        if name != "__version__" and not (getattr(value, "__doc__", None) or "").strip():
            errors.append(f"repro.{name} has no docstring")

    # 2. The lazy-export map backs exactly __all__ (minus __version__).
    declared = set(repro.__all__) - {"__version__"}
    mapped = set(repro._EXPORTS)
    if declared != mapped:
        errors.append(
            f"repro.__all__ and repro._EXPORTS disagree: "
            f"only in __all__: {sorted(declared - mapped)}, "
            f"only in _EXPORTS: {sorted(mapped - declared)}")

    # 3. The docs table lists exactly the public names.
    table = _docs_table_names(DOCS.read_text(encoding="utf-8"))
    if table is None:
        errors.append(f"docs/architecture.md lacks section {DOCS_SECTION!r}")
    elif set(table) != declared:
        errors.append(
            f"docs/architecture.md public-API table drifted: "
            f"missing {sorted(declared - set(table))}, "
            f"extra {sorted(set(table) - declared)}")

    # 4. The query package's exported surface resolves.
    for name in query_pkg.__all__:
        if not hasattr(query_pkg, name):
            errors.append(f"repro.query.{name} in __all__ but missing")

    # 5. The value types stay frozen dataclasses.
    for cls_name in ("QueryOptions", "QueryResult"):
        cls = getattr(repro, cls_name)
        if not dataclasses.is_dataclass(cls) or not cls.__dataclass_params__.frozen:
            errors.append(f"{cls_name} must remain a frozen dataclass")

    # 6. Every RBayConfig knob is documented in docs/api.md.
    from repro.core.plane import RBayConfig

    api_text = API_DOCS.read_text(encoding="utf-8")
    try:
        config_section = api_text.split(CONFIG_SECTION, 1)[1].split("### ", 1)[0]
    except IndexError:
        config_section = None
    if config_section is None:
        errors.append(f"docs/api.md lacks section {CONFIG_SECTION!r}")
    else:
        documented = set(re.findall(r"`([A-Za-z_][A-Za-z0-9_]*)`",
                                    config_section))
        fields = {f.name for f in dataclasses.fields(RBayConfig)}
        missing = sorted(fields - documented)
        if missing:
            errors.append(
                f"docs/api.md RBayConfig section is missing fields: {missing}")

    # 7. Retired surfaces stay retired.
    for name in DENY_EXPORTS:
        for surface, names in (("repro.__all__", repro.__all__),
                               ("repro._EXPORTS", repro._EXPORTS),
                               ("repro.query.__all__", query_pkg.__all__)):
            if name in names:
                errors.append(f"retired name {name!r} reappeared in {surface}")
        if hasattr(repro, name):
            errors.append(f"retired name {name!r} resolves on repro again")
    for doc_path in (DOCS, API_DOCS):
        doc_text = doc_path.read_text(encoding="utf-8")
        for pattern in DENY_DOC_PATTERNS:
            if re.search(pattern, doc_text):
                errors.append(
                    f"retired surface {pattern!r} is documented again in "
                    f"{doc_path.relative_to(REPO)}")

    if errors:
        return _fail(errors)
    print(f"check_api: OK ({len(repro.__all__)} public names, "
          f"{len(query_pkg.__all__)} query exports, docs table in sync)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
