#!/usr/bin/env python
"""Minimum line-coverage gate for the caching and fault subsystems, stdlib-only.

The container has no ``coverage``/``pytest-cov``, so this script measures
line coverage itself with :func:`sys.settrace`: it runs the cache-focused
test files under a tracer that records executed lines of the watched
modules, derives each module's executable-line set from its compiled code
objects, and fails (exit 1) when any watched module's ratio falls below
the threshold.

Usage::

    python tools/check_coverage.py            # default targets, 85% floor
    python tools/check_coverage.py --threshold 0.9

Invoked by ``make coverage``.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import Dict, Iterable, List, Set, Tuple

REPO = Path(__file__).resolve().parent.parent

#: Modules whose coverage this gate protects.
DEFAULT_TARGETS = [
    REPO / "src" / "repro" / "scribe" / "cache.py",
    REPO / "src" / "repro" / "metrics" / "counters.py",
    REPO / "src" / "repro" / "faults" / "schedule.py",
    REPO / "src" / "repro" / "faults" / "injector.py",
    REPO / "src" / "repro" / "query" / "backoff.py",
    REPO / "src" / "repro" / "obs" / "spans.py",
    REPO / "src" / "repro" / "obs" / "metrics.py",
    REPO / "src" / "repro" / "obs" / "critical_path.py",
    REPO / "src" / "repro" / "obs" / "export.py",
    REPO / "src" / "repro" / "query" / "admission.py",
    REPO / "src" / "repro" / "query" / "options.py",
    REPO / "src" / "repro" / "query" / "result.py",
    REPO / "src" / "repro" / "check" / "sanitizer.py",
    REPO / "src" / "repro" / "check" / "invariants.py",
    REPO / "src" / "repro" / "core" / "reservation.py",
    REPO / "src" / "repro" / "query" / "planner.py",
    REPO / "src" / "repro" / "scribe" / "buckets.py",
    REPO / "src" / "repro" / "scribe" / "rebalance.py",
    REPO / "src" / "repro" / "transport" / "base.py",
    REPO / "src" / "repro" / "transport" / "codec.py",
    REPO / "src" / "repro" / "transport" / "sim.py",
    REPO / "src" / "repro" / "transport" / "realtime.py",
    REPO / "src" / "repro" / "transport" / "asyncio_transport.py",
    REPO / "src" / "repro" / "metrics" / "stats.py",
    REPO / "src" / "repro" / "ext" / "selection.py",
    REPO / "src" / "repro" / "ext" / "economy.py",
    REPO / "src" / "repro" / "ext" / "autoscale.py",
    REPO / "src" / "repro" / "workloads" / "market.py",
]

#: Test files that exercise them.
DEFAULT_TESTS = [
    REPO / "tests" / "test_scribe_cache_coherence.py",
    REPO / "tests" / "test_query_probe_cache.py",
    REPO / "tests" / "test_metrics.py",
    REPO / "tests" / "test_faults_injector.py",
    REPO / "tests" / "test_chaos_properties.py",
    REPO / "tests" / "test_query_predicates_backoff.py",
    REPO / "tests" / "test_obs_spans.py",
    REPO / "tests" / "test_obs_metrics.py",
    REPO / "tests" / "test_obs_critical_path.py",
    REPO / "tests" / "test_obs_exporters.py",
    REPO / "tests" / "test_query_admission.py",
    REPO / "tests" / "test_api_surface.py",
    REPO / "tests" / "test_sanitizer.py",
    REPO / "tests" / "test_core_reservation.py",
    REPO / "tests" / "test_query_orphan_release.py",
    REPO / "tests" / "test_query_planner.py",
    REPO / "tests" / "test_scribe_buckets.py",
    REPO / "tests" / "test_property_range_oracle.py",
    REPO / "tests" / "test_rebalance.py",
    REPO / "tests" / "test_transport_codec.py",
    REPO / "tests" / "test_net_trace_ctx.py",
    REPO / "tests" / "test_transport_realtime.py",
    REPO / "tests" / "test_transport_asyncio.py",
    REPO / "tests" / "test_transport_wire_safety.py",
    REPO / "tests" / "test_transport_oracle.py",
    REPO / "tests" / "test_ext_churn.py",
    REPO / "tests" / "test_ext_economy.py",
    REPO / "tests" / "test_economy_live.py",
    REPO / "tests" / "test_market.py",
]


def executable_lines(path: Path) -> Set[int]:
    """Line numbers holding bytecode, from compiling the source.

    Walks every nested code object (functions, methods, comprehensions)
    and collects the lines its instructions map to — the same universe a
    line tracer can possibly report.
    """
    code = compile(path.read_text(), str(path), "exec")
    lines: Set[int] = set()
    stack = [code]
    while stack:
        current = stack.pop()
        for _start, _end, lineno in current.co_lines():
            if lineno is not None:
                lines.add(lineno)
        for const in current.co_consts:
            if hasattr(const, "co_lines"):
                stack.append(const)
    return lines


def make_tracer(hits: Dict[str, Set[int]]):
    """A settrace callback recording line events for watched filenames."""

    def tracer(frame, event, arg):
        filename = frame.f_code.co_filename
        if filename not in hits:
            return None  # don't trace foreign frames at all
        if event == "line":
            hits[filename].add(frame.f_lineno)
        return tracer

    return tracer


def coverage_ratio(hit: Set[int], executable: Set[int]) -> float:
    """Fraction of executable lines hit (1.0 for an empty module)."""
    if not executable:
        return 1.0
    return len(hit & executable) / len(executable)


def run_tests_traced(tests: Iterable[Path],
                     hits: Dict[str, Set[int]]) -> int:
    """Run pytest on ``tests`` under the line tracer; returns its exit code."""
    import pytest

    tracer = make_tracer(hits)
    sys.settrace(tracer)
    try:
        return pytest.main(["-q", "-p", "no:cacheprovider",
                            *[str(t) for t in tests]])
    finally:
        sys.settrace(None)


def report(hits: Dict[str, Set[int]],
           executable: Dict[str, Set[int]]) -> List[Tuple[str, int, int, float]]:
    """Per-target (name, covered, executable, ratio) rows."""
    rows = []
    for filename in sorted(executable):
        exe = executable[filename]
        covered = hits.get(filename, set()) & exe
        rows.append((os.path.relpath(filename, REPO), len(covered),
                     len(exe), coverage_ratio(covered, exe)))
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--threshold", type=float, default=0.85,
                        help="minimum per-module line coverage (default 0.85)")
    parser.add_argument("--targets", nargs="*", type=Path,
                        default=DEFAULT_TARGETS, help="modules to measure")
    parser.add_argument("--tests", nargs="*", type=Path,
                        default=DEFAULT_TESTS, help="test files to run")
    args = parser.parse_args(argv)

    src = str(REPO / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    # Tracing makes the property tests ~10x slower; reduced interleaving /
    # seed counts still touch every watched code path.
    os.environ.setdefault("RBAY_COHERENCE_CHECKS", "25")
    os.environ.setdefault("RBAY_CHAOS_SEEDS", "3")
    os.environ.setdefault("RBAY_ORACLE_SEEDS", "3")

    executable = {str(t.resolve()): executable_lines(t) for t in args.targets}
    hits: Dict[str, Set[int]] = {name: set() for name in executable}

    exit_code = run_tests_traced(args.tests, hits)
    if exit_code != 0:
        print(f"check_coverage: test run failed (pytest exit {exit_code})",
              file=sys.stderr)
        return 1

    failed = False
    print(f"{'module':52} {'covered':>8} {'lines':>6} {'ratio':>7}")
    for name, covered, total, ratio in report(hits, executable):
        flag = "" if ratio >= args.threshold else "  << below threshold"
        print(f"{name:52} {covered:8d} {total:6d} {ratio:6.1%}{flag}")
        if ratio < args.threshold:
            failed = True
    if failed:
        print(f"check_coverage: coverage below the {args.threshold:.0%} floor",
              file=sys.stderr)
        return 1
    print(f"check_coverage: all modules at or above {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
