# Convenience targets for the RBAY reproduction.

PYTHON ?= python

.PHONY: install test bench examples outputs clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

examples:
	@for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f; done

outputs:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf .pytest_cache .hypothesis build dist src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
