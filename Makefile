# Convenience targets for the RBAY reproduction.

PYTHON ?= python

.PHONY: install test bench chaos sanitize coverage trace planner rebalance market live profile examples outputs clean

# Hot-path profile gate: run the deterministic profiling harness on the
# small canonical spec and fail if events/sec regressed more than 10%
# below the floor checked into benchmarks/results/scale.json (refresh an
# intentional change with `python tools/profile_core.py --write-floor`).
profile:
	$(PYTHON) tools/profile_core.py --check-floor

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Chaos property suite: randomized fault schedules over many seeds, plus
# the retries-on/off recovery ablation.  RBAY_CHAOS_SEEDS widens the sweep.
chaos:
	RBAY_CHAOS_SEEDS=$${RBAY_CHAOS_SEEDS:-20} PYTHONPATH=src $(PYTHON) -m pytest \
	  tests/test_chaos_properties.py tests/test_faults_injector.py -q
	PYTHONPATH=src:. $(PYTHON) -m pytest benchmarks/test_chaos_recovery.py \
	  --benchmark-only -s

# Runtime invariant sanitizer (docs/architecture.md §13): the sanitizer
# unit/regression suite, the sanitized 20-seed chaos matrix, the
# fault-replay check subcommand, a sanitized fail-fast 1,024-node scale
# run, and the on/off overhead + trace-identity benchmark
# (benchmarks/results/sanitize_overhead.json).
sanitize:
	PYTHONPATH=src $(PYTHON) -m pytest -q tests/test_sanitizer.py \
	  tests/test_query_orphan_release.py tests/test_core_reservation.py
	RBAY_CHAOS_SEEDS=$${RBAY_CHAOS_SEEDS:-20} PYTHONPATH=src $(PYTHON) -m pytest \
	  tests/test_chaos_properties.py -q
	PYTHONPATH=src $(PYTHON) -m repro.cli check --seed 101 --show-faults
	PYTHONPATH=src $(PYTHON) -m repro.cli scale --sites 32 --nodes 32 \
	  --queries 64 --sanitize --sanitize-fail-fast
	PYTHONPATH=src:. $(PYTHON) -m pytest benchmarks/test_sanitizer_overhead.py \
	  --benchmark-only -s

# Line-coverage floor for the caching subsystem.  When pytest-cov is
# installed, also print a full term-missing report; the gate itself uses
# a stdlib tracer (tools/check_coverage.py) so it runs anywhere and
# fails if cache.py or counters.py drop below 85%.  The public-API lint
# (tools/check_api.py) rides along: it fails if repro.__all__, the lazy
# exports, or the docs table drift.
coverage:
	@$(PYTHON) -c "import pytest_cov" 2>/dev/null \
	  && $(PYTHON) -m pytest tests/ --cov=repro --cov-report=term-missing \
	  || echo "pytest-cov not installed; running the stdlib coverage gate only"
	$(PYTHON) tools/check_coverage.py
	$(PYTHON) tools/check_api.py

# Observability plane: the span/metric/critical-path test suite, the
# tracing-overhead ablation, and a demo trace of one multi-site query
# (Chrome trace_event export lands in trace_demo.json; open in Perfetto).
trace:
	PYTHONPATH=src $(PYTHON) -m pytest -q tests/test_obs_spans.py \
	  tests/test_obs_metrics.py tests/test_obs_critical_path.py \
	  tests/test_obs_exporters.py
	PYTHONPATH=src:. $(PYTHON) -m pytest benchmarks/test_obs_overhead.py \
	  --benchmark-only -s
	PYTHONPATH=src $(PYTHON) -m repro.cli trace \
	  "SELECT 2 FROM * WHERE instance_type = 'c3.large';" \
	  --nodes 8 --no-jitter --trace-out trace_demo.json

# Range planner (docs/architecture.md §14): bucket/planner unit and golden
# suites, the oracle-backed property suite (planner on vs. off, row-identical
# to brute force; RBAY_ORACLE_SEEDS widens the sweep), and the planner-on/off
# ablation (benchmarks/results/planner_ablation.json).
planner:
	PYTHONPATH=src $(PYTHON) -m pytest -q tests/test_scribe_buckets.py \
	  tests/test_query_planner.py
	RBAY_ORACLE_SEEDS=$${RBAY_ORACLE_SEEDS:-20} PYTHONPATH=src $(PYTHON) -m pytest \
	  tests/test_property_range_oracle.py -q
	PYTHONPATH=src:. $(PYTHON) -m pytest benchmarks/test_planner_ablation.py \
	  --benchmark-only -s

# Hot-tree balancer (docs/architecture.md §15): hysteresis/promotion/
# diversion/demotion suites, the skew-stress regression pins, the
# rebalance-enabled chaos matrix, and the on/off zipf-skew ablation
# (benchmarks/results/rebalance_skew.json).
rebalance:
	PYTHONPATH=src $(PYTHON) -m pytest -q tests/test_rebalance.py \
	  tests/test_skew_regressions.py
	RBAY_CHAOS_SEEDS=$${RBAY_CHAOS_SEEDS:-20} PYTHONPATH=src $(PYTHON) -m pytest \
	  tests/test_chaos_properties.py -q -k rebalanc
	PYTHONPATH=src:. $(PYTHON) -m pytest benchmarks/test_rebalance_skew.py \
	  --benchmark-only -s

# Elastic marketplace (docs/architecture.md §18): DEPAS autoscaler +
# spot-pricer + market-workload suites, the economy/selection regression
# tests, the live-mode economy coverage, and the autoscale on/off demand-
# spike ablation with the 20-seed determinism fingerprint
# (benchmarks/results/market.json).
market:
	PYTHONPATH=src $(PYTHON) -m pytest -q tests/test_market.py \
	  tests/test_ext_economy.py tests/test_ext_churn.py \
	  tests/test_economy_live.py
	PYTHONPATH=src:. $(PYTHON) -m pytest benchmarks/test_market.py \
	  --benchmark-only -s

# Real-transport subsystem (docs/architecture.md §16): codec + trace-ctx
# + scheduler + socket suites, the sim-as-oracle harness and live 4-site
# e2e, the two-process serve smoke test, and the live-vs-sim cost
# benchmark (benchmarks/results/transport_overhead.json).  Live runs use
# real sockets and wall clocks, so the whole target sits under a hard
# wall-clock timeout (override with RBAY_LIVE_TIMEOUT, seconds).
live:
	timeout $${RBAY_LIVE_TIMEOUT:-900} sh -c '\
	  PYTHONPATH=src $(PYTHON) -m pytest -q tests/test_transport_codec.py \
	    tests/test_net_trace_ctx.py tests/test_transport_realtime.py \
	    tests/test_transport_asyncio.py tests/test_transport_wire_safety.py \
	    tests/test_transport_oracle.py tests/test_transport_live.py \
	    tests/test_transport_serve.py && \
	  PYTHONPATH=src:. $(PYTHON) -m pytest benchmarks/test_transport_overhead.py \
	    --benchmark-only -s'

examples:
	@for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f; done

outputs:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf .pytest_cache .hypothesis build dist src/repro.egg-info
	rm -f trace_demo.json
	find . -name __pycache__ -type d -exec rm -rf {} +
