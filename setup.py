from setuptools import setup

setup(
    entry_points={"console_scripts": ["rbay = repro.cli:main"]},
)
