#!/usr/bin/env python3
"""A fast, small-scale rendition of the paper's Figure 10.

Dresses the federation in the paper's evaluation workload (23 EC2
instance-type trees per site, Gaussian tree sizes, password gates) and
measures composite-query latency as the location predicate grows from the
local site to all eight — showing the "max remote RTT + local query time"
structure and the flattening beyond five sites.

Run:  python examples/multi_site_latency.py
"""

from repro import QueryOptions, RBay, RBayConfig
from repro.metrics.stats import LatencyRecorder, format_table
from repro.workloads import FederationWorkload, QueryWorkload, WorkloadSpec

QUERIES_PER_POINT = 40
ORIGINS = ("Virginia", "Singapore", "SaoPaulo")


def main() -> None:
    plane = RBay(RBayConfig(seed=7, nodes_per_site=25)).build()
    FederationWorkload(plane, WorkloadSpec(password="rbay")).apply()
    plane.sim.run()

    site_names = [site.name for site in plane.registry]
    recorder = LatencyRecorder()

    for origin in ORIGINS:
        generator = QueryWorkload(
            plane.streams.stream(f"queries-{origin}"), site_names, k=1
        )
        for n_sites in range(1, len(site_names) + 1):
            for sql, payload in generator.stream(origin, n_sites, QUERIES_PER_POINT):
                result = plane.query(sql, options=QueryOptions(
                    origin=origin, caller=f"user@{origin}", payload=payload))
                recorder.record(f"{origin}/{n_sites}", result.latency_ms)

    print("Composite query latency vs. number of requesting sites")
    print("(simulated; RTTs from the paper's Table II)\n")
    rows = []
    for n_sites in range(1, len(site_names) + 1):
        row = [f"{n_sites}-site"]
        for origin in ORIGINS:
            summary = recorder.summary(f"{origin}/{n_sites}")
            row.append(f"{summary['mean']:7.1f} ± {summary['std']:5.1f}")
        rows.append(row)
    print(format_table(["location", *(f"{o} (ms)" for o in ORIGINS)], rows))

    print("\nPaper's shape to compare against (Fig. 10): "
          "<200 ms local, rising with site count, ~600 ms and flat for 5-8 sites.")


if __name__ == "__main__":
    main()
