#!/usr/bin/env python3
"""Trace one query's message flow through the plane.

Attaches a :class:`Tracer` to the network, runs a single multi-site
composite query, and prints a condensed timeline of every message class it
generated — size probes, anycast walks, commit/release — grouped by kind.
Useful for understanding (and teaching) the five-step protocol.

Run:  python examples/trace_a_query.py
"""

from collections import Counter

from repro import QueryOptions, RBay, RBayConfig
from repro.sim.trace import Tracer
from repro.workloads import FederationWorkload, WorkloadSpec


def main() -> None:
    plane = RBay(RBayConfig(seed=3, nodes_per_site=12, jitter=False)).build()
    FederationWorkload(plane, WorkloadSpec(password="rbay")).apply()
    plane.sim.run()

    tracer = Tracer(plane.sim, max_events=50_000)

    def hook(msg):
        payload = msg.payload if isinstance(msg.payload, dict) else {}
        detail = payload.get("kind") or (payload.get("data") or {}).get("op") or ""
        tracer.emit(msg.kind, str(detail), src=msg.src, dst=msg.dst)

    plane.network.set_delivery_hook(hook)

    itype = "c3.xlarge"
    sql = f"SELECT 3 FROM * WHERE instance_type = '{itype}' GROUPBY CPU_utilization ASC;"
    print(f"Tracing: {sql}\n")
    result = plane.query(sql, options=QueryOptions(
        origin="Virginia", caller="joe", payload={"password": "rbay"}))
    plane.sim.run()
    plane.network.set_delivery_hook(None)

    print(f"satisfied={result.satisfied}  entries={len(result.entries)}  "
          f"latency={result.latency_ms:.1f} ms  "
          f"members visited={result.visited_members}\n")

    # Condense the timeline: message class -> count.
    counts = Counter()
    for event in tracer:
        label = f"{event.category}/{event.message}" if event.message else event.category
        counts[label] += 1
    print(f"{len(tracer)} messages delivered during the query:")
    for label, count in counts.most_common():
        print(f"  {count:>4}  {label}")

    print("\nFirst 12 events of the timeline:")
    for event in list(tracer)[:12]:
        print(f"  [{event.time:9.3f} ms] {event.category:<14} {event.message:<12} "
              f"{event.fields['src']} -> {event.fields['dst']}")


if __name__ == "__main__":
    main()
