#!/usr/bin/env python3
"""The hybrid naming scheme and query EXPLAIN (paper §III-C).

Builds a device catalog with nested properties (brand → model → cores),
links the trees into the hybrid hierarchy, and shows how a query on the
major attribute ("any Intel CPU") expands over the leaf trees — plus the
EXPLAIN output a query interface produces for the plan.

Run:  python examples/hybrid_naming.py
"""

from repro import QueryOptions, RBay, RBayConfig
from repro.query.plan import plan_query
from repro.query.sql import parse_query

#: brand -> model -> nodes per model (one site's catalog).
CATALOG = {
    "Intel": {"i7": 3, "i5": 2, "Xeon": 2},
    "AMD": {"Ryzen": 3, "Epyc": 2},
}


def main() -> None:
    plane = RBay(RBayConfig(seed=8, nodes_per_site=14)).build()
    plane.sim.run()
    admin = plane.admin("California")
    nodes = iter(plane.site_nodes("California"))

    # Post devices into leaf trees; link leaves under their major trees.
    for brand, models in CATALOG.items():
        plane.hierarchy.link(f"CPU/{brand}", "CPU")
        for model, count in models.items():
            leaf = f"CPU/{brand}/{model}"
            plane.hierarchy.link(leaf, f"CPU/{brand}")
            for _ in range(count):
                node = next(nodes)
                admin.post_resource(node, "cpu_model", f"{brand} {model}",
                                    tree=leaf)
    plane.sim.run()

    print("Hybrid hierarchy:")
    for major in plane.hierarchy.roots():
        print(f"  {major}")
        for child in plane.hierarchy.children(major):
            print(f"    {child}")
            for leaf in plane.hierarchy.children(child):
                print(f"      {leaf}")

    # A new device model plugs in without any new global agreement.
    newcomer = next(nodes)
    plane.hierarchy.link("CPU/Intel/i9", "CPU/Intel")
    admin.post_resource(newcomer, "cpu_model", "Intel i9", tree="CPU/Intel/i9")
    plane.sim.run()
    print("\nAdded a brand-new model: CPU/Intel/i9 (one link, no new majors)")

    # Queries on any level expand recursively over the leaves.
    for sql in (
        "SELECT 20 FROM California WHERE CPU = true;",          # major
        "SELECT 20 FROM California WHERE CPU/Intel = true;",    # brand
        "SELECT 20 FROM California WHERE CPU/Intel/i9 = true;", # model
    ):
        query = parse_query(sql)
        plan = plan_query(query, plane.context)
        probes = plan.probes_per_site["California"]
        result = plane.query(sql, options=QueryOptions(origin="California",
                                                       caller="joe"))
        print(f"\n{sql}")
        print(f"  probes {len(probes)} tree(s), found {len(result.entries)} node(s)")
        home = plane.site_nodes("California")[0]
        for entry in result.entries:  # give everything back between queries
            home.send_app(entry["address"], "query", "release",
                          {"query_id": result.query_id})
        plane.sim.run()

    print("\nEXPLAIN for the major-attribute query:")
    print(plan_query(parse_query("SELECT 20 FROM California WHERE CPU = true;"),
                     plane.context).explain())


if __name__ == "__main__":
    main()
