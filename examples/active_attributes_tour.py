#!/usr/bin/env python3
"""A tour of the active-attribute sandbox (the paper's §III-B, Table I).

Shows the five handlers, the instruction budget terminating runaway
handlers, the excluded libraries, and an admin evolving policy at runtime
through onDeliver — all without a federation, just the AA runtime.

Run:  python examples/active_attributes_tour.py
"""

from repro.aa import AARuntime

runtime = AARuntime(instruction_limit=50_000)


def show(title):
    print(f"\n=== {title} ===")


def main() -> None:
    # ------------------------------------------------------------------
    show("Figure 5: the password handler")
    runtime.define("CPU", "Intel 3.40GHz", """
AA = {NodeId = 27,
      IP = "131.94.130.118",
      Password = "3053482032"}

function onGet(caller, password)
  if (password == AA.Password) then
    return AA.NodeId
  end
  return nil
end
""")
    attribute = runtime.get("CPU")
    print("get with correct password:", attribute.invoke("onGet", ("joe", "3053482032")))
    print("get with wrong password:  ", attribute.invoke("onGet", ("joe", "1234")))

    # ------------------------------------------------------------------
    show("onSubscribe / onUnsubscribe: threshold tree membership")
    runtime.define("CPU_utilization", 5.0, """
function onSubscribe(caller, topic)
  if AA.Value ~= nil and AA.Value < 10 then return topic end
  return nil
end

function onUnsubscribe(caller, topic)
  if AA.Value == nil or AA.Value >= 10 then return topic end
  return nil
end
""")
    print("util=5  -> join 'CPU_utilization<10%':",
          runtime.should_subscribe("CPU_utilization", 0, "CPU_utilization<10%"))
    runtime.set_value("CPU_utilization", 85.0)
    print("util=85 -> leave the tree:",
          runtime.should_unsubscribe("CPU_utilization", 0, "CPU_utilization<10%"))

    # ------------------------------------------------------------------
    show("onDeliver: interactive policy management")
    runtime.define("rental", 0, """
AA = {Price = 100}

function onDeliver(caller, payload)
  if payload.new_price ~= nil then
    AA.Price = payload.new_price
  end
  return AA.Price
end

function onGet(caller, payload)
  if payload.budget ~= nil and payload.budget >= AA.Price then
    return "granted"
  end
  return nil
end
""")
    print("budget 60 at price 100:", runtime.on_get("rental", "joe", {"budget": 60}))
    print("admin lowers price ->", runtime.on_deliver("rental", "admin", {"new_price": 50}))
    print("budget 60 at price 50: ", runtime.on_get("rental", "joe", {"budget": 60}))

    # ------------------------------------------------------------------
    show("The instruction budget terminates runaway handlers")
    runtime.define("hostile", 0, "function onTimer() while true do end end")
    runtime.on_timer("hostile")
    print("runaway handler error:", runtime.get("hostile").errors[0])

    # ------------------------------------------------------------------
    show("Kernel / filesystem / network libraries are excluded")
    for source in ("return os.time()", "return io()", "return require('socket')"):
        runtime.define("probe", 0, f"function onGet(c, p) {source} end")
        runtime.on_get("probe", "x")
        print(f"  {source:<28} -> {runtime.get('probe').errors[-1].message}")

    # ------------------------------------------------------------------
    show("Handlers can do real work: math, string, and table manipulation")
    runtime.define("scorer", 0, """
function onGet(caller, payload)
  -- Rank offered specs by a weighted score, return the best label.
  local best, best_score = nil, -math.huge
  for name, spec in pairs(payload) do
    local score = spec.vcpu * 2 + spec.mem - spec.price * 0.5
    if score > best_score then
      best, best_score = name, score
    end
  end
  return string.format("%s (score %d)", best, best_score)
end
""")
    offers = {
        "small": {"vcpu": 2, "mem": 4, "price": 10},
        "large": {"vcpu": 16, "mem": 64, "price": 80},
        "deal": {"vcpu": 8, "mem": 32, "price": 12},
    }
    print("best offer:", runtime.on_get("scorer", "joe", offers))


if __name__ == "__main__":
    main()
