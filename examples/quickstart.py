#!/usr/bin/env python3
"""Quickstart: federate the paper's eight EC2 sites and run one query.

Builds a small RBAY plane (8 sites x 10 nodes over the Table II latency
matrix), posts a few resources with a password policy, and runs the
paper's Figure 6 composite query across all sites.

Run:  python examples/quickstart.py
"""

from repro import QueryOptions, RBay, RBayConfig
from repro.core import password_policy
from repro.core.node import SubscriptionSpec
from repro.core.naming import site_tree


def main() -> None:
    # 1. Build the federation: 8 EC2 sites from the paper's Table II,
    #    10 nodes per site, deterministic seed.
    plane = RBay(RBayConfig(seed=2017, nodes_per_site=10)).build()

    # 2. Each site's admin posts resources.  Half the nodes carry an
    #    "Intel Core i7"; all track CPU utilization and join their site's
    #    utilization-threshold tree; every node is password-protected.
    rng = plane.streams.stream("example")
    for site in plane.registry:
        admin = plane.admin(site.name)
        for i, node in enumerate(plane.site_nodes(site.name)):
            admin.set_gate_policy(node, password_policy(node.node_id.value, "sesame"))
            node.define_attribute("CPU_utilization", rng.uniform(0.0, 100.0))
            node.subscribe(SubscriptionSpec(
                topic=site_tree(site.name, "CPU_utilization<10%"),
                attribute="CPU_utilization",
                scope="site",
                default_predicate=lambda v: v is not None and v < 10.0,
            ))
            if i % 2 == 0:
                admin.post_resource(node, "CPU_model", "Intel Core i7")
    plane.sim.run()  # let joins and aggregates settle

    # 3. Joe (in Virginia) runs the paper's example query across all
    #    sites, through the stable facade: admitted via the bounded
    #    concurrency window, resolving to a frozen QueryResult.
    sql = (
        "SELECT 5 FROM * "
        "WHERE CPU_model = 'Intel Core i7' AND CPU_utilization < 50% "
        "GROUPBY CPU_utilization ASC;"
    )
    print(f"Query: {sql}")
    options = QueryOptions(origin="Virginia", caller="joe",
                           payload={"password": "sesame"})
    result = plane.query(sql, options=options)

    print(f"\nSatisfied: {result.satisfied}  "
          f"(wanted {result.requested}, got {len(result.entries)})")
    print(f"Latency:   {result.latency_ms:.1f} ms simulated "
          f"(sites answered: {len(result.sites_answered)}/8)")
    print("\nGranted nodes (ordered by utilization):")
    for entry in result.entries:
        print(f"  node {entry['node_id'] % 10_000:>5}…  site={entry['site']:<10} "
              f"util={entry['order_value']:.1f}%")

    # 4. The wrong password gets nothing — policy runs on the owners' nodes.
    denied = plane.query(sql, options=QueryOptions(
        origin="Virginia", caller="joe", payload={"password": "wrong"}))
    print(f"\nSame query, wrong password: {len(denied.entries)} nodes (policy enforced)")


if __name__ == "__main__":
    main()
