#!/usr/bin/env python3
"""The paper's motivating scenario (Figure 1) as a running marketplace.

Grace, James and Kevin administer three sites with different sharing
policies — a nightly time window, an access-control list, and a history
credit check.  Joe shops across all three; Mallory tries and mostly fails.
An admin then changes rental prices interactively (multicast → onDeliver)
and two contending customers race for scarce nodes (truncated exponential
backoff).

Run:  python examples/federated_marketplace.py
"""

from repro.core import RBay, RBayConfig
from repro.core.policies import (
    acl_policy,
    credit_policy,
    rental_price_policy,
    time_window_policy,
)


def build_marketplace():
    plane = RBay(RBayConfig(seed=42, nodes_per_site=8)).build()
    plane.sim.run()

    grace = plane.admin("Virginia")
    james = plane.admin("Oregon")
    kevin = plane.admin("California")

    # Grace: resources available only 22:00 - 06:00.
    for node in plane.site_nodes("Virginia")[:5]:
        grace.set_gate_policy(node, time_window_policy(node.node_id.value, 22, 6))
        grace.post_resource(node, "Matlab", "8.0")

    # James: only principals on his ACL.
    for node in plane.site_nodes("Oregon")[:5]:
        james.set_gate_policy(node, acl_policy(node.node_id.value, ["joe", "alice"]))
        james.post_resource(node, "Matlab", "8.0")

    # Kevin: requires a history credit of at least 0.7.
    for node in plane.site_nodes("California")[:5]:
        kevin.set_gate_policy(node, credit_policy(node.node_id.value, 0.7))
        kevin.post_resource(node, "Matlab", "8.0")

    plane.sim.run()
    return plane


def shop(plane, who, hour, credit, label):
    customer = plane.make_customer(who, "Virginia")
    sql = "SELECT 15 FROM Virginia, Oregon, California WHERE Matlab = '8.0';"
    result = customer.query_once(sql, payload={"hour": hour, "credit": credit}).result()
    by_site = {}
    for entry in result.entries:
        by_site[entry["site"]] = by_site.get(entry["site"], 0) + 1
    print(f"  {label:<42} -> {len(result.entries):>2} nodes {by_site}")
    customer.release_all(result)
    plane.sim.run()


def main() -> None:
    plane = build_marketplace()

    print("Shopping for Matlab 8.0 across Grace/James/Kevin:")
    shop(plane, "joe", hour=23, credit=0.9, label="joe, 11pm, credit 0.9 (all policies pass)")
    shop(plane, "joe", hour=14, credit=0.9, label="joe, 2pm (Grace's window closed)")
    shop(plane, "mallory", hour=23, credit=0.9, label="mallory, 11pm (not on James's ACL)")
    shop(plane, "joe", hour=23, credit=0.3, label="joe, poor credit (Kevin declines)")

    # ------------------------------------------------------------------
    # Interactive policy management: Sydney's admin rents GPUs and later
    # lowers the price via a multicast command (onDeliver handlers).
    print("\nRental pricing via admin multicast (onDeliver):")
    sydney = plane.admin("Sydney")
    for node in plane.site_nodes("Sydney")[:4]:
        sydney.set_gate_policy(node, rental_price_policy(node.node_id.value, 100.0))
        sydney.post_resource(node, "GPU", True)
    plane.sim.run()

    buyer = plane.make_customer("joe", "Sydney")
    sql = "SELECT 2 FROM Sydney WHERE GPU = true;"
    result = buyer.query_once(sql, payload={"budget": 60.0}).result()
    print(f"  budget 60 at price 100 -> {len(result.entries)} nodes")

    sydney.broadcast_command(plane.site_nodes("Sydney")[0],
                             "GPU", "access", {"new_price": 50.0})
    plane.sim.run()
    result = buyer.query_once(sql, payload={"budget": 60.0}).result()
    print(f"  after price drop to 50  -> {len(result.entries)} nodes")
    buyer.release_all(result)
    plane.sim.run()

    # ------------------------------------------------------------------
    # Contention: two customers race for ALL of Tokyo's shared FPGAs.
    print("\nContention with truncated exponential backoff:")
    tokyo = plane.admin("Tokyo")
    fpga_nodes = plane.site_nodes("Tokyo")[:3]
    for node in fpga_nodes:
        tokyo.post_resource(node, "FPGA", True)
    plane.sim.run()

    alice = plane.make_customer("alice", "Tokyo")
    bob = plane.make_customer("bob", "Tokyo")
    want = f"SELECT {len(fpga_nodes)} FROM Tokyo WHERE FPGA = true;"
    fa = alice.request(want)
    fb = bob.request(want)
    oa, ob = fa.result(), fb.result()
    for name, outcome in (("alice", oa), ("bob", ob)):
        status = "WON" if outcome.satisfied else "backed off, gave up"
        print(f"  {name}: {status} after {outcome.attempts} attempt(s)")


if __name__ == "__main__":
    main()
