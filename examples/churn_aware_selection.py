#!/usr/bin/env python3
"""Churn-aware resource selection (the paper's §VI future work, running).

Half of Oregon's GPU fleet is flaky.  A naive customer takes whatever the
five-step protocol hands back; a stability-aware customer over-asks,
ranks candidates with a churn predictor built from observed history, and
keeps only the most stable nodes.  We then simulate lease-term failures
and compare how many granted leases survive.

Run:  python examples/churn_aware_selection.py
"""

from repro.core import RBay, RBayConfig
from repro.ext.churn import ChurnPredictor, ChurnTracker
from repro.ext.selection import QoSSelector, StabilityAwareCustomer
from repro.metrics.ascii_plot import ascii_bars

TRIALS = 25


def build():
    plane = RBay(RBayConfig(seed=99, nodes_per_site=14)).build()
    plane.sim.run()
    admin = plane.admin("Oregon")
    nodes = plane.site_nodes("Oregon")
    for node in nodes:
        admin.post_resource(node, "GPU", True)
    plane.sim.run()

    # Half the fleet flaps during an observation window; the tracker sees it.
    rng = plane.streams.stream("flaky")
    flaky = set(rng.sample([n.address for n in nodes], len(nodes) // 2))
    tracker = ChurnTracker(plane.sim)
    for node in nodes:
        tracker.mark_up(node.address)
    for address in flaky:
        for i in range(8):
            plane.sim.schedule(1_000.0 * (2 * i + 1), tracker.mark_down, address)
            plane.sim.schedule(1_000.0 * (2 * i + 2), tracker.mark_up, address)
    plane.settle(20_000.0)
    return plane, tracker, flaky


def lease_survival(plane, customer, flaky, stable_mode):
    rng = plane.streams.stream("failures")
    survived = 0
    for _ in range(TRIALS):
        if stable_mode:
            result = customer.query_stable(
                "SELECT 2 FROM Oregon WHERE GPU = true;").result()
        else:
            result = customer.query_once(
                "SELECT 2 FROM Oregon WHERE GPU = true;").result()
        if not result.satisfied:
            continue
        plane.sim.run()
        # Flaky nodes are very likely to die mid-lease.
        ok = all(not (e["address"] in flaky and rng.random() < 0.8)
                 for e in result.entries)
        survived += ok
        customer.release_all(result)
        plane.sim.run()
    return survived / TRIALS


def main() -> None:
    plane, tracker, flaky = build()
    predictor = ChurnPredictor(tracker)
    home = plane.site_nodes("Oregon")[0]

    print("Observed stability scores (first six GPU nodes):")
    for node in plane.site_nodes("Oregon")[:6]:
        tag = "FLAKY " if node.address in flaky else "stable"
        print(f"  node addr={node.address:<4} [{tag}] "
              f"stability={predictor.stability(node.address):.2f}")

    naive = plane.make_customer("naive", "Oregon", home=home)
    picky = StabilityAwareCustomer("picky", home, plane.streams.stream("p"),
                                   QoSSelector(predictor), overask=3.0)

    naive_rate = lease_survival(plane, naive, flaky, stable_mode=False)
    picky_rate = lease_survival(plane, picky, flaky, stable_mode=True)

    print(f"\nLease survival over {TRIALS} two-node leases:")
    print(ascii_bars([
        ("naive (protocol order)", naive_rate * 100),
        ("stability-aware", picky_rate * 100),
    ], unit="%"))


if __name__ == "__main__":
    main()
