"""Caching layers for tree aggregation and query probes.

RBAY's query protocol starts every query by probing candidate trees for
their aggregate sizes, and every probe re-rolls the accumulators from the
node's raw inputs — even though tree membership and member attributes
change far more slowly than queries arrive.  This module supplies the two
memoization primitives that amortize that cost:

* :class:`SubtreeAggregateCache` — an *exact* memo of each tree node's
  subtree accumulator per aggregate function.  Entries are dirty-flagged
  (invalidated) whenever any input changes — a local member value, a
  child's pushed accumulator, membership, or tree repair — so a valid
  entry is always bit-identical to a from-scratch recomputation.  The
  coherence property suite (``tests/test_scribe_cache_coherence.py``)
  proves this under randomized update/churn interleavings.

* :class:`TTLCache` — a bounded-staleness memo for *finalized* answers
  (root aggregate values, the executor's step-1 tree-size probes).  A hit
  requires the entry to be younger than the caller's ``max_age_ms``
  staleness bound; callers that demand coherent answers pass a bound of
  zero (or omit it), which bypasses the cache entirely.

Both caches optionally report hit/miss/invalidation counts into a
:class:`repro.metrics.counters.CounterRegistry` under a dotted prefix.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, Optional, Tuple

from repro.metrics.counters import CounterRegistry


class SubtreeAggregateCache:
    """Exact per-(topic, aggregate) memo of subtree accumulators.

    The cache never expires entries on its own: correctness comes purely
    from the owner invalidating on every mutation of the accumulator's
    inputs.  Accumulator values are immutable (numbers, bools, tuples), so
    returning the stored object is safe.
    """

    def __init__(self, counters: Optional[CounterRegistry] = None,
                 prefix: str = "scribe.acc_cache"):
        self._entries: Dict[Tuple[str, str], Any] = {}
        self._counters = counters
        self._prefix = prefix

    def _count(self, event: str) -> None:
        if self._counters is not None:
            self._counters.increment(f"{self._prefix}.{event}")

    # ------------------------------------------------------------------
    def get(self, topic: str, agg_name: str, compute: Callable[[], Any]) -> Any:
        """Return the memoized accumulator, computing and storing on miss."""
        key = (topic, agg_name)
        if key in self._entries:
            self._count("hit")
            return self._entries[key]
        self._count("miss")
        value = compute()
        self._entries[key] = value
        return value

    def invalidate(self, topic: str, agg_name: Optional[str] = None) -> int:
        """Drop the entry for one aggregate (or every aggregate) of a topic.

        Returns the number of entries actually removed; only those count
        as invalidations in the metrics.
        """
        if agg_name is not None:
            keys = [(topic, agg_name)] if (topic, agg_name) in self._entries else []
        else:
            keys = [k for k in self._entries if k[0] == topic]
        for key in keys:
            del self._entries[key]
            self._count("invalidate")
        return len(keys)

    def __len__(self) -> int:
        return len(self._entries)


class TTLCache:
    """Timestamped key/value memo honoring per-read staleness bounds.

    Entries never expire at write time; each ``get`` decides freshness
    against the caller's own ``max_age_ms``, so one cache can serve
    callers with different staleness tolerances.  A bound that is ``None``
    or non-positive always misses — TTL=0 means "only coherent answers",
    and those must come from the authoritative path.
    """

    def __init__(self, counters: Optional[CounterRegistry] = None,
                 prefix: str = "ttl_cache"):
        self._entries: Dict[Hashable, Tuple[Any, float]] = {}
        self._counters = counters
        self._prefix = prefix

    def _count(self, event: str) -> None:
        if self._counters is not None:
            self._counters.increment(f"{self._prefix}.{event}")

    # ------------------------------------------------------------------
    def get(self, key: Hashable, now: float,
            max_age_ms: Optional[float]) -> Tuple[bool, Any]:
        """Look up ``key``; returns ``(hit, value)``.

        A hit requires an entry stored no more than ``max_age_ms`` ago.
        """
        if max_age_ms is None or max_age_ms <= 0:
            self._count("miss")
            return False, None
        entry = self._entries.get(key)
        if entry is None:
            self._count("miss")
            return False, None
        value, stored_at = entry
        if now - stored_at > max_age_ms:
            self._count("miss")
            return False, None
        self._count("hit")
        return True, value

    def put(self, key: Hashable, value: Any, now: float) -> None:
        """Store ``value`` for ``key``, stamped with the current time."""
        self._entries[key] = (value, now)

    # ------------------------------------------------------------------
    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry; returns True when something was removed."""
        if key in self._entries:
            del self._entries[key]
            self._count("invalidate")
            return True
        return False

    def invalidate_topic(self, topic: str) -> int:
        """Drop every entry keyed by ``topic`` — either the bare topic name
        or a tuple whose first element is the topic.  Returns the count."""
        keys = [k for k in self._entries
                if k == topic or (isinstance(k, tuple) and k and k[0] == topic)]
        for key in keys:
            del self._entries[key]
            self._count("invalidate")
        return len(keys)

    def fresh_items(self, now: float, max_age_ms: Optional[float]) -> Dict[Hashable, Any]:
        """All entries still within the staleness bound (for planner hints)."""
        if max_age_ms is None or max_age_ms <= 0:
            return {}
        return {k: v for k, (v, stored_at) in self._entries.items()
                if now - stored_at <= max_age_ms}

    def __len__(self) -> int:
        return len(self._entries)
