"""Caching layers for tree aggregation and query probes.

RBAY's query protocol starts every query by probing candidate trees for
their aggregate sizes, and every probe re-rolls the accumulators from the
node's raw inputs — even though tree membership and member attributes
change far more slowly than queries arrive.  This module supplies the two
memoization primitives that amortize that cost:

* :class:`SubtreeAggregateCache` — an *exact* memo of each tree node's
  subtree accumulator per aggregate function.  Entries are dirty-flagged
  (invalidated) whenever any input changes — a local member value, a
  child's pushed accumulator, membership, or tree repair — so a valid
  entry is always bit-identical to a from-scratch recomputation.  The
  coherence property suite (``tests/test_scribe_cache_coherence.py``)
  proves this under randomized update/churn interleavings.

* :class:`TTLCache` — a bounded-staleness memo for *finalized* answers
  (root aggregate values, the executor's step-1 tree-size probes).  A hit
  requires the entry to be younger than the caller's ``max_age_ms``
  staleness bound; callers that demand coherent answers pass a bound of
  zero (or omit it), which bypasses the cache entirely.

Both caches optionally report hit/miss/invalidation counts into a
:class:`repro.metrics.counters.CounterRegistry` under a dotted prefix.

Hot-path note: these caches sit directly on the publish path — every
``set_local`` invalidates, every flush recomputes — so storage is nested
per-topic dicts (no tuple-key allocation per access), counter names are
preformatted once at construction, and :meth:`TTLCache.invalidate_topic`
is O(entries *of that topic*) via a topic index rather than a scan of the
whole cache.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, Optional, Tuple

from repro.metrics.counters import CounterRegistry

#: Sentinel distinguishing "no cached entry" from a cached None.
_MISS = object()


class SubtreeAggregateCache:
    """Exact per-(topic, aggregate) memo of subtree accumulators.

    The cache never expires entries on its own: correctness comes purely
    from the owner invalidating on every mutation of the accumulator's
    inputs.  Accumulator values are immutable (numbers, bools, tuples), so
    returning the stored object is safe.
    """

    def __init__(self, counters: Optional[CounterRegistry] = None,
                 prefix: str = "scribe.acc_cache"):
        # topic -> {agg_name -> accumulator}
        self._entries: Dict[str, Dict[str, Any]] = {}
        self._counters = counters
        self._prefix = prefix
        self._hit_name = prefix + ".hit"
        self._miss_name = prefix + ".miss"
        self._invalidate_name = prefix + ".invalidate"

    # ------------------------------------------------------------------
    def peek(self, topic: str, agg_name: str) -> Any:
        """The memoized accumulator, or the module ``_MISS`` sentinel.

        Counts a hit or a miss exactly like :meth:`get`; a caller that
        computes after a miss must :meth:`store` the result to keep the
        counter stream identical to the ``get``-with-compute path.
        """
        per_topic = self._entries.get(topic)
        if per_topic is not None:
            value = per_topic.get(agg_name, _MISS)
            if value is not _MISS:
                if self._counters is not None:
                    self._counters.increment(self._hit_name)
                return value
        if self._counters is not None:
            self._counters.increment(self._miss_name)
        return _MISS

    def store(self, topic: str, agg_name: str, value: Any) -> None:
        """Memoize ``value`` (the computed-after-miss half of :meth:`peek`)."""
        per_topic = self._entries.get(topic)
        if per_topic is None:
            per_topic = self._entries[topic] = {}
        per_topic[agg_name] = value

    def get(self, topic: str, agg_name: str, compute: Callable[[], Any]) -> Any:
        """Return the memoized accumulator, computing and storing on miss."""
        value = self.peek(topic, agg_name)
        if value is _MISS:
            value = compute()
            self.store(topic, agg_name, value)
        return value

    def invalidate(self, topic: str, agg_name: Optional[str] = None) -> int:
        """Drop the entry for one aggregate (or every aggregate) of a topic.

        Returns the number of entries actually removed; only those count
        as invalidations in the metrics.
        """
        per_topic = self._entries.get(topic)
        if not per_topic:
            return 0
        if agg_name is not None:
            if agg_name not in per_topic:
                return 0
            del per_topic[agg_name]
            removed = 1
        else:
            removed = len(per_topic)
            per_topic.clear()
        if self._counters is not None:
            self._counters.increment(self._invalidate_name, removed)
        return removed

    def __len__(self) -> int:
        return sum(len(per_topic) for per_topic in self._entries.values())


def _key_topic(key: Hashable) -> Optional[str]:
    """The topic a TTL-cache key belongs to, for the invalidation index.

    Keys are either bare topic names or tuples whose first element is the
    topic; anything else is never matched by topic invalidation (same
    contract as the original full-scan implementation).
    """
    if type(key) is str:
        return key
    if isinstance(key, tuple) and key:
        first = key[0]
        return first if isinstance(first, str) else None
    if isinstance(key, str):
        return key
    return None


class TTLCache:
    """Timestamped key/value memo honoring per-read staleness bounds.

    Entries never expire at write time; each ``get`` decides freshness
    against the caller's own ``max_age_ms``, so one cache can serve
    callers with different staleness tolerances.  A bound that is ``None``
    or non-positive always misses — TTL=0 means "only coherent answers",
    and those must come from the authoritative path.
    """

    def __init__(self, counters: Optional[CounterRegistry] = None,
                 prefix: str = "ttl_cache"):
        self._entries: Dict[Hashable, Tuple[Any, float]] = {}
        # topic -> set of live keys for that topic (invalidation index).
        self._by_topic: Dict[str, set] = {}
        self._counters = counters
        self._prefix = prefix
        self._hit_name = prefix + ".hit"
        self._miss_name = prefix + ".miss"
        self._invalidate_name = prefix + ".invalidate"

    # ------------------------------------------------------------------
    def get(self, key: Hashable, now: float,
            max_age_ms: Optional[float]) -> Tuple[bool, Any]:
        """Look up ``key``; returns ``(hit, value)``.

        A hit requires an entry stored no more than ``max_age_ms`` ago.
        """
        counters = self._counters
        if max_age_ms is None or max_age_ms <= 0:
            if counters is not None:
                counters.increment(self._miss_name)
            return False, None
        entry = self._entries.get(key)
        if entry is None:
            if counters is not None:
                counters.increment(self._miss_name)
            return False, None
        value, stored_at = entry
        if now - stored_at > max_age_ms:
            if counters is not None:
                counters.increment(self._miss_name)
            return False, None
        if counters is not None:
            counters.increment(self._hit_name)
        return True, value

    def put(self, key: Hashable, value: Any, now: float) -> None:
        """Store ``value`` for ``key``, stamped with the current time."""
        if key not in self._entries:
            topic = _key_topic(key)
            if topic is not None:
                bucket = self._by_topic.get(topic)
                if bucket is None:
                    bucket = self._by_topic[topic] = set()
                bucket.add(key)
        self._entries[key] = (value, now)

    # ------------------------------------------------------------------
    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry; returns True when something was removed."""
        if key in self._entries:
            del self._entries[key]
            topic = _key_topic(key)
            if topic is not None:
                bucket = self._by_topic.get(topic)
                if bucket is not None:
                    bucket.discard(key)
                    if not bucket:
                        del self._by_topic[topic]
            if self._counters is not None:
                self._counters.increment(self._invalidate_name)
            return True
        return False

    def invalidate_topic(self, topic: str) -> int:
        """Drop every entry keyed by ``topic`` — either the bare topic name
        or a tuple whose first element is the topic.  Returns the count."""
        keys = self._by_topic.pop(topic, None)
        if not keys:
            return 0
        entries = self._entries
        for key in keys:
            del entries[key]
        if self._counters is not None:
            self._counters.increment(self._invalidate_name, len(keys))
        return len(keys)

    def fresh_items(self, now: float, max_age_ms: Optional[float]) -> Dict[Hashable, Any]:
        """All entries still within the staleness bound (for planner hints)."""
        if max_age_ms is None or max_age_ms <= 0:
            return {}
        return {k: v for k, (v, stored_at) in self._entries.items()
                if now - stored_at <= max_age_ms}

    def __len__(self) -> int:
        return len(self._entries)
