"""Topic (tree) naming.

The paper names a tree by a pseudo-random Pastry id — "the hash of the
tree's textual name concatenated with its creator's name" (§II-B2).  The
node whose NodeId is numerically closest to the TreeId becomes the root.
SHA-1's uniformity spreads roots evenly over the id space, which is the
core of RBAY's load-balance argument.
"""

from __future__ import annotations

from repro.pastry.nodeid import NodeId

#: Default creator string for system-created trees.
DEFAULT_CREATOR = "rbay"


def topic_id(name: str, creator: str = DEFAULT_CREATOR) -> NodeId:
    """The TreeId for a topic: hash(textual name ++ creator)."""
    return NodeId.from_key(f"{name}#{creator}")
