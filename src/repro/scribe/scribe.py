"""The Scribe application: per-topic trees with multicast/anycast/aggregate.

One :class:`ScribeApplication` instance is registered on every Pastry node.
Tree construction follows the paper (§II-B2): a node wanting topic T routes a
JOIN toward ``topic_id(T)``; every node along the path becomes a forwarder
and adopts the previous hop as a child, so the union of join paths forms the
spanning tree rooted at the node closest to the TopicId.
"""

from __future__ import annotations

import itertools
from sys import intern as _intern
from typing import Any, Callable, Dict, List, Optional

from repro.metrics.counters import CounterRegistry
from repro.net.message import Message
from repro.obs.spans import NULL_RECORDER
from repro.pastry.node import Application, PastryNode
from repro.pastry.nodeid import NodeId
from repro.pastry.routing_table import NodeRef
from repro.scribe.aggregate import AGGREGATE_FUNCTIONS, AggregateFunction
from repro.scribe.cache import _MISS, SubtreeAggregateCache, TTLCache
from repro.scribe.topic import topic_id
from repro.sim.engine import Simulator
from repro.sim.futures import Future

_request_ids = itertools.count(1)

#: Visitor invoked at each member during anycast DFS.  Mutates the carried
#: state dict; returns True when the anycast is satisfied and should return
#: to its origin.
AnycastVisitor = Callable[[PastryNode, str, Dict[str, Any]], bool]

#: Callback invoked at each member on multicast delivery.
MulticastHandler = Callable[[PastryNode, str, Dict[str, Any]], None]


class TopicState:
    """Per-topic tree state held by one node."""

    __slots__ = (
        "topic", "key", "scope", "parent", "former_parent", "is_root", "member",
        "children", "local", "child_acc", "last_pushed",
        "dirty", "replicas", "replica_of", "replica_values", "replica_peers",
    )

    def __init__(self, topic: str, key: NodeId, scope: str = "global"):
        self.topic = topic
        self.key = key
        self.scope = scope
        self.parent: Optional[int] = None
        #: A parent we detached from without saying goodbye (it was dead at
        #: the time).  Once it is reachable again we owe it a "leave" so it
        #: drops our stale accumulator — otherwise a recovered parent would
        #: double-count us against our new tree path.
        self.former_parent: Optional[int] = None
        self.is_root = False
        self.member = False
        self.children: Dict[int, NodeRef] = {}
        # Aggregation: raw member-local values and per-child accumulators.
        self.local: Dict[str, Any] = {}
        self.child_acc: Dict[str, Dict[int, Any]] = {}
        self.last_pushed: Dict[str, Any] = {}
        # Names whose accumulator changed since the last flush (in-network
        # aggregation batches updates so a parent pushes once per wave, not
        # once per child); the flush timer itself is node-level, on the
        # owning ScribeApplication.
        self.dirty: set = set()
        # Hot-tree replication (docs/architecture.md §15).  At the root:
        # addresses of the interior children promoted to replicas.  At a
        # replica: the root's address, the root-pushed finalized snapshot
        # served to diverted readers, and the peer hint list echoed to them.
        self.replicas: Dict[int, NodeRef] = {}
        self.replica_of: Optional[int] = None
        self.replica_values: Optional[Dict[str, Any]] = None
        self.replica_peers: List[int] = []

    def in_tree(self) -> bool:
        return self.is_root or self.parent is not None or bool(self.children) or self.member

    def agg_names(self) -> List[str]:
        names = set(self.local)
        names.update(self.child_acc)
        return sorted(names)


class ScribeApplication(Application):
    """Scribe + RBAY's aggregation extension, one instance per node."""

    name = "scribe"

    def __init__(
        self,
        sim: Simulator,
        functions: Optional[Dict[str, AggregateFunction]] = None,
        creator: str = "rbay",
        agg_flush_ms: float = 50.0,
        cache_enabled: bool = True,
        counters: Optional[CounterRegistry] = None,
        recorder=None,
        rebalance=None,
        metrics=None,
    ):
        self.sim = sim
        #: Span recorder for the causal observability plane (NULL = off).
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.creator = creator
        #: Coalescing window for aggregation pushes: changes accumulated
        #: within this window travel upward as one update (the paper's
        #: "periodically aggregated" roll-up, §II-B3).
        self.agg_flush_ms = agg_flush_ms
        self.functions = dict(AGGREGATE_FUNCTIONS if functions is None else functions)
        self._topics: Dict[str, TopicState] = {}
        # Debounce bookkeeping: topics with dirty aggregates awaiting the
        # node-level flush timer.  One timer and one "agg_push_batch"
        # message per parent per flush interval replaces the old
        # per-(topic, aggregate) "agg_push" storm.
        self._dirty_topics: Dict[str, TopicState] = {}
        self._flush_event = None
        self._pending: Dict[int, Future] = {}
        # In-flight pull aggregations at this node: pull_id -> bookkeeping.
        self._pulls: Dict[int, Dict[str, Any]] = {}
        self.anycast_visitor: Optional[AnycastVisitor] = None
        self.multicast_handler: Optional[MulticastHandler] = None
        self.counters = counters
        #: Exact memo of this node's subtree accumulators, dirty-flagged on
        #: every input mutation; None disables memoization (ablation mode).
        self.acc_cache = (SubtreeAggregateCache(counters, "scribe.acc_cache")
                          if cache_enabled else None)
        #: Bounded-staleness memo of finalized root answers, consulted by
        #: callers that pass a ``max_staleness_ms`` tolerance.
        self.result_cache = (TTLCache(counters, "scribe.result_cache")
                             if cache_enabled else None)
        #: Called with the topic name whenever this node's view of a tree
        #: changes (membership, child set, pushed accumulators).  The query
        #: layer hooks this to invalidate its probe cache.
        self.tree_change_listeners: List[Callable[[str], None]] = []
        #: Hot-tree balancer (None = rebalancing off; the protocol below is
        #: then fully inert and the wire behaviour is byte-identical).
        if rebalance is not None and rebalance.enabled:
            from repro.scribe.rebalance import Rebalancer
            self.rebalancer: Optional[Any] = Rebalancer(sim, rebalance, metrics)
        else:
            self.rebalancer = None
        #: Replica hints learned from ``agg_value`` replies: topic -> live
        #: replica addresses this client may divert reads to.
        self._replica_hints: Dict[str, List[int]] = {}

    # ------------------------------------------------------------------
    # Public API (called with the owning node)
    # ------------------------------------------------------------------
    def topic_state(self, topic: str, scope: Optional[str] = None) -> TopicState:
        """This node's state for ``topic``, created lazily.

        Topic names are interned on creation: the same few strings arrive
        over and over from decoded payloads, and interning makes every
        downstream dict lookup a pointer comparison in the common case.
        """
        state = self._topics.get(topic)
        if state is None:
            topic = _intern(topic)
            state = self._topics[topic] = TopicState(
                topic, topic_id(topic, self.creator), scope or "global"
            )
        if scope is not None:
            state.scope = scope
        return state

    def topics(self) -> Dict[str, TopicState]:
        return self._topics

    def is_member(self, topic: str) -> bool:
        state = self._topics.get(topic)
        return state is not None and state.member

    def register_function(self, fn: AggregateFunction) -> None:
        """Add an aggregate function (e.g. a parameterized ``filter_count``)
        to this node's registry under ``fn.name``."""
        self.functions[fn.name] = fn

    def add_tree_change_listener(self, listener: Callable[[str], None]) -> None:
        """Subscribe to local tree-change notifications (cache invalidation)."""
        self.tree_change_listeners.append(listener)

    def _notify_tree_change(self, topic: str) -> None:
        """A tree input changed at this node: drop bounded-stale answers for
        the topic and tell listeners (the query layer's probe cache)."""
        if self.result_cache is not None:
            self.result_cache.invalidate_topic(topic)
        for listener in self.tree_change_listeners:
            listener(topic)

    def join(self, node: PastryNode, topic: str, scope: str = "global") -> None:
        """Subscribe ``node`` to ``topic``, building tree state on the way.

        ``scope="site"`` builds the tree with site-scoped routing so the
        rendezvous (root) stays inside the node's own site — the
        administrative-isolation behaviour of paper §III-E.
        """
        state = self.topic_state(topic, scope)
        if state.member:
            return
        state.member = True
        self.set_local(node, topic, "count", 1)
        self._notify_tree_change(topic)
        if state.in_tree() and (state.parent is not None or state.is_root):
            return  # already wired into the tree as a forwarder
        node.route(state.key, self.name, {"op": "join", "topic": topic,
                                          "scope": state.scope,
                                          "child": self._packed_self(node)},
                   scope=state.scope)

    def leave(self, node: PastryNode, topic: str) -> None:
        """Unsubscribe; prunes the branch if nothing depends on it."""
        state = self._topics.get(topic)
        if state is None or not state.member:
            return
        state.member = False
        # Capture the aggregate names *before* clearing the local values:
        # a name contributed only by this member would otherwise vanish
        # from agg_names() and never be re-pushed (stale parent state).
        affected = state.agg_names()
        state.local.clear()
        self._recompute_and_push(node, state, names=affected)
        self._notify_tree_change(topic)
        self._maybe_prune(node, state)

    def multicast(self, node: PastryNode, topic: str, payload: Dict[str, Any]) -> None:
        """Disseminate ``payload`` to all members via the rendezvous root."""
        state = self.topic_state(topic)
        rec = self.recorder
        span = None
        if rec.enabled:
            # Multicast is fire-and-forget: record the send as an instant;
            # deliveries parent under it via the propagated message context.
            span = rec.instant("scribe.multicast", category="scribe", topic=topic,
                               site=node.site.name, addr=node.address)
        with rec.use(span):
            node.route(state.key, self.name, {"op": "mcast", "topic": topic,
                                              "scope": state.scope, "body": payload},
                       scope=state.scope)

    def anycast(
        self,
        node: PastryNode,
        topic: str,
        state_payload: Dict[str, Any],
        timeout: Optional[float] = None,
        scope: Optional[str] = None,
    ) -> Future:
        """Start a DFS anycast; resolves to the (mutated) state payload.

        The result dict additionally carries ``satisfied`` (visitor returned
        True) and ``visited_members`` (DFS coverage count).
        """
        request_id = next(_request_ids)
        future = Future(self.sim, timeout=timeout)
        self._pending[request_id] = future
        state = self.topic_state(topic, scope)
        rec = self.recorder
        span = None
        if rec.enabled:
            span = rec.start("scribe.anycast", category="scribe", topic=topic,
                             step="member_search",
                             site=node.site.name, addr=node.address)
            future.add_callback(lambda result: rec.end(
                span, status="error" if isinstance(result, Exception) else "ok"))
        with rec.use(span):
            data = {
                "op": "anycast",
                "topic": topic,
                "scope": state.scope,
                "origin": node.address,
                "request_id": request_id,
                "visited": [],
                "visited_members": 0,
                "state": state_payload,
            }
            target = self._divert_target(node, topic)
            if target is not None:
                # Start the DFS at a root replica instead of the hot root;
                # the replica is an interior node of the same tree, so DFS
                # coverage semantics are unchanged.
                node.send_app(target, self.name, "anycast_divert", data)
            else:
                node.route(state.key, self.name, data, scope=state.scope)
        return future

    def set_local(self, node: PastryNode, topic: str, agg_name: str, value: Any) -> None:
        """Set this member's contribution to an aggregate and push deltas up."""
        if agg_name not in self.functions:
            raise KeyError(f"unknown aggregate function {agg_name!r}")
        state = self._topics.get(topic)
        if state is None:
            state = self.topic_state(topic)
        state.local[agg_name] = value
        self._recompute_and_push(node, state, only=agg_name)
        self._notify_tree_change(state.topic)

    def clear_local(self, node: PastryNode, topic: str, agg_name: str) -> None:
        state = self._topics.get(topic)
        if state and agg_name in state.local:
            del state.local[agg_name]
            self._recompute_and_push(node, state, only=agg_name)
            self._notify_tree_change(topic)

    def query_aggregate(
        self,
        node: PastryNode,
        topic: str,
        agg_names: List[str],
        timeout: Optional[float] = None,
        scope: Optional[str] = None,
        max_staleness_ms: Optional[float] = None,
    ) -> Future:
        """Fetch finalized aggregate values from the topic root.

        Resolves to ``{agg_name: value}``; missing aggregates come back None.

        ``max_staleness_ms`` is the caller's staleness tolerance: when
        positive and every requested aggregate has a locally-cached answer
        younger than the bound, the future resolves from the cache without
        sending a single message.  ``None`` or 0 always asks the root —
        TTL=0 reads are exactly as coherent as the root's own (memoized,
        dirty-flag-invalidated) accumulators.
        """
        if max_staleness_ms is not None and max_staleness_ms > 0 \
                and self.result_cache is not None:
            cached: Dict[str, Any] = {}
            for agg_name in agg_names:
                hit, value = self.result_cache.get(
                    (topic, agg_name), self.sim.now, max_staleness_ms)
                if not hit:
                    break
                cached[agg_name] = value
            else:
                if self.recorder.enabled:
                    self.recorder.instant(
                        "scribe.agg_cache_hit", category="scribe", topic=topic,
                        site=node.site.name, addr=node.address)
                future = Future(self.sim, timeout=timeout)
                self.sim.call_soon(future.try_resolve, cached)
                return future
        request_id = next(_request_ids)
        future = Future(self.sim, timeout=timeout)
        self._pending[request_id] = future
        state = self.topic_state(topic, scope)
        rec = self.recorder
        span = None
        if rec.enabled:
            span = rec.start("scribe.agg_get", category="scribe", topic=topic,
                             step="aggregate",
                             site=node.site.name, addr=node.address)
            future.add_callback(lambda result: rec.end(
                span, status="error" if isinstance(result, Exception) else "ok"))
        with rec.use(span):
            target = self._divert_target(node, topic)
            if target is not None:
                # Hot-tree diversion: a previous answer advertised root
                # replicas for this topic; ask one directly (one hop)
                # instead of routing through the saturated rendezvous.
                node.send_app(target, self.name, "replica_get", {
                    "topic": topic,
                    "scope": state.scope,
                    "origin": node.address,
                    "request_id": request_id,
                    "names": list(agg_names),
                })
            else:
                node.route(state.key, self.name, {
                    "op": "agg_get",
                    "topic": topic,
                    "scope": state.scope,
                    "origin": node.address,
                    "request_id": request_id,
                    "names": list(agg_names),
                }, scope=state.scope)
        return future

    def query_aggregate_fresh(
        self,
        node: PastryNode,
        topic: str,
        agg_names: List[str],
        timeout: Optional[float] = None,
        scope: Optional[str] = None,
    ) -> Future:
        """On-demand (pull) aggregation: values are computed by walking the
        tree at query time instead of reading the root's pushed state.

        Costs one message per tree edge per query, but returns perfectly
        fresh values and consumes no bandwidth between queries — the
        Moara-style trade-off (§V-C) the push/pull ablation measures.
        Resolves to ``{agg_name: finalized value}``.
        """
        request_id = next(_request_ids)
        future = Future(self.sim, timeout=timeout)
        self._pending[request_id] = future
        state = self.topic_state(topic, scope)
        rec = self.recorder
        span = None
        if rec.enabled:
            span = rec.start("scribe.agg_pull", category="scribe", topic=topic,
                             step="aggregate",
                             site=node.site.name, addr=node.address)
            future.add_callback(lambda result: rec.end(
                span, status="error" if isinstance(result, Exception) else "ok"))
        with rec.use(span):
            node.route(state.key, self.name, {
                "op": "agg_pull",
                "topic": topic,
                "scope": state.scope,
                "origin": node.address,
                "request_id": request_id,
                "names": list(agg_names),
            }, scope=state.scope)
        return future

    def tree_size(self, node: PastryNode, topic: str, timeout: Optional[float] = None,
                  scope: Optional[str] = None,
                  max_staleness_ms: Optional[float] = None) -> Future:
        """Tree size via the built-in count aggregate (query steps 1–2)."""
        future = Future(self.sim, timeout=timeout)
        self.query_aggregate(node, topic, ["count"], timeout=timeout, scope=scope,
                             max_staleness_ms=max_staleness_ms).add_callback(
            lambda values: future.try_resolve(
                values if isinstance(values, Exception) else int(values.get("count") or 0)
            )
        )
        return future

    def maintain(self, node: PastryNode) -> None:
        """Periodic repair: re-join through live parents, prune dead
        children, and re-push aggregation state.

        The unconditional re-push is the paper's periodic roll-up ("the
        states from tree leaves can be periodically aggregated to the tree
        root"); it doubles as anti-entropy, recovering aggregate state lost
        to dropped messages.
        """
        for state in list(self._topics.values()):
            for address in [a for a in state.children if not node.network.has_host(a)]:
                self._drop_child(node, state, address)
            for address in list(state.children):
                # Child-link anti-entropy: a child that re-homed while we
                # were unreachable answers with "leave", evicting its stale
                # accumulator here.  Repeating every tick makes the check
                # robust to message loss (a lost probe retries next tick).
                node.send_app(address, self.name, "child_probe",
                              {"topic": state.topic})
            if state.parent is not None and not node.network.has_host(state.parent):
                # Goodbye deferred until the parent is reachable again (a
                # crash-recovered parent keeps our accumulator otherwise).
                state.former_parent = state.parent
                state.parent = None
                # Detaching changes what this node can answer about the
                # tree; cached cardinality hints priced off the old link
                # must not survive the churn (planner would probe a bucket
                # that no longer reaches its members).
                self._notify_tree_change(state.topic)
            if state.former_parent is not None:
                if state.former_parent == state.parent:
                    state.former_parent = None
                elif node.network.has_host(state.former_parent):
                    node.send_app(state.former_parent, self.name, "leave",
                                  {"topic": state.topic})
                    state.former_parent = None
            if (state.parent is None and not state.is_root
                    and (state.member or state.children)):
                # Detached: the parent died, or the original JOIN/parent_set
                # message was lost.  Re-route a JOIN toward the rendezvous.
                node.route(state.key, self.name, {"op": "join", "topic": state.topic,
                                                  "scope": state.scope,
                                                  "child": self._packed_self(node)},
                           scope=state.scope)
            if state.is_root and (state.member or state.children):
                # Root re-anchor: while this node is the true rendezvous the
                # join delivers locally (a no-op); after a crash-recovery
                # race left a second root in the tree, the join routes to
                # the rendezvous, which adopts us and demotes us to child.
                node.route(state.key, self.name, {"op": "join", "topic": state.topic,
                                                  "scope": state.scope,
                                                  "child": self._packed_self(node)},
                           scope=state.scope)
            if state.parent is not None and state.agg_names():
                self._repush_all(node, state)
        if self.rebalancer is not None:
            self._replica_maintain(node)
            self.rebalancer.tick(node, self)

    # ------------------------------------------------------------------
    # Pastry upcalls
    # ------------------------------------------------------------------
    def forward(self, node: PastryNode, key: NodeId, msg: Message, next_hop: NodeRef) -> bool:
        """Pastry upcall: intercept JOINs and in-tree anycasts mid-route."""
        data = msg.payload["data"]
        op = data["op"]
        if op == "join":
            if self.rebalancer is not None:
                self.rebalancer.record(data["topic"])
            return self._forward_join(node, data)
        if op == "anycast":
            state = self._topics.get(data["topic"])
            if state is not None and state.in_tree():
                if self.rebalancer is not None:
                    self.rebalancer.record(data["topic"])
                self._anycast_visit(node, data)
                return False
        return True

    def deliver(self, node: PastryNode, key: NodeId, msg: Message) -> None:
        """Pastry upcall at the rendezvous root: joins, multicasts, probes."""
        data = msg.payload["data"]
        op = data["op"]
        state = self.topic_state(data["topic"], data.get("scope"))
        if self.rebalancer is not None:
            self.rebalancer.record(data["topic"])
        if not state.is_root:
            state.is_root = True
            # Becoming root is a tree change: answers computed while this
            # node was a mere forwarder (or fresh) are no longer priced
            # against the right vantage point.
            self._notify_tree_change(state.topic)
        if op == "join":
            child_id, child_addr, child_site = data["child"]
            if child_addr != node.address:
                self._add_child(node, state, NodeRef(NodeId(child_id), child_addr, child_site))
        elif op == "mcast":
            self._disseminate(node, state, data["body"])
        elif op == "anycast":
            self._anycast_visit(node, data)
        elif op == "agg_pull":
            self._start_pull(node, state, data["names"],
                             reply_to=("origin", data["origin"], data["request_id"]))
        elif op == "agg_get":
            values = {}
            for agg_name in data["names"]:
                fn = self.functions.get(agg_name)
                if fn is None:
                    values[agg_name] = None
                else:
                    values[agg_name] = fn.finalize(self._own_acc(state, agg_name))
            reply = {
                "request_id": data["request_id"],
                "values": values,
                "topic": state.topic,
            }
            if self.rebalancer is not None:
                # Advertise the replica set so the reader diverts its next
                # read; an empty list actively clears stale client hints.
                reply["replicas"] = sorted(state.replicas)
            node.send_app(data["origin"], self.name, "agg_value", reply)

    # ------------------------------------------------------------------
    # Direct messages
    # ------------------------------------------------------------------
    def host_message(self, node: PastryNode, msg: Message) -> None:
        """Direct tree traffic: parent links, dissemination, walks, pushes."""
        kind = msg.payload["kind"]
        data = msg.payload["data"]
        if self.rebalancer is not None:
            topic = data.get("topic")
            if topic is not None:
                self.rebalancer.record(topic)
            elif kind == "agg_push_batch":
                for update in data["updates"]:
                    self.rebalancer.record(update["topic"])
        # Dispatch chain ordered hottest-first: the publish storm makes
        # roll-up batches (and, on the unbatched arm, single pushes) the
        # overwhelming majority of direct traffic.
        if kind == "agg_push_batch":
            self._on_agg_push_batch(node, data, msg.payload["origin"])
        elif kind == "agg_push":
            self._on_agg_push(node, data, msg.payload["origin"])
        elif kind == "parent_set":
            self._on_parent_set(node, data["topic"], msg.payload["origin"])
        elif kind == "mcast_down":
            state = self.topic_state(data["topic"])
            self._disseminate(node, state, data["body"])
        elif kind == "anycast_walk":
            self._anycast_visit(node, data)
        elif kind == "anycast_result":
            future = self._pending.pop(data["request_id"], None)
            if future is not None:
                result = dict(data["state"])
                result["satisfied"] = data["satisfied"]
                result["visited_members"] = data["visited_members"]
                future.try_resolve(result)
        elif kind == "pull_down":
            state = self.topic_state(data["topic"])
            self._start_pull(node, state, data["names"],
                             reply_to=("parent", msg.payload["origin"], data["pull_id"]))
        elif kind == "pull_up":
            self._on_pull_up(node, data)
        elif kind == "agg_value":
            # Write-through refresh: every answer that travels back —
            # pushed-state reads and on-demand pulls alike — re-arms the
            # bounded-staleness cache for subsequent tolerant readers.
            if self.result_cache is not None:
                for agg_name, value in data["values"].items():
                    self.result_cache.put((data["topic"], agg_name), value,
                                          self.sim.now)
            if "replicas" in data:
                # The answerer (root or replica) piggybacks the live replica
                # set; remember it so the next read skips the hot root.  An
                # empty list is a retraction (post-demotion).
                if data["replicas"]:
                    self._replica_hints[data["topic"]] = list(data["replicas"])
                else:
                    self._replica_hints.pop(data["topic"], None)
            future = self._pending.pop(data["request_id"], None)
            if future is not None:
                future.try_resolve(data["values"])
        elif kind == "leave":
            state = self._topics.get(data["topic"])
            if state is not None:
                self._drop_child(node, state, msg.payload["origin"])
                self._maybe_prune(node, state)
        elif kind == "child_probe":
            # A node that lists us as its child asks for confirmation.  If
            # it is not our current parent (we re-homed while it was down),
            # tell it to drop us — its copy of our accumulator is stale.
            state = self._topics.get(data["topic"])
            origin = msg.payload["origin"]
            if state is None or state.parent != origin:
                node.send_app(origin, self.name, "leave", {"topic": data["topic"]})
        elif kind == "parent_gone":
            self._on_parent_gone(node, data, msg.payload["origin"])
        elif kind == "replica_promote":
            self._on_replica_promote(node, data, msg.payload["origin"])
        elif kind == "replica_sync":
            self._on_replica_sync(node, data, msg.payload["origin"])
        elif kind == "replica_demote":
            self._on_replica_demote(node, data, msg.payload["origin"])
        elif kind == "replica_refuse":
            self._on_replica_refuse(node, data, msg.payload["origin"])
        elif kind == "replica_probe":
            self._on_replica_probe(node, data, msg.payload["origin"])
        elif kind == "replica_get":
            self._on_replica_get(node, data)
        elif kind == "anycast_divert":
            self._on_anycast_divert(node, data)

    # ------------------------------------------------------------------
    # Join / tree plumbing
    # ------------------------------------------------------------------
    def _packed_self(self, node: PastryNode):
        return (node.node_id.value, node.address, node.site.index)

    def _forward_join(self, node: PastryNode, data: Dict[str, Any]) -> bool:
        topic = data["topic"]
        child_id, child_addr, child_site = data["child"]
        state = self.topic_state(topic, data.get("scope"))
        if child_addr == node.address:
            return True  # we are the origin; nothing to adopt
        self._add_child(node, state, NodeRef(NodeId(child_id), child_addr, child_site))
        if state.parent is not None or state.is_root:
            return False  # already wired in: the join stops here
        # Become a forwarder and continue joining on our own behalf.
        data["child"] = self._packed_self(node)
        return True

    def _add_child(self, node: PastryNode, state: TopicState, ref: NodeRef) -> None:
        if ref.address == node.address:
            return
        if ref.address not in state.children:
            self._notify_tree_change(state.topic)
        state.children[ref.address] = ref
        node.send_app(ref.address, self.name, "parent_set", {"topic": state.topic})

    def _drop_child(self, node: PastryNode, state: TopicState, address: int) -> None:
        dropped = state.children.pop(address, None)
        # A replica that stops being a child stops being a replica.
        state.replicas.pop(address, None)
        changed = False
        for child_map in state.child_acc.values():
            if address in child_map:
                del child_map[address]
                changed = True
        if changed:
            self._recompute_and_push(node, state)
        if changed or dropped is not None:
            self._notify_tree_change(state.topic)

    def _on_parent_set(self, node: PastryNode, topic: str, parent_addr: int) -> None:
        state = self.topic_state(topic)
        if parent_addr == node.address:
            return
        if state.parent is not None and state.parent != parent_addr:
            # Reparented: the old parent must drop our accumulator or it
            # will double-count this subtree against the new path.
            if node.network.has_host(state.parent):
                node.send_app(state.parent, self.name, "leave",
                              {"topic": topic})
            else:
                state.former_parent = state.parent
        if state.former_parent == parent_addr:
            state.former_parent = None
        changed = state.is_root or state.parent != parent_addr
        state.parent = parent_addr
        state.is_root = False
        if changed:
            # Re-homing invalidates everything priced against the old tree
            # path (planner cardinality hints, bounded-stale answers).
            self._notify_tree_change(topic)
        self._repush_all(node, state)

    def _maybe_prune(self, node: PastryNode, state: TopicState) -> None:
        """Detach from parent if we are a childless, memberless non-root."""
        if state.member or state.children or state.is_root:
            return
        if state.parent is not None:
            if node.network.has_host(state.parent):
                node.send_app(state.parent, self.name, "leave",
                              {"topic": state.topic})
            else:
                # Goodbye deferred, mirroring _on_parent_set: a parent that
                # is down right now would otherwise keep this branch's
                # accumulator when it recovers (over-count until the next
                # anti-entropy round reaches it).  maintain() sends the
                # leave once the former parent is reachable again.
                state.former_parent = state.parent
            state.parent = None
            self._notify_tree_change(state.topic)

    # ------------------------------------------------------------------
    # Multicast
    # ------------------------------------------------------------------
    def _disseminate(self, node: PastryNode, state: TopicState, body: Dict[str, Any]) -> None:
        if state.member and self.multicast_handler is not None:
            if self.recorder.enabled:
                self.recorder.instant(
                    "scribe.mcast_deliver", category="scribe", topic=state.topic,
                    site=node.site.name, addr=node.address)
            self.multicast_handler(node, state.topic, body)
        for address in list(state.children):
            if node.network.has_host(address):
                node.send_app(address, self.name, "mcast_down",
                              {"topic": state.topic, "body": body})
            else:
                self._drop_child(node, state, address)

    # ------------------------------------------------------------------
    # Anycast (distributed DFS, paper §II-B3 and §III-D step 4)
    # ------------------------------------------------------------------
    def _anycast_visit(self, node: PastryNode, data: Dict[str, Any]) -> None:
        topic = data["topic"]
        state = self.topic_state(topic)
        visited = data["visited"]
        if node.address not in visited:
            visited.append(node.address)
            if state.member:
                data["visited_members"] += 1
                satisfied = (
                    self.anycast_visitor(node, topic, data["state"])
                    if self.anycast_visitor is not None
                    else False
                )
                if self.recorder.enabled:
                    self.recorder.instant(
                        "scribe.anycast_visit", category="scribe", topic=topic,
                        site=node.site.name, addr=node.address,
                        satisfied=satisfied, step="member_search")
                if satisfied:
                    self._anycast_reply(node, data, satisfied=True)
                    return
        # Continue DFS: first unvisited live child, else climb to the parent.
        for address in list(state.children):
            if address in visited:
                continue
            if not node.network.has_host(address):
                self._drop_child(node, state, address)
                continue
            node.send_app(address, self.name, "anycast_walk", data)
            return
        if state.parent is not None and node.network.has_host(state.parent):
            node.send_app(state.parent, self.name, "anycast_walk", data)
            return
        # Root with everything visited (or detached): exhausted.
        self._anycast_reply(node, data, satisfied=False)

    def _anycast_reply(self, node: PastryNode, data: Dict[str, Any], satisfied: bool) -> None:
        node.send_app(data["origin"], self.name, "anycast_result", {
            "request_id": data["request_id"],
            "state": data["state"],
            "satisfied": satisfied,
            "visited_members": data["visited_members"],
        })

    # ------------------------------------------------------------------
    # Pull (on-demand) aggregation
    # ------------------------------------------------------------------
    def _start_pull(self, node: PastryNode, state: TopicState, names: List[str],
                    reply_to) -> None:
        """Recursively collect fresh accumulators from this subtree."""
        pull_id = next(_request_ids)
        live_children = [a for a in state.children if node.network.has_host(a)]
        record = {
            "topic": state.topic,
            "names": list(names),
            "remaining": len(live_children),
            "accs": {n: self._local_acc(state, n) for n in names},
            "reply_to": reply_to,
        }
        self._pulls[pull_id] = record
        if not live_children:
            self._finish_pull(node, pull_id)
            return
        for address in live_children:
            node.send_app(address, self.name, "pull_down", {
                "topic": state.topic, "names": list(names), "pull_id": pull_id,
            })

    def _local_acc(self, state: TopicState, agg_name: str) -> Any:
        fn = self.functions.get(agg_name)
        if fn is None:
            return None
        acc = fn.zero()
        if state.member and agg_name in state.local:
            acc = fn.combine(acc, fn.lift(state.local[agg_name]))
        return acc

    def _on_pull_up(self, node: PastryNode, data: Dict[str, Any]) -> None:
        record = self._pulls.get(data["pull_id"])
        if record is None:
            return
        for agg_name, child_acc in data["accs"].items():
            fn = self.functions.get(agg_name)
            if fn is None or child_acc is None:
                continue
            if isinstance(child_acc, list):
                child_acc = tuple(child_acc)
            record["accs"][agg_name] = fn.combine(record["accs"][agg_name], child_acc)
        record["remaining"] -= 1
        if record["remaining"] <= 0:
            self._finish_pull(node, data["pull_id"])

    def _finish_pull(self, node: PastryNode, pull_id: int) -> None:
        record = self._pulls.pop(pull_id)
        kind, address, token = record["reply_to"]
        if kind == "parent":
            node.send_app(address, self.name, "pull_up", {
                "pull_id": token, "accs": record["accs"],
            })
            return
        values = {}
        for agg_name, acc in record["accs"].items():
            fn = self.functions.get(agg_name)
            values[agg_name] = None if fn is None else fn.finalize(acc)
        node.send_app(address, self.name, "agg_value", {
            "request_id": token, "values": values, "topic": record["topic"],
        })

    # ------------------------------------------------------------------
    # Aggregation (RBAY's extension, §II-B3)
    # ------------------------------------------------------------------
    def _own_acc(self, state: TopicState, agg_name: str) -> Any:
        """This node's subtree accumulator, memoized when caching is on.

        Coherence contract: every mutation of the inputs (local value,
        child accumulators, membership) invalidates the memo via
        :meth:`_recompute_and_push`, so a cache hit is always exactly the
        value :meth:`_compute_own_acc` would return.
        """
        cache = self.acc_cache
        if cache is None:
            return self._compute_own_acc(state, agg_name)
        # peek/store instead of get(compute=...): the closure allocation is
        # measurable at flush rates, and the counter stream is identical.
        value = cache.peek(state.topic, agg_name)
        if value is _MISS:
            value = self._compute_own_acc(state, agg_name)
            cache.store(state.topic, agg_name, value)
        return value

    def _compute_own_acc(self, state: TopicState, agg_name: str) -> Any:
        """Roll this node's accumulator up from its raw inputs (uncached)."""
        fn = self.functions[agg_name]
        acc = fn.zero()
        if state.member and agg_name in state.local:
            acc = fn.combine(acc, fn.lift(state.local[agg_name]))
        for child_value in state.child_acc.get(agg_name, {}).values():
            acc = fn.combine(acc, child_value)
        return acc

    def _recompute_and_push(self, node: PastryNode, state: TopicState,
                            only: Optional[str] = None,
                            names: Optional[List[str]] = None) -> None:
        """Invalidate memos, mark aggregates dirty, arm the flush timer."""
        if names is None and only is not None:
            # Hot path (one aggregate per publish): skip the list builds.
            if only in self.functions:
                if self.acc_cache is not None:
                    self.acc_cache.invalidate(state.topic, only)
                state.dirty.add(only)
            if not state.dirty:
                return
        else:
            if names is None:
                names = state.agg_names()
            names = [n for n in names if n in self.functions]
            if self.acc_cache is not None:
                for agg_name in names:
                    self.acc_cache.invalidate(state.topic, agg_name)
            state.dirty.update(names)
            if not state.dirty:
                return
        if self.agg_flush_ms <= 0:
            # Undebounced ablation path: every change cascades immediately
            # as an individual "agg_push" (the pre-batching behaviour).
            self._flush_topic(node, state)
            return
        self._dirty_topics[state.topic] = state
        flush_event = self._flush_event
        if flush_event is None or flush_event.cancelled:
            self._flush_event = self.sim.schedule(
                self.agg_flush_ms, self._flush_all, node
            )

    def _changed_accs(self, state: TopicState) -> List[tuple]:
        """Drain ``state.dirty`` into ``(agg_name, acc)`` pairs that actually
        changed since the last push (parent-directed dedup applied)."""
        dirty, state.dirty = state.dirty, set()
        changed = []
        for agg_name in sorted(dirty):
            acc = self._own_acc(state, agg_name)
            if state.parent is None:
                continue
            if state.last_pushed.get(agg_name) == acc:
                continue
            state.last_pushed[agg_name] = acc
            changed.append((agg_name, acc))
        return changed

    def _flush_topic(self, node: PastryNode, state: TopicState) -> None:
        """Push one ``agg_push`` per changed aggregate of one topic."""
        for agg_name, acc in self._changed_accs(state):
            if node.network.has_host(state.parent):
                node.send_app(state.parent, self.name, "agg_push", {
                    "topic": state.topic, "agg": agg_name, "acc": acc,
                    "child": self._packed_self(node),
                })
        if state.replicas:
            # Root snapshot coherence: dirty aggregates at a replicated
            # root re-sync the replicas on the same debounce cadence as
            # upward pushes (maintain() adds the anti-entropy backstop).
            self._sync_replicas(node, state)

    def _flush_all(self, node: PastryNode) -> None:
        """Node-level debounced flush: roll every dirty topic's changed
        accumulators into one ``agg_push_batch`` message per parent.

        A burst of leaf updates inside the flush window therefore costs
        each interior node one upstream message per interval, however many
        topics and aggregates changed.
        """
        self._flush_event = None
        dirty_topics, self._dirty_topics = self._dirty_topics, {}
        batches: Dict[int, List[Dict[str, Any]]] = {}
        has_host = node.network.has_host
        for state in dirty_topics.values():
            for agg_name, acc in self._changed_accs(state):
                if has_host(state.parent):
                    batches.setdefault(state.parent, []).append({
                        "topic": state.topic, "agg": agg_name, "acc": acc,
                    })
            if state.replicas:
                self._sync_replicas(node, state)
        packed = self._packed_self(node)
        for parent, updates in batches.items():
            node.send_app(parent, self.name, "agg_push_batch", {
                "child": packed, "updates": updates,
            })

    def _repush_all(self, node: PastryNode, state: TopicState) -> None:
        state.last_pushed.clear()
        self._recompute_and_push(node, state)

    def _on_agg_push(self, node: PastryNode, data: Dict[str, Any], child_addr: int) -> None:
        self._apply_push(node, data["topic"], data["agg"], data["acc"],
                         data.get("child"), child_addr)

    def _apply_push(self, node: PastryNode, topic: str, agg_name: str,
                    acc: Any, child: Optional[Any], child_addr: int) -> None:
        """One child accumulator install (single pushes and batch entries)."""
        state = self.topic_state(topic)
        if isinstance(acc, list):
            acc = tuple(acc)  # tuples survive payload round-trips as lists
        if child_addr not in state.children:
            if not state.in_tree():
                # Pruned vestige: _maybe_prune dissolved this branch and we
                # hold no live role in the topic.  Re-adopting would
                # resurrect an empty tree nothing can prune again (and the
                # pusher would keep feeding a dead branch).  Tell it the
                # parent is gone so maintain() re-joins it at the live
                # rendezvous instead.
                node.send_app(child_addr, self.name, "parent_gone",
                              {"topic": state.topic})
                return
            if child is not None:
                # A pusher we do not list as a child: it kept its parent
                # pointer across our crash-recovery (or we pruned it while
                # it was down).  Re-adopt it so pruning and child probes
                # see it again.
                child_id, _, child_site = child
                self._add_child(node, state,
                                NodeRef(NodeId(child_id), child_addr, child_site))
        per_child = state.child_acc.get(agg_name)
        if per_child is None:
            per_child = state.child_acc[agg_name] = {}
        per_child[child_addr] = acc
        self._recompute_and_push(node, state, only=agg_name)
        self._notify_tree_change(state.topic)

    def _on_agg_push_batch(self, node: PastryNode, data: Dict[str, Any],
                           child_addr: int) -> None:
        """Unpack a debounced batch: each update gets the full single-push
        treatment (re-adoption, accumulator install, upward re-dirtying)."""
        child = data["child"]
        apply_push = self._apply_push
        for update in data["updates"]:
            apply_push(node, update["topic"], update["agg"], update["acc"],
                       child, child_addr)

    def _on_parent_gone(self, node: PastryNode, data: Dict[str, Any],
                        origin: int) -> None:
        """Our parent disowned us (it pruned its local topic state): drop
        the stale parent pointer and let maintain() re-join us through the
        live rendezvous."""
        state = self._topics.get(data["topic"])
        if state is not None and state.parent == origin:
            state.parent = None
            self._notify_tree_change(state.topic)

    def rejoin_detached(self, node: PastryNode) -> None:
        """Re-route a JOIN for every topic this node should be wired into
        but is not (crash-recovery path: joins attempted while the host was
        down were suppressed by the network, leaving ``member=True`` states
        with no tree link until the next attribute change)."""
        for state in list(self._topics.values()):
            if (state.parent is None and not state.is_root
                    and (state.member or state.children)):
                node.route(state.key, self.name,
                           {"op": "join", "topic": state.topic,
                            "scope": state.scope,
                            "child": self._packed_self(node)},
                           scope=state.scope)

    # ------------------------------------------------------------------
    # Hot-tree replication (load-triggered, docs/architecture.md §15)
    # ------------------------------------------------------------------
    def _finalized_values(self, state: TopicState) -> Dict[str, Any]:
        """Finalized answers for every aggregate this root knows about."""
        values: Dict[str, Any] = {}
        for agg_name in state.agg_names():
            fn = self.functions.get(agg_name)
            if fn is not None:
                values[agg_name] = fn.finalize(self._own_acc(state, agg_name))
        return values

    def _divert_target(self, node: PastryNode, topic: str) -> Optional[int]:
        """A live replica to divert this read to, or None (no usable hint)."""
        if self.rebalancer is None:
            return None
        state = self._topics.get(topic)
        if state is not None and (state.is_root or state.replica_of is not None):
            return None  # we ARE the root or a replica: answer in place
        hints = self._replica_hints.get(topic)
        if not hints:
            return None
        live = [a for a in hints
                if a != node.address and node.network.has_host(a)]
        if not live:
            self._replica_hints.pop(topic, None)
            return None
        # Deterministic spread: distinct clients fan out across replicas.
        return live[node.address % len(live)]

    def _promote_replicas(self, node: PastryNode, state: TopicState) -> bool:
        """Replicate a hot root: promote the leaf-set neighbors nearest the
        topic key and re-partition the root's other children across them
        (the D3-Tree split).

        Replicas stay *interior nodes of the same tree* — children of the
        root — so every existing mechanism (agg_push merge, anycast DFS,
        child probes, pull aggregation, the single-root invariant) applies
        unchanged; the win is that diverted readers are answered one hop
        away from a root-coherent snapshot.
        """
        cfg = self.rebalancer.config
        picks = node.closest_neighbors(state.key, cfg.max_replicas,
                                       scope=state.scope)
        if not picks:
            return False
        pick_addrs = [ref.address for ref in picks]
        finalized = self._finalized_values(state)
        # Round-robin the current children across the new replicas; their
        # re-homing (ordinary parent_set handling) drains the root's
        # per-message fan-out while aggregation keeps flowing upward.
        others = sorted(a for a in state.children if a not in pick_addrs)
        assigned: Dict[int, List[tuple]] = {a: [] for a in pick_addrs}
        for i, child_addr in enumerate(others):
            ref = state.children[child_addr]
            assigned[pick_addrs[i % len(pick_addrs)]].append(
                (ref.node_id.value, ref.address, ref.site_index))
        for ref in picks:
            state.replicas[ref.address] = ref
        peers = sorted(state.replicas)
        for ref in picks:
            self._add_child(node, state, ref)
            node.send_app(ref.address, self.name, "replica_promote", {
                "topic": state.topic,
                "scope": state.scope,
                "values": dict(finalized),
                "peers": list(peers),
                "assigned": assigned[ref.address],
            })
        self._notify_tree_change(state.topic)
        return True

    def _demote_replicas(self, node: PastryNode, state: TopicState) -> None:
        """Load subsided (or we stopped being root): release the replica
        role everywhere.  Ex-replicas stay ordinary children until
        :meth:`_maybe_prune` dissolves them, so adopted subtrees keep
        flowing and no aggregate state is lost."""
        for address in sorted(state.replicas):
            if node.network.has_host(address):
                node.send_app(address, self.name, "replica_demote",
                              {"topic": state.topic})
        state.replicas.clear()
        self._notify_tree_change(state.topic)

    def _sync_replicas(self, node: PastryNode, state: TopicState) -> None:
        """Push the root's finalized snapshot to every live replica."""
        if not state.replicas:
            return
        values = self._finalized_values(state)
        peers = sorted(state.replicas)
        for address in peers:
            if node.network.has_host(address):
                node.send_app(address, self.name, "replica_sync", {
                    "topic": state.topic,
                    "values": dict(values),
                    "peers": list(peers),
                })

    def _clear_replica_role(self, node: PastryNode, state: TopicState) -> None:
        state.replica_of = None
        state.replica_values = None
        state.replica_peers = []
        self._notify_tree_change(state.topic)
        self._maybe_prune(node, state)

    def _replica_maintain(self, node: PastryNode) -> None:
        """Per-tick anti-entropy for the replication protocol (both roles):
        heals lost promote/demote messages, prunes dead replicas, and keeps
        snapshots coherent through the same maintenance cadence the rest of
        the tree repair uses."""
        for state in list(self._topics.values()):
            if state.replicas:
                if not state.is_root:
                    # Lost a root re-anchor race: a node that is no longer
                    # the rendezvous must not keep a replica set.
                    self._demote_replicas(node, state)
                else:
                    for address in sorted(state.replicas):
                        if (address not in state.children
                                or not node.network.has_host(address)):
                            state.replicas.pop(address, None)
                            self._notify_tree_change(state.topic)
                    self._sync_replicas(node, state)
            if state.replica_of is not None:
                root = state.replica_of
                if not node.network.has_host(root) or state.parent != root:
                    # Root died or we re-homed: stop serving the snapshot.
                    self._clear_replica_role(node, state)
                else:
                    # Lost-demote healer: the root replies replica_demote
                    # when it no longer lists us in its replica set.
                    node.send_app(root, self.name, "replica_probe",
                                  {"topic": state.topic})

    def _on_replica_promote(self, node: PastryNode, data: Dict[str, Any],
                            origin: int) -> None:
        state = self.topic_state(data["topic"], data.get("scope"))
        state.replica_of = origin
        state.replica_values = dict(data["values"])
        state.replica_peers = list(data["peers"])
        for child_id, child_addr, child_site in data["assigned"]:
            if child_addr != node.address:
                self._add_child(node, state,
                                NodeRef(NodeId(child_id), child_addr, child_site))
        self._notify_tree_change(state.topic)

    def _on_replica_sync(self, node: PastryNode, data: Dict[str, Any],
                         origin: int) -> None:
        state = self.topic_state(data["topic"])
        if state.replica_of == origin or (state.replica_of is None
                                          and state.parent == origin):
            # The second clause completes a promotion whose
            # ``replica_promote`` was lost: the syncing root still lists us
            # as a replica-child, so accept the role from the sync alone.
            state.replica_of = origin
            state.replica_values = dict(data["values"])
            state.replica_peers = list(data["peers"])
        else:
            node.send_app(origin, self.name, "replica_refuse",
                          {"topic": data["topic"]})

    def _on_replica_demote(self, node: PastryNode, data: Dict[str, Any],
                           origin: int) -> None:
        state = self._topics.get(data["topic"])
        if state is None or state.replica_of != origin:
            return
        self._clear_replica_role(node, state)

    def _on_replica_refuse(self, node: PastryNode, data: Dict[str, Any],
                           origin: int) -> None:
        state = self._topics.get(data["topic"])
        if state is not None and origin in state.replicas:
            state.replicas.pop(origin, None)
            self._notify_tree_change(state.topic)

    def _on_replica_probe(self, node: PastryNode, data: Dict[str, Any],
                          origin: int) -> None:
        state = self._topics.get(data["topic"])
        if state is None or not state.is_root or origin not in state.replicas:
            node.send_app(origin, self.name, "replica_demote",
                          {"topic": data["topic"]})

    def _on_replica_get(self, node: PastryNode, data: Dict[str, Any]) -> None:
        state = self._topics.get(data["topic"])
        snapshot = state.replica_values if state is not None else None
        if (state is not None and state.replica_of is not None
                and snapshot is not None
                and all(n in snapshot for n in data["names"])):
            node.send_app(data["origin"], self.name, "agg_value", {
                "request_id": data["request_id"],
                "values": {n: snapshot[n] for n in data["names"]},
                "topic": data["topic"],
                "replicas": list(state.replica_peers),
            })
            return
        # Stale hint (we were demoted, or the snapshot lacks a requested
        # aggregate): fall back to a normal routed read, preserving the
        # caller's request identity so the reply still lands at its future.
        key = state.key if state is not None else topic_id(data["topic"],
                                                           self.creator)
        scope = data.get("scope") or (state.scope if state is not None
                                      else "global")
        node.route(key, self.name, {
            "op": "agg_get",
            "topic": data["topic"],
            "scope": scope,
            "origin": data["origin"],
            "request_id": data["request_id"],
            "names": list(data["names"]),
        }, scope=scope)

    def _on_anycast_divert(self, node: PastryNode, data: Dict[str, Any]) -> None:
        state = self._topics.get(data["topic"])
        if state is not None and state.in_tree():
            self._anycast_visit(node, data)
            return
        # Stale hint: hand the walk back to normal rendezvous routing (the
        # payload still carries ``op: anycast``, so forward/deliver apply).
        key = state.key if state is not None else topic_id(data["topic"],
                                                           self.creator)
        node.route(key, self.name, data, scope=data.get("scope") or "global")
