"""Composable aggregation functions for in-network roll-up.

The paper (§II-B3) permits "any composable function, such as filter, sum,
maximum or minimum, as long as it satisfies the hierarchical computation
property": combining partial results of subtrees must equal computing over
the union of their leaves.  Each function here is expressed as a commutative
monoid plus a ``lift`` from member-local values into the monoid and a
``finalize`` out of it, which makes the hierarchical property hold by
construction.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional


class AggregateFunction:
    """A hierarchical aggregate = (zero, lift, combine, finalize)."""

    name = "abstract"

    def zero(self) -> Any:
        """Identity element of ``combine``."""
        raise NotImplementedError

    def lift(self, local_value: Any) -> Any:
        """Map a member's local value into the accumulator domain."""
        return local_value

    def combine(self, a: Any, b: Any) -> Any:
        """Associative, commutative combination of accumulators."""
        raise NotImplementedError

    def finalize(self, acc: Any) -> Any:
        """Map the root accumulator to the user-visible result."""
        return acc


class CountFunction(AggregateFunction):
    """Tree size: every member contributes 1 (used for query step 1/2)."""

    name = "count"

    def zero(self) -> int:
        return 0

    def lift(self, local_value: Any) -> int:
        return 1

    def combine(self, a: int, b: int) -> int:
        return a + b


class SumFunction(AggregateFunction):
    """Sum of member values."""

    name = "sum"

    def zero(self) -> float:
        return 0.0

    def lift(self, local_value: Any) -> float:
        return float(local_value)

    def combine(self, a: float, b: float) -> float:
        return a + b


class MinFunction(AggregateFunction):
    """Minimum; ``None`` is the identity (empty subtree)."""

    name = "min"

    def zero(self) -> Optional[float]:
        return None

    def lift(self, local_value: Any) -> float:
        return float(local_value)

    def combine(self, a: Optional[float], b: Optional[float]) -> Optional[float]:
        if a is None:
            return b
        if b is None:
            return a
        return min(a, b)


class MaxFunction(AggregateFunction):
    """Maximum; ``None`` is the identity (empty subtree)."""

    name = "max"

    def zero(self) -> Optional[float]:
        return None

    def lift(self, local_value: Any) -> float:
        return float(local_value)

    def combine(self, a: Optional[float], b: Optional[float]) -> Optional[float]:
        if a is None:
            return b
        if b is None:
            return a
        return max(a, b)


class AvgFunction(AggregateFunction):
    """Average of member values, carried as a (sum, count) pair."""

    name = "avg"

    def zero(self) -> tuple:
        return (0.0, 0)

    def lift(self, local_value: Any) -> tuple:
        return (float(local_value), 1)

    def combine(self, a: tuple, b: tuple) -> tuple:
        return (a[0] + b[0], a[1] + b[1])

    def finalize(self, acc: tuple) -> Optional[float]:
        total, count = acc
        return None if count == 0 else total / count


class AnyFunction(AggregateFunction):
    """Boolean OR across members (e.g. "does any node have a GPU free?")."""

    name = "any"

    def zero(self) -> bool:
        return False

    def lift(self, local_value: Any) -> bool:
        return bool(local_value)

    def combine(self, a: bool, b: bool) -> bool:
        return a or b


class AllFunction(AggregateFunction):
    """Boolean AND across members."""

    name = "all"

    def zero(self) -> bool:
        return True

    def lift(self, local_value: Any) -> bool:
        return bool(local_value)

    def combine(self, a: bool, b: bool) -> bool:
        return a and b


class FilterCountFunction(AggregateFunction):
    """Count of members whose local value satisfies a predicate ("filter")."""

    name = "filter_count"

    def __init__(self, predicate: Callable[[Any], bool], name: Optional[str] = None):
        self._predicate = predicate
        if name is not None:
            self.name = name

    def zero(self) -> int:
        return 0

    def lift(self, local_value: Any) -> int:
        return 1 if self._predicate(local_value) else 0

    def combine(self, a: int, b: int) -> int:
        return a + b


#: Built-in aggregate registry, extended by callers at will.
AGGREGATE_FUNCTIONS: Dict[str, AggregateFunction] = {
    fn.name: fn
    for fn in (
        CountFunction(),
        SumFunction(),
        MinFunction(),
        MaxFunction(),
        AvgFunction(),
        AnyFunction(),
        AllFunction(),
    )
}

#: Factories for aggregates that need construction-time parameters.  The
#: zero-arg built-ins above are shared instances; these are constructors,
#: looked up by the same name space (paper: "filter" is a first-class
#: composable function, §II-B3).
AGGREGATE_FACTORIES: Dict[str, Callable[..., AggregateFunction]] = {
    "filter_count": FilterCountFunction,
}


def make_aggregate(name: str, /, *args: Any, **kwargs: Any) -> AggregateFunction:
    """Instantiate a registered aggregate function by name.

    Zero-arg lookups return the shared :data:`AGGREGATE_FUNCTIONS`
    instance; parameterized lookups (``make_aggregate("filter_count",
    predicate, name="busy")``) construct a fresh instance through
    :data:`AGGREGATE_FACTORIES`.  Raises ``KeyError`` for unknown names,
    or for arguments passed to a non-parameterized aggregate.
    """
    if not args and not kwargs:
        fn = AGGREGATE_FUNCTIONS.get(name)
        if fn is not None:
            return fn
    factory = AGGREGATE_FACTORIES.get(name)
    if factory is None:
        raise KeyError(f"unknown or non-parameterized aggregate function {name!r}")
    return factory(*args, **kwargs)
