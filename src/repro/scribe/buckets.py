"""Range-partitioned attribute indices: bucketed Scribe trees.

A flat attribute tree answers "who has ``CPU_utilization``?" but a range
query (``CPU_utilization BETWEEN 10 AND 30``) over it must flood every
member and filter at each one.  Following the decentralized range-query
designs in the related work (ART's sub-logarithmic range processing), we
split a numeric attribute's value domain into contiguous *buckets*, each
backed by its own Scribe topic with the usual aggregate roll-up.  A node
joins exactly the bucket containing its current value and re-buckets when
the value crosses a boundary, so a range query only needs the buckets its
interval overlaps — the cost-based planner (:mod:`repro.query.planner`)
then probes or anycasts that subset instead of flooding the base tree.

Boundaries are deterministic (evenly spaced over ``[lo, hi)``) so every
site derives identical bucket names from the registered spec alone, the
same "uniform key-value pair settings" agreement the paper assumes for
canonical tree names (§III-A).  The edge buckets absorb out-of-range
values: the first extends to -inf, the last to +inf, so *every* numeric
value maps to exactly one bucket and bucket membership partitions the
attribute's population.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

#: Operators a bucketed index can serve (plus equality, which degenerates
#: to a single-point interval).
RANGE_OPS = ("<", "<=", ">", ">=", "between")

#: An interval: (lo, lo_inclusive, hi, hi_inclusive); None bound = infinite.
_Interval = Tuple[Optional[float], bool, Optional[float], bool]


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def predicate_interval(op: str, value: Any) -> Optional[_Interval]:
    """The value interval a predicate accepts, or None when not a range.

    ``between`` carries a two-element ``(lo, hi)`` value and is inclusive
    on both ends (SQL semantics); an inverted pair accepts nothing and
    returns an empty interval rather than None.
    """
    if op == "between":
        if (not isinstance(value, (tuple, list)) or len(value) != 2
                or not all(_is_number(v) for v in value)):
            return None
        return (float(value[0]), True, float(value[1]), True)
    if not _is_number(value):
        return None
    v = float(value)
    if op in ("=", "=="):
        return (v, True, v, True)
    if op == "<":
        return (None, False, v, False)
    if op == "<=":
        return (None, False, v, True)
    if op == ">":
        return (v, False, None, False)
    if op == ">=":
        return (v, True, None, False)
    return None


def _interval_empty(interval: _Interval) -> bool:
    lo, lo_inc, hi, hi_inc = interval
    if lo is None or hi is None:
        return False
    if lo > hi:
        return True
    return lo == hi and not (lo_inc and hi_inc)


def intervals_overlap(a: _Interval, b: _Interval) -> bool:
    """True when the two intervals share at least one value."""
    if _interval_empty(a) or _interval_empty(b):
        return False
    a_lo, a_lo_inc, a_hi, a_hi_inc = a
    b_lo, b_lo_inc, b_hi, b_hi_inc = b
    if a_hi is not None and b_lo is not None:
        if a_hi < b_lo or (a_hi == b_lo and not (a_hi_inc and b_lo_inc)):
            return False
    if b_hi is not None and a_lo is not None:
        if b_hi < a_lo or (b_hi == a_lo and not (b_hi_inc and a_lo_inc)):
            return False
    return True


def interval_contains(outer: _Interval, inner: _Interval) -> bool:
    """True when every value in ``inner`` also lies in ``outer``."""
    if _interval_empty(inner):
        return True
    o_lo, o_lo_inc, o_hi, o_hi_inc = outer
    i_lo, i_lo_inc, i_hi, i_hi_inc = inner
    if o_lo is not None:
        if i_lo is None:
            return False
        if i_lo < o_lo or (i_lo == o_lo and i_lo_inc and not o_lo_inc):
            return False
    if o_hi is not None:
        if i_hi is None:
            return False
        if i_hi > o_hi or (i_hi == o_hi and i_hi_inc and not o_hi_inc):
            return False
    return True


@dataclass(frozen=True)
class Bucket:
    """One value-range partition of a bucketed attribute.

    Nominal range is ``[lo, hi)``; the first bucket's effective lower
    bound is -inf and the last's effective upper bound is +inf, so the
    buckets of a spec cover the whole real line.
    """

    attribute: str
    lo: float
    hi: float
    index: int
    first: bool
    last: bool

    @property
    def tree(self) -> str:
        """Canonical (site-unqualified) Scribe topic for this bucket."""
        return f"{self.attribute}[{self.lo:g},{self.hi:g})"

    #: GROUP BY rows use the tree name as the group label.
    @property
    def label(self) -> str:
        return self.tree

    def interval(self) -> _Interval:
        return (None if self.first else self.lo, True,
                None if self.last else self.hi, False)

    def contains(self, value: Any) -> bool:
        """True when ``value`` falls in this bucket's effective range."""
        if not _is_number(value):
            return False
        v = float(value)
        if not self.first and v < self.lo:
            return False
        if not self.last and v >= self.hi:
            return False
        return True


@dataclass(frozen=True)
class BucketSpec:
    """Deterministic even partition of ``[lo, hi)`` into ``count`` buckets."""

    attribute: str
    lo: float
    hi: float
    count: int

    def __post_init__(self):
        if self.count < 1:
            raise ValueError("bucket count must be >= 1")
        if not self.lo < self.hi:
            raise ValueError("bucket range requires lo < hi")

    def boundary(self, i: int) -> float:
        """The i-th boundary (0..count); derived, never stored, so every
        site computes bit-identical values from the spec alone."""
        if i <= 0:
            return self.lo
        if i >= self.count:
            return self.hi
        return self.lo + (self.hi - self.lo) * i / self.count

    @property
    def buckets(self) -> List[Bucket]:
        return [
            Bucket(self.attribute, self.boundary(i), self.boundary(i + 1),
                   index=i, first=(i == 0), last=(i == self.count - 1))
            for i in range(self.count)
        ]

    def bucket_of(self, value: Any) -> Optional[Bucket]:
        """The unique bucket holding ``value`` (None for non-numbers).

        Out-of-range values clamp into the edge buckets, matching their
        infinite effective bounds.
        """
        if not _is_number(value):
            return None
        v = float(value)
        span = self.hi - self.lo
        index = int((v - self.lo) / span * self.count)
        index = max(0, min(self.count - 1, index))
        bucket = self.buckets[index]
        # Float division can land on the wrong side of a boundary; nudge.
        if not bucket.contains(v):
            for candidate in self.buckets:
                if candidate.contains(v):
                    return candidate
        return bucket

    def covering(self, op: str, value: Any) -> Optional[List[Bucket]]:
        """Buckets overlapping the predicate's interval, in index order.

        None when the predicate is not range-shaped (e.g. ``<>`` or a
        non-numeric literal) — the caller must fall back to non-bucketed
        execution.  An empty list means the predicate accepts nothing.
        """
        interval = predicate_interval(op, value)
        if interval is None:
            return None
        return [b for b in self.buckets
                if intervals_overlap(b.interval(), interval)]

    def fully_contained(self, bucket: Bucket, op: str, value: Any) -> bool:
        """True when *every* member of ``bucket`` satisfies the predicate —
        the condition for treating bucket membership as an implied check
        and for GROUP BY pushdown into the bucket roll-ups."""
        interval = predicate_interval(op, value)
        if interval is None:
            return False
        return interval_contains(interval, bucket.interval())


class BucketIndex:
    """Registry of the federation's bucketed attributes.

    One instance lives on the :class:`~repro.query.executor._QueryContext`;
    sites consult it both when subscribing nodes into bucket trees and
    when planning range queries, which keeps naming agreement automatic.
    """

    def __init__(self):
        self._specs: Dict[str, BucketSpec] = {}

    def register(self, spec: BucketSpec) -> BucketSpec:
        existing = self._specs.get(spec.attribute)
        if existing is not None and existing != spec:
            raise ValueError(
                f"attribute {spec.attribute!r} already bucketed as {existing}")
        self._specs[spec.attribute] = spec
        return spec

    def spec_for(self, attribute: str) -> Optional[BucketSpec]:
        return self._specs.get(attribute)

    def is_bucketed(self, attribute: str) -> bool:
        return attribute in self._specs

    def attributes(self) -> List[str]:
        return sorted(self._specs)

    def __len__(self) -> int:
        return len(self._specs)
