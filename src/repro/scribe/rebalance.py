"""Load-triggered hot-tree rebalancing (D3-Tree style root replication).

RBAY hash-places every attribute tree's rendezvous root, but federation
traffic is zipfian: one popular attribute funnels every probe, anycast,
and ``agg_get`` through a single root node.  This module holds the
decision side of the balancer:

* :class:`RebalanceConfig` — thresholds, window, and hysteresis knobs
  (surfaced as the ``RBayConfig.rebalance*`` fields);
* :class:`Rebalancer` — one per :class:`~repro.scribe.scribe.ScribeApplication`,
  counting the messages each topic handles at this node per fixed window
  (mirrored into the ``scribe.topic_load`` labeled metric of the obs
  plane) and turning consecutive hot/cool windows into deterministic
  promote/demote calls back into the scribe layer.

The mechanism side — the ``replica_promote`` / ``replica_sync`` /
``replica_demote`` / ``replica_get`` protocol, child re-partitioning, and
snapshot coherence — lives in :mod:`repro.scribe.scribe`; replica
*placement* (leaf-set neighbors nearest the topic key) lives in
:meth:`repro.pastry.node.PastryNode.closest_neighbors`.  See
``docs/architecture.md`` §15.

Everything here is clock-driven off maintenance ticks and therefore fully
deterministic: identical runs make identical promote/demote decisions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional


@dataclass(frozen=True)
class RebalanceConfig:
    """Tuning knobs of the hot-tree balancer (one shared config per plane)."""

    #: Master switch; a scribe built without a config (or with
    #: ``enabled=False``) carries no rebalancer and behaves byte-identically
    #: to the pre-rebalance protocol.
    enabled: bool = True
    #: Messages handled for a topic within one window at its root at or
    #: above which the window counts as *hot*.
    hot_threshold: int = 200
    #: Messages per window at or below which the window counts as *cool*
    #: (the dead zone between the thresholds resets both streaks — the
    #: hysteresis band that prevents promote/demote flap).
    cool_threshold: int = 50
    #: Fixed accounting window (ms); windows advance on maintenance ticks.
    window_ms: float = 1_000.0
    #: Consecutive hot windows required before a root is replicated.
    hot_windows: int = 2
    #: Consecutive cool windows required before replicas are demoted.
    cool_windows: int = 3
    #: Root replicas spawned per promotion (leaf-set neighbors nearest the
    #: topic key, so repeated selections are stable).
    max_replicas: int = 2
    #: A root with fewer children than this is never replicated — there is
    #: no fan-out to spread, so replication would only add hops.
    min_children: int = 2


class Rebalancer:
    """Per-node load accounting + the promote/demote trigger.

    ``record`` is called from the scribe's message entry points (deliver,
    forward interception, direct tree traffic) for every message that
    names a topic; ``tick`` runs once per maintenance cycle, advancing the
    window when ``window_ms`` has elapsed and applying the hysteresis
    rules at every topic this node currently roots.
    """

    def __init__(self, sim: Any, config: RebalanceConfig, metrics: Any = None):
        self.sim = sim
        self.config = config
        #: Obs-plane :class:`~repro.obs.metrics.MetricsRegistry`; the load
        #: signal is mirrored into the ``scribe.topic_load`` labeled
        #: counter so traces and counter snapshots expose what drove each
        #: promotion.
        self.metrics = metrics
        self._counts: Dict[str, int] = {}
        self._window_start: Optional[float] = None
        self._hot: Dict[str, int] = {}
        self._cool: Dict[str, int] = {}
        #: Lifetime decision counters (also mirrored as
        #: ``scribe.rebalance.promote`` / ``scribe.rebalance.demote``).
        self.promotions = 0
        self.demotions = 0

    # ------------------------------------------------------------------
    def record(self, topic: str) -> None:
        """Count one handled message against ``topic``'s current window."""
        self._counts[topic] = self._counts.get(topic, 0) + 1
        if self.metrics is not None:
            self.metrics.counter("scribe.topic_load").increment(topic=topic)

    def window_load(self, topic: str) -> int:
        """Messages counted against ``topic`` in the (open) current window."""
        return self._counts.get(topic, 0)

    def streaks(self, topic: str) -> Dict[str, int]:
        """Current hysteresis streaks (testing/diagnostics aid)."""
        return {"hot": self._hot.get(topic, 0), "cool": self._cool.get(topic, 0)}

    # ------------------------------------------------------------------
    def tick(self, node: Any, scribe: Any) -> None:
        """One maintenance tick: close the window if due, apply hysteresis.

        Promotion fires at a root after ``hot_windows`` consecutive hot
        windows (given at least ``min_children`` children to spread);
        demotion fires after ``cool_windows`` consecutive cool windows.
        Mid-band windows reset both streaks.
        """
        now = self.sim.now
        if self._window_start is None:
            self._window_start = now
            return
        if now - self._window_start < self.config.window_ms:
            return
        counts, self._counts = self._counts, {}
        self._window_start = now
        cfg = self.config
        for topic, state in sorted(scribe.topics().items()):
            if not state.is_root or not state.in_tree():
                self._hot.pop(topic, None)
                self._cool.pop(topic, None)
                continue
            load = counts.get(topic, 0)
            if load >= cfg.hot_threshold:
                self._hot[topic] = self._hot.get(topic, 0) + 1
                self._cool.pop(topic, None)
            elif load <= cfg.cool_threshold:
                self._cool[topic] = self._cool.get(topic, 0) + 1
                self._hot.pop(topic, None)
            else:
                self._hot.pop(topic, None)
                self._cool.pop(topic, None)
            if (not state.replicas
                    and self._hot.get(topic, 0) >= cfg.hot_windows
                    and len(state.children) >= cfg.min_children):
                if scribe._promote_replicas(node, state):
                    self.promotions += 1
                    self._hot.pop(topic, None)
                    self._mark("promote")
            elif state.replicas and self._cool.get(topic, 0) >= cfg.cool_windows:
                scribe._demote_replicas(node, state)
                self.demotions += 1
                self._cool.pop(topic, None)
                self._mark("demote")

    def _mark(self, action: str) -> None:
        if self.metrics is not None:
            self.metrics.counter("scribe.rebalance").increment(action=action)
