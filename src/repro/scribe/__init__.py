"""Scribe group communication over Pastry, extended with aggregation.

Scribe (Castro et al.) builds per-topic spanning trees: a topic's root is
the node whose NodeId is closest to the TopicId; JOIN messages routed toward
the TopicId are intercepted by tree nodes, and the union of their paths forms
the tree.  RBAY uses three primitives on these trees (paper §II-B3):

* **multicast** — policy pushes from admins to all members;
* **anycast** — distributed depth-first search serving resource discovery;
* **aggregate** — RBAY's extension: composable roll-up (count/sum/min/max/
  avg/...) of member state along the tree to the root.
"""

from repro.scribe.aggregate import (
    AggregateFunction,
    AGGREGATE_FACTORIES,
    AGGREGATE_FUNCTIONS,
    AllFunction,
    AnyFunction,
    AvgFunction,
    CountFunction,
    FilterCountFunction,
    MaxFunction,
    MinFunction,
    SumFunction,
    make_aggregate,
)
from repro.scribe.cache import SubtreeAggregateCache, TTLCache
from repro.scribe.scribe import ScribeApplication
from repro.scribe.topic import topic_id

__all__ = [
    "AGGREGATE_FACTORIES",
    "AGGREGATE_FUNCTIONS",
    "AggregateFunction",
    "AllFunction",
    "AnyFunction",
    "AvgFunction",
    "CountFunction",
    "FilterCountFunction",
    "MaxFunction",
    "MinFunction",
    "ScribeApplication",
    "SubtreeAggregateCache",
    "SumFunction",
    "TTLCache",
    "make_aggregate",
    "topic_id",
]
