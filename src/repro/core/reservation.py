"""Node reservations with timed release.

Query step 4 "reserves the node for the query"; step 5: "if the customer
decides not to take them, the locks on those reserved nodes will be
released after a short time window" (§III-D).  The table is lazy: expiry
is evaluated against the simulation clock on access, so no timer churn.

Lifecycle contract (checked at runtime by the reservation-hygiene
invariant in :mod:`repro.check`):

* a *reservation* (uncommitted hold) self-releases ``hold_ms`` after the
  last reserve;
* ``commit`` promotes it to a *lease* that lasts ``lease_ms``;
* a committed lease is never demoted back to a short-window reservation —
  in particular a duplicate reserve from the owning query (a retried
  anycast arriving after step 5 settled) is a no-op, not a demotion.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.engine import Simulator

#: Default reservation window before an uncommitted lock self-releases (ms).
DEFAULT_HOLD_MS = 2_000.0

#: Observer signature: ``watcher(table, event, query_id)`` with event one
#: of ``reserved`` / ``committed`` / ``released`` / ``hold_expired`` /
#: ``lease_expired``.  Watchers must only observe — never mutate the table.
ReservationWatcher = Callable[["ReservationTable", str, int], None]


class ReservationTable:
    """Reservation state for a single node."""

    def __init__(self, sim: Simulator, hold_ms: float = DEFAULT_HOLD_MS):
        self._sim = sim
        self.hold_ms = hold_ms
        self._holder: Optional[int] = None  # query id
        self._expires_at = 0.0
        self._committed = False
        self._lease_ends = 0.0
        #: Optional lifecycle observer (the invariant sanitizer).  None by
        #: default: the notify branch is a single ``is not None`` test, so
        #: an unwatched table behaves byte-identically to one with no hook.
        self.watcher: Optional[ReservationWatcher] = None

    def _notify(self, event: str, query_id: int) -> None:
        if self.watcher is not None:
            self.watcher(self, event, query_id)

    # ------------------------------------------------------------------
    def _gc(self) -> None:
        now = self._sim.now
        if self._committed and now >= self._lease_ends:
            expired = self._holder
            self._committed = False
            self._holder = None
            if expired is not None:
                self._notify("lease_expired", expired)
        if not self._committed and self._holder is not None and now >= self._expires_at:
            expired = self._holder
            self._holder = None
            self._notify("hold_expired", expired)

    def is_free(self) -> bool:
        self._gc()
        return self._holder is None

    def holder(self) -> Optional[int]:
        self._gc()
        return self._holder

    # ------------------------------------------------------------------
    def try_reserve(self, query_id: int) -> bool:
        """Reserve for ``query_id``; idempotent for the same query.

        A duplicate reserve on a lease already *committed* to the same
        query is a pure no-op: the lease keeps its ``lease_ms`` horizon.
        (Demoting it to an uncommitted hold — the historical behaviour —
        let a retried anycast that arrived after step 5 silently evict a
        committed customer once the short hold window lapsed.)
        """
        self._gc()
        if self._holder is not None and self._holder != query_id:
            return False
        if self._committed:
            # Same-query duplicate after commit: keep the lease untouched.
            return True
        self._holder = query_id
        self._committed = False
        self._expires_at = self._sim.now + self.hold_ms
        self._notify("reserved", query_id)
        return True

    def commit(self, query_id: int, lease_ms: float) -> bool:
        """Convert a reservation into a lease (the customer took the node)."""
        self._gc()
        if self._holder != query_id:
            return False
        self._committed = True
        self._lease_ends = self._sim.now + lease_ms
        self._notify("committed", query_id)
        return True

    def release(self, query_id: int) -> bool:
        """Explicitly drop a reservation or lease held by ``query_id``."""
        self._gc()
        if self._holder != query_id:
            return False
        self._holder = None
        self._committed = False
        self._notify("released", query_id)
        return True

    def release_uncommitted(self, query_id: int) -> bool:
        """Drop a reservation held by ``query_id`` unless it was committed.

        The orphan-release path uses this: a late ``site_result`` reply
        names nodes reserved by a timed-out attempt, but the *query* may
        have succeeded through a retry and committed some of those same
        nodes — a blanket release would revoke the customer's lease.
        """
        self._gc()
        if self._holder != query_id or self._committed:
            return False
        self._holder = None
        self._notify("released", query_id)
        return True

    @property
    def committed(self) -> bool:
        self._gc()
        return self._committed

    @property
    def expires_at(self) -> float:
        """Read-only expiry instant of the current uncommitted hold."""
        return self._expires_at

    @property
    def lease_ends(self) -> float:
        """Read-only expiry instant of the current committed lease."""
        return self._lease_ends
