"""Node reservations with timed release.

Query step 4 "reserves the node for the query"; step 5: "if the customer
decides not to take them, the locks on those reserved nodes will be
released after a short time window" (§III-D).  The table is lazy: expiry
is evaluated against the simulation clock on access, so no timer churn.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.engine import Simulator

#: Default reservation window before an uncommitted lock self-releases (ms).
DEFAULT_HOLD_MS = 2_000.0


class ReservationTable:
    """Reservation state for a single node."""

    def __init__(self, sim: Simulator, hold_ms: float = DEFAULT_HOLD_MS):
        self._sim = sim
        self.hold_ms = hold_ms
        self._holder: Optional[int] = None  # query id
        self._expires_at = 0.0
        self._committed = False
        self._lease_ends = 0.0

    # ------------------------------------------------------------------
    def _gc(self) -> None:
        now = self._sim.now
        if self._committed and now >= self._lease_ends:
            self._committed = False
            self._holder = None
        if not self._committed and self._holder is not None and now >= self._expires_at:
            self._holder = None

    def is_free(self) -> bool:
        self._gc()
        return self._holder is None

    def holder(self) -> Optional[int]:
        self._gc()
        return self._holder

    # ------------------------------------------------------------------
    def try_reserve(self, query_id: int) -> bool:
        """Reserve for ``query_id``; idempotent for the same query."""
        self._gc()
        if self._holder is not None and self._holder != query_id:
            return False
        self._holder = query_id
        self._committed = False
        self._expires_at = self._sim.now + self.hold_ms
        return True

    def commit(self, query_id: int, lease_ms: float) -> bool:
        """Convert a reservation into a lease (the customer took the node)."""
        self._gc()
        if self._holder != query_id:
            return False
        self._committed = True
        self._lease_ends = self._sim.now + lease_ms
        return True

    def release(self, query_id: int) -> bool:
        """Explicitly drop a reservation or lease held by ``query_id``."""
        self._gc()
        if self._holder != query_id:
            return False
        self._holder = None
        self._committed = False
        return True

    @property
    def committed(self) -> bool:
        self._gc()
        return self._committed
