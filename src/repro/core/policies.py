"""Canned Luette policy handlers for the motivating scenarios of §I.

Grace wants her resources available only after 10 PM (time window); James
wants an access-control model (password / ACL); Kevin prefers users with
good history (credit check).  Each helper returns handler *source code* an
admin would attach to an attribute; parameters are baked into the source
exactly as an admin editing Figure 5 would.
"""

from __future__ import annotations

from typing import Iterable


def open_policy(node_id: int) -> str:
    """No restriction: onGet always exposes the NodeId."""
    return f"""
AA = {{NodeId = {node_id}}}

function onGet(caller, payload)
  return AA.NodeId
end
"""


def password_policy(node_id: int, password: str, ip: str = "0.0.0.0") -> str:
    """The paper's Figure 5: expose the node only to callers with the password.

    The query payload arrives as a table; the password travels in
    ``payload.password`` (our plaintext equivalent of Figure 5's argument).
    """
    escaped = password.replace("\\", "\\\\").replace('"', '\\"')
    return f"""
AA = {{NodeId = {node_id},
      IP = "{ip}",
      Password = "{escaped}"}}

function onGet(caller, payload)
  if (payload ~= nil and payload.password == AA.Password) then
    return AA.NodeId
  end
  return nil
end
"""


def time_window_policy(node_id: int, start_hour: int, end_hour: int) -> str:
    """Grace's policy: share only inside [start_hour, end_hour) o'clock.

    The current hour arrives in the payload (``payload.hour``) because the
    sandbox deliberately has no clock access — the runtime supplies trusted
    time, the handler only decides.
    """
    return f"""
AA = {{NodeId = {node_id}, StartHour = {start_hour}, EndHour = {end_hour}}}

function onGet(caller, payload)
  local hour = payload.hour
  if hour == nil then return nil end
  local s = AA.StartHour
  local e = AA.EndHour
  local inside
  if s <= e then
    inside = (hour >= s) and (hour < e)
  else
    inside = (hour >= s) or (hour < e)
  end
  if inside then
    return AA.NodeId
  end
  return nil
end
"""


def acl_policy(node_id: int, allowed_callers: Iterable[str]) -> str:
    """James's policy: only named principals may see the node."""
    entries = ", ".join(f'["{c}"] = true' for c in allowed_callers)
    return f"""
AA = {{NodeId = {node_id}, Allowed = {{{entries}}}}}

function onGet(caller, payload)
  if AA.Allowed[caller] then
    return AA.NodeId
  end
  return nil
end
"""


def credit_policy(node_id: int, min_credit: float) -> str:
    """Kevin's policy: require a good history score (``payload.credit``)."""
    return f"""
AA = {{NodeId = {node_id}, MinCredit = {min_credit}}}

function onGet(caller, payload)
  local credit = payload.credit
  if credit ~= nil and credit >= AA.MinCredit then
    return AA.NodeId
  end
  return nil
end
"""


def utilization_subscription(threshold_pct: float) -> str:
    """Membership policy for a ``CPU_utilization<T%`` tree (§III-B example).

    ``onSubscribe`` returns the topic while the node's utilization is below
    the threshold; ``onUnsubscribe`` fires once it rises above — "if it is a
    CPU_utilization<10% tree and the node suddenly becomes overloaded, the
    node will unsubscribe the tree at the next interval."

    The handler is topic-aware: it parses the threshold out of the tree
    name (``...<25`` → 25), so one attribute serves every threshold tree
    the admin maintains; the constructor value is the fallback for tree
    names that do not embed a number.
    """
    return f"""
AA = {{Threshold = {threshold_pct}}}

local function threshold_of(topic)
  local pos = string.find(topic, "<")
  if pos == nil then return AA.Threshold end
  local parsed = tonumber(string.sub(topic, pos + 1))
  if parsed == nil then return AA.Threshold end
  return parsed
end

function onSubscribe(caller, topic)
  if AA.Value ~= nil and AA.Value < threshold_of(topic) then
    return topic
  end
  return nil
end

function onUnsubscribe(caller, topic)
  if AA.Value == nil or AA.Value >= threshold_of(topic) then
    return topic
  end
  return nil
end
"""


def rental_price_policy(node_id: int, price: float) -> str:
    """A marketplace policy: expose the node with a price; admins can
    raise/lower the price interactively via onDeliver (multicast commands)."""
    return f"""
AA = {{NodeId = {node_id}, Price = {price}}}

function onGet(caller, payload)
  local budget = payload.budget
  if budget ~= nil and budget >= AA.Price then
    return AA.NodeId
  end
  return nil
end

function onDeliver(caller, payload)
  if payload.new_price ~= nil then
    AA.Price = payload.new_price
  end
  return AA.Price
end
"""


def market_gate_policy(node_id: int, price: float, min_credit: float) -> str:
    """The marketplace gate: rental price composed with Kevin's credit check.

    Callers must present both ``payload.budget >= Price`` and
    ``payload.credit >= MinCredit`` — a buyer with money but a bad history
    (or vice versa) is denied on the owner's side, where the policy runs.
    Admins reprice (``payload.new_price``) or tighten the history bar
    (``payload.new_min_credit``) interactively via onDeliver multicasts.
    """
    return f"""
AA = {{NodeId = {node_id}, Price = {price}, MinCredit = {min_credit}}}

function onGet(caller, payload)
  local budget = payload.budget
  local credit = payload.credit
  if budget == nil or credit == nil then
    return nil
  end
  if budget >= AA.Price and credit >= AA.MinCredit then
    return AA.NodeId
  end
  return nil
end

function onDeliver(caller, payload)
  if payload.new_price ~= nil then
    AA.Price = payload.new_price
  end
  if payload.new_min_credit ~= nil then
    AA.MinCredit = payload.new_min_credit
  end
  return AA.Price
end
"""


def expiring_share_policy(node_id: int, expires_at_ms: float) -> str:
    """Share until a deadline; admins extend it with onDeliver commands.

    ``payload.now`` carries trusted simulation time on get events.
    """
    return f"""
AA = {{NodeId = {node_id}, ExpiresAt = {expires_at_ms}}}

function onGet(caller, payload)
  if payload.now ~= nil and payload.now < AA.ExpiresAt then
    return AA.NodeId
  end
  return nil
end

function onDeliver(caller, payload)
  if payload.new_expiration ~= nil then
    AA.ExpiresAt = payload.new_expiration
  end
  return AA.ExpiresAt
end
"""


def exposure_policy(node_id: int, exposed: bool = True) -> str:
    """A gate whose exposure admins flip remotely (hide/expose, §II-B3).

    ``onDeliver`` commands with ``payload.exposed`` toggle availability;
    while hidden, every get is denied without touching tree membership —
    the paper's "quickly inform members about the admin's policy changes,
    such as hide or expose available resources".
    """
    flag = "true" if exposed else "false"
    return f"""
AA = {{NodeId = {node_id}, Exposed = {flag}}}

function onGet(caller, payload)
  if AA.Exposed then
    return AA.NodeId
  end
  return nil
end

function onDeliver(caller, payload)
  if payload ~= nil and payload.exposed ~= nil then
    AA.Exposed = payload.exposed
  end
  return AA.Exposed
end
"""
