"""The flexible naming scheme: canonical tree names and the hybrid hierarchy.

Paper §III-C: a flat tree-per-property layout creates overlapping trees
("Intel CPU" ⊂ "CPU") and forces every site to learn every new property.
RBAY instead organizes trees along the nesting of properties — model trees
are subtrees of brand trees, core-size trees subtrees of model trees — and
a subtree root carries a pointer to its parent ("major") tree.  A new
device links its specific attribute under an existing major tree instead of
creating a globally-known name.

We reproduce the pointer structure as a federation-wide catalog object: the
paper's "all site admins comply with major trees" agreement is exactly a
shared catalog, and query interfaces use it to expand a query on a major
attribute into anycasts over its leaf subtrees.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set


def _canonical_value(value: object) -> str:
    """Stable rendering shared by tree creators and query planners.

    Numbers render with ``%g`` so ``10``, ``10.0``, and the SQL literal
    ``10%`` all name the same tree.
    """
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return f"{value:g}"
    return str(value)


def predicate_tree_name(attribute: str, op: str, value: object) -> str:
    """Canonical tree name for a query predicate.

    Equality predicates name attribute-value trees (``CPU_model=Intel Core
    i7``); threshold predicates name the pre-agreed threshold trees
    (``CPU_utilization<10``, the paper's "CPU_utilization<10%" tree).
    Sites must agree on this canonical form — "we assume that all sites
    have a uniform way of major resources' key-value pair settings"
    (§III-A).
    """
    if op in ("=", "=="):
        if value is True:
            return str(attribute)
        return f"{attribute}={_canonical_value(value)}"
    if op == "between":
        lo, hi = value
        return f"{attribute}[{_canonical_value(lo)},{_canonical_value(hi)}]"
    return f"{attribute}{op}{_canonical_value(value)}"


def site_tree(site_name: str, tree: str) -> str:
    """Site-local tree name (administrative isolation keeps it in-site)."""
    return f"{site_name}/{tree}"


def instance_tree(site_name: str, instance_type: str) -> str:
    """The per-site instance-type trees of the paper's evaluation (§IV-A).

    The tree name matches the canonical equality form so queries on
    ``instance_type = '<type>'`` resolve to it.
    """
    return site_tree(site_name, predicate_tree_name("instance_type", "=", instance_type))


class AttributeHierarchy:
    """The hybrid tree structure: child trees under their major trees."""

    def __init__(self):
        self._parent: Dict[str, str] = {}
        self._children: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------------
    def link(self, child_tree: str, parent_tree: str) -> None:
        """Register ``child_tree`` as a subtree of ``parent_tree``.

        Mirrors the paper's "make a pointer for each subtree root to link to
        the global root".  Cycles are rejected.
        """
        if child_tree == parent_tree:
            raise ValueError("a tree cannot be its own parent")
        ancestor: Optional[str] = parent_tree
        while ancestor is not None:
            if ancestor == child_tree:
                raise ValueError(
                    f"linking {child_tree!r} under {parent_tree!r} creates a cycle"
                )
            ancestor = self._parent.get(ancestor)
        previous = self._parent.get(child_tree)
        if previous is not None:
            self._children[previous].discard(child_tree)
        self._parent[child_tree] = parent_tree
        self._children.setdefault(parent_tree, set()).add(child_tree)

    def unlink(self, child_tree: str) -> None:
        parent = self._parent.pop(child_tree, None)
        if parent is not None:
            self._children[parent].discard(child_tree)

    # ------------------------------------------------------------------
    def parent(self, tree: str) -> Optional[str]:
        return self._parent.get(tree)

    def children(self, tree: str) -> List[str]:
        return sorted(self._children.get(tree, ()))

    def is_known(self, tree: str) -> bool:
        return tree in self._parent or tree in self._children

    def expand(self, tree: str) -> List[str]:
        """All trees to search for a query on ``tree``: itself + descendants.

        A query on a major attribute ("CPU") recursively covers the specific
        trees nested beneath it ("CPU/Intel", "CPU/Intel/i7", ...).
        """
        out: List[str] = []
        stack = [tree]
        seen: Set[str] = set()
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            out.append(current)
            stack.extend(self._children.get(current, ()))
        return out

    def roots(self) -> List[str]:
        """Major trees (trees that are not anyone's child)."""
        majors = set(self._children)
        majors.update(self._parent.values())
        return sorted(t for t in majors if t not in self._parent)

    def tree_count(self) -> int:
        """Number of distinct trees the hierarchy knows about."""
        trees = set(self._parent)
        trees.update(self._children)
        trees.update(self._parent.values())
        return len(trees)

    def all_trees(self) -> Iterable[str]:
        trees = set(self._parent)
        trees.update(self._children)
        return sorted(trees)
