"""Site administrators: posting resources and pushing policies.

RBAY "operates in ways akin to eBay, where admins post their resources to
the platform, attach certain policy such as valid time, password and the
like" (§I).  The admin never gives up control: policies run as AA handlers
on the admin's own nodes, and interactive changes travel as multicast
commands that trigger ``onDeliver``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.core.node import GATE_ATTRIBUTE, RBayNode, SubscriptionSpec
from repro.core.naming import predicate_tree_name, site_tree
from repro.net.site import Site


class SiteAdmin:
    """The administrator of one site's nodes."""

    def __init__(self, site: Site, nodes: List[RBayNode], name: Optional[str] = None):
        self.site = site
        self.nodes = list(nodes)
        self.name = name if name is not None else f"admin@{site.name}"

    # ------------------------------------------------------------------
    # Resource posting ("sell")
    # ------------------------------------------------------------------
    def post_resource(
        self,
        node: RBayNode,
        attribute: str,
        value: Any,
        handler_source: Optional[str] = None,
        tree: Optional[str] = None,
        scope: str = "site",
        membership: Optional[Callable[[Any], bool]] = None,
    ) -> None:
        """Expose one attribute of one node to the federation.

        Defines the attribute (with optional handlers) and subscribes the
        node to the attribute's tree so queries can find it.  ``tree``
        defaults to the canonical equality tree name.
        """
        if node.site.index != self.site.index:
            raise PermissionError(
                f"{self.name} does not administer nodes of site {node.site.name}"
            )
        node.define_attribute(attribute, value, handler_source)
        topic = tree if tree is not None else predicate_tree_name(attribute, "=", value)
        # Trees are always named per-site (that is what query interfaces
        # probe); ``scope`` controls only the routing of the tree — "site"
        # keeps the rendezvous inside the site (§III-E), "global" is the
        # isolation-off mode.
        full_topic = site_tree(self.site.name, topic)
        if membership is None:
            # Default membership tracks the posted value: if the attribute
            # is later removed or changes, the next maintenance tick drops
            # the node from the tree (resource churn, §VI).
            membership = lambda v, expected=value: v == expected
        node.subscribe(SubscriptionSpec(
            topic=full_topic,
            attribute=attribute,
            scope=scope,
            default_predicate=membership,
        ))

    def hide_resource(self, node: RBayNode, attribute: str, tree: Optional[str] = None,
                      value: Any = None, scope: str = "site") -> None:
        """Withdraw an attribute from the plane (the admin's 'hide')."""
        topic = tree if tree is not None else predicate_tree_name(attribute, "=",
                                                                  value if value is not None
                                                                  else node.attribute_value(attribute))
        full_topic = site_tree(self.site.name, topic)
        node.unsubscribe(full_topic)
        node.remove_attribute(attribute)

    def set_gate_policy(self, node: RBayNode, handler_source: str) -> None:
        """Install the node-level access policy (onGet authorization)."""
        node.define_attribute(GATE_ATTRIBUTE, node.node_id.value, handler_source)

    def set_gate_policy_all(self, handler_source_factory: Callable[[RBayNode], str]) -> None:
        for node in self.nodes:
            self.set_gate_policy(node, handler_source_factory(node))

    # ------------------------------------------------------------------
    # Interactive policy management (multicast → onDeliver)
    # ------------------------------------------------------------------
    def broadcast_command(
        self,
        via: RBayNode,
        tree: str,
        attribute: str,
        payload: Dict[str, Any],
        scope: str = "site",
    ) -> None:
        """Multicast an admin command down a tree; members run ``onDeliver``.

        Used to "quickly inform members about the admin's policy changes,
        such as hide or expose available resources, raise or lower rental
        prices" (§II-B3).
        """
        full_topic = site_tree(self.site.name, tree) if scope == "site" else tree
        via.scribe.topic_state(full_topic, scope)
        via.scribe.multicast(via, full_topic, {
            "kind": "admin_command",
            "admin": self.name,
            "attribute": attribute,
            "payload": payload,
        })

    # ------------------------------------------------------------------
    @staticmethod
    def apply_admin_command(node: RBayNode, topic: str, body: Dict[str, Any]) -> None:
        """Multicast handler half: run onDeliver on the named attribute.

        Wired as the Scribe ``multicast_handler`` by the plane.
        """
        if body.get("kind") != "admin_command":
            return
        node.aa.on_deliver(body["attribute"], body.get("admin"), body.get("payload"))
