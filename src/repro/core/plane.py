"""The RBay facade: build, federate, and operate the information plane.

One :class:`RBay` object owns the simulator, the network, the Pastry
overlay of :class:`RBayNode` servers, the Scribe/query applications wired
onto every node, the per-site admins, and the customers.  Everything a
downstream user needs is reachable from here; the examples and benchmarks
construct nothing else by hand.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.core.admin import SiteAdmin
from repro.core.client import Customer
from repro.core.monitor import SyntheticMonitor
from repro.core.naming import AttributeHierarchy
from repro.ext.churn import ChurnTracker
from repro.faults.injector import FaultInjector
from repro.core.node import RBayNode
from repro.metrics.counters import CounterRegistry
from repro.net.latency import (
    LatencyModel,
    SyntheticLatencyModel,
    TableIILatencyModel,
    make_ec2_registry,
)
from repro.net.site import Site, SiteRegistry
from repro.transport.sim import SimTransport
from repro.obs import Observability
from repro.pastry.leafset import DEFAULT_LEAF_SET_SIZE
from repro.pastry.nodeid import NodeId
from repro.pastry.overlay import Overlay
from repro.query.admission import AdmissionController
from repro.query.executor import QueryApplication, _QueryContext
from repro.query.options import QueryOptions
from repro.query.result import QueryResult
from repro.query.sql import parse_query
from repro.scribe.scribe import ScribeApplication
from repro.sim import EngineProtocol
from repro.sim.engine import Simulator
from repro.sim.futures import Future
from repro.sim.random_streams import RandomStreams


@dataclass
class RBayConfig:
    """Construction parameters for a federation.

    Defaults reproduce the paper's testbed shape: the eight EC2 sites of
    Table II with jittered latencies and site isolation enabled.
    """

    seed: int = 0
    nodes_per_site: int = 20
    #: None → the paper's eight EC2 sites; an int → that many synthetic sites.
    synthetic_sites: Optional[int] = None
    synthetic_hop_ms: float = 15.0
    jitter: bool = True
    jitter_cv: float = 0.05
    unstable_jitter_cv: float = 0.25
    isolation: bool = True
    leaf_set_size: int = DEFAULT_LEAF_SET_SIZE
    maintenance_interval_ms: float = 2_000.0
    instruction_limit: int = 100_000
    reservation_hold_ms: float = 2_000.0
    lease_ms: float = 60_000.0
    monitor_interval_ms: float = 1_000.0
    loss_rate: float = 0.0
    #: Receiver-side processing delay per message (ms).  0 = pure network
    #: latency; ~1-2 ms approximates the paper's shared-VM JVM costs.
    processing_delay_ms: float = 0.0
    #: Scope of attribute trees: "site" (administrative isolation, the
    #: paper's design) or "global" (the isolation-off ablation).
    tree_scope: str = "site"
    #: Memoize subtree accumulators at every tree node (exact, dirty-flag
    #: invalidated).  False is the caching-off ablation.
    aggregate_cache: bool = True
    #: Staleness bound (ms) for the query executor's step-1 probe cache;
    #: 0 disables it (every query probes, the paper's baseline).
    probe_cache_ms: float = 0.0
    #: Cost-based routing of range predicates over bucketed attribute
    #: indices (see :meth:`RBay.register_buckets`).  False is the
    #: planner-off ablation: range queries probe and search the whole
    #: bucket family with strict per-member checks.  Per-query
    #: ``QueryOptions.planner`` overrides this default.
    planner: bool = True
    #: Timed-out query-protocol steps (probe round, anycast, remote site
    #: request) are retried this many times through the truncated-
    #: exponential backoff before being written off; 0 is the
    #: retries-off ablation (a lost step fails the query immediately).
    site_retries: int = 2
    #: Backoff slot for protocol-step retries (ms).
    retry_slot_ms: float = 50.0
    #: Optional :class:`repro.faults.FaultSchedule` installed at build
    #: time; the injector is reachable as ``plane.fault_injector``.
    fault_schedule: Optional[Any] = None
    #: Enable the causal observability plane: span tracing through every
    #: protocol hot path plus the per-step latency histograms.  Off by
    #: default — the disabled emit path is a single branch and allocates
    #: nothing, so simulated behaviour is identical either way.
    tracing: bool = False
    #: Span-store bound when tracing is on (oldest runs keep everything;
    #: past the bound new spans are counted in ``recorder.dropped``).
    trace_max_spans: int = 200_000
    #: Master switch for the high-throughput core: batched event-loop
    #: drain + Event free-list, same-destination delivery coalescing, and
    #: debounced ``agg_push`` roll-ups.  False is the unbatched ablation
    #: baseline the scale benchmark compares against.
    batching: bool = True
    #: Debounce window (ms) for aggregation roll-ups when batching is on:
    #: a burst of leaf updates produces one batched parent update per
    #: interval per node instead of one message per change.
    agg_flush_ms: float = 50.0
    #: Bound on concurrently admitted queries through the facade; further
    #: submissions wait FIFO in the admission queue.
    query_window: int = 64
    #: Attach the runtime invariant sanitizer (:mod:`repro.check`) at
    #: build time.  Off by default: with it off nothing is installed and
    #: runs are byte-identical to a sanitizer-free build; with it on the
    #: checks are purely observational, so traces stay identical too.
    sanitize: bool = False
    #: Events between periodic sanitizer sweeps (0 disables sweeps,
    #: keeping only quiescent / post-query / post-fault checks).
    sanitize_sweep_events: int = 5_000
    #: Raise :class:`repro.check.InvariantViolationError` at the first
    #: violation instead of collecting into the report.
    sanitize_fail_fast: bool = False
    #: Convergence grace window (ms): churn-sensitive structural
    #: invariants only report findings that persist this long past the
    #: last fault activity.
    sanitize_grace_ms: float = 2_500.0
    #: Load-triggered hot-tree balancing (docs/architecture.md §15): roots
    #: whose per-window message load stays hot spawn replicas and
    #: re-partition their children across them; replicas serve diverted
    #: reads from a root-coherent snapshot and are demoted when load
    #: subsides.  Off by default — with it off the replication protocol is
    #: inert and the wire behaviour is byte-identical.
    rebalance: bool = False
    #: Messages per window at (or above) which a root's window counts as
    #: hot toward promotion.
    rebalance_hot_threshold: int = 200
    #: Messages per window at (or below) which a window counts as cool
    #: toward demotion (the gap between the thresholds is the hysteresis
    #: dead band).
    rebalance_cool_threshold: int = 50
    #: Load-accounting window (ms); windows close on maintenance ticks.
    rebalance_window_ms: float = 1_000.0
    #: Consecutive hot windows required before a root is replicated.
    rebalance_hot_windows: int = 2
    #: Consecutive cool windows required before replicas are demoted.
    rebalance_cool_windows: int = 3
    #: Root replicas spawned per promotion.
    rebalance_max_replicas: int = 2
    #: Minimum root children for replication to be worthwhile.
    rebalance_min_children: int = 2
    #: Message transport backing the plane: ``"sim"`` (the DES network —
    #: deterministic, the validation oracle) or ``"asyncio"`` (every node
    #: a real TCP endpoint on a wall-clock scheduler; see
    #: docs/architecture.md §16).  The protocol stack is identical on
    #: both; only scheduling and delivery differ.
    transport: str = "sim"
    #: Sim-only codec shadow mode: round-trip every delivered message
    #: through the versioned wire codec and hand receivers the decoded
    #: copy, turning every deterministic run into a wire-safety lint.
    wire_check: bool = False
    #: Live-only clock compression: wall milliseconds per virtual
    #: millisecond.  ``0.05`` runs the paper's multi-second protocol
    #: timeouts 20× faster without touching any timeout constant.
    time_scale: float = 1.0
    #: Live-only: interface the per-node TCP servers bind.
    live_bind_host: str = "127.0.0.1"
    #: Live-only: wall-clock budget for one TCP connect attempt.
    connect_timeout_ms: float = 1_000.0
    #: Live-only: reconnect attempts (with linear backoff) before a frame
    #: is written off as dropped and the sender's protocol timeouts kick in.
    connect_retries: int = 3
    #: Live-only: a :class:`repro.transport.serve.PeerPlan` partitioning
    #: the federation's sites across OS processes (``rbay serve``).
    #: ``None`` serves every host in-process.
    transport_peers: Optional[Any] = None
    #: Elastic federation marketplace (docs/architecture.md §18) — read
    #: by :mod:`repro.workloads.market`, which builds one DEPAS
    #: autoscaler and one spot pricer per site from these knobs.  DEPAS
    #: auto-scaling of per-site instance pools; False is the
    #: autoscaling-off ablation arm (utilization is still published, but
    #: capacity never moves).
    market_autoscale: bool = True
    #: Floor of posted instances per site (scale-in never goes below).
    market_min_instances: int = 1
    #: Cap of posted instances per site; 0 = every node in the pool.
    market_max_instances: int = 0
    #: Utilization at/above which a site's scaler considers scale-out.
    market_scale_high: float = 0.75
    #: Utilization at/below which idle postings become retire candidates.
    market_scale_low: float = 0.25
    #: Probability gain of the DEPAS rule (actuation chance scales with
    #: how far utilization sits past a threshold, times this gain).
    market_scale_gain: float = 1.0
    #: Autoscaler evaluation period per site (ms).
    market_scale_interval_ms: float = 500.0
    #: Utilization-driven spot repricing via admin multicasts; False
    #: freezes every site at its initial asking price.
    market_reprice: bool = True
    #: Repricing evaluation period per site (ms).
    market_reprice_interval_ms: float = 1_000.0
    #: Price clamp for the spot pricer (floor must stay > 0).
    market_price_floor: float = 1.0
    #: Upper price clamp for the spot pricer.
    market_price_ceiling: float = 64.0
    #: Multiplicative step per repricing decision (0.25 = ±25%).
    market_price_gain: float = 0.25


class RBay:
    """A federated information plane over simulated geo-distributed sites."""

    def __init__(self, config: Optional[RBayConfig] = None):
        self.config = config if config is not None else RBayConfig()
        cfg = self.config
        self.streams = RandomStreams(cfg.seed)
        self.registry = self._make_registry(cfg)
        self.latency = self._make_latency(cfg)
        loss_rng = self.streams.stream("network-loss") if cfg.loss_rate else None
        #: The scheduling engine everything runs on.  Typed against the
        #: structural :class:`~repro.sim.EngineProtocol`: the plane never
        #: relies on anything outside that contract, which is what lets the
        #: DES Simulator and the wall-clock RealtimeScheduler interchange.
        self.sim: EngineProtocol
        if cfg.transport == "sim":
            self.sim = Simulator(batched=cfg.batching)
            self.network = SimTransport(
                self.sim,
                self.latency,
                loss_rate=cfg.loss_rate,
                loss_rng=loss_rng,
                processing_ms=cfg.processing_delay_ms,
                coalesce_delivery=cfg.batching,
                wire_check=cfg.wire_check,
            )
        elif cfg.transport == "asyncio":
            from repro.transport.asyncio_transport import AsyncioTransport
            from repro.transport.realtime import RealtimeScheduler

            self.sim = RealtimeScheduler(time_scale=cfg.time_scale)
            self.network = AsyncioTransport(
                self.sim,
                self.latency,
                bind_host=cfg.live_bind_host,
                loss_rate=cfg.loss_rate,
                loss_rng=loss_rng,
                processing_ms=cfg.processing_delay_ms,
                connect_timeout_s=cfg.connect_timeout_ms / 1000.0,
                connect_retries=cfg.connect_retries,
                peer_plan=cfg.transport_peers,
            )
        else:
            raise ValueError(f"unknown transport {cfg.transport!r} "
                             f"(expected 'sim' or 'asyncio')")
        self.hierarchy = AttributeHierarchy()
        #: Federation-wide cache/protocol counters (hit/miss/invalidation).
        self.counters = CounterRegistry()
        #: The causal observability plane: span recorder + labeled metrics
        #: (mirroring into ``self.counters``).  Null recorder when
        #: ``cfg.tracing`` is off.
        self.obs = Observability(self.sim, counters=self.counters,
                                 enabled=cfg.tracing,
                                 max_spans=cfg.trace_max_spans)
        if self.obs.enabled:
            self.network.recorder = self.obs.recorder
        self.context = _QueryContext(
            self.sim,
            [site.name for site in self.registry],
            hierarchy=self.hierarchy,
            lease_ms=cfg.lease_ms,
            tree_scope=cfg.tree_scope,
            probe_cache_ms=cfg.probe_cache_ms,
            max_step_retries=cfg.site_retries,
            retry_slot_ms=cfg.retry_slot_ms,
            retry_rng=self.streams.stream("query-retry"),
            planner_enabled=cfg.planner,
        )
        #: Bounded in-flight window every facade query is admitted through.
        self.admission = AdmissionController(self.sim, window=cfg.query_window,
                                             counters=self.counters)
        self.overlay = Overlay(
            self.sim,
            self.network,
            self.streams,
            self.registry,
            leaf_set_size=cfg.leaf_set_size,
            isolation=cfg.isolation,
            node_factory=self._make_node,
        )
        self.admins: Dict[str, SiteAdmin] = {}
        self.customers: List[Customer] = []
        self.monitor = SyntheticMonitor(
            self.sim, self.streams.stream("monitor"), interval_ms=cfg.monitor_interval_ms
        )
        self.churn = ChurnTracker(self.sim)
        #: Set by :meth:`install_faults` (or at build time when the config
        #: carries a ``fault_schedule``).
        self.fault_injector: Optional["FaultInjector"] = None
        #: Set at build time when ``cfg.sanitize`` is on (see
        #: :mod:`repro.check`); None otherwise — zero-cost when off.
        self.sanitizer: Optional[Any] = None
        self._built = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make_registry(cfg: RBayConfig) -> SiteRegistry:
        if cfg.synthetic_sites is None:
            return make_ec2_registry()
        registry = SiteRegistry()
        for i in range(cfg.synthetic_sites):
            registry.add(f"Site{i:03d}", "Synthetic")
        return registry

    def _make_latency(self, cfg: RBayConfig) -> LatencyModel:
        jitter_rng = self.streams.stream("latency-jitter") if cfg.jitter else None
        if cfg.synthetic_sites is None:
            return TableIILatencyModel(
                rng=jitter_rng,
                jitter_cv=cfg.jitter_cv,
                unstable_jitter_cv=cfg.unstable_jitter_cv,
            )
        return SyntheticLatencyModel(
            cfg.synthetic_sites,
            hop_ms=cfg.synthetic_hop_ms,
            rng=jitter_rng,
            jitter_cv=cfg.jitter_cv if cfg.jitter else 0.0,
        )

    def _make_node(self, node_id: NodeId, site: Site) -> RBayNode:
        cfg = self.config
        node = RBayNode(
            node_id,
            site,
            self.sim,
            leaf_set_size=cfg.leaf_set_size,
            instruction_limit=cfg.instruction_limit,
            reservation_hold_ms=cfg.reservation_hold_ms,
        )
        return node

    def build(self, nodes_per_site: Optional[int] = None) -> "RBay":
        """Create the node population, bootstrap routing, wire applications."""
        if self._built:
            raise RuntimeError("plane already built")
        per_site = nodes_per_site if nodes_per_site is not None else self.config.nodes_per_site
        self.overlay.create_population(per_site)
        self.overlay.bootstrap()
        for node in self.overlay.nodes:
            self._wire_node(node)
        for site in self.registry:
            members = [n for n in self.nodes if n.site.index == site.index]
            self.admins[site.name] = SiteAdmin(site, members)
            gateway_refs = self.overlay.gateways.get(site.index, [])
            if gateway_refs:
                self.context.set_gateway(site.name, gateway_refs[0].address)
            elif members:
                self.context.set_gateway(site.name, members[0].address)
        self._built = True
        if self.config.sanitize:
            from repro.check.sanitizer import Sanitizer

            self.sanitizer = Sanitizer(
                self,
                sweep_events=self.config.sanitize_sweep_events,
                fail_fast=self.config.sanitize_fail_fast,
                grace_ms=self.config.sanitize_grace_ms,
            ).attach()
        if self.config.fault_schedule is not None:
            self.install_faults(self.config.fault_schedule)
        return self

    def install_faults(self, schedule: Optional[Any] = None) -> FaultInjector:
        """Hook a fault injector to the plane (optionally with a script).

        Safe to call once; later calls load additional schedules into the
        same injector.
        """
        if self.fault_injector is None:
            self.fault_injector = FaultInjector(
                self.sim,
                self.network,
                self.nodes,
                rng=self.streams.stream("faults"),
                counters=self.counters,
                churn=self.churn,
                recorder=self.obs.recorder if self.obs.enabled else None,
            )
            self.fault_injector.install(schedule)
            if self.sanitizer is not None:
                self.sanitizer.watch_injector(self.fault_injector)
        elif schedule is not None:
            self.fault_injector.load(schedule)
        return self.fault_injector

    def _wire_node(self, node: RBayNode) -> None:
        recorder = self.obs.recorder if self.obs.enabled else None
        rebalance_cfg = None
        if self.config.rebalance:
            from repro.scribe.rebalance import RebalanceConfig

            rebalance_cfg = RebalanceConfig(
                hot_threshold=self.config.rebalance_hot_threshold,
                cool_threshold=self.config.rebalance_cool_threshold,
                window_ms=self.config.rebalance_window_ms,
                hot_windows=self.config.rebalance_hot_windows,
                cool_windows=self.config.rebalance_cool_windows,
                max_replicas=self.config.rebalance_max_replicas,
                min_children=self.config.rebalance_min_children,
            )
        scribe = ScribeApplication(self.sim,
                                   agg_flush_ms=(self.config.agg_flush_ms
                                                 if self.config.batching else 0.0),
                                   cache_enabled=self.config.aggregate_cache,
                                   counters=self.counters,
                                   recorder=recorder,
                                   rebalance=rebalance_cfg,
                                   metrics=self.obs.metrics)
        query_app = QueryApplication(self.context, counters=self.counters,
                                     obs=self.obs)
        if recorder is not None:
            node.recorder = recorder
        node.register_app(scribe)
        node.register_app(query_app)
        scribe.anycast_visitor = query_app.visit
        scribe.multicast_handler = SiteAdmin.apply_admin_command
        # Local tree changes immediately distrust the node's probe cache.
        scribe.add_tree_change_listener(query_app.on_tree_change)

    def add_node(self, site: Site, join_via: Optional[RBayNode] = None) -> RBayNode:
        """Dynamically add a node (protocol join when ``join_via`` given)."""
        node = self.overlay.create_node(site)
        self._wire_node(node)
        for attribute in self.context.bucket_index.attributes():
            self.subscribe_bucketed(node, self.context.bucket_index.spec_for(attribute))
        if self.sanitizer is not None:
            self.sanitizer.watch_node(node)
        if join_via is not None:
            self.overlay.join(node, join_via)
        return node

    # ------------------------------------------------------------------
    # Bucketed range indices
    # ------------------------------------------------------------------
    def register_buckets(self, attribute: str, lo: float, hi: float,
                         buckets: int = 8) -> "BucketSpec":
        """Range-partition ``attribute`` into ``buckets`` even value ranges.

        Every existing node subscribes to the bucket containing its
        current value (one Scribe tree per bucket, with the usual count
        roll-up) and re-buckets eagerly when the value crosses a
        boundary; nodes added later are subscribed automatically.  Range
        predicates and GROUP BY on the attribute are then served by the
        cost-based planner (:mod:`repro.query.planner`).  Registering the
        same partition twice is a no-op; a conflicting partition raises.
        """
        from repro.scribe.buckets import BucketSpec

        spec = self.context.bucket_index.register(
            BucketSpec(attribute, float(lo), float(hi), int(buckets)))
        for node in self.nodes:
            self.subscribe_bucketed(node, spec)
        return spec

    def subscribe_bucketed(self, node: RBayNode, spec: "BucketSpec") -> None:
        """Install one eager membership rule per bucket on ``node``."""
        from repro.core.naming import site_tree
        from repro.core.node import SubscriptionSpec

        for bucket in spec.buckets:
            node.subscribe(SubscriptionSpec(
                topic=site_tree(node.site.name, bucket.tree),
                attribute=spec.attribute,
                scope=self.config.tree_scope,
                default_predicate=(lambda value, b=bucket: b.contains(value)),
                eager=True,
            ))

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> List[RBayNode]:
        return self.overlay.nodes  # type: ignore[return-value]

    def site_nodes(self, site_name: str) -> List[RBayNode]:
        site = self.registry.by_name(site_name)
        return [n for n in self.nodes if n.site.index == site.index]

    def admin(self, site_name: str) -> SiteAdmin:
        return self.admins[site_name]

    def make_customer(
        self,
        name: str,
        site_name: str,
        home: Optional[RBayNode] = None,
        **kwargs: Any,
    ) -> Customer:
        """Create a customer whose query interface lives in ``site_name``."""
        if home is None:
            candidates = self.site_nodes(site_name)
            if not candidates:
                raise ValueError(f"no nodes at site {site_name}")
            home = self.streams.stream("customers").choice(candidates)
        customer = Customer(name, home, self.streams.stream(f"customer-{name}"), **kwargs)
        self.customers.append(customer)
        return customer

    # ------------------------------------------------------------------
    # Stable query facade
    # ------------------------------------------------------------------
    def _facade_home(self, options: QueryOptions) -> RBayNode:
        """The query-interface node a facade call coordinates from."""
        if not self._built:
            raise RuntimeError("plane not built yet: call build() first")
        site_name = options.origin
        if site_name is None:
            site_name = next(iter(self.registry)).name
        candidates = self.site_nodes(site_name)
        if not candidates:
            raise ValueError(f"no nodes at site {site_name}")
        return candidates[0]

    def submit(self, sql: str, *, options: Optional[QueryOptions] = None) -> Any:
        """Admit ``sql`` through the bounded in-flight window.

        Returns a :class:`~repro.sim.futures.Future` resolving to a
        :class:`~repro.query.result.QueryResult` (or a typed
        :class:`~repro.query.errors.QueryError`).  At most
        ``config.query_window`` facade queries execute concurrently; the
        rest wait FIFO, each with fully isolated per-query state.
        """
        opts = options if options is not None else QueryOptions()
        home = self._facade_home(opts)
        query = parse_query(sql)
        app: QueryApplication = home.apps["query"]
        return self.admission.submit(lambda: app.execute(home, query, opts))

    def query(self, sql: str, *,
              options: Optional[QueryOptions] = None) -> QueryResult:
        """Run ``sql`` to completion and return its frozen result.

        The synchronous member of the stable facade: drives the simulator
        until the admitted query resolves.  Raises the typed
        :class:`~repro.query.errors.QueryError` if the query fails instead
        of returning a (possibly ``degraded``) result.
        """
        future: Future = self.submit(sql, options=options)
        return future.result()

    # ------------------------------------------------------------------
    # Operation helpers
    # ------------------------------------------------------------------
    def start_maintenance(self) -> None:
        """Kick off every node's periodic onTimer cycle, de-synchronized."""
        rng = self.streams.stream("maintenance-jitter")
        interval = self.config.maintenance_interval_ms
        for node in self.nodes:
            node.start_maintenance(
                interval, jitter_fn=lambda rng=rng: rng.uniform(-0.1, 0.1) * interval
            )

    def stop_maintenance(self) -> None:
        for node in self.nodes:
            node.stop_maintenance()

    def settle(self, duration_ms: float = 1_000.0) -> None:
        """Run the simulator forward to let joins/aggregates propagate."""
        self.sim.run(until=self.sim.now + duration_ms)

    def run(self, until: Optional[float] = None) -> None:
        self.sim.run(until=until)

    def close(self) -> None:
        """Release transport resources (sockets, event loop) if any.

        A cheap no-op for the DES backend; required teardown for the
        asyncio backend.  Safe to call repeatedly.
        """
        for target in (self.network, self.sim):
            closer = getattr(target, "close", None)
            if closer is not None:
                closer()

    # ------------------------------------------------------------------
    # Convenience for experiments
    # ------------------------------------------------------------------
    def random_node(self, rng: Optional[random.Random] = None,
                    site_name: Optional[str] = None) -> RBayNode:
        rng = rng if rng is not None else self.streams.stream("random-node")
        pool = self.nodes if site_name is None else self.site_nodes(site_name)
        return rng.choice(pool)

    def tree_size(self, topic: str, via: Optional[RBayNode] = None,
                  scope: Optional[str] = None) -> int:
        node = via if via is not None else self.nodes[0]
        return node.scribe.tree_size(node, topic, scope=scope).result()
