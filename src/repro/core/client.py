"""Customers ("buy" side): SQL queries with conflict backoff.

A customer talks to a nearby query interface (any RBAY node in its site).
If concurrent customers contend for the same resources and a query comes
back short, the customer re-queries after a truncated-exponential backoff
(§III-D): aggressive customers accumulate failures and wait longer.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from typing import TYPE_CHECKING

from repro.core.node import RBayNode
from repro.query.backoff import TruncatedExponentialBackoff
from repro.query.options import QueryOptions
from repro.query.sql import Query, parse_query
from repro.sim.futures import Future

if TYPE_CHECKING:  # break the core <-> query.executor import cycle
    from repro.query.executor import QueryApplication, QueryResult


@dataclass
class QueryOutcome:
    """Final outcome of a customer request, across backoff attempts."""

    sql: str
    result: Optional["QueryResult"] = None
    attempts: int = 0
    gave_up: bool = False
    total_latency_ms: float = 0.0
    attempt_results: List["QueryResult"] = field(default_factory=list)

    @property
    def satisfied(self) -> bool:
        return self.result is not None and self.result.satisfied

    def node_ids(self) -> List[int]:
        return [] if self.result is None else self.result.node_ids()


class Customer:
    """One customer bound to a home query-interface node."""

    def __init__(
        self,
        name: str,
        home: RBayNode,
        rng: random.Random,
        backoff_slot_ms: float = 100.0,
        max_attempts: int = 8,
    ):
        self.name = name
        self.home = home
        self.rng = rng
        self.backoff_slot_ms = backoff_slot_ms
        self.max_attempts = max_attempts

    @property
    def _query_app(self) -> "QueryApplication":
        return self.home.apps["query"]  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def query_once(
        self,
        sql: str,
        payload: Optional[Dict[str, Any]] = None,
        timeout: Optional[float] = None,
    ) -> Future:
        """One attempt, no backoff; resolves to a :class:`QueryResult`."""
        query = parse_query(sql)
        return self._query_app.execute(self.home, query, QueryOptions(
            payload=payload, caller=self.name, deadline_ms=timeout))

    def request(
        self,
        sql: str,
        payload: Optional[Dict[str, Any]] = None,
        timeout: Optional[float] = None,
    ) -> Future:
        """Query with automatic re-query on shortfall.

        Resolves to a :class:`QueryOutcome` once satisfied or the attempt
        budget is exhausted.
        """
        sim = self.home.sim
        query = parse_query(sql)
        outcome = QueryOutcome(sql=sql)

        def _timed_out() -> QueryOutcome:
            # Deadline fired mid-attempt: the caller still gets a clean
            # QueryOutcome (never a raw FutureTimeout).
            outcome.gave_up = True
            outcome.total_latency_ms = sim.now - started
            return outcome

        done = Future(sim, timeout=timeout, timeout_value=_timed_out)
        backoff = TruncatedExponentialBackoff(
            self.rng, slot_ms=self.backoff_slot_ms, max_attempts=self.max_attempts
        )
        started = sim.now

        def _attempt() -> None:
            if done.resolved:
                return
            outcome.attempts += 1
            future = self._query_app.execute(self.home, query, QueryOptions(
                payload=payload, caller=self.name))
            future.add_callback(_on_result)

        def _on_result(result: Any) -> None:
            if done.resolved:
                # The caller's deadline fired while this attempt was in
                # flight; anything it committed must be given back.
                if not isinstance(result, Exception) and result.satisfied:
                    self.release_all(result)
                return
            if isinstance(result, Exception):
                _fail_or_retry()
                return
            outcome.attempt_results.append(result)
            outcome.result = result
            if result.satisfied:
                outcome.total_latency_ms = sim.now - started
                done.try_resolve(outcome)
                return
            _fail_or_retry()

        def _fail_or_retry() -> None:
            backoff.record_failure()
            if backoff.exhausted():
                outcome.gave_up = True
                outcome.total_latency_ms = sim.now - started
                done.try_resolve(outcome)
                return
            sim.schedule(backoff.next_delay_ms(), _attempt)

        _attempt()
        return done

    # ------------------------------------------------------------------
    def release_all(self, result: "QueryResult") -> None:
        """Give back every node a query holds (customer declined)."""
        for entry in result.entries:
            self.home.send_app(entry["address"], "query", "release",
                               {"query_id": result.query_id})
