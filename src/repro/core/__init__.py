"""RBAY core: the information plane assembled from the substrates.

The public API a downstream user touches:

* :class:`~repro.core.plane.RBay` — build and federate sites into one plane;
* :class:`~repro.core.node.RBayNode` — a participating server (Pastry node +
  key-value map + AA runtime + Scribe trees);
* :class:`~repro.core.admin.SiteAdmin` — post/hide/expose resources and push
  policies;
* :class:`~repro.core.client.Customer` — issue SQL queries with conflict
  backoff.
"""

from repro.core.admin import SiteAdmin
from repro.core.client import Customer, QueryOutcome
from repro.core.naming import AttributeHierarchy, instance_tree, predicate_tree_name
from repro.core.node import RBayNode
from repro.core.plane import RBay, RBayConfig
from repro.core.policies import (
    credit_policy,
    open_policy,
    password_policy,
    time_window_policy,
    utilization_subscription,
)
from repro.core.reservation import ReservationTable

__all__ = [
    "AttributeHierarchy",
    "Customer",
    "QueryOutcome",
    "RBay",
    "RBayConfig",
    "RBayNode",
    "ReservationTable",
    "SiteAdmin",
    "credit_policy",
    "instance_tree",
    "open_policy",
    "password_policy",
    "predicate_tree_name",
    "time_window_policy",
    "utilization_subscription",
]
