"""RBayNode: a participating server.

Figure 4 of the paper: each RBAY node is (bottom-up) a routing substrate
(Pastry), a key-value map of resource attributes, and the AA runtime that
realizes the admin's policy.  This class glues those substrates together
and adds the node-side mechanics of the query protocol: predicate checks,
AA authorization, and reservations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.aa.runtime import AARuntime
from repro.core.reservation import ReservationTable
from repro.net.site import Site
from repro.pastry.leafset import DEFAULT_LEAF_SET_SIZE
from repro.pastry.node import PastryNode
from repro.pastry.nodeid import NodeId
from repro.query.predicates import Predicate
from repro.scribe.scribe import ScribeApplication
from repro.sim.engine import Simulator

#: The node-level policy attribute: its onGet handler answers "may this
#: query obtain the node?" (paper §III-D step 4ii).
GATE_ATTRIBUTE = "access"


@dataclass
class SubscriptionSpec:
    """How a node decides membership of one tree.

    Membership is re-evaluated on every maintenance tick: the attribute's
    ``onSubscribe`` / ``onUnsubscribe`` handlers decide if present, else the
    ``default_predicate`` on the current value, else static membership.

    ``eager`` subscriptions are additionally re-evaluated the moment their
    attribute's value changes (bucketed range indices need re-bucketing to
    happen before the next query, not at the next tick).
    """

    topic: str
    attribute: Optional[str] = None
    scope: str = "global"
    default_predicate: Optional[Callable[[Any], bool]] = None
    eager: bool = False


class RBayNode(PastryNode):
    """One server participating in the RBAY federation."""

    def __init__(
        self,
        node_id: NodeId,
        site: Site,
        sim: Simulator,
        leaf_set_size: int = DEFAULT_LEAF_SET_SIZE,
        instruction_limit: int = 100_000,
        reservation_hold_ms: float = 2_000.0,
    ):
        super().__init__(node_id, site, leaf_set_size=leaf_set_size)
        self.sim = sim
        self.aa = AARuntime(instruction_limit=instruction_limit)
        self.reservation = ReservationTable(sim, hold_ms=reservation_hold_ms)
        self.subscriptions: Dict[str, SubscriptionSpec] = {}
        self._maintenance_task = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    @property
    def scribe(self) -> ScribeApplication:
        return self.apps["scribe"]  # type: ignore[return-value]

    def cache_sizes(self) -> Dict[str, int]:
        """Entry counts of this node's caches (0 when caching is disabled).

        Debugging/benchmark aid: pairs with the federation-wide hit/miss
        counters in ``plane.counters`` to show *where* cached state lives.
        """
        scribe = self.scribe
        sizes = {
            "acc_cache": len(scribe.acc_cache) if scribe.acc_cache is not None else 0,
            "result_cache": (len(scribe.result_cache)
                             if scribe.result_cache is not None else 0),
        }
        query_app = self.apps.get("query")
        if query_app is not None:
            sizes["probe_cache"] = len(query_app.probe_cache)
        return sizes

    def start_maintenance(self, interval_ms: float, jitter_fn=None) -> None:
        """Begin the periodic onTimer cycle (subscription checks, repair)."""
        if self._maintenance_task is not None:
            self._maintenance_task.stop()
        self._maintenance_task = self.sim.schedule_periodic(
            interval_ms, self.maintenance_tick, jitter_fn=jitter_fn
        )

    def stop_maintenance(self) -> None:
        if self._maintenance_task is not None:
            self._maintenance_task.stop()
            self._maintenance_task = None

    # ------------------------------------------------------------------
    # Key-value map facade
    # ------------------------------------------------------------------
    def define_attribute(self, name: str, value: Any, source: Optional[str] = None):
        """Add (or replace) a resource attribute, optionally with handlers."""
        return self.aa.define(name, value, source)

    def remove_attribute(self, name: str) -> bool:
        return self.aa.remove(name)

    def attribute_value(self, name: str) -> Any:
        return self.aa.value(name)

    def update_attribute(self, name: str, value: Any) -> None:
        """Monitoring-infrastructure update path (e.g. the libvirt feed).

        Eager subscriptions on the updated attribute re-evaluate
        immediately, moving the node between value-range buckets in the
        same event rather than at the next maintenance tick.
        """
        self.aa.set_value(name, value)
        for spec in list(self.subscriptions.values()):
            if spec.eager and spec.attribute == name:
                self._evaluate_subscription(spec)

    def has_attribute(self, name: str) -> bool:
        return name in self.aa.attributes

    # ------------------------------------------------------------------
    # Tree membership
    # ------------------------------------------------------------------
    def subscribe(self, spec: SubscriptionSpec) -> None:
        """Register a membership rule and evaluate it immediately."""
        self.subscriptions[spec.topic] = spec
        self._evaluate_subscription(spec)

    def unsubscribe(self, topic: str) -> None:
        self.subscriptions.pop(topic, None)
        if self.scribe.is_member(topic):
            self.scribe.leave(self, topic)

    def _evaluate_subscription(self, spec: SubscriptionSpec) -> None:
        member = self.scribe.is_member(spec.topic)
        attribute = self.aa.get(spec.attribute) if spec.attribute else None
        if attribute is not None and (
            attribute.has_handler("onSubscribe") or attribute.has_handler("onUnsubscribe")
        ):
            if not member and self.aa.should_subscribe(spec.attribute, self.address, spec.topic):
                self.scribe.join(self, spec.topic, scope=spec.scope)
            elif member and self.aa.should_unsubscribe(spec.attribute, self.address, spec.topic):
                self.scribe.leave(self, spec.topic)
            return
        if spec.default_predicate is not None:
            value = self.attribute_value(spec.attribute) if spec.attribute else None
            want = bool(spec.default_predicate(value))
        else:
            want = True
        if want and not member:
            self.scribe.join(self, spec.topic, scope=spec.scope)
        elif not want and member:
            self.scribe.leave(self, spec.topic)

    def on_recover(self) -> None:
        """Crash-recovery re-wiring (called by the fault injector after the
        Pastry-level ``announce``).

        Two things are lost while a host is down: joins the network
        suppressed, and eager re-bucketing driven by attribute updates the
        node applied while detached.  ``_evaluate_subscription`` alone
        cannot repair the first — the member flag already matches the
        desired state, so it no-ops — hence the explicit re-join of every
        detached member tree.
        """
        for spec in list(self.subscriptions.values()):
            if spec.eager:
                self._evaluate_subscription(spec)
        self.scribe.rejoin_detached(self)

    def maintenance_tick(self) -> None:
        """One onTimer cycle: attribute timers, membership, overlay and
        tree repair."""
        for name, attribute in list(self.aa.attributes.items()):
            if attribute.has_handler("onTimer"):
                self.aa.on_timer(name)
        for spec in list(self.subscriptions.values()):
            self._evaluate_subscription(spec)
        self.stabilize()
        self.scribe.maintain(self)

    # ------------------------------------------------------------------
    # Query-side checks (protocol step 4)
    # ------------------------------------------------------------------
    def check_predicates(self, predicates: List[Predicate],
                         implied: Sequence[Predicate] = ()) -> bool:
        """Do this node's current attribute values satisfy every predicate?

        ``implied`` predicates are vouched for by tree membership (the
        anycast reached us through that predicate's tree): they are only
        re-checked when the attribute is present locally, guarding against
        stale membership without rejecting nodes that encode the property
        purely as membership.
        """
        for predicate in predicates:
            if not self.has_attribute(predicate.attribute):
                return False
            if not predicate.matches(self.attribute_value(predicate.attribute)):
                return False
        for predicate in implied:
            if self.has_attribute(predicate.attribute) and not predicate.matches(
                self.attribute_value(predicate.attribute)
            ):
                return False
        return True

    def authorize(self, caller: Any, payload: Optional[Dict[str, Any]]) -> Any:
        """Run the gate attribute's onGet.  Returns the exposed value
        (usually the NodeId) or None when access is denied.

        Nodes without a gate handler are open: they expose their Pastry id.
        """
        gate = self.aa.get(GATE_ATTRIBUTE)
        enriched = dict(payload or {})
        enriched.setdefault("now", self.sim.now)
        enriched.setdefault("hour", (self.sim.now / 3_600_000.0) % 24.0)
        if gate is None or not gate.has_handler("onGet"):
            return self.node_id.value
        return self.aa.on_get(GATE_ATTRIBUTE, caller, enriched)

    def consider_for_query(
        self,
        query_id: int,
        caller: Any,
        predicates: List[Predicate],
        payload: Optional[Dict[str, Any]],
        implied: Sequence[Predicate] = (),
    ) -> Optional[Dict[str, Any]]:
        """Full step-4 check: predicates, AA authorization, reservation.

        Returns the candidate entry to put in the anycast buffer, or None.
        """
        self.stats["query_considered"] += 1
        if not self.reservation.is_free() and self.reservation.holder() != query_id:
            return None
        if not self.check_predicates(predicates, implied):
            return None
        exposed = self.authorize(caller, payload)
        if exposed is None:
            self.stats["query_denied"] += 1
            return None
        if not self.reservation.try_reserve(query_id):
            return None
        self.stats["query_reserved"] += 1
        return {
            "node_id": self.node_id.value,
            "address": self.address,
            "site": self.site.name,
            "exposed": exposed,
        }
