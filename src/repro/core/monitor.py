"""Synthetic monitoring infrastructure.

The paper's prototype reflects attribute updates "through an underlying
monitoring infrastructure (e.g. Libvirt API)".  We have no hypervisors to
poll, so this module synthesizes the same feed: per-node utilization
processes (bounded random walks) and attribute churn generators that push
values into the nodes' key-value maps on a timer.  The churn knobs double
as the workload for the paper's future-work experiment (behaviour "under
different levels of churn in resources and attribute values").
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.node import RBayNode
from repro.sim.engine import PeriodicTask, Simulator


class UtilizationWalk:
    """A mean-reverting bounded random walk over [0, 100] (% utilization)."""

    def __init__(self, rng: random.Random, start: float, volatility: float = 8.0,
                 reversion: float = 0.15, mean: float = 50.0):
        self.rng = rng
        self.value = max(0.0, min(100.0, start))
        self.volatility = volatility
        self.reversion = reversion
        self.mean = mean

    def step(self) -> float:
        drift = self.reversion * (self.mean - self.value)
        shock = self.rng.gauss(0.0, self.volatility)
        self.value = max(0.0, min(100.0, self.value + drift + shock))
        return self.value


class SyntheticMonitor:
    """Feeds synthetic measurements into a set of nodes' key-value maps."""

    def __init__(
        self,
        sim: Simulator,
        rng: random.Random,
        interval_ms: float = 1_000.0,
    ):
        self.sim = sim
        self.rng = rng
        self.interval_ms = interval_ms
        self._walks: List[tuple] = []  # (node, attribute, walk)
        self._task: Optional[PeriodicTask] = None
        self.updates_pushed = 0

    # ------------------------------------------------------------------
    def track_utilization(
        self,
        node: RBayNode,
        attribute: str = "CPU_utilization",
        start: Optional[float] = None,
        volatility: float = 8.0,
        mean: float = 50.0,
    ) -> None:
        """Attach a utilization walk to ``node.attribute``."""
        initial = start if start is not None else self.rng.uniform(0.0, 100.0)
        walk = UtilizationWalk(self.rng, initial, volatility=volatility, mean=mean)
        if not node.has_attribute(attribute):
            node.define_attribute(attribute, walk.value)
        else:
            node.update_attribute(attribute, walk.value)
        self._walks.append((node, attribute, walk))

    def track_many(self, nodes: Sequence[RBayNode], attribute: str = "CPU_utilization",
                   **kwargs) -> None:
        for node in nodes:
            self.track_utilization(node, attribute, **kwargs)

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._task is None:
            self._task = self.sim.schedule_periodic(self.interval_ms, self.tick)

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()
            self._task = None

    def tick(self) -> None:
        """Advance every walk and push the new values."""
        for node, attribute, walk in self._walks:
            if not node.alive:
                continue
            node.update_attribute(attribute, walk.step())
            self.updates_pushed += 1


class AttributeChurn:
    """Randomly adds/removes shareable attributes (resource churn).

    Each tick flips a few nodes' attributes between present and absent —
    the "different levels of churn in resources" of the paper's future
    work.  ``rate`` is the expected fraction of tracked nodes churned per
    tick.
    """

    def __init__(
        self,
        sim: Simulator,
        rng: random.Random,
        nodes: Sequence[RBayNode],
        attribute: str,
        value_factory: Callable[[random.Random], object],
        rate: float = 0.01,
        interval_ms: float = 1_000.0,
    ):
        self.sim = sim
        self.rng = rng
        self.nodes = list(nodes)
        self.attribute = attribute
        self.value_factory = value_factory
        self.rate = rate
        self.interval_ms = interval_ms
        self._task: Optional[PeriodicTask] = None
        self.flips = 0

    def start(self) -> None:
        if self._task is None:
            self._task = self.sim.schedule_periodic(self.interval_ms, self.tick)

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()
            self._task = None

    def tick(self) -> None:
        """Flip a rate-scaled sample of nodes' attribute presence."""
        if not self.nodes or self.rate <= 0:
            return
        count = max(1, int(len(self.nodes) * self.rate))
        for node in self.rng.sample(self.nodes, min(count, len(self.nodes))):
            if not node.alive:
                continue
            if node.has_attribute(self.attribute):
                node.remove_attribute(self.attribute)
            else:
                node.define_attribute(self.attribute, self.value_factory(self.rng))
            self.flips += 1


class ChurnStats:
    """Membership-churn observer: samples tree sizes over time."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.samples: Dict[str, List[tuple]] = {}

    def sample(self, topic: str, size: int) -> None:
        self.samples.setdefault(topic, []).append((self.sim.now, size))

    def series(self, topic: str) -> List[tuple]:
        return list(self.samples.get(topic, ()))
