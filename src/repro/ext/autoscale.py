"""DEPAS-style decentralized probabilistic auto-scaling of site capacity.

Calcavecchia et al.'s DEPAS (PAPERS.md) removes the central autoscaler:
every participant runs the same *local* rule — compare your own observed
load against thresholds and act **probabilistically**, so a fleet of
uncoordinated peers converges on the right capacity without any of them
ever seeing the global picture (and without every peer scaling at once
on the same signal).

Here each federation site runs one :class:`SiteAutoscaler` over its own
pool of servers.  "Instances" are priced marketplace postings
(:func:`repro.ext.economy.post_priced_resource`): scale-out posts a spare
node into the market tree, scale-in withdraws an **idle** posting
(``reservation.is_free()`` — a leased instance is never yanked from
under its customer, which is what keeps the reservation-hygiene
invariant clean through elasticity).  The scaler reads nothing but its
own site's utilization, publishes its observations to the labeled
metrics plane (``market.site.utilization`` / ``market.site.instances``),
and draws its actuation coin-flips from a dedicated per-site RNG stream
so same-seed runs are byte-identical.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, List, Optional

from repro.core.admin import SiteAdmin
from repro.core.node import RBayNode
from repro.ext.economy import post_priced_resource


@dataclass(frozen=True)
class AutoscaleConfig:
    """The DEPAS rule's parameters (one config shared by every site).

    With utilization ``u`` (busy instances / posted instances):

    * ``u >= high``  → scale **out** with probability
      ``gain * (u - high) / (1 - high)``;
    * ``u <= low``   → scale **in** with probability
      ``gain * (low - u) / low``;
    * otherwise the site is in the dead band and nothing happens.

    Probabilities are clamped to 1; instance counts are clamped to
    ``[min_instances, max_instances]``.
    """

    high: float = 0.75
    low: float = 0.25
    gain: float = 1.0
    min_instances: int = 1
    #: 0 = the whole pool may be posted.
    max_instances: int = 0

    def __post_init__(self):
        if not 0.0 <= self.low < self.high <= 1.0:
            raise ValueError("need 0 <= low < high <= 1")
        if self.gain <= 0.0:
            raise ValueError("gain must be > 0")
        if self.min_instances < 0:
            raise ValueError("min_instances must be >= 0")


class SiteAutoscaler:
    """One site's DEPAS loop over its pool of marketplace instances.

    ``pool`` is every node the site may post; the first ``initial``
    postings happen via :meth:`start`.  ``price_of`` supplies the asking
    price for *new* postings (wired to the site's
    :class:`~repro.ext.economy.SpotPricer` so scale-out joins the market
    at the current spot price).
    """

    def __init__(
        self,
        admin: SiteAdmin,
        pool: List[RBayNode],
        config: AutoscaleConfig,
        rng: random.Random,
        metrics: Any,
        attribute: str,
        value: Any,
        price_of: Callable[[], float],
        min_credit: Optional[float] = None,
        enabled: bool = True,
    ):
        self.admin = admin
        #: Deterministic pool order: sorted by address so two same-seed
        #: runs post the same nodes in the same sequence.
        self.pool = sorted(pool, key=lambda n: n.address)
        self.config = config
        self.rng = rng
        self.metrics = metrics
        self.attribute = attribute
        self.value = value
        self.price_of = price_of
        self.min_credit = min_credit
        #: With the DEPAS loop disabled (the ablation arm), :meth:`tick`
        #: still publishes utilization — the pricer needs the signal —
        #: but never adds or retires capacity.
        self.enabled = enabled
        self.active: List[RBayNode] = []
        self.spare: List[RBayNode] = list(self.pool)
        #: Lifetime scale-out / scale-in actuations (diagnostics).
        self.scaled_out = 0
        self.scaled_in = 0

    # ------------------------------------------------------------------
    def start(self, initial: int) -> None:
        """Post the first ``initial`` instances (bounded by the pool).

        Initial postings are provisioning, not elasticity: they do not
        count toward ``scaled_out`` or the ``market.scale.out`` counter.
        """
        for _ in range(min(initial, len(self.spare))):
            self._post_one(actuation=False)

    def utilization(self) -> float:
        """Busy fraction of posted instances (1.0 when nothing is posted).

        An empty posting set reads as fully utilized on purpose: it is
        the strongest possible scale-out signal.
        """
        if not self.active:
            return 1.0
        busy = sum(1 for node in self.active if not node.reservation.is_free())
        return busy / len(self.active)

    @property
    def instances(self) -> int:
        return len(self.active)

    def _max_instances(self) -> int:
        cap = self.config.max_instances
        return len(self.pool) if cap <= 0 else min(cap, len(self.pool))

    # ------------------------------------------------------------------
    def tick(self) -> float:
        """One DEPAS evaluation; returns the observed utilization."""
        site = self.admin.site.name
        util = self.utilization()
        self.metrics.gauge("market.site.utilization").set(util, site=site)
        self.metrics.gauge("market.site.instances").set(
            float(len(self.active)), site=site)
        if not self.enabled:
            return util
        cfg = self.config
        if util >= cfg.high and self.spare and len(self.active) < self._max_instances():
            pressure = ((util - cfg.high) / (1.0 - cfg.high)
                        if cfg.high < 1.0 else 1.0)
            if self.rng.random() < min(1.0, cfg.gain * max(pressure, 0.05)):
                self._post_one()
        elif util <= cfg.low and len(self.active) > cfg.min_instances:
            slack = ((cfg.low - util) / cfg.low) if cfg.low > 0.0 else 1.0
            if self.rng.random() < min(1.0, cfg.gain * max(slack, 0.05)):
                self._retire_one()
        return util

    # ------------------------------------------------------------------
    def _post_one(self, actuation: bool = True) -> None:
        node = self.spare.pop(0)
        post_priced_resource(self.admin, node, self.attribute, self.value,
                             self.price_of(), min_credit=self.min_credit)
        self.active.append(node)
        if actuation:
            self.scaled_out += 1
            self.metrics.counter("market.scale.out").increment(
                site=self.admin.site.name)

    def _retire_one(self) -> None:
        """Withdraw the most recently posted *idle* instance, if any.

        Leased instances are skipped: the customer keeps its lease until
        expiry, and the instance becomes retirable once free.
        """
        for node in reversed(self.active):
            if node.reservation.is_free():
                self.admin.hide_resource(node, self.attribute,
                                         value=self.value)
                self.active.remove(node)
                self.spare.insert(0, node)
                self.scaled_in += 1
                self.metrics.counter("market.scale.in").increment(
                    site=self.admin.site.name)
                return
