"""A Mariposa-style economic layer over RBAY (related work, §V-C).

"Mariposa is a federated database system which uses an economic paradigm
to integrate the data sources into a computational economy" — and RBAY's
own marketplace framing ("raise or lower rental prices") invites the same
treatment.  This module adds:

* price schedules per node, enforced on the owner's side by the standard
  ``rental_price_policy`` gate (the plane never sees secrets or budgets);
* a **cost-aware customer** that over-asks, then solves the cheapest-k
  selection under its budget, releasing everything it does not take;
* simple market accounting (spend per customer, revenue per site).
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Any, Dict, List, Optional, Tuple

from repro.core.admin import SiteAdmin
from repro.core.client import Customer
from repro.core.node import RBayNode
from repro.core.policies import rental_price_policy
from repro.query.options import QueryOptions
from repro.query.sql import parse_query
from repro.sim.futures import Future

#: Attribute under which a node's asking price is published (plain data —
#: the *enforcement* happens in the gate handler, not in this attribute).
PRICE_ATTRIBUTE = "asking_price"

#: onDeliver handler keeping the advertised price in sync with admin
#: repricing multicasts.
_PRICE_SOURCE = """
function onDeliver(caller, payload)
  if payload ~= nil and payload.new_price ~= nil then
    AA.Value = payload.new_price
  end
  return AA.Value
end
"""


def post_priced_resource(
    admin: SiteAdmin,
    node: RBayNode,
    attribute: str,
    value: Any,
    price: float,
) -> None:
    """Post a resource with a price: gate enforces budget >= price, and the
    advertised price is queryable/sortable via ``asking_price``."""
    admin.set_gate_policy(node, rental_price_policy(node.node_id.value, price))
    node.define_attribute(PRICE_ATTRIBUTE, float(price), _PRICE_SOURCE)
    admin.post_resource(node, attribute, value)


def reprice(admin: SiteAdmin, via: RBayNode, tree: str, new_price: float) -> None:
    """Admin-side interactive price change: multicast onDeliver down the
    tree plus the advertised-price attribute update on delivery."""
    admin.broadcast_command(via, tree, "access", {"new_price": new_price})
    # Advertised price follows the enforced price on the same multicast.
    admin.broadcast_command(via, tree, PRICE_ATTRIBUTE, {"new_price": new_price})


class MarketLedger:
    """Records completed purchases for market-level reporting."""

    def __init__(self):
        self.purchases: List[Tuple[str, str, int, float]] = []

    def record(self, customer: str, site: str, node_address: int, price: float) -> None:
        self.purchases.append((customer, site, node_address, price))

    def spend_of(self, customer: str) -> float:
        return sum(p for c, _, _, p in self.purchases if c == customer)

    def revenue_of(self, site: str) -> float:
        return sum(p for _, s, _, p in self.purchases if s == site)

    def volume(self) -> int:
        return len(self.purchases)


class CostAwareCustomer(Customer):
    """Buys the cheapest k nodes that fit inside a total budget.

    The per-node gate still enforces ``budget >= price`` on the owner's
    side; this class adds client-side shopping: over-ask, sort by advertised
    price, keep the cheapest k whose sum fits the wallet, release the rest.
    """

    def __init__(
        self,
        name: str,
        home: RBayNode,
        rng: random.Random,
        wallet: float,
        ledger: Optional[MarketLedger] = None,
        overask: float = 3.0,
        **kwargs: Any,
    ):
        super().__init__(name, home, rng, **kwargs)
        self.wallet = wallet
        self.ledger = ledger
        self.overask = overask

    def buy(
        self,
        sql: str,
        timeout: Optional[float] = None,
    ) -> Future:
        """Run a purchase; resolves to a QueryResult holding the kept nodes.

        The query's GROUPBY is forced to ``asking_price ASC`` so entries
        come back priced, and the per-node payload carries the *per-node*
        budget ceiling (the wallet — owners only check affordability).
        """
        query = parse_query(sql)
        wanted = query.k
        if wanted is not None:
            query.k = max(wanted, int(wanted * self.overask))
        query.order_by = PRICE_ATTRIBUTE
        query.descending = False
        payload = {"budget": self.wallet}
        future = self._query_app.execute(self.home, query, QueryOptions(
            payload=payload, caller=self.name, deadline_ms=timeout))
        done = Future(self.home.sim, timeout=timeout)

        def _shop(result: Any) -> None:
            if isinstance(result, Exception):
                done.try_resolve(result)
                return
            kept: List[Dict[str, Any]] = []
            total = 0.0
            surplus: List[Dict[str, Any]] = []
            for entry in result.entries:  # already cheapest-first
                price = float(entry.get("order_value") or 0.0)
                if (wanted is None or len(kept) < wanted) and total + price <= self.wallet:
                    kept.append(entry)
                    total += price
                else:
                    surplus.append(entry)
            for entry in surplus:
                self.home.send_app(entry["address"], "query", "release",
                                   {"query_id": result.query_id})
            satisfied = wanted is None or len(kept) >= wanted
            if satisfied:
                self.wallet -= total
                if self.ledger is not None:
                    for entry in kept:
                        self.ledger.record(self.name, entry["site"],
                                           entry["address"],
                                           float(entry.get("order_value") or 0.0))
            else:
                # Could not afford / fill: release the kept ones too.
                for entry in kept:
                    self.home.send_app(entry["address"], "query", "release",
                                       {"query_id": result.query_id})
                kept = []
            done.try_resolve(replace(result, entries=tuple(kept),
                                     requested=wanted, satisfied=satisfied))

        future.add_callback(_shop)
        return done
