"""A Mariposa-style economic layer over RBAY (related work, §V-C).

"Mariposa is a federated database system which uses an economic paradigm
to integrate the data sources into a computational economy" — and RBAY's
own marketplace framing ("raise or lower rental prices") invites the same
treatment.  This module adds:

* price schedules per node, enforced on the owner's side by the standard
  ``rental_price_policy`` gate (the plane never sees secrets or budgets);
* a **cost-aware customer** that over-asks, then solves the cheapest-k
  selection under its budget, releasing everything it does not take;
* simple market accounting (spend per customer, revenue per site).
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Any, Dict, List, Optional, Tuple

from repro.core.admin import SiteAdmin
from repro.core.client import Customer
from repro.core.node import RBayNode
from repro.core.policies import market_gate_policy, rental_price_policy
from repro.query.options import QueryOptions
from repro.query.sql import parse_query
from repro.sim.futures import Future

#: Attribute under which a node's asking price is published (plain data —
#: the *enforcement* happens in the gate handler, not in this attribute).
PRICE_ATTRIBUTE = "asking_price"

#: onDeliver handler keeping the advertised price in sync with admin
#: repricing multicasts.
_PRICE_SOURCE = """
function onDeliver(caller, payload)
  if payload ~= nil and payload.new_price ~= nil then
    AA.Value = payload.new_price
  end
  return AA.Value
end
"""


def post_priced_resource(
    admin: SiteAdmin,
    node: RBayNode,
    attribute: str,
    value: Any,
    price: float,
    min_credit: Optional[float] = None,
) -> None:
    """Post a resource with a price: gate enforces budget >= price, and the
    advertised price is queryable/sortable via ``asking_price``.

    With ``min_credit`` set, the gate is the combined price/credit policy:
    callers must also present ``payload.credit >= min_credit`` (Kevin's
    history check composed with the rental price, §I).
    """
    if min_credit is None:
        gate = rental_price_policy(node.node_id.value, price)
    else:
        gate = market_gate_policy(node.node_id.value, price, min_credit)
    admin.set_gate_policy(node, gate)
    node.define_attribute(PRICE_ATTRIBUTE, float(price), _PRICE_SOURCE)
    admin.post_resource(node, attribute, value)


def reprice(admin: SiteAdmin, via: RBayNode, tree: str, new_price: float) -> None:
    """Admin-side interactive price change: multicast onDeliver down the
    tree plus the advertised-price attribute update on delivery."""
    admin.broadcast_command(via, tree, "access", {"new_price": new_price})
    # Advertised price follows the enforced price on the same multicast.
    admin.broadcast_command(via, tree, PRICE_ATTRIBUTE, {"new_price": new_price})


def cheapest_first(entries: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Deterministic shopping order: advertised price, then address.

    The executor's GROUPBY sort is stable on ``order_value`` alone, so
    equal-price candidates arrive in site-reply order — which shifts with
    latency jitter and fan-out interleaving.  Breaking price ties on the
    node address makes same-seed market runs byte-identical regardless of
    arrival order.
    """
    return sorted(entries, key=lambda e: (float(e.get("order_value") or 0.0),
                                          e["address"]))


def choose_cheapest(
    entries: List[Dict[str, Any]],
    wanted: Optional[int],
    wallet: float,
) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]], float]:
    """Pure cheapest-k selection under a total budget.

    Returns ``(kept, surplus, total_price)``.  Entries are considered in
    :func:`cheapest_first` order, so the result is identical for every
    permutation of ``entries`` — the property the determinism tests pin.
    """
    kept: List[Dict[str, Any]] = []
    surplus: List[Dict[str, Any]] = []
    total = 0.0
    for entry in cheapest_first(entries):
        price = float(entry.get("order_value") or 0.0)
        if (wanted is None or len(kept) < wanted) and total + price <= wallet:
            kept.append(entry)
            total += price
        else:
            surplus.append(entry)
    return kept, surplus, total


class MarketLedger:
    """Records completed purchases for market-level reporting."""

    def __init__(self):
        self.purchases: List[Tuple[str, str, int, float]] = []

    def record(self, customer: str, site: str, node_address: int, price: float) -> None:
        self.purchases.append((customer, site, node_address, price))

    def spend_of(self, customer: str) -> float:
        return sum(p for c, _, _, p in self.purchases if c == customer)

    def revenue_of(self, site: str) -> float:
        return sum(p for _, s, _, p in self.purchases if s == site)

    def volume(self) -> int:
        return len(self.purchases)

    def revenue_by_site(self) -> Dict[str, float]:
        """``site -> total revenue`` over every recorded purchase."""
        out: Dict[str, float] = {}
        for _, site, _, price in self.purchases:
            out[site] = out.get(site, 0.0) + price
        return out

    def spend_by_customer(self) -> Dict[str, float]:
        """``customer -> total spend`` over every recorded purchase."""
        out: Dict[str, float] = {}
        for customer, _, _, price in self.purchases:
            out[customer] = out.get(customer, 0.0) + price
        return out


class CostAwareCustomer(Customer):
    """Buys the cheapest k nodes that fit inside a total budget.

    The per-node gate still enforces ``budget >= price`` on the owner's
    side; this class adds client-side shopping: over-ask, sort by advertised
    price, keep the cheapest k whose sum fits the wallet, release the rest.
    """

    def __init__(
        self,
        name: str,
        home: RBayNode,
        rng: random.Random,
        wallet: float,
        ledger: Optional[MarketLedger] = None,
        overask: float = 3.0,
        credit: Optional[float] = None,
        **kwargs: Any,
    ):
        super().__init__(name, home, rng, **kwargs)
        self.wallet = wallet
        self.ledger = ledger
        self.overask = overask
        #: History score presented to credit-checking gates
        #: (:func:`repro.core.policies.market_gate_policy`); ``None``
        #: omits the field, which those gates treat as a denial.
        self.credit = credit

    def buy(
        self,
        sql: str,
        timeout: Optional[float] = None,
    ) -> Future:
        """Run a purchase; resolves to a QueryResult holding the kept nodes.

        The query's GROUPBY is forced to ``asking_price ASC`` so entries
        come back priced, and the per-node payload carries the *per-node*
        budget ceiling (the wallet — owners only check affordability).
        """
        query = parse_query(sql)
        wanted = query.k
        if wanted is not None:
            query.k = max(wanted, int(wanted * self.overask))
            # Without the floor, a market with fewer matches than the
            # *inflated* k settles unsatisfied and the executor releases
            # every reservation — while the shopping callback still
            # "kept" entries, charged the wallet, and recorded revenue
            # for leases that no longer existed (a phantom purchase).
            query.min_k = wanted
        query.order_by = PRICE_ATTRIBUTE
        query.descending = False
        payload: Dict[str, Any] = {"budget": self.wallet}
        if self.credit is not None:
            payload["credit"] = self.credit
        future = self._query_app.execute(self.home, query, QueryOptions(
            payload=payload, caller=self.name, deadline_ms=timeout))
        done = Future(self.home.sim, timeout=timeout)

        def _shop(result: Any) -> None:
            if isinstance(result, Exception):
                done.try_resolve(result)
                return
            kept, surplus, total = choose_cheapest(
                list(result.entries), wanted, self.wallet)
            for entry in surplus:
                self.home.send_app(entry["address"], "query", "release",
                                   {"query_id": result.query_id})
            satisfied = wanted is None or len(kept) >= wanted
            if satisfied:
                self.wallet -= total
                if self.ledger is not None:
                    for entry in kept:
                        self.ledger.record(self.name, entry["site"],
                                           entry["address"],
                                           float(entry.get("order_value") or 0.0))
            else:
                # Could not afford / fill: release the kept ones too.
                for entry in kept:
                    self.home.send_app(entry["address"], "query", "release",
                                       {"query_id": result.query_id})
                kept = []
            done.try_resolve(replace(result, entries=tuple(kept),
                                     requested=wanted, satisfied=satisfied))

        future.add_callback(_shop)
        return done


class SpotPricer:
    """Per-site dynamic repricing driven by the labeled metrics plane.

    Each site runs its own pricer — no coordinator, mirroring the DEPAS
    scaling rule.  On every :meth:`tick` it reads the site's own
    ``market.site.utilization`` gauge (written by the site's autoscaler
    or workload accounting), nudges the asking price multiplicatively —
    up when hot, down when idle — clamps it to ``[floor, ceiling]``, and
    broadcasts the change with :func:`reprice` so the enforcement gates
    and the advertised ``asking_price`` move together on one multicast.
    """

    def __init__(
        self,
        admin: SiteAdmin,
        via: RBayNode,
        tree: str,
        metrics: Any,
        price: float,
        floor: float = 1.0,
        ceiling: float = 64.0,
        gain: float = 0.25,
        high: float = 0.75,
        low: float = 0.25,
    ):
        if floor <= 0 or ceiling < floor:
            raise ValueError("need 0 < floor <= ceiling")
        if not 0.0 <= low < high <= 1.0:
            raise ValueError("need 0 <= low < high <= 1")
        self.admin = admin
        self.via = via
        self.tree = tree
        self.metrics = metrics
        self.price = float(price)
        self.floor = float(floor)
        self.ceiling = float(ceiling)
        self.gain = float(gain)
        self.high = float(high)
        self.low = float(low)
        #: Repricing multicasts issued (diagnostics).
        self.changes = 0

    def tick(self) -> float:
        """One pricing decision; returns the (possibly new) spot price."""
        site = self.admin.site.name
        util = self.metrics.gauge("market.site.utilization").get(site=site)
        if util >= self.high:
            target = min(self.ceiling, self.price * (1.0 + self.gain))
        elif util <= self.low:
            target = max(self.floor, self.price * (1.0 - self.gain))
        else:
            target = self.price
        if target != self.price:
            self.price = target
            self.changes += 1
            reprice(self.admin, self.via, self.tree, target)
        self.metrics.gauge("market.site.price").set(self.price, site=site)
        return self.price
