"""Churn capture and prediction (paper §VI future work).

Tracks per-node availability history — lease completions, crash-stops,
tree membership flaps — and predicts near-future stability from it.  The
predictor is deliberately simple and explainable: an exponentially
weighted flap rate plus an uptime ratio, combined into a stability score
in [0, 1] that :mod:`repro.ext.selection` folds into query ranking.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.sim.engine import Simulator


class NodeChurnHistory:
    """Availability history of one node."""

    __slots__ = ("address", "events", "first_seen", "last_up", "up_since",
                 "total_up_ms", "flaps", "lease_completions", "lease_failures")

    def __init__(self, address: int, now: float):
        self.address = address
        self.events: List[Tuple[float, str]] = []
        self.first_seen = now
        self.up_since: Optional[float] = now
        self.last_up = now
        self.total_up_ms = 0.0
        self.flaps = 0
        self.lease_completions = 0
        self.lease_failures = 0

    def record(self, now: float, kind: str) -> None:
        """Append an availability event (up/down/lease outcome)."""
        self.events.append((now, kind))
        if kind == "down":
            if self.up_since is not None:
                self.total_up_ms += now - self.up_since
                self.up_since = None
                self.flaps += 1  # only a real up->down transition counts
        elif kind == "up":
            # Recovery must refresh last_up, or stability scoring treats a
            # node that just came back as last seen at its first join.
            self.last_up = now
            if self.up_since is None:
                self.up_since = now
        elif kind == "lease_ok":
            self.lease_completions += 1
        elif kind == "lease_broken":
            self.lease_failures += 1

    def uptime_ratio(self, now: float) -> float:
        """Fraction of observed lifetime spent up."""
        lifetime = max(now - self.first_seen, 1e-9)
        up = self.total_up_ms
        if self.up_since is not None:
            up += now - self.up_since
        return min(1.0, up / lifetime)

    def flap_rate_per_hour(self, now: float) -> float:
        lifetime_hours = max((now - self.first_seen) / 3_600_000.0, 1e-9)
        return self.flaps / lifetime_hours

    def is_up(self) -> bool:
        return self.up_since is not None


class ChurnTracker:
    """Observes a node population and maintains per-node histories.

    Wire it to the plane with :meth:`observe_membership` calls from
    maintenance ticks, or let experiments call :meth:`mark_down` /
    :meth:`mark_up` directly.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.histories: Dict[int, NodeChurnHistory] = {}

    def history(self, address: int) -> NodeChurnHistory:
        if address not in self.histories:
            self.histories[address] = NodeChurnHistory(address, self.sim.now)
        return self.histories[address]

    # ------------------------------------------------------------------
    def mark_up(self, address: int) -> None:
        self.history(address).record(self.sim.now, "up")

    def mark_down(self, address: int) -> None:
        self.history(address).record(self.sim.now, "down")

    def record_lease_outcome(self, address: int, completed: bool) -> None:
        self.history(address).record(
            self.sim.now, "lease_ok" if completed else "lease_broken"
        )

    def observe_population(self, nodes) -> None:
        """Poll liveness of a node collection (one tick of observation)."""
        for node in nodes:
            history = self.history(node.address)
            if node.alive and not history.is_up():
                history.record(self.sim.now, "up")
            elif not node.alive and history.is_up():
                history.record(self.sim.now, "down")


class ChurnPredictor:
    """Turns histories into stability scores in [0, 1].

    score = uptime^a * exp(-flap_rate / half_rate) * lease_success^b —
    each factor in [0, 1], multiplicative so any bad signal tanks the
    score.  Unknown nodes get the configurable prior.
    """

    def __init__(
        self,
        tracker: ChurnTracker,
        prior: float = 0.5,
        uptime_weight: float = 1.0,
        flap_half_rate_per_hour: float = 2.0,
        lease_weight: float = 1.0,
    ):
        self.tracker = tracker
        self.prior = prior
        self.uptime_weight = uptime_weight
        self.flap_half_rate = flap_half_rate_per_hour
        self.lease_weight = lease_weight

    def stability(self, address: int) -> float:
        """Predicted stability in [0, 1]; unknown nodes get the prior."""
        history = self.tracker.histories.get(address)
        if history is None:
            return self.prior
        now = self.tracker.sim.now
        uptime = history.uptime_ratio(now) ** self.uptime_weight
        flap = math.exp(-history.flap_rate_per_hour(now) / self.flap_half_rate)
        attempts = history.lease_completions + history.lease_failures
        if attempts == 0:
            lease = 1.0
        else:
            # Laplace-smoothed success ratio.
            lease = ((history.lease_completions + 1) / (attempts + 2)) ** self.lease_weight
        return max(0.0, min(1.0, uptime * flap * lease))

    def rank(self, addresses) -> List[int]:
        """Addresses ordered most-stable first (ties by address)."""
        return sorted(addresses, key=lambda a: (-self.stability(a), a))
