"""Extensions implementing the paper's future-work agenda (§VI).

"Future work will go beyond additional implementation steps to evaluate
RBay's performance under different levels of churn in resources and
attribute values, using methods that capture past and predict future
churn, based on history ... Such factors can also be used to better select
appropriate resources in response to user queries."

* :mod:`repro.ext.churn` — per-node churn history capture and prediction
  (EWMA flap rate, availability estimation);
* :mod:`repro.ext.selection` — QoS-aware result ranking that folds
  predicted stability into query answers;
* :mod:`repro.ext.crypto_auth` — the §III-B suggestion of key-pair
  authentication for AA gets, via an HMAC challenge-response;
* :mod:`repro.ext.economy` — a Mariposa-style economic layer (§V-C):
  priced resources, cost-aware purchasing, market accounting.
"""

from repro.ext.churn import ChurnPredictor, ChurnTracker, NodeChurnHistory
from repro.ext.crypto_auth import KeyPair, keyed_gate_policy, sign_challenge
from repro.ext.economy import (
    CostAwareCustomer,
    MarketLedger,
    post_priced_resource,
    reprice,
)
from repro.ext.selection import QoSSelector, StabilityAwareCustomer

__all__ = [
    "ChurnPredictor",
    "ChurnTracker",
    "CostAwareCustomer",
    "KeyPair",
    "MarketLedger",
    "NodeChurnHistory",
    "QoSSelector",
    "StabilityAwareCustomer",
    "keyed_gate_policy",
    "post_priced_resource",
    "reprice",
    "sign_challenge",
]
