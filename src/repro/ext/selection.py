"""QoS-aware resource selection (paper §VI future work).

"Such factors can also be used to better select appropriate resources in
response to user queries, that is, to further optimize the quality of
results for queries."  :class:`QoSSelector` re-ranks query candidates by
predicted stability (optionally blended with the query's own GROUPBY
value); :class:`StabilityAwareCustomer` is a drop-in customer that
over-asks, keeps the most stable k, and releases the rest.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Any, Dict, List, Optional

from repro.core.client import Customer
from repro.core.node import RBayNode
from repro.ext.churn import ChurnPredictor
from repro.query.options import QueryOptions
from repro.query.sql import parse_query
from repro.sim.futures import Future


class QoSSelector:
    """Ranks query candidate entries by predicted stability."""

    def __init__(self, predictor: ChurnPredictor, stability_weight: float = 1.0):
        if not 0.0 <= stability_weight <= 1.0:
            raise ValueError("stability_weight must be within [0, 1]")
        self.predictor = predictor
        self.stability_weight = stability_weight

    def score(self, entry: Dict[str, Any]) -> float:
        """Higher is better."""
        stability = self.predictor.stability(entry["address"])
        order_value = entry.get("order_value")
        if order_value is None or not isinstance(order_value, (int, float)):
            return stability
        # Blend stability with the query's own preference signal, squashing
        # the order value into (0, 1) so the two are commensurable.
        preference = 1.0 / (1.0 + abs(float(order_value)))
        w = self.stability_weight
        return w * stability + (1.0 - w) * preference

    def select(self, entries: List[Dict[str, Any]], k: Optional[int]):
        """Split into (kept, surplus), keeping the k best-scored entries.

        ``k`` must be ``None`` (keep everything) or non-negative: a
        negative ``k`` would silently slice ``ordered[:k]`` — keeping
        all-but-|k| and "releasing" the *best* candidates.
        """
        if k is not None and k < 0:
            raise ValueError(f"k must be >= 0 (got {k})")
        ordered = sorted(entries, key=lambda e: (-self.score(e), e["address"]))
        cutoff = len(ordered) if k is None else k
        return ordered[:cutoff], ordered[cutoff:]


class StabilityAwareCustomer(Customer):
    """A customer that over-provisions and keeps only the stablest nodes.

    Asks the plane for ``k * overask`` candidates, ranks them with the
    :class:`QoSSelector`, keeps the best ``k`` (releasing the rest), and
    reports the kept entries in the resolved QueryResult.
    """

    def __init__(
        self,
        name: str,
        home: RBayNode,
        rng: random.Random,
        selector: QoSSelector,
        overask: float = 2.0,
        **kwargs: Any,
    ):
        super().__init__(name, home, rng, **kwargs)
        if overask < 1.0:
            raise ValueError("overask must be >= 1.0")
        self.selector = selector
        self.overask = overask

    def query_stable(
        self,
        sql: str,
        payload: Optional[Dict[str, Any]] = None,
        timeout: Optional[float] = None,
    ) -> Future:
        """Like query_once, but stability-ranked and trimmed to k."""
        query = parse_query(sql)
        wanted = query.k
        if wanted is not None:
            query.k = max(wanted, int(wanted * self.overask))
            # The executor only commits reservations when the result is
            # satisfied; the floor is what we actually need, not the
            # inflated over-ask.
            query.min_k = wanted
        future = self._query_app.execute(self.home, query, QueryOptions(
            payload=payload, caller=self.name, deadline_ms=timeout))
        done = Future(self.home.sim, timeout=timeout)

        def _trim(result: Any) -> None:
            if isinstance(result, Exception):
                done.try_resolve(result)
                return
            kept, surplus = self.selector.select(list(result.entries), wanted)
            for entry in surplus:
                self.home.send_app(entry["address"], "query", "release",
                                   {"query_id": result.query_id})
            done.try_resolve(replace(
                result, entries=tuple(kept), requested=wanted,
                satisfied=wanted is None or len(kept) >= wanted))

        future.add_callback(_trim)
        return done
