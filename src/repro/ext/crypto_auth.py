"""Challenge-response authentication for AA gets (paper §III-B).

"Our current implementation simply passes a plaintext password, but can
easily be enhanced via encryption primitives involving the AA and
public/private key pairs.  The node's AA stores the public key, and the
query authenticates itself by presenting the corresponding private key."

We realize the scheme with keyed-hash (HMAC-SHA256) primitives, which the
sandbox can verify with string comparison: the gate's AA table stores a
verification tag per authorized principal; the customer derives the same
tag from its secret key and the node-issued challenge.  Secrets never
travel over the network — only tags bound to a specific challenge do.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True)
class KeyPair:
    """A principal's identity: a public name and a private signing key."""

    principal: str
    secret: bytes

    @classmethod
    def generate(cls, principal: str, seed: str) -> "KeyPair":
        secret = hashlib.sha256(f"keypair:{principal}:{seed}".encode()).digest()
        return cls(principal, secret)


def sign_challenge(keypair: KeyPair, challenge: str) -> str:
    """The customer-side primitive: tag = HMAC(secret, challenge)."""
    return hmac.new(keypair.secret, challenge.encode(), hashlib.sha256).hexdigest()


def expected_tag(keypair: KeyPair, challenge: str) -> str:
    """Admin-side: the tag a gate should expect for this principal."""
    return sign_challenge(keypair, challenge)


def keyed_gate_policy(node_id: int, challenge: str,
                      authorized: Iterable[KeyPair]) -> str:
    """Luette gate handler verifying challenge-response tags.

    The handler compares the caller-supplied ``payload.tag`` against the
    expected tag for ``payload.principal``.  Tags are bound to this node's
    challenge string, so replaying a tag against other nodes fails.
    """
    entries = ", ".join(
        f'["{kp.principal}"] = "{expected_tag(kp, challenge)}"'
        for kp in authorized
    )
    return f"""
AA = {{NodeId = {node_id},
      Challenge = "{challenge}",
      Tags = {{{entries}}}}}

function onGet(caller, payload)
  if payload == nil or payload.principal == nil or payload.tag == nil then
    return nil
  end
  local expected = AA.Tags[payload.principal]
  if expected ~= nil and payload.tag == expected then
    return AA.NodeId
  end
  return nil
end
"""


def auth_payload(keypair: KeyPair, challenge: str) -> dict:
    """The query payload a customer sends to pass a keyed gate."""
    return {
        "principal": keypair.principal,
        "tag": sign_challenge(keypair, challenge),
    }
