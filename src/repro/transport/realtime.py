"""A wall-clock implementation of the simulator's scheduling API.

The entire protocol stack is callback-driven: components schedule
callbacks at future virtual times and top-level code drives the loop via
``Future.result() → sim.run_until(...)``.  That seam means a *live* run
needs no protocol changes at all — only an object that speaks the
:class:`~repro.sim.engine.Simulator` API but maps it onto real time and
an asyncio event loop.  :class:`RealtimeScheduler` is that object:

* the clock is wall time, reported in virtual milliseconds through a
  configurable ``time_scale`` (wall milliseconds per virtual
  millisecond; ``0.05`` compresses the paper's multi-second protocol
  timeouts 20×, which keeps live tests fast without touching any
  timeout constant);
* ``schedule`` / ``post`` / ``call_soon`` / ``schedule_periodic`` become
  ``loop.call_later`` timers;
* ``run`` / ``run_for`` / ``run_until`` / ``run_until_idle`` pump the
  asyncio loop — socket transports and timers interleave naturally —
  until the deadline, predicate, or quiescence;
* step/idle hooks fire with the same signatures, so the invariant
  sanitizer attaches to live runs unmodified.

Quiescence is cooperative: transports register *idle sources*
(:meth:`add_idle_source`) reporting in-flight work, and ``run()`` with
no deadline drains until the one-shot timer count and every idle source
agree the system is quiet.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from typing import Any, Callable, List, Optional

from repro.sim.engine import SimulationError


class RealtimeTimeout(RuntimeError):
    """A live pump exceeded its wall-clock safety budget."""


class RealtimeEvent:
    """Handle for one scheduled live callback (mirrors ``sim.Event``)."""

    __slots__ = ("time", "seq", "cancelled", "daemon", "_handle", "_scheduler")

    def __init__(self, scheduler: "RealtimeScheduler", when: float, seq: int,
                 daemon: bool):
        self.time = when
        self.seq = seq
        self.cancelled = False
        self.daemon = daemon
        self._handle: Optional[asyncio.TimerHandle] = None
        self._scheduler = scheduler

    def cancel(self) -> None:
        """Prevent the callback from running.  Safe to call repeatedly."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._handle is not None:
            self._handle.cancel()
        self._scheduler._settle(self)


class RealtimeScheduler:
    """Drop-in ``Simulator`` for live transports (see module docstring).

    Implements :class:`repro.sim.EngineProtocol`; the conformance suite
    (``tests/test_engine_protocol.py``) exercises both engines through the
    protocol surface only.
    """

    def __init__(self, time_scale: float = 1.0, poll_interval_s: float = 0.001,
                 max_wall_s: float = 300.0):
        if time_scale <= 0:
            raise SimulationError(f"time_scale must be positive (got {time_scale})")
        self.time_scale = time_scale
        self.poll_interval_s = poll_interval_s
        #: Wall-clock budget for any single pump call; a live run that
        #: exceeds it raises :class:`RealtimeTimeout` instead of hanging.
        self.max_wall_s = max_wall_s
        self.loop = asyncio.new_event_loop()
        self._t0 = time.monotonic()
        self._seq = itertools.count()
        self._events_executed = 0
        self._pending = 0          # outstanding one-shot (non-daemon) timers
        self._daemon_pending = 0   # periodic-task timers (don't block idle)
        self._running = False
        self._closed = False
        self._error: Optional[BaseException] = None
        self._step_hook: Optional[Callable[[float, int], None]] = None
        self._idle_hook: Optional[Callable[[], None]] = None
        self._idle_sources: List[Callable[[], bool]] = []

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Wall time since construction, in virtual milliseconds."""
        return (time.monotonic() - self._t0) * 1000.0 / self.time_scale

    @property
    def events_executed(self) -> int:
        return self._events_executed

    @property
    def pending_events(self) -> int:
        return self._pending + self._daemon_pending

    def _wall_delay(self, virtual_ms: float) -> float:
        return virtual_ms * self.time_scale / 1000.0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any, daemon: bool = False) -> RealtimeEvent:
        """Run ``callback(*args)`` after ``delay`` virtual milliseconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        if self._closed:
            raise SimulationError("scheduler is closed")
        event = RealtimeEvent(self, self.now + delay, next(self._seq), daemon)
        if daemon:
            self._daemon_pending += 1
        else:
            self._pending += 1
        event._handle = self.loop.call_later(
            self._wall_delay(delay), self._fire, event, callback, args)
        return event

    def schedule_at(self, when: float, callback: Callable[..., Any],
                    *args: Any) -> RealtimeEvent:
        """Run at absolute virtual time ``when`` (clamped to "now": the
        wall clock advances while Python runs, so a past instant means
        "as soon as possible", not an error as in the DES)."""
        return self.schedule(max(0.0, when - self.now), callback, *args)

    def post(self, delay: float, callback: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget scheduling (no cancellation handle)."""
        self.schedule(delay, callback, *args)

    def call_soon(self, callback: Callable[..., Any], *args: Any) -> RealtimeEvent:
        return self.schedule(0.0, callback, *args)

    def schedule_periodic(
        self,
        interval: float,
        callback: Callable[..., Any],
        *args: Any,
        jitter_fn: Optional[Callable[[], float]] = None,
    ) -> "RealtimePeriodicTask":
        return RealtimePeriodicTask(self, interval, callback, args, jitter_fn)

    def _settle(self, event: RealtimeEvent) -> None:
        """Account one event leaving the pending set (fired or cancelled)."""
        if event.daemon:
            self._daemon_pending -= 1
        else:
            self._pending -= 1

    def _fire(self, event: RealtimeEvent, callback: Callable[..., Any],
              args: tuple) -> None:
        if event.cancelled:
            return  # already settled by cancel()
        event.cancelled = True  # consumed: a later cancel() must be a no-op
        self._settle(event)
        self._events_executed += 1
        try:
            if self._step_hook is not None:
                self._step_hook(self.now, event.seq)
            callback(*args)
        except BaseException as exc:  # surfaced by the next pump iteration
            if self._error is None:
                self._error = exc

    def report_error(self, exc: BaseException) -> None:
        """Let transports surface a fatal async failure to the pump."""
        if self._error is None:
            self._error = exc

    # ------------------------------------------------------------------
    # Hooks & idle sources
    # ------------------------------------------------------------------
    def set_step_hook(self, hook: Optional[Callable[[float, int], None]]) -> None:
        self._step_hook = hook

    def set_idle_hook(self, hook: Optional[Callable[[], None]]) -> None:
        self._idle_hook = hook

    def add_idle_source(self, source: Callable[[], bool]) -> None:
        """Register a predicate that must be true for the plane to count
        as quiescent (transports report "no frames in flight" here)."""
        self._idle_sources.append(source)

    def _quiet(self) -> bool:
        if self._pending:
            return False
        return all(source() for source in self._idle_sources)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _raise_pending_error(self) -> None:
        if self._error is not None:
            exc, self._error = self._error, None
            raise exc

    async def _drive(self, stop: Callable[[], bool],
                     deadline: Optional[float]) -> bool:
        start_wall = time.monotonic()
        # Zero-delay sleeps between checks let due timers and socket
        # tasks run; back off to poll_interval once nothing is imminent.
        while True:
            self._raise_pending_error()
            if stop():
                return True
            if deadline is not None and self.now >= deadline:
                return stop()
            if time.monotonic() - start_wall > self.max_wall_s:
                raise RealtimeTimeout(
                    f"live pump exceeded max_wall_s={self.max_wall_s}")
            await asyncio.sleep(self.poll_interval_s)

    def _pump(self, stop: Callable[[], bool], deadline: Optional[float]) -> bool:
        if self._running:
            raise SimulationError("RealtimeScheduler.run is not reentrant")
        if self._closed:
            raise SimulationError("scheduler is closed")
        self._running = True
        try:
            return self.loop.run_until_complete(self._drive(stop, deadline))
        finally:
            self._running = False

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """With ``until``: pump until that virtual time.  Without: drain
        to quiescence (no one-shot timers, all idle sources quiet for two
        consecutive polls), then fire the idle hook."""
        if until is not None:
            self._pump(lambda: False, until)
            return
        budget = (None if max_events is None
                  else self._events_executed + max_events)
        streak = [0]

        def _stop() -> bool:
            if budget is not None and self._events_executed >= budget:
                return True
            streak[0] = streak[0] + 1 if self._quiet() else 0
            return streak[0] >= 2

        self._pump(_stop, None)
        if self._idle_hook is not None and self._quiet():
            self._idle_hook()

    def run_for(self, duration: float) -> None:
        if duration < 0:
            raise SimulationError(f"cannot run for a negative duration ({duration})")
        self.run(until=self.now + duration)

    def run_until_idle(self, max_events: Optional[int] = None) -> None:
        self.run(max_events=max_events)

    def run_until(
        self,
        predicate: Callable[[], bool],
        timeout: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> bool:
        """Pump until ``predicate()`` is true; returns whether it became
        true by the (virtual-ms) timeout."""
        deadline = None if timeout is None else self.now + timeout
        budget = (None if max_events is None
                  else self._events_executed + max_events)

        def _stop() -> bool:
            if predicate():
                return True
            if budget is not None and self._events_executed >= budget:
                return True
            return False

        self._pump(_stop, deadline)
        return bool(predicate())

    def serve(self, duration_s: float) -> None:
        """Pump for a fixed *wall* duration (the ``rbay serve`` loop)."""
        self.run_for(duration_s * 1000.0 / self.time_scale)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Tear the loop down (idempotent).  Pending timers are dropped."""
        if self._closed:
            return
        self._closed = True
        pending = asyncio.all_tasks(self.loop)
        for task in pending:
            task.cancel()
        if pending:
            self.loop.run_until_complete(
                asyncio.gather(*pending, return_exceptions=True))
        self.loop.run_until_complete(self.loop.shutdown_asyncgens())
        self.loop.close()


class RealtimePeriodicTask:
    """Repeating live timer mirroring :class:`~repro.sim.engine.PeriodicTask`."""

    def __init__(
        self,
        scheduler: RealtimeScheduler,
        interval: float,
        callback: Callable[..., Any],
        args: tuple,
        jitter_fn: Optional[Callable[[], float]],
    ):
        if interval <= 0:
            raise SimulationError(f"periodic interval must be positive (got {interval})")
        self._scheduler = scheduler
        self._interval = interval
        self._callback = callback
        self._args = args
        self._jitter_fn = jitter_fn
        self._stopped = False
        self._event = self._schedule_next()

    def _schedule_next(self) -> RealtimeEvent:
        delay = self._interval
        if self._jitter_fn is not None:
            delay = max(0.0, delay + self._jitter_fn())
        # Daemon: an armed periodic timer must not hold off quiescence.
        return self._scheduler.schedule(delay, self._fire, daemon=True)

    def _fire(self) -> None:
        if self._stopped:
            return
        self._callback(*self._args)
        if not self._stopped:
            self._event = self._schedule_next()

    def stop(self) -> None:
        self._stopped = True
        self._event.cancel()

    @property
    def stopped(self) -> bool:
        return self._stopped

    @property
    def interval(self) -> float:
        return self._interval

    @property
    def jitter_fn(self) -> Optional[Callable[[], float]]:
        return self._jitter_fn
