"""Deterministic, versioned wire codec for :class:`repro.net.message.Message`.

Frame layout (all integers big-endian)::

    4 bytes   frame length N (bytes of body that follow)
    N bytes   body:
        1 byte    wire version (``WIRE_VERSION``)
        fields in fixed order:
            kind       str
            payload    dict
            src        int | None
            dst        int | None
            hops       int
            msg_id     int
            trace      list[int] | None
            trace_ctx  tuple | None

Values are tagged (one tag byte, then the tag-specific encoding):

====  =========  =========================================================
tag   type       encoding
====  =========  =========================================================
``N`` None       —
``T`` True       —
``F`` False      —
``I`` int        2-byte length, then minimal signed big-endian magnitude
                 (NodeIds are ~128-bit, so ints are arbitrary-precision)
``D`` float      8-byte IEEE-754 double (bit-exact, NaN payload included)
``S`` str        4-byte length, then UTF-8 bytes
``B`` bytes      4-byte length, then the bytes
``L`` list       4-byte count, then the items
``U`` tuple      4-byte count, then the items (distinct from list: the
                 protocols rely on tuples staying tuples, e.g. packed
                 predicates and leaf-set refs)
``M`` dict       4-byte count, then key/value pairs in insertion order
====  =========  =========================================================

The encoding is canonical: two structurally equal messages encode to
identical bytes, and ``encode(decode(encode(m))) == encode(m)`` holds
byte-for-byte (dict insertion order is preserved through the round
trip).  Anything outside the table — callables, node objects, sets,
arbitrary classes — raises :class:`CodecError` with the offending path,
which is exactly the wire-safety lint: a payload the codec rejects is a
payload that could never have crossed a real socket.
"""

from __future__ import annotations

import struct
from typing import Any, List, Tuple

from repro.net.message import Message

#: Bump on any change to the frame/body layout; decoders reject mismatches.
WIRE_VERSION = 1

#: Hard cap on a single frame (16 MiB): a corrupt length prefix fails
#: fast instead of attempting a giant allocation.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_TAG_NONE = 0x4E   # 'N'
_TAG_TRUE = 0x54   # 'T'
_TAG_FALSE = 0x46  # 'F'
_TAG_INT = 0x49    # 'I'
_TAG_FLOAT = 0x44  # 'D'
_TAG_STR = 0x53    # 'S'
_TAG_BYTES = 0x42  # 'B'
_TAG_LIST = 0x4C   # 'L'
_TAG_TUPLE = 0x55  # 'U'
_TAG_DICT = 0x4D   # 'M'

_pack_double = struct.Struct(">d").pack
_unpack_double = struct.Struct(">d").unpack_from


class CodecError(ValueError):
    """A value (or frame) the wire codec cannot represent or parse."""


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------
def _encode_value(out: bytearray, value: Any, path: str) -> None:
    # Exact type checks on purpose: bool subclasses int, and subclasses
    # of the wire types (e.g. a dict-like node object) must not slip
    # through looking serializable.
    vtype = type(value)
    if value is None:
        out.append(_TAG_NONE)
    elif vtype is bool:
        out.append(_TAG_TRUE if value else _TAG_FALSE)
    elif vtype is int:
        length = (value.bit_length() + 8) // 8 or 1
        if length > 0xFFFF:
            raise CodecError(f"integer too large for the wire at {path}")
        out.append(_TAG_INT)
        out += length.to_bytes(2, "big")
        out += value.to_bytes(length, "big", signed=True)
    elif vtype is float:
        out.append(_TAG_FLOAT)
        out += _pack_double(value)
    elif vtype is str:
        try:
            data = value.encode("utf-8")
        except UnicodeEncodeError as exc:
            raise CodecError(f"non-UTF-8 string at {path}: {exc}") from None
        out.append(_TAG_STR)
        out += len(data).to_bytes(4, "big")
        out += data
    elif vtype is bytes:
        out.append(_TAG_BYTES)
        out += len(value).to_bytes(4, "big")
        out += value
    elif vtype is list or vtype is tuple:
        out.append(_TAG_LIST if vtype is list else _TAG_TUPLE)
        out += len(value).to_bytes(4, "big")
        for i, item in enumerate(value):
            _encode_value(out, item, f"{path}[{i}]")
    elif vtype is dict:
        out.append(_TAG_DICT)
        out += len(value).to_bytes(4, "big")
        for key, item in value.items():
            _encode_value(out, key, f"{path}.<key {key!r}>")
            _encode_value(out, item, f"{path}[{key!r}]")
    else:
        raise CodecError(
            f"unserializable payload at {path}: {vtype.__name__} "
            f"({value!r:.80}) — carry an address/topic reference instead")


def encode_message(msg: Message) -> bytes:
    """Serialize ``msg`` to a canonical (unframed) wire body."""
    out = bytearray()
    out.append(WIRE_VERSION)
    _encode_value(out, msg.kind, "kind")
    _encode_value(out, msg.payload, "payload")
    _encode_value(out, msg.src, "src")
    _encode_value(out, msg.dst, "dst")
    _encode_value(out, msg.hops, "hops")
    _encode_value(out, msg.msg_id, "msg_id")
    _encode_value(out, msg.trace, "trace")
    _encode_value(out, msg.trace_ctx, "trace_ctx")
    return bytes(out)


def frame(body: bytes) -> bytes:
    """Prefix ``body`` with its 4-byte big-endian length."""
    if len(body) > MAX_FRAME_BYTES:
        raise CodecError(f"frame of {len(body)} bytes exceeds the "
                         f"{MAX_FRAME_BYTES}-byte cap")
    return len(body).to_bytes(4, "big") + body


def encode_frame(msg: Message) -> bytes:
    """Serialize ``msg`` as one length-prefixed frame, ready to write."""
    return frame(encode_message(msg))


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------
class _Reader:
    __slots__ = ("data", "pos")

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        end = self.pos + n
        if end > len(self.data):
            raise CodecError(f"truncated frame: wanted {n} bytes at offset "
                             f"{self.pos}, {len(self.data) - self.pos} left")
        chunk = self.data[self.pos:end]
        self.pos = end
        return chunk

    def take_uint(self, n: int) -> int:
        return int.from_bytes(self.take(n), "big")


def _decode_value(reader: _Reader) -> Any:
    tag = reader.take(1)[0]
    if tag == _TAG_NONE:
        return None
    if tag == _TAG_TRUE:
        return True
    if tag == _TAG_FALSE:
        return False
    if tag == _TAG_INT:
        length = reader.take_uint(2)
        return int.from_bytes(reader.take(length), "big", signed=True)
    if tag == _TAG_FLOAT:
        return _unpack_double(reader.take(8))[0]
    if tag == _TAG_STR:
        return reader.take(reader.take_uint(4)).decode("utf-8")
    if tag == _TAG_BYTES:
        return reader.take(reader.take_uint(4))
    if tag == _TAG_LIST:
        return [_decode_value(reader) for _ in range(reader.take_uint(4))]
    if tag == _TAG_TUPLE:
        return tuple(_decode_value(reader)
                     for _ in range(reader.take_uint(4)))
    if tag == _TAG_DICT:
        count = reader.take_uint(4)
        result = {}
        for _ in range(count):
            key = _decode_value(reader)
            result[key] = _decode_value(reader)
        return result
    raise CodecError(f"unknown value tag 0x{tag:02x} at offset {reader.pos - 1}")


def decode_message(body: bytes) -> Message:
    """Parse one wire body back into a :class:`Message`.

    Rejects version mismatches, truncation, unknown tags, and trailing
    garbage; never consumes a fresh ``msg_id`` (the sender's travels on
    the wire).
    """
    reader = _Reader(body)
    version = reader.take(1)[0]
    if version != WIRE_VERSION:
        raise CodecError(f"wire version mismatch: got {version}, "
                         f"this codec speaks {WIRE_VERSION}")
    kind = _decode_value(reader)
    payload = _decode_value(reader)
    src = _decode_value(reader)
    dst = _decode_value(reader)
    hops = _decode_value(reader)
    msg_id = _decode_value(reader)
    trace = _decode_value(reader)
    trace_ctx = _decode_value(reader)
    if reader.pos != len(body):
        raise CodecError(f"{len(body) - reader.pos} trailing bytes after a "
                         f"complete message")
    if type(kind) is not str:
        raise CodecError("message kind must decode to a string")
    return Message(kind=kind, payload=payload, src=src, dst=dst, hops=hops,
                   msg_id=msg_id, trace=trace, trace_ctx=trace_ctx)


def split_frames(buffer: bytearray) -> List[bytes]:
    """Pop every complete length-prefixed frame body off ``buffer``.

    Incremental stream decoding for byte-oriented transports: append
    received bytes to ``buffer``, call this, decode each returned body.
    Bytes of a still-incomplete frame stay in the buffer.
    """
    bodies: List[bytes] = []
    while len(buffer) >= 4:
        length = int.from_bytes(buffer[:4], "big")
        if length > MAX_FRAME_BYTES:
            raise CodecError(f"frame length {length} exceeds the "
                             f"{MAX_FRAME_BYTES}-byte cap")
        if len(buffer) < 4 + length:
            break
        bodies.append(bytes(buffer[4:4 + length]))
        del buffer[:4 + length]
    return bodies


def roundtrip_check(msg: Message) -> Tuple[Message, bytes]:
    """Encode → decode → re-encode ``msg``; raise unless byte-identical.

    The sim transport's ``wire_check`` shadow mode runs every delivery
    through this, making the DES a continuous lint for wire safety.
    """
    body = encode_message(msg)
    decoded = decode_message(body)
    again = encode_message(decoded)
    if again != body:
        raise CodecError(
            f"codec round trip not byte-identical for kind={msg.kind!r} "
            f"({len(body)} vs {len(again)} bytes)")
    return decoded, body
