"""Live transport: every node a real TCP endpoint on an asyncio loop.

Each *served* host gets its own listening socket; sends encode the
message through the wire codec and write length-prefixed frames over
per-destination connections (lazy connect, bounded retries with backoff,
timeouts).  The interface — and the traffic accounting behind the
bandwidth experiments — mirrors the DES network exactly, so the whole
protocol stack runs on top unchanged, driven by a
:class:`~repro.transport.realtime.RealtimeScheduler`.

Failure mapping: the interface keeps datagram semantics, so a refused
connect, a reset, an exhausted retry budget, or a deliberate
:meth:`cut` all account the frame as *dropped* — the sender finds out
through its own protocol timeouts, which is precisely how the existing
typed ``QueryError``/``QueryTimeout`` retry machinery absorbs real
network failures without a single protocol change.

Two deployment shapes share this class:

* **in-process** (``peer_plan=None``): every attached host is served
  locally on an ephemeral port; all traffic still crosses real sockets
  and the codec.  This is the test / oracle-validation mode.
* **partitioned** (``rbay serve``): every process builds the same
  deterministic plane from the shared seed, but only *owns* the sites
  given in the peer plan.  Non-owned hosts are shadows — their sends are
  suppressed (exactly one process, the owner, performs each action for
  real) and frames to them route to the owning process's sockets at
  deterministically planned ports.
"""

from __future__ import annotations

import asyncio
import random
from collections import Counter
from functools import partial
from typing import Any, Callable, Dict, Optional, Set

from repro.net.latency import LatencyModel, UniformLatencyModel
from repro.net.message import Message
from repro.net.network import FaultFilter, Host, NetworkError
from repro.transport.base import Transport, deliver_traced, stamp_trace_ctx
from repro.transport.codec import CodecError, decode_message, encode_frame
from repro.transport.realtime import RealtimeScheduler


class _Peer:
    """Outgoing state toward one destination address."""

    __slots__ = ("queue", "task", "writer")

    def __init__(self) -> None:
        self.queue: asyncio.Queue = asyncio.Queue()
        self.task: Optional[asyncio.Task] = None
        self.writer: Optional[asyncio.StreamWriter] = None


class AsyncioTransport(Transport):
    """Real-socket :class:`Transport` (see module docstring)."""

    def __init__(
        self,
        scheduler: RealtimeScheduler,
        latency: Optional[LatencyModel] = None,
        bind_host: str = "127.0.0.1",
        loss_rate: float = 0.0,
        loss_rng: Optional[random.Random] = None,
        processing_ms: float = 0.0,
        connect_timeout_s: float = 1.0,
        connect_retries: int = 3,
        connect_backoff_s: float = 0.2,
        peer_plan: Optional[Any] = None,
    ):
        if loss_rate and loss_rng is None:
            raise NetworkError("loss_rate requires a loss_rng for determinism")
        self.scheduler = scheduler
        self.sim = scheduler  # parity with Network.sim
        self.loop = scheduler.loop
        self.latency = latency if latency is not None else UniformLatencyModel()
        self.bind_host = bind_host
        self.loss_rate = loss_rate
        self._loss_rng = loss_rng
        self.processing_ms = processing_ms
        self.connect_timeout_s = connect_timeout_s
        self.connect_retries = connect_retries
        self.connect_backoff_s = connect_backoff_s
        #: None → in-process mode; else a PeerPlan (owned sites + remote
        #: endpoint arithmetic) for the partitioned ``serve`` mode.
        self.peer_plan = peer_plan
        #: In-flight is a closed loop only when both endpoints share this
        #: process; partitioned processes settle a frame once it is
        #: handed to the TCP stack.
        self._track_inflight = peer_plan is None

        self._hosts: Dict[int, Host] = {}
        self._served: Set[int] = set()
        self._next_address = 0
        self._site_counts: Counter = Counter()
        self._site_index: Dict[int, tuple] = {}  # addr -> (site name, index)
        self._ports: Dict[int, int] = {}
        self._servers: Dict[int, asyncio.base_events.Server] = {}
        self._peers: Dict[int, _Peer] = {}
        self._blackholed: Set[int] = set()

        # Accounting (same conservation identity as the DES network).
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.messages_in_flight = 0
        self.messages_suppressed = 0
        self.bytes_sent = 0
        #: Actual framed bytes written to sockets (``bytes_sent`` keeps
        #: the sim estimator for parity; this is the true wire volume).
        self.wire_bytes_sent = 0
        self.per_host_received: Counter = Counter()
        self.per_host_sent: Counter = Counter()
        self.per_host_bytes_in: Counter = Counter()
        self._delivery_hook: Optional[Callable[[Message], None]] = None
        self.fault_filter: Optional[FaultFilter] = None
        self.recorder = None

        scheduler.add_idle_source(self._wire_quiet)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def _owns(self, site_name: str) -> bool:
        return self.peer_plan is None or site_name in self.peer_plan.owned

    def attach(self, host: Host) -> int:
        address = self._next_address
        self._next_address += 1
        host.address = address
        host.network = self
        self._hosts[address] = host
        site_name = host.site.name
        index = self._site_counts[site_name]
        self._site_counts[site_name] = index + 1
        self._site_index[address] = (site_name, index)
        if self._owns(site_name):
            self._served.add(address)
            self._start_server(address)
        return address

    def detach(self, host: Host) -> None:
        if host.address in self._hosts:
            del self._hosts[host.address]
        host.alive = False
        self._stop_server(host.address)
        self._drop_writer(host.address)

    def reattach(self, host: Host) -> None:
        if host.address is None:
            raise NetworkError("cannot reattach a host that was never attached")
        occupant = self._hosts.get(host.address)
        if occupant is not None and occupant is not host:
            raise NetworkError(f"address {host.address} is already occupied")
        self._hosts[host.address] = host
        host.network = self
        host.alive = True
        if host.address in self._served:
            self._start_server(host.address)

    def host(self, address: int) -> Host:
        try:
            return self._hosts[address]
        except KeyError:
            raise NetworkError(f"no host at address {address}") from None

    def has_host(self, address: int) -> bool:
        return address in self._hosts

    @property
    def host_count(self) -> int:
        return len(self._hosts)

    def hosts(self):
        return self._hosts.values()

    def port_of(self, address: int) -> Optional[int]:
        """The TCP port a served host listens on (None for shadows)."""
        return self._ports.get(address)

    # ------------------------------------------------------------------
    # Servers
    # ------------------------------------------------------------------
    def _planned_port(self, address: int) -> int:
        if address in self._ports:  # reattach: keep the stable port
            return self._ports[address]
        if self.peer_plan is not None:
            site_name, index = self._site_index[address]
            return self.peer_plan.endpoint(site_name, index)[1]
        return 0  # ephemeral

    def _start_server(self, address: int) -> None:
        async def _bind() -> None:
            try:
                server = await asyncio.start_server(
                    partial(self._serve_conn, address),
                    host=self.bind_host, port=self._planned_port(address))
            except OSError as exc:
                self.scheduler.report_error(exc)
                return
            self._servers[address] = server
            self._ports[address] = server.sockets[0].getsockname()[1]

        if self.loop.is_running():
            self.loop.create_task(_bind())
        else:
            self.loop.run_until_complete(_bind())

    def _stop_server(self, address: int) -> None:
        server = self._servers.pop(address, None)
        if server is not None:
            server.close()

    async def _serve_conn(self, address: int,
                          reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                header = await reader.readexactly(4)
                body = await reader.readexactly(int.from_bytes(header, "big"))
                self._deliver_body(address, body)
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            pass
        except asyncio.CancelledError:
            pass  # teardown: finish cleanly instead of logging a cancel
        finally:
            try:
                writer.close()
            except RuntimeError:
                pass  # loop already closed during interpreter teardown

    # ------------------------------------------------------------------
    # Delivery (receive side)
    # ------------------------------------------------------------------
    def _deliver_body(self, address: int, body: bytes) -> None:
        if self._track_inflight:
            self.messages_in_flight -= 1
        try:
            msg = decode_message(body)
        except CodecError as exc:
            self.messages_dropped += 1
            self.scheduler.report_error(exc)
            return
        host = self._hosts.get(address) if address in self._served else None
        if host is None or not host.alive:
            # In-flight to a host that crashed (or was cut) mid-transit.
            self.messages_dropped += 1
            return
        self.messages_delivered += 1
        self.per_host_received[address] += 1
        self.per_host_bytes_in[address] += msg.size_bytes()
        if msg.trace is not None:
            msg.trace.append(address)
        try:
            deliver_traced(self.recorder, msg, partial(self._dispatch, host, msg))
        except BaseException as exc:  # handler bug: fail the pump loudly
            self.scheduler.report_error(exc)

    def _dispatch(self, host: Host, msg: Message) -> None:
        if self._delivery_hook is not None:
            self._delivery_hook(msg)
        host.on_message(msg)

    # ------------------------------------------------------------------
    # Send side
    # ------------------------------------------------------------------
    def send(self, src: Host, dst_address: int, msg: Message) -> None:
        if (src.address not in self._served or not src.alive
                or self._hosts.get(src.address) is not src):
            # Crashed hosts send nothing; in partitioned mode the same
            # gate suppresses shadows — the owning process performs the
            # action for real, exactly once.
            self.messages_suppressed += 1
            return
        msg.src = src.address
        msg.dst = dst_address
        stamp_trace_ctx(self.recorder, msg)
        self.messages_sent += 1
        size = msg.size_bytes()
        self.bytes_sent += size
        self.per_host_sent[src.address] += 1
        if self.loss_rate and self._loss_rng.random() < self.loss_rate:
            self.messages_dropped += 1
            return
        if dst_address not in self._hosts:
            self.messages_dropped += 1
            return
        extra_delay = 0.0
        copies = 1
        if self.fault_filter is not None:
            dst_host = self._hosts[dst_address]
            decision = self.fault_filter(src, dst_host, msg)
            if decision is not None:
                if decision.drop:
                    self.messages_dropped += 1
                    return
                extra_delay = decision.extra_delay_ms
                copies += decision.duplicates
        body = encode_frame(msg)  # CodecError here is a bug: let it raise
        for copy in range(copies):
            if copy:
                self.messages_sent += 1
                self.bytes_sent += size
                self.per_host_sent[src.address] += 1
            self.messages_in_flight += 1
            self.wire_bytes_sent += len(body)
            if extra_delay > 0.0:
                self.scheduler.schedule(extra_delay, self._enqueue,
                                        dst_address, body, size)
            else:
                self._enqueue(dst_address, body, size)

    def _enqueue(self, dst_address: int, body: bytes, size: int) -> None:
        peer = self._peers.get(dst_address)
        if peer is None:
            peer = self._peers[dst_address] = _Peer()
        peer.queue.put_nowait((body, size))
        if peer.task is None or peer.task.done():
            peer.task = self.loop.create_task(self._sender(dst_address, peer))

    def _account_drop(self) -> None:
        self.messages_in_flight -= 1
        self.messages_dropped += 1

    async def _sender(self, dst_address: int, peer: _Peer) -> None:
        """Drain one destination's frame queue over a cached connection."""
        while True:
            try:
                body, size = peer.queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            writer = await self._writer_for(dst_address, peer)
            if writer is None:
                self._account_drop()
                continue
            try:
                writer.write(body)
                await writer.drain()
            except (ConnectionError, OSError):
                self._drop_writer(dst_address)
                # The connection died under us: one fresh connect, then
                # give up on this frame (the sender's timeouts take over).
                writer = await self._writer_for(dst_address, peer)
                if writer is None:
                    self._account_drop()
                    continue
                try:
                    writer.write(body)
                    await writer.drain()
                except (ConnectionError, OSError):
                    self._drop_writer(dst_address)
                    self._account_drop()
                    continue
            if not self._track_inflight:
                self.messages_in_flight -= 1  # handed to the TCP stack

    async def _writer_for(self, dst_address: int,
                          peer: _Peer) -> Optional[asyncio.StreamWriter]:
        if peer.writer is not None and not peer.writer.is_closing():
            return peer.writer
        endpoint = self._endpoint(dst_address)
        if endpoint is None:
            return None
        for attempt in range(self.connect_retries + 1):
            if dst_address in self._blackholed:
                return None
            try:
                _reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(*endpoint),
                    timeout=self.connect_timeout_s)
            except (ConnectionError, OSError, asyncio.TimeoutError):
                if attempt < self.connect_retries:
                    await asyncio.sleep(self.connect_backoff_s * (attempt + 1))
                continue
            peer.writer = writer
            return writer
        return None

    def _endpoint(self, dst_address: int) -> Optional[tuple]:
        if dst_address in self._blackholed:
            return None
        port = self._ports.get(dst_address)
        if port is not None:
            return (self.bind_host, port)
        if self.peer_plan is not None:
            site_name, index = self._site_index[dst_address]
            return self.peer_plan.endpoint(site_name, index)
        return None

    def _drop_writer(self, dst_address: int) -> None:
        peer = self._peers.get(dst_address)
        if peer is not None and peer.writer is not None:
            peer.writer.close()
            peer.writer = None

    # ------------------------------------------------------------------
    # Induced failures (tests / chaos)
    # ------------------------------------------------------------------
    def cut(self, address: int) -> None:
        """Sever this process's connectivity *to* ``address``: existing
        connections are closed and new connects are refused, so every
        frame toward it drops — the live analogue of a link cut."""
        self._blackholed.add(address)
        self._drop_writer(address)

    def heal(self, address: int) -> None:
        self._blackholed.discard(address)

    # ------------------------------------------------------------------
    # Observation / lifecycle
    # ------------------------------------------------------------------
    def _wire_quiet(self) -> bool:
        if self.messages_in_flight != 0:
            return False
        return all(peer.queue.empty() for peer in self._peers.values())

    def set_delivery_hook(self, hook: Optional[Callable[[Message], None]]) -> None:
        self._delivery_hook = hook

    def reset_counters(self) -> None:
        self.messages_sent = self.messages_in_flight
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.messages_suppressed = 0
        self.bytes_sent = 0
        self.wire_bytes_sent = 0
        self.per_host_received.clear()
        self.per_host_sent.clear()
        self.per_host_bytes_in.clear()

    def close(self) -> None:
        """Close every connection and server (idempotent, best-effort)."""
        async def _shutdown() -> None:
            for peer in self._peers.values():
                if peer.task is not None:
                    peer.task.cancel()
                if peer.writer is not None:
                    peer.writer.close()
            for server in self._servers.values():
                server.close()
            await asyncio.sleep(0)

        if self.loop.is_closed():
            return
        if self.loop.is_running():
            self.loop.create_task(_shutdown())
        else:
            self.loop.run_until_complete(_shutdown())
        self._servers.clear()
        self._peers.clear()
