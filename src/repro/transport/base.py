"""The transport seam: the contract every message backend implements.

Every protocol layer (pastry / scribe / query) talks to the network
through the same small surface — attach hosts, send messages, look
peers up — and never cares whether delivery is a simulated heap event
or a real TCP write.  :class:`Transport` names that contract explicitly
so the DES network (:class:`repro.transport.sim.SimTransport`) and the
live socket backend (:class:`repro.transport.asyncio_transport.
AsyncioTransport`) are interchangeable behind it, with the simulator
acting as the deterministic oracle for the live runs.

The module also owns the *one* implementation of trace-context stamping
and restoration (:func:`stamp_trace_ctx` / :func:`deliver_traced`).
Both backends call these helpers, so ``trace_ctx`` behaves identically
whether a message crossed the wire codec or stayed in-process: stamped
once at send (never overwriting a forked context), pushed exactly once
around the handler, popped exactly once even if the handler raises or
disables the recorder mid-delivery, and never touched at all when the
recorder is off.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Iterable, Optional

from repro.net.message import Message


def stamp_trace_ctx(recorder: Any, msg: Message) -> None:
    """Stamp ``msg`` with the sender's current causal context.

    Only when tracing is enabled and the message does not already carry a
    context (forked copies inherit their parent's).  Identical for sim
    and live sends; the codec carries the stamped tuple on the wire.
    """
    if recorder is not None and recorder.enabled and msg.trace_ctx is None:
        ctx = recorder.current_ctx()
        if ctx is not None:
            msg.trace_ctx = tuple(ctx)


def deliver_traced(recorder: Any, msg: Message,
                   deliver: Callable[[], None]) -> None:
    """Run ``deliver()`` with the sender's context restored around it.

    The push/pop pair is balanced exactly: the pop happens iff the push
    did, even when the handler raises, and a handler that *disables* (or
    clears) the recorder mid-delivery cannot leave a leaked or doubly
    popped context behind — the depth recorded at push time is restored,
    not blindly popped.  With the recorder absent or disabled the whole
    function is a plain call: no push, no pop, no allocation.
    """
    if recorder is None or not recorder.enabled or msg.trace_ctx is None:
        deliver()
        return
    stack = getattr(recorder, "_ctx_stack", None)
    recorder.push_ctx(tuple(msg.trace_ctx))
    depth = None if stack is None else len(stack)
    try:
        deliver()
    finally:
        if stack is None:
            recorder.pop_ctx()
        elif depth is not None and len(stack) >= depth:
            # Restore to the pre-push depth; a handler that cleared the
            # stack (recorder.clear()) already removed our frame.
            del stack[depth - 1:]


class Transport(abc.ABC):
    """Abstract message backend: hosts, delivery, and traffic accounting.

    The contract extracted from the original DES ``Network``.  Concrete
    transports must keep the conservation identity

        ``messages_sent == messages_delivered + messages_dropped
                           + messages_in_flight``

    at every instant (sends from detached hosts are suppressed *outside*
    the equation via ``messages_suppressed``), honour an installed
    ``fault_filter`` (drop / extra delay / duplicates) on every send, and
    route ``trace_ctx`` through :func:`stamp_trace_ctx` /
    :func:`deliver_traced` so causal tracing is backend-independent.

    Attributes every implementation exposes (the protocol layers read
    them directly):

    ``latency``
        A latency model with ``nominal_one_way_ms(src_site, dst_site)``
        — used by Pastry for proximity *estimates* even when real
        delivery does not consult it.
    ``recorder`` / ``fault_filter``
        Installed by the plane (observability) and the fault injector.
    ``messages_sent`` … ``per_host_bytes_in``
        The counter set behind the bandwidth/load experiments.
    """

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def attach(self, host: Any) -> int:
        """Register ``host``, assigning and returning its address."""

    @abc.abstractmethod
    def detach(self, host: Any) -> None:
        """Remove a host; traffic to it is dropped from now on."""

    @abc.abstractmethod
    def reattach(self, host: Any) -> None:
        """Crash-recover a detached host at its old (stable) address."""

    @abc.abstractmethod
    def host(self, address: int) -> Any:
        """The host object at ``address`` (raises when unknown)."""

    @abc.abstractmethod
    def has_host(self, address: int) -> bool:
        """Is ``address`` currently reachable?  This is the liveness
        probe protocol code uses (it models a TCP connect succeeding)."""

    @property
    @abc.abstractmethod
    def host_count(self) -> int:
        ...

    @abc.abstractmethod
    def hosts(self) -> Iterable[Any]:
        ...

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def send(self, src: Any, dst_address: int, msg: Message) -> None:
        """Deliver ``msg`` from ``src`` to ``dst_address`` asynchronously.

        Fire-and-forget with datagram semantics at the interface: loss
        is expressed to the sender only through its own protocol
        timeouts, which is what maps live connect/write failures onto
        the typed ``QueryError``/``QueryTimeout`` machinery unchanged.
        """

    @abc.abstractmethod
    def set_delivery_hook(self, hook: Optional[Callable[[Message], None]]) -> None:
        """Install an observer invoked on every delivery (tests/metrics)."""

    @abc.abstractmethod
    def reset_counters(self) -> None:
        """Zero the traffic counters (e.g. after warm-up)."""
