"""Real-transport subsystem: pluggable message backends behind one seam.

``repro.transport`` provides the :class:`Transport` contract plus two
interchangeable backends —

* :class:`SimTransport` — the discrete-event network (the deterministic
  oracle), optionally shadow-checking every delivery through the wire
  codec;
* :class:`AsyncioTransport` — real TCP sockets on an asyncio loop,
  driven by :class:`RealtimeScheduler` (a wall-clock implementation of
  the simulator's scheduling API), in-process for tests or partitioned
  process-per-site via ``rbay serve``.

Names resolve lazily (PEP 562) so importing :mod:`repro.net` — whose
``Network`` implements :class:`Transport` — never cycles back through
this package.
"""

from typing import Any

__all__ = [
    "Transport",
    "SimTransport",
    "AsyncioTransport",
    "RealtimeScheduler",
    "CodecError",
    "WIRE_VERSION",
    "encode_message",
    "decode_message",
]

_EXPORTS = {
    "Transport": "repro.transport.base",
    "SimTransport": "repro.transport.sim",
    "AsyncioTransport": "repro.transport.asyncio_transport",
    "RealtimeScheduler": "repro.transport.realtime",
    "CodecError": "repro.transport.codec",
    "WIRE_VERSION": "repro.transport.codec",
    "encode_message": "repro.transport.codec",
    "decode_message": "repro.transport.codec",
}


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.transport' has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__() -> list:
    return sorted(set(list(globals()) + list(_EXPORTS)))
