"""The DES network as a :class:`Transport`, with a codec shadow mode.

:class:`SimTransport` *is* the simulated network — delivery semantics,
fault filters, counters, and trace propagation are inherited unchanged —
plus one knob: ``wire_check``.  With it on, every delivered message is
pushed through the wire codec (encode → decode → re-encode, asserting
byte identity) and the *decoded copy* is handed to the receiver, exactly
as a real socket would.  A deterministic DES run therefore doubles as a
continuous wire-safety lint: any payload carrying a callable, a node
object, or other unserializable state raises
:class:`~repro.transport.codec.CodecError` at the precise delivery, and
any protocol that silently relied on sender/receiver sharing one Python
object diverges and is caught by the sim-as-oracle comparison.
"""

from __future__ import annotations

from typing import Set

from repro.faults.injector import protocol_kind
from repro.net.message import Message
from repro.net.network import Network
from repro.transport.codec import roundtrip_check


class SimTransport(Network):
    """Simulated transport; ``wire_check=True`` enables the codec shadow.

    Constructor arguments are :class:`~repro.net.network.Network`'s, plus
    ``wire_check``.
    """

    def __init__(self, *args, wire_check: bool = False, **kwargs):
        super().__init__(*args, **kwargs)
        self.wire_check = wire_check
        #: Protocol kinds observed crossing the (shadow) wire, labeled as
        #: ``route/<app>/<op>`` / ``direct/<app>/<kind>`` — the universe
        #: the wire-safety suite checks for coverage.
        self.wire_kinds_seen: Set[str] = set()
        #: Messages round-tripped through the codec so far.
        self.wire_checked = 0

    @property
    def wire_check(self) -> bool:
        return self._wire_check

    @wire_check.setter
    def wire_check(self, value: bool) -> None:
        # The codec shadow hooks ``_deliver``, so batched deliveries must
        # take the per-message path while it is on; with it off this class
        # adds nothing per delivery and the network's inlined batch loop is
        # safe (unless a further subclass customizes delivery itself).
        self._wire_check = bool(value)
        cls = type(self)
        self._per_message_deliver = (
            self._wire_check
            or cls._deliver is not SimTransport._deliver
            or cls._dispatch is not Network._dispatch)

    def _deliver(self, dst_address: int, msg: Message, size: int) -> None:
        if self.wire_check:
            # Replace the in-process object with its decoded wire copy —
            # receivers see exactly what a socket would have given them.
            decoded, _body = roundtrip_check(msg)
            self.wire_kinds_seen.add(protocol_kind(msg))
            self.wire_checked += 1
            # The trace list is shared mutable state *by design* in the
            # sim (the sender observes appended hops); keep that contract
            # while still type-checking it through the codec.
            decoded.trace = msg.trace
            msg = decoded
        super()._deliver(dst_address, msg, size)
