"""Process-per-node-group deployment for the asyncio transport.

``rbay serve`` runs one OS process per *site group*: every process
builds the **same** deterministic plane from the shared seed (so node
ids, addresses, gateways, and tree roots agree everywhere without any
coordination service), but each process *owns* only the sites listed in
its ``--own`` argument.  Owned hosts bind real TCP servers at ports
computed from the :class:`PeerPlan`; all other hosts are inert shadows —
their sends are suppressed by the transport, so each workload action is
performed for real by exactly one process, and frames addressed to a
shadow route to the owner's planned endpoint.

The peer plan is a small JSON document shared by all processes::

    {"sites": {"SiteA": {"host": "127.0.0.1", "port_base": 42000},
               "SiteB": {"host": "127.0.0.1", "port_base": 42100}}}

A served node is addressed at ``port_base + k`` where ``k`` is the
node's attach-order index within its site — deterministic under the
shared seed, so every process computes identical endpoints.
"""

from __future__ import annotations

import json
import socket
import sys
import time
from typing import Dict, Iterable, Mapping, Optional, Tuple


class PeerPlanError(ValueError):
    """A malformed or inconsistent peer plan."""


class PeerPlan:
    """Site → endpoint arithmetic shared by every ``serve`` process."""

    def __init__(self, sites: Mapping[str, Mapping[str, object]],
                 owned: Iterable[str] = ()):
        self.sites: Dict[str, Tuple[str, int]] = {}
        for name, entry in sites.items():
            try:
                self.sites[name] = (str(entry["host"]), int(entry["port_base"]))
            except (KeyError, TypeError, ValueError) as exc:
                raise PeerPlanError(
                    f"peer plan entry for {name!r} needs host/port_base: {exc}"
                ) from None
        self.owned = frozenset(owned)
        unknown = self.owned - set(self.sites)
        if unknown:
            raise PeerPlanError(f"owned sites not in the plan: {sorted(unknown)}")

    def endpoint(self, site_name: str, index: int) -> Tuple[str, int]:
        """TCP endpoint of node ``index`` (attach order) of ``site_name``."""
        try:
            host, port_base = self.sites[site_name]
        except KeyError:
            raise PeerPlanError(f"site {site_name!r} not in the peer plan") from None
        return host, port_base + index

    # ------------------------------------------------------------------
    @classmethod
    def from_json(cls, text: str, owned: Iterable[str] = ()) -> "PeerPlan":
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise PeerPlanError(f"peer plan is not valid JSON: {exc}") from None
        if not isinstance(doc, dict) or not isinstance(doc.get("sites"), dict):
            raise PeerPlanError('peer plan must be {"sites": {...}}')
        return cls(doc["sites"], owned)

    @classmethod
    def load(cls, path: str, owned: Iterable[str] = ()) -> "PeerPlan":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read(), owned)

    @staticmethod
    def default_document(site_names: Iterable[str], host: str = "127.0.0.1",
                         port_base: int = 42000, stride: int = 100) -> dict:
        """A ready-to-dump plan: each site gets a ``stride``-wide port band."""
        return {"sites": {name: {"host": host, "port_base": port_base + i * stride}
                          for i, name in enumerate(site_names)}}


def wait_for_peers(plan: PeerPlan, timeout_s: float = 30.0,
                   poll_s: float = 0.1) -> None:
    """Block until node 0 of every non-owned site accepts connections.

    The two-phase startup barrier: every process binds its own servers
    first, then waits here, so no workload action races a peer that has
    not bound yet.
    """
    deadline = time.monotonic() + timeout_s
    remaining = [name for name in plan.sites if name not in plan.owned]
    while remaining:
        still_down = []
        for name in remaining:
            host, port = plan.endpoint(name, 0)
            try:
                socket.create_connection((host, port), timeout=poll_s).close()
            except OSError:
                still_down.append(name)
        remaining = still_down
        if remaining and time.monotonic() > deadline:
            raise TimeoutError(f"peers never came up: {remaining}")
        if remaining:
            time.sleep(poll_s)


def run_serve(
    config,
    plan: PeerPlan,
    duration_s: float = 10.0,
    settle_ms: float = 2_000.0,
    query: Optional[str] = None,
    query_origin: Optional[str] = None,
    password: str = "rbay",
    dress: bool = True,
    peer_timeout_s: float = 30.0,
    out=None,
) -> int:
    """Drive one ``serve`` process end to end; returns an exit code.

    ``config`` must already carry ``transport="asyncio"`` and
    ``transport_peers=plan``.  Every process applies the same
    deterministic evaluation workload (``dress``) — the transport's
    shadow suppression makes each action real exactly once.  Emits
    machine-parseable lines on ``out`` (default stdout): ``READY``, then
    per-query ``RESULT {json}``, then ``DONE {json}`` with the
    transport's traffic counters.
    """
    from repro.core.plane import RBay
    from repro.query.options import QueryOptions

    out = out if out is not None else sys.stdout
    plane = RBay(config).build()
    try:
        print(f"READY owned={','.join(sorted(plan.owned))} "
              f"hosts={plane.network.host_count}", file=out, flush=True)
        wait_for_peers(plan, timeout_s=peer_timeout_s)
        if dress:
            from repro.workloads.generator import FederationWorkload, WorkloadSpec

            FederationWorkload(plane, WorkloadSpec(password=password)).apply()
        plane.start_maintenance()
        plane.settle(settle_ms)
        if query is not None:
            origin = query_origin or sorted(plan.owned)[0]
            result = plane.query(query, options=QueryOptions(
                origin=origin, payload={"password": password}))
            print("RESULT " + json.dumps({
                "satisfied": result.satisfied,
                "requested": result.requested,
                "entries": len(result.entries),
                "degraded": result.degraded,
                "sites_answered": result.sites_answered,
            }, sort_keys=True), file=out, flush=True)
        if duration_s > 0:
            plane.sim.serve(duration_s)
        net = plane.network
        print("DONE " + json.dumps({
            "sent": net.messages_sent,
            "delivered": net.messages_delivered,
            "dropped": net.messages_dropped,
            "suppressed": net.messages_suppressed,
            "wire_bytes": net.wire_bytes_sent,
        }, sort_keys=True), file=out, flush=True)
        return 0
    finally:
        plane.close()
