"""Sim-as-oracle validation: the DES is the spec for the live transport.

The same seed drives the same reference federation twice — once on the
deterministic DES backend, once on real sockets — and the *semantic*
outcome must agree: every query returns the same result set, the
aggregate trees report the same sizes, and the invariant sanitizer is
clean in both runs.  Timing is explicitly excluded (wall latency is the
live transport's own business); everything order-dependent is
canonicalized before comparison.

``make live`` / ``tests/test_transport_oracle.py`` run
:func:`run_reference_workload` for both backends and diff the reports;
on divergence, :func:`dump_divergences` writes both reports plus the
field-level differences as sorted, diffable JSON.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Any, Dict, List, Optional

#: Reference federation shape: small enough that the live arm runs in
#: seconds, rich enough to cross every protocol surface (joins, AA
#: policies, aggregation, grouping, range buckets).
REFERENCE_SITES = 4
REFERENCE_NODES_PER_SITE = 3
REFERENCE_PASSWORD = "rbay"


def _canonical_entries(entries: List[Any]) -> List[str]:
    """Order- and float-stable projection of a result's entry rows."""
    rows = []
    for entry in entries:
        if isinstance(entry, dict):
            rows.append(json.dumps(entry, sort_keys=True, default=repr))
        else:
            rows.append(repr(entry))
    return sorted(rows)


def run_reference_workload(
    transport: str = "sim",
    seed: int = 2017,
    time_scale: float = 0.05,
    sanitize: bool = True,
    wire_check: bool = False,
) -> Dict[str, Any]:
    """Run the reference federation on ``transport``; return its report.

    The report is a plain JSON-serializable dict: ``meta`` (shape),
    ``queries`` (canonicalized per-query outcomes), ``aggregates``
    (instance-type population and tree sizes), and ``sanitizer``
    (violation descriptions, empty when clean).
    """
    from repro.core.plane import RBay, RBayConfig
    from repro.query.options import QueryOptions
    from repro.workloads.generator import FederationWorkload, WorkloadSpec

    config = RBayConfig(
        seed=seed,
        synthetic_sites=REFERENCE_SITES,
        nodes_per_site=REFERENCE_NODES_PER_SITE,
        jitter=False,
        sanitize=sanitize,
        transport=transport,
        time_scale=time_scale,
        wire_check=wire_check,
    )
    plane = RBay(config).build()
    try:
        workload = FederationWorkload(
            plane, WorkloadSpec(password=REFERENCE_PASSWORD)).apply()
        plane.register_buckets("CPU_utilization", 0.0, 100.0, buckets=4)
        plane.sim.run()  # drain to quiescence on either backend

        # The most popular instance type is a pure function of the seed,
        # so both arms ask about the same trees.
        population = Counter(workload.instance_of.values())
        top_type = population.most_common(1)[0][0]
        payload = {"password": REFERENCE_PASSWORD}
        queries = [
            f"SELECT * FROM * WHERE instance_type = '{top_type}';",
            "SELECT * FROM * WHERE CPU_utilization < 10.0;",
            "SELECT * FROM * GROUP BY CPU_utilization;",
            "SELECT * FROM * WHERE CPU_utilization >= 25.0 "
            "AND CPU_utilization < 75.0 GROUP BY CPU_utilization;",
        ]
        report_queries = []
        for sql in queries:
            result = plane.query(sql, options=QueryOptions(payload=payload))
            report_queries.append({
                "sql": sql,
                "satisfied": result.satisfied,
                "degraded": result.degraded,
                "failed_sites": sorted(result.failed_sites),
                "entries": _canonical_entries(result.entries),
            })
            # Give the leases back: the market scenario below needs the
            # full population reservable.
            for node in plane.nodes:
                node.reservation.release(result.query_id)

        aggregates = {
            "population": {k: population[k] for k in sorted(population)},
            "top_type": top_type,
        }

        # Market scenario: priced + credit-gated postings, an over-asking
        # cheapest-k purchase, an admin repricing multicast, and a second
        # purchase over the repriced market — the economy layer's wire
        # surface (AA gate payloads, priced GROUPBY replies, surplus
        # release fan-out, admin commands) under the same oracle.
        from repro.ext.economy import (CostAwareCustomer, MarketLedger,
                                       post_priced_resource, reprice)

        site_a, site_b = [s.name for s in plane.registry][:2]
        price = 4.0
        for site in (site_a, site_b):
            admin = plane.admin(site)
            for node in plane.site_nodes(site):
                post_priced_resource(admin, node, "market_slot", True,
                                     price, min_credit=0.25)
                price += 2.0
        plane.sim.run()
        ledger = MarketLedger()
        buyer = CostAwareCustomer(
            "oracle-buyer", plane.site_nodes(site_b)[0],
            plane.streams.stream("oracle-market"),
            wallet=60.0, ledger=ledger, overask=2.0, credit=0.8)
        buys = []
        for step in range(2):
            result = buyer.buy(
                "SELECT 2 FROM * WHERE market_slot = true;").result()
            buys.append({
                "satisfied": result.satisfied,
                "entries": _canonical_entries(result.entries),
            })
            if step == 0:
                # Crash the price of the first site's slots; the second
                # buy must shop the repriced market.
                reprice(plane.admin(site_a), plane.site_nodes(site_a)[0],
                        "market_slot", 1.0)
                plane.sim.run()
        market = {
            "buys": buys,
            "wallet": round(buyer.wallet, 6),
            "revenue": {site: round(value, 6) for site, value
                        in sorted(ledger.revenue_by_site().items())},
            "volume": ledger.volume(),
        }
        sanitizer_findings: List[str] = []
        if plane.sanitizer is not None:
            report = plane.sanitizer.report
            sanitizer_findings = sorted(
                v.describe() if hasattr(v, "describe") else str(v)
                for v in report.violations)
        return {
            "meta": {
                "transport": transport,
                "seed": seed,
                "sites": REFERENCE_SITES,
                "nodes_per_site": REFERENCE_NODES_PER_SITE,
            },
            "queries": report_queries,
            "aggregates": aggregates,
            "market": market,
            "sanitizer": sanitizer_findings,
        }
    finally:
        plane.close()


def compare_reports(reference: Dict[str, Any],
                    live: Dict[str, Any]) -> List[str]:
    """Field-level divergences between two reports (empty == equivalent).

    ``meta.transport`` is the only field allowed to differ.
    """
    divergences: List[str] = []
    for key in ("seed", "sites", "nodes_per_site"):
        if reference["meta"][key] != live["meta"][key]:
            divergences.append(
                f"meta.{key}: {reference['meta'][key]!r} != {live['meta'][key]!r}")
    ref_queries = {q["sql"]: q for q in reference["queries"]}
    live_queries = {q["sql"]: q for q in live["queries"]}
    for sql in sorted(set(ref_queries) | set(live_queries)):
        a, b = ref_queries.get(sql), live_queries.get(sql)
        if a is None or b is None:
            divergences.append(f"query missing from one arm: {sql}")
            continue
        for field in ("satisfied", "degraded", "failed_sites"):
            if a[field] != b[field]:
                divergences.append(
                    f"{sql} {field}: sim={a[field]!r} live={b[field]!r}")
        if a["entries"] != b["entries"]:
            only_sim = sorted(set(a["entries"]) - set(b["entries"]))
            only_live = sorted(set(b["entries"]) - set(a["entries"]))
            divergences.append(
                f"{sql} entries: {len(only_sim)} only-sim, "
                f"{len(only_live)} only-live "
                f"(first: {(only_sim + only_live)[0][:120]!r})")
    if reference["aggregates"] != live["aggregates"]:
        divergences.append(
            f"aggregates: sim={reference['aggregates']!r} "
            f"live={live['aggregates']!r}")
    if reference.get("market") != live.get("market"):
        divergences.append(
            f"market: sim={reference.get('market')!r} "
            f"live={live.get('market')!r}")
    for arm, rep in (("sim", reference), ("live", live)):
        if rep["sanitizer"]:
            divergences.append(
                f"{arm} sanitizer not clean: {rep['sanitizer'][:3]}")
    return divergences


def dump_divergences(path: str, reference: Dict[str, Any],
                     live: Dict[str, Any],
                     divergences: Optional[List[str]] = None) -> None:
    """Write both reports + the diff as sorted JSON (diff-friendly)."""
    if divergences is None:
        divergences = compare_reports(reference, live)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"divergences": divergences, "sim": reference, "live": live},
                  fh, indent=2, sort_keys=True)
        fh.write("\n")


def validate_live_against_sim(seed: int = 2017,
                              dump_path: Optional[str] = None) -> List[str]:
    """The full oracle check: run both arms, compare, optionally dump.

    Returns the divergence list (empty means the live transport matches
    the deterministic oracle).
    """
    reference = run_reference_workload(transport="sim", seed=seed)
    live = run_reference_workload(transport="asyncio", seed=seed)
    divergences = compare_reports(reference, live)
    if divergences and dump_path is not None:
        dump_divergences(dump_path, reference, live, divergences)
    return divergences
