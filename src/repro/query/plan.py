"""Query planning and EXPLAIN.

A :class:`QueryPlan` is the static half of the five-step protocol: which
sites the query fans out to, which trees serve each predicate (after
hybrid-hierarchy expansion), which predicate is likely to drive the
anycast, and which checks run at every visited member.  ``explain()``
renders the plan the way a database EXPLAIN would — useful in examples,
debugging, and the hybrid-naming tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.core.naming import site_tree
from repro.query.predicates import Predicate
from repro.query.sql import Query

if TYPE_CHECKING:
    from repro.query.executor import _QueryContext


@dataclass
class PredicatePlan:
    """How one WHERE term is served."""

    predicate: Predicate
    trees: List[str]                  # candidate trees (hybrid-expanded)
    expanded: bool                    # True if the hierarchy expanded it
    #: Cost-based route when the predicate hits a bucketed index; None
    #: for the legacy candidate-tree path.
    route: Optional["PredicateRoute"] = None

    def describe(self) -> str:
        if self.route is not None and self.route.bucketed:
            return self.route.describe()
        kind = "hierarchy-expanded" if self.expanded else "direct"
        return f"{self.predicate}  ->  {len(self.trees)} tree(s) [{kind}]"


@dataclass
class QueryPlan:
    """The full static plan for one query."""

    query: Query
    target_sites: List[str]
    predicate_plans: List[PredicatePlan] = field(default_factory=list)
    #: Per-site topic names probed in step 1.
    probes_per_site: Dict[str, List[str]] = field(default_factory=dict)
    #: Cached tree sizes (from the executor's probe cache) used to order
    #: probes and mark them skippable; empty when no hints were supplied.
    size_hints: Dict[str, int] = field(default_factory=dict)
    #: Bucket subset a GROUP BY pushes down into (None = collect path).
    group_pushdown: Optional[List] = None

    @property
    def total_probes(self) -> int:
        return sum(len(topics) for topics in self.probes_per_site.values())

    @property
    def cached_probes(self) -> int:
        """How many step-1 probes a fresh probe cache would answer."""
        return sum(1 for topics in self.probes_per_site.values()
                   for topic in topics if topic in self.size_hints)

    def local_checks(self) -> List[Predicate]:
        """Predicates re-checked at every visited member (step 4i)."""
        return list(self.query.predicates)

    def explain(self) -> str:
        """Render the plan as EXPLAIN-style text, step by step."""
        lines = [f"QUERY  {self.query}"]
        if self.query.is_disjunctive():
            lines.append(f"  WHERE normalizes to {len(self.query.where)} "
                         "disjunct(s), executed in parallel and unioned")
        lines.append(f"  fan-out: {len(self.target_sites)} site(s): "
                     + ", ".join(self.target_sites))
        lines.append("  step 1-2 (probe tree sizes):")
        for plan in self.predicate_plans:
            lines.append(f"    {plan.describe()}")
        lines.append(f"    total size probes per site: "
                     f"{self.total_probes // max(len(self.target_sites), 1)}")
        if self.size_hints:
            lines.append(f"    probe cache: {self.cached_probes} of "
                         f"{self.total_probes} probes answered from cache")
            for topic in sorted(self.size_hints):
                lines.append(f"      {topic}  ~{self.size_hints[topic]} member(s)")
        lines.append("  step 3: anycast the predicate family with the "
                     "smallest live membership")
        checks = ", ".join(str(p) for p in self.local_checks()) or "none"
        lines.append(f"  step 4 (at each member): predicates [{checks}] "
                     "+ AA onGet authorization + reservation")
        if self.query.group_by:
            if self.group_pushdown is not None:
                lines.append(f"  group by {self.query.group_by}: pushed down "
                             f"into {len(self.group_pushdown)} bucket "
                             "roll-up(s) — zero member visits")
            else:
                lines.append(f"  group by {self.query.group_by}: collect "
                             "per-member labels, dedupe by address, count")
            lines.append("  step 5: fold group counts "
                         "(group queries reserve nothing)")
            return "\n".join(lines)
        k = self.query.k if self.query.k is not None else "all"
        commit = f"commit best {k}"
        if self.query.order_by:
            direction = "DESC" if self.query.descending else "ASC"
            commit += f" by {self.query.order_by} {direction}"
        lines.append(f"  step 5: {commit}, release surplus reservations")
        return "\n".join(lines)


def plan_query(query: Query, context: "_QueryContext",
               size_hints: Optional[Dict[str, int]] = None) -> QueryPlan:
    """Build the static plan the executor would follow for ``query``.

    ``size_hints`` — usually ``QueryApplication.probe_size_hints()`` —
    lets the planner order each site's candidate trees by their cached
    sizes (smallest first, unknown last) and report how many step-1
    probes a warm cache would answer without messages.
    """
    from repro.query.planner import plan_group_pushdown, route_predicate

    target_sites = list(query.sites) if query.sites is not None else list(context.site_names)
    plan = QueryPlan(query=query, target_sites=target_sites,
                     size_hints=dict(size_hints or {}))
    if query.group_by is not None and not query.is_disjunctive():
        plan.group_pushdown = plan_group_pushdown(
            context, query.predicates, query.group_by,
            context.planner_enabled)
    seen = set()
    for conjunction in (query.where or [[]]):
        for predicate in conjunction:
            if predicate.pack() in seen:
                continue
            seen.add(predicate.pack())
            route = route_predicate(context, predicate, query.k,
                                    plan.size_hints, site_name=None,
                                    planner_on=context.planner_enabled)
            plan.predicate_plans.append(PredicatePlan(
                predicate=predicate,
                trees=list(route.trees),
                expanded=route.strategy == "direct" and len(route.trees) > 1,
                route=route,
            ))
    for site_name in target_sites:
        topics: List[str] = []
        for predicate_plan in plan.predicate_plans:
            topics.extend(site_tree(site_name, t) for t in predicate_plan.trees)
        if plan.size_hints:
            # Anycast searches ascending-size trees first (step 3): mirror
            # that order whenever cached sizes are available.
            topics.sort(key=lambda t: (t not in plan.size_hints,
                                       plan.size_hints.get(t, 0)))
        plan.probes_per_site[site_name] = topics
    return plan
