"""Concurrent query admission: a bounded in-flight window.

The workload generators want hundreds of queries outstanding at once, but
unbounded concurrency lets a burst monopolize the event loop and blow up
tail latency.  :class:`AdmissionController` is the valve between the two:
callers submit *thunks* that start a query and return its Future; at most
``window`` of them run at any instant and the rest wait in FIFO order.
Each admitted query keeps its own fully isolated state (futures, request
ids, reservations are all per-query already), so admissions never share
mutable protocol state.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional, Tuple

from repro.metrics.counters import CounterRegistry
from repro.sim.engine import Simulator
from repro.sim.futures import Future


class AdmissionController:
    """FIFO admission valve keeping at most ``window`` queries in flight."""

    def __init__(self, sim: Simulator, window: int = 64,
                 counters: Optional[CounterRegistry] = None):
        if window < 1:
            raise ValueError(f"admission window must be >= 1 (got {window})")
        self.sim = sim
        self.window = window
        self.counters = counters
        self._in_flight = 0
        self._queue: Deque[Tuple[Callable[[], Future], Future]] = deque()
        #: Lifetime admissions (diagnostics / benchmark accounting).
        self.admitted = 0
        #: High-water mark of the wait queue.
        self.max_queued = 0

    @property
    def in_flight(self) -> int:
        """Queries currently admitted and not yet resolved."""
        return self._in_flight

    @property
    def queued(self) -> int:
        """Submissions waiting for a window slot."""
        return len(self._queue)

    def submit(self, start: Callable[[], Future]) -> Future:
        """Queue ``start`` for admission; resolves with the query's result.

        ``start`` is invoked (inside the event loop) only once a window
        slot is free; its Future's resolution value — result or typed
        error — is forwarded verbatim to the returned Future.
        """
        done = Future(self.sim)
        self._queue.append((start, done))
        self.max_queued = max(self.max_queued, len(self._queue))
        self._pump()
        return done

    def _pump(self) -> None:
        """Admit queued submissions while window slots are free."""
        while self._in_flight < self.window and self._queue:
            start, done = self._queue.popleft()
            self._in_flight += 1
            self.admitted += 1
            if self.counters is not None:
                self.counters.increment("query.admitted")
            inner = start()

            def _finish(value: Any, done: Future = done) -> None:
                self._in_flight -= 1
                done.try_resolve(value)
                self._pump()

            inner.add_callback(_finish)
