"""Concurrent query admission: a bounded in-flight window.

The workload generators want hundreds of queries outstanding at once, but
unbounded concurrency lets a burst monopolize the event loop and blow up
tail latency.  :class:`AdmissionController` is the valve between the two:
callers submit *thunks* that start a query and return its Future; at most
``window`` of them run at any instant and the rest wait in FIFO order.
Each admitted query keeps its own fully isolated state (futures, request
ids, reservations are all per-query already), so admissions never share
mutable protocol state.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, Optional, Tuple

from repro.metrics.counters import CounterRegistry
from repro.sim.engine import Simulator
from repro.sim.futures import Future


class AdmissionController:
    """FIFO admission valve keeping at most ``window`` queries in flight."""

    def __init__(self, sim: Simulator, window: int = 64,
                 counters: Optional[CounterRegistry] = None):
        if window < 1:
            raise ValueError(f"admission window must be >= 1 (got {window})")
        self.sim = sim
        self.window = window
        self.counters = counters
        self._in_flight = 0
        self._queue: Deque[Tuple[Callable[[], Future], Future,
                                 str, float]] = deque()
        #: Lifetime admissions (diagnostics / benchmark accounting).
        self.admitted = 0
        #: High-water mark of the wait queue.
        self.max_queued = 0
        #: Per-label queue-wait accounting: ``label -> [count, total_ms,
        #: max_ms]``.  Labels come from :meth:`submit` (the market
        #: workload labels by origin site, so per-site starvation at the
        #: admission valve is visible); unlabeled submissions pool under
        #: ``""``.
        self._waits: Dict[str, list] = {}

    @property
    def in_flight(self) -> int:
        """Queries currently admitted and not yet resolved."""
        return self._in_flight

    @property
    def queued(self) -> int:
        """Submissions waiting for a window slot."""
        return len(self._queue)

    def submit(self, start: Callable[[], Future],
               label: Optional[str] = None) -> Future:
        """Queue ``start`` for admission; resolves with the query's result.

        ``start`` is invoked (inside the event loop) only once a window
        slot is free; its Future's resolution value — result or typed
        error — is forwarded verbatim to the returned Future.  ``label``
        tags the submission for the per-label wait accounting
        (:meth:`wait_stats`).
        """
        done = Future(self.sim)
        self._queue.append((start, done, label or "", self.sim.now))
        self.max_queued = max(self.max_queued, len(self._queue))
        self._pump()
        return done

    def wait_stats(self) -> Dict[str, Dict[str, float]]:
        """``label -> {count, mean_ms, max_ms}`` of admission-queue waits."""
        return {
            label: {
                "count": float(count),
                "mean_ms": total / count if count else 0.0,
                "max_ms": peak,
            }
            for label, (count, total, peak) in sorted(self._waits.items())
        }

    def _pump(self) -> None:
        """Admit queued submissions while window slots are free."""
        while self._in_flight < self.window and self._queue:
            start, done, label, enqueued = self._queue.popleft()
            wait = self._waits.setdefault(label, [0, 0.0, 0.0])
            wait[0] += 1
            wait[1] += self.sim.now - enqueued
            wait[2] = max(wait[2], self.sim.now - enqueued)
            self._in_flight += 1
            self.admitted += 1
            if self.counters is not None:
                self.counters.increment("query.admitted")
            inner = start()

            def _finish(value: Any, done: Future = done) -> None:
                self._in_flight -= 1
                done.try_resolve(value)
                self._pump()

            inner.add_callback(_finish)
