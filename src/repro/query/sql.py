"""A Zql-style SQL subset parser (paper Figure 6).

Supported grammar::

    query    := SELECT target FROM sources [WHERE or_expr]
                [GROUP BY name] [GROUPBY name [ASC|DESC]] [LIMIT n] [;]
    target   := <integer k> | NodeId | *
    sources  := * | site (',' site)*           -- site: quoted or bare name
    or_expr  := and_expr (OR and_expr)*        -- flattened to DNF
    and_expr := factor (AND factor)*
    factor   := pred | '(' or_expr ')'
    pred     := name op value | value op name | name BETWEEN value AND value
    op       := = | == | <> | != | < | <= | > | >=
    value    := 'string' | "string" | number[%] | true | false

Percent literals (``10%``) parse to their numeric value (10.0), matching
how utilization attributes are stored (0–100).

The literal-on-left form (``5 < CPU_utilization``) is normalized during
parsing by mirroring the comparison (to ``CPU_utilization > 5``), so both
spellings produce identical predicates.  ``GROUP BY attr`` (two words)
aggregates matches into per-value-range counts; the historical one-word
``GROUPBY`` remains the ORDER BY spelling of the paper's Figure 6.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.query.predicates import Predicate


class SQLSyntaxError(ValueError):
    """Raised when query text does not parse."""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<string>'(?:[^'\\]|\\.)*'|"(?:[^"\\]|\\.)*")
  | (?P<percent>\d+(?:\.\d+)?%)
  | (?P<number>\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)
  | (?P<op><=|>=|<>|!=|==|=|<|>)
  | (?P<punct>[*,;()])
  | (?P<name>[A-Za-z_][A-Za-z0-9_./-]*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"select", "from", "where", "and", "or", "groupby", "asc", "desc",
             "order", "by", "limit", "between", "group"}

#: Comparison mirroring for the literal-on-left predicate form.
_MIRRORED_OPS = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


@dataclass
class Query:
    """A parsed query.

    ``where`` holds the WHERE clause in disjunctive normal form: a list of
    disjuncts, each a conjunction (list) of predicates.  ``predicates`` is
    the first (often only) disjunct, kept for the common single-conjunction
    case and for backward compatibility.
    """

    k: Optional[int] = None            # None = return every match
    sites: Optional[List[str]] = None  # None = all sites ('FROM *')
    where: List[List[Predicate]] = field(default_factory=list)
    #: GROUP BY attribute: the result is per-value-range counts instead of
    #: node entries (bucket labels when the attribute is bucket-indexed).
    group_by: Optional[str] = None
    order_by: Optional[str] = None
    descending: bool = False
    #: Client-side satisfaction floor.  Over-asking customers inflate
    #: ``k`` (how many candidates the executor reserves) but are content
    #: once ``min_k`` grants exist; with the floor unset, ``k`` itself is
    #: the satisfaction threshold (the classic semantics).  Never set by
    #: the parser — only by shopping clients such as
    #: :class:`repro.ext.economy.CostAwareCustomer`.
    min_k: Optional[int] = None

    @property
    def predicates(self) -> List[Predicate]:
        return self.where[0] if self.where else []

    def is_disjunctive(self) -> bool:
        return len(self.where) > 1

    def equality_predicates(self) -> List[Predicate]:
        return [p for p in self.predicates if p.is_equality()]

    def __str__(self) -> str:
        target = "*" if self.k is None else str(self.k)
        source = "*" if self.sites is None else ", ".join(self.sites)
        text = f"SELECT {target} FROM {source}"
        if self.where:
            disjuncts = [
                " AND ".join(str(p) for p in conjunction)
                for conjunction in self.where
            ]
            if len(disjuncts) == 1:
                text += " WHERE " + disjuncts[0]
            else:
                text += " WHERE " + " OR ".join(f"({d})" for d in disjuncts)
        if self.group_by:
            text += f" GROUP BY {self.group_by}"
        if self.order_by:
            text += f" GROUPBY {self.order_by} {'DESC' if self.descending else 'ASC'}"
        return text


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise SQLSyntaxError(f"unexpected character {text[pos]!r} at offset {pos}")
        pos = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        value = match.group()
        if kind == "name" and value.lower() in _KEYWORDS:
            tokens.append(("kw", value.lower()))
        else:
            tokens.append((kind, value))
    tokens.append(("eof", ""))
    return tokens


class _Parser:
    def __init__(self, tokens: List[Tuple[str, str]]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> Tuple[str, str]:
        return self.tokens[self.pos]

    def next(self) -> Tuple[str, str]:
        token = self.tokens[self.pos]
        if token[0] != "eof":
            self.pos += 1
        return token

    def accept(self, kind: str, value: Optional[str] = None) -> bool:
        token = self.peek()
        if token[0] == kind and (value is None or token[1] == value):
            self.next()
            return True
        return False

    def expect(self, kind: str, value: Optional[str] = None) -> str:
        token = self.peek()
        if token[0] != kind or (value is not None and token[1] != value):
            want = value or kind
            raise SQLSyntaxError(f"expected {want!r}, found {token[1]!r}")
        return self.next()[1]

    # ------------------------------------------------------------------
    def parse(self) -> Query:
        self.expect("kw", "select")
        query = Query()
        token = self.peek()
        if token[0] == "number":
            query.k = int(float(self.next()[1]))
            if query.k <= 0:
                raise SQLSyntaxError("SELECT k requires a positive k")
        elif token == ("punct", "*"):
            self.next()
        elif token[0] == "name" and token[1].lower() == "nodeid":
            self.next()
        else:
            raise SQLSyntaxError(f"bad SELECT target {token[1]!r}")

        self.expect("kw", "from")
        if self.accept("punct", "*"):
            query.sites = None
        else:
            sites = [self._site_name()]
            while self.accept("punct", ","):
                sites.append(self._site_name())
            query.sites = sites

        if self.accept("kw", "where"):
            query.where = self._or_expression()

        if self.accept("kw", "group"):
            self.expect("kw", "by")
            query.group_by = self.expect("name")

        if self.accept("kw", "groupby") or (
            self.accept("kw", "order") and self.expect("kw", "by")
        ):
            query.order_by = self.expect("name")
            if self.accept("kw", "desc"):
                query.descending = True
            else:
                self.accept("kw", "asc")

        if self.accept("kw", "limit"):
            query.k = int(float(self.expect("number")))

        self.accept("punct", ";")
        if self.peek()[0] != "eof":
            raise SQLSyntaxError(f"unexpected trailing token {self.peek()[1]!r}")
        return query

    # -- WHERE grammar: or_expr := and_expr (OR and_expr)* ;
    #    and_expr := factor (AND factor)* ;
    #    factor := predicate | '(' or_expr ')'
    # The result is flattened to disjunctive normal form.
    def _or_expression(self) -> List[List[Predicate]]:
        disjuncts = list(self._and_expression())
        while self.accept("kw", "or"):
            disjuncts.extend(self._and_expression())
        return disjuncts

    def _and_expression(self) -> List[List[Predicate]]:
        dnf = self._factor()
        while self.accept("kw", "and"):
            right = self._factor()
            # AND of two DNFs: pairwise concatenation (distribution).
            dnf = [a + b for a in dnf for b in right]
            if len(dnf) > 64:
                raise SQLSyntaxError("WHERE clause expands to too many disjuncts")
        return dnf

    def _factor(self) -> List[List[Predicate]]:
        if self.accept("punct", "("):
            inner = self._or_expression()
            self.expect("punct", ")")
            return inner
        return [[self._predicate()]]

    def _site_name(self) -> str:
        token = self.peek()
        if token[0] == "string":
            return _unquote(self.next()[1])
        if token[0] == "name":
            return self.next()[1]
        raise SQLSyntaxError(f"bad site name {token[1]!r}")

    def _predicate(self) -> Predicate:
        token = self.peek()
        if token[0] in ("number", "percent", "string"):
            # Literal-on-left form (``5 < CPU_utilization``): mirror the
            # comparison so both spellings yield the same predicate.
            value = self._value()
            op = self.expect("op")
            attribute = self.expect("name")
            op = _MIRRORED_OPS.get(op, op)
        else:
            attribute = self.expect("name")
            if self.accept("kw", "between"):
                lo = self._value()
                self.expect("kw", "and")
                hi = self._value()
                return Predicate(attribute, "between", (lo, hi))
            op = self.expect("op")
            value = self._value()
        if op == "==":
            op = "="
        if op == "!=":
            op = "<>"
        return Predicate(attribute, op, value)

    def _value(self) -> Any:
        kind, text = self.next()
        if kind == "string":
            return _unquote(text)
        if kind == "percent":
            return float(text[:-1])
        if kind == "number":
            return float(text)
        if kind == "name":
            lowered = text.lower()
            if lowered == "true":
                return True
            if lowered == "false":
                return False
            return text  # bare word: treat as string literal
        raise SQLSyntaxError(f"bad literal {text!r}")


def _unquote(text: str) -> str:
    body = text[1:-1]
    return re.sub(r"\\(.)", r"\1", body)


def parse_query(text: str) -> Query:
    """Parse SQL text into a :class:`Query`."""
    return _Parser(_tokenize(text)).parse()
