"""Query predicates: comparisons against a node's attribute values."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

_OPS = ("=", "==", "<>", "!=", "<", "<=", ">", ">=", "between")

#: Operators whose acceptance set is a value interval — the ones a
#: range-partitioned bucket index (:mod:`repro.scribe.buckets`) can serve.
RANGE_OPS = ("<", "<=", ">", ">=", "between")


def evaluate(actual: Any, op: str, expected: Any) -> bool:
    """Evaluate one comparison; mismatched types never match (no coercion
    surprises — a missing attribute or wrong-typed value simply fails)."""
    if op in ("=", "=="):
        return _loose_equal(actual, expected)
    if op in ("<>", "!="):
        return not _loose_equal(actual, expected)
    if op == "between":
        lo, hi = expected
        return (_both_comparable(actual, lo) and _both_comparable(actual, hi)
                and lo <= actual <= hi)
    if not _both_comparable(actual, expected):
        return False
    if op == "<":
        return actual < expected
    if op == "<=":
        return actual <= expected
    if op == ">":
        return actual > expected
    if op == ">=":
        return actual >= expected
    raise ValueError(f"unknown operator {op!r}")


def _loose_equal(actual: Any, expected: Any) -> bool:
    if isinstance(actual, bool) or isinstance(expected, bool):
        return actual is expected
    if isinstance(actual, (int, float)) and isinstance(expected, (int, float)):
        return float(actual) == float(expected)
    return actual == expected


def _both_comparable(actual: Any, expected: Any) -> bool:
    if isinstance(actual, bool) or isinstance(expected, bool):
        return False
    numeric = isinstance(actual, (int, float)) and isinstance(expected, (int, float))
    stringy = isinstance(actual, str) and isinstance(expected, str)
    return numeric or stringy


@dataclass(frozen=True)
class Predicate:
    """One WHERE clause term: ``attribute op value``.

    ``between`` predicates carry a two-element ``(lo, hi)`` tuple as their
    value and accept the closed interval ``lo <= actual <= hi``.
    """

    attribute: str
    op: str
    value: Any

    def __post_init__(self):
        if self.op not in _OPS:
            raise ValueError(f"unsupported operator {self.op!r}")
        if self.op == "between":
            if not isinstance(self.value, (tuple, list)) or len(self.value) != 2:
                raise ValueError("BETWEEN requires a (lo, hi) value pair")
            object.__setattr__(self, "value", tuple(self.value))

    def matches(self, actual: Any) -> bool:
        return evaluate(actual, self.op, self.value)

    def is_equality(self) -> bool:
        return self.op in ("=", "==")

    def is_range(self) -> bool:
        """True for interval-shaped operators a bucket index can serve."""
        return self.op in RANGE_OPS

    def pack(self) -> Tuple[str, str, Any]:
        """Serialize for message payloads."""
        return (self.attribute, self.op, self.value)

    @classmethod
    def unpack(cls, packed: Tuple[str, str, Any]) -> "Predicate":
        attribute, op, value = packed
        if op == "between" and isinstance(value, list):
            value = tuple(value)
        return cls(attribute, op, value)

    def __str__(self) -> str:
        if self.op == "between":
            lo, hi = self.value
            return f"{self.attribute} BETWEEN {lo!r} AND {hi!r}"
        return f"{self.attribute} {self.op} {self.value!r}"
