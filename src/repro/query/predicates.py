"""Query predicates: comparisons against a node's attribute values."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

_OPS = ("=", "==", "<>", "!=", "<", "<=", ">", ">=")


def evaluate(actual: Any, op: str, expected: Any) -> bool:
    """Evaluate one comparison; mismatched types never match (no coercion
    surprises — a missing attribute or wrong-typed value simply fails)."""
    if op in ("=", "=="):
        return _loose_equal(actual, expected)
    if op in ("<>", "!="):
        return not _loose_equal(actual, expected)
    if not _both_comparable(actual, expected):
        return False
    if op == "<":
        return actual < expected
    if op == "<=":
        return actual <= expected
    if op == ">":
        return actual > expected
    if op == ">=":
        return actual >= expected
    raise ValueError(f"unknown operator {op!r}")


def _loose_equal(actual: Any, expected: Any) -> bool:
    if isinstance(actual, bool) or isinstance(expected, bool):
        return actual is expected
    if isinstance(actual, (int, float)) and isinstance(expected, (int, float)):
        return float(actual) == float(expected)
    return actual == expected


def _both_comparable(actual: Any, expected: Any) -> bool:
    if isinstance(actual, bool) or isinstance(expected, bool):
        return False
    numeric = isinstance(actual, (int, float)) and isinstance(expected, (int, float))
    stringy = isinstance(actual, str) and isinstance(expected, str)
    return numeric or stringy


@dataclass(frozen=True)
class Predicate:
    """One WHERE clause term: ``attribute op value``."""

    attribute: str
    op: str
    value: Any

    def __post_init__(self):
        if self.op not in _OPS:
            raise ValueError(f"unsupported operator {self.op!r}")

    def matches(self, actual: Any) -> bool:
        return evaluate(actual, self.op, self.value)

    def is_equality(self) -> bool:
        return self.op in ("=", "==")

    def pack(self) -> Tuple[str, str, Any]:
        """Serialize for message payloads."""
        return (self.attribute, self.op, self.value)

    @classmethod
    def unpack(cls, packed: Tuple[str, str, Any]) -> "Predicate":
        attribute, op, value = packed
        return cls(attribute, op, value)

    def __str__(self) -> str:
        return f"{self.attribute} {self.op} {self.value!r}"
