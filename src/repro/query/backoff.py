"""Truncated exponential backoff for query conflicts (paper §III-D).

"After c fails, a random number of slot times between 0 and 2^c - 1 is
chosen" — aggressive customers accumulate failures and back off for longer,
which both avoids the deadlock scenario and biases access toward less
aggressive customers.
"""

from __future__ import annotations

import random


class TruncatedExponentialBackoff:
    """Computes re-query delays; one instance per in-flight customer request."""

    def __init__(
        self,
        rng: random.Random,
        slot_ms: float = 100.0,
        max_exponent: int = 10,
        max_attempts: int = 16,
    ):
        if slot_ms <= 0:
            raise ValueError("slot_ms must be positive")
        if max_exponent < 1:
            raise ValueError("max_exponent must be >= 1")
        self._rng = rng
        self.slot_ms = slot_ms
        self.max_exponent = max_exponent
        self.max_attempts = max_attempts
        self.failures = 0

    def record_failure(self) -> None:
        self.failures += 1

    def exhausted(self) -> bool:
        return self.failures >= self.max_attempts

    def next_delay_ms(self) -> float:
        """Delay before the next re-query, given the failures so far.

        With zero recorded failures the delay is zero: the paper's "after
        c fails" semantics mean a first attempt goes out immediately
        (2^0 - 1 = 0 slots), not after up to ``2 * slot_ms``.
        """
        if self.failures <= 0:
            return 0.0
        exponent = min(self.failures, self.max_exponent)
        slots = self._rng.randint(0, (1 << exponent) - 1)
        return slots * self.slot_ms

    def reset(self) -> None:
        self.failures = 0
