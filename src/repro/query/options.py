"""Per-query execution options for the stable public API.

Historically the execution knobs were scattered across ``execute(...)``
keyword arguments (payload, caller, timeout) and plane-level config
(retry budget, LIMIT).  :class:`QueryOptions` collapses them into one
keyword-only, frozen bundle so the public signature —
``RBay.query(sql, *, options=QueryOptions(...))`` — never has to change
when a new knob is added.  The legacy keyword arguments keep working
through a deprecation shim in
:meth:`repro.query.executor.QueryApplication.execute`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional


@dataclass(frozen=True, kw_only=True)
class QueryOptions:
    """Keyword-only bundle of per-query execution knobs.

    All fields default to "inherit the plane's configuration", so
    ``QueryOptions()`` is always a valid argument.

    Attributes
    ----------
    payload:
        Opaque dict carried to every visited member's AA ``onGet``
        authorization check (e.g. credentials, a budget ceiling).
    caller:
        Caller identity presented to authorization checks and recorded
        against reservations.
    deadline_ms:
        Overall caller deadline; when it elapses first the query resolves
        to a typed :class:`~repro.query.errors.QueryTimeout` and any
        reservations are released.  ``None`` waits for the protocol to
        conclude on its own.
    retries:
        Per-step retry budget override (probe round, anycast, remote site
        request).  ``None`` uses the plane's ``site_retries`` config; 0
        disables retries for this query only.
    k:
        Override of the query's LIMIT — takes precedence over the ``k``
        parsed from the SQL text.
    origin:
        Site name whose query interface should coordinate the query (the
        facade picks a gateway node there).  ``None`` uses the first site
        in the federation registry.
    planner:
        Per-query override of the cost-based range planner.  ``None``
        inherits the plane's ``planner`` config; ``False`` forces the
        bucket-unaware baseline (probe and search the whole bucket family
        with strict checks) — the planner-off ablation arm.
    """

    payload: Optional[Dict[str, Any]] = None
    caller: Optional[str] = None
    deadline_ms: Optional[float] = None
    retries: Optional[int] = None
    k: Optional[int] = None
    origin: Optional[str] = None
    planner: Optional[bool] = None


#: Shared all-defaults instance (safe to share: the dataclass is frozen).
DEFAULT_OPTIONS = QueryOptions()
