"""The public, immutable result of one query execution.

:class:`QueryResult` is part of the frozen API surface: its fields are
documented, sequence-valued fields are tuples, and instances cannot be
mutated after construction.  Layers that refine a result (QoS trimming,
economic shopping) derive a new instance with :func:`dataclasses.replace`
instead of editing in place.  The executor assembles results in a private
mutable draft and freezes them at resolution time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple


@dataclass(frozen=True)
class QueryResult:
    """Outcome of one query execution (a single attempt, before backoff).

    Attributes
    ----------
    query_id:
        Federation-unique id; reservations at member nodes are keyed by it.
    entries:
        The selected matches, one dict per node (address, site, attribute
        snapshot, optional ``order_value``), GROUPBY-ordered and truncated
        to the requested ``k``.
    requested:
        The LIMIT in force (``None`` = return every match).
    satisfied:
        True when at least ``requested`` entries were found *and* the
        caller was still waiting — a short or abandoned query commits
        nothing.
    started_at / finished_at:
        Virtual timestamps (ms) bracketing the execution.
    sites_queried / sites_answered / failed_sites:
        Fan-out accounting: targets, responders, and sites that never
        answered within the retry budget.
    tree_sizes:
        Step-1 probe observations, ``{tree topic: size}``.
    visited_members:
        Members visited by the anycast DFS across all sites (protocol
        cost).
    degraded:
        True when ``failed_sites`` is non-empty: the entries are a partial
        view of the federation, not a full one.
    retries:
        Protocol-step retries spent assembling this result.
    """

    query_id: int
    entries: Tuple[Dict[str, Any], ...] = ()
    requested: int | None = None
    satisfied: bool = False
    started_at: float = 0.0
    finished_at: float = 0.0
    sites_queried: Tuple[str, ...] = ()
    sites_answered: Tuple[str, ...] = ()
    tree_sizes: Dict[str, int] = field(default_factory=dict)
    visited_members: int = 0
    degraded: bool = False
    failed_sites: Tuple[str, ...] = ()
    retries: int = 0

    @property
    def latency_ms(self) -> float:
        """End-to-end virtual latency of this execution (ms)."""
        return self.finished_at - self.started_at

    def node_ids(self) -> List[int]:
        """Node ids of the selected entries, in result order."""
        return [entry["node_id"] for entry in self.entries]
