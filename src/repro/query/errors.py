"""Typed errors for the query protocol.

Under injected faults a query must either complete — possibly with
``degraded=True`` partial results — or fail with one of these exceptions.
A raw :class:`~repro.sim.futures.FutureTimeout` escaping to a caller is a
protocol bug (the chaos suite asserts it never happens): timeouts inside
the protocol are retried through the backoff and, when exhausted, folded
into a degraded result or surfaced as :class:`QueryTimeout`.
"""

from __future__ import annotations


class QueryError(Exception):
    """Base class for typed query-protocol failures."""


class QueryTimeout(QueryError):
    """The query's overall deadline elapsed before a result was assembled.

    Carries the query id so late-arriving site results can still be
    identified (their reservations are released by the executor).
    """

    def __init__(self, query_id: int, deadline_ms: float):
        super().__init__(
            f"query {query_id} missed its {deadline_ms:.0f}ms deadline")
        self.query_id = query_id
        self.deadline_ms = deadline_ms


class QueryAborted(QueryError):
    """The request gave up after exhausting its re-query attempt budget."""

    def __init__(self, attempts: int):
        super().__init__(f"request aborted after {attempts} attempts")
        self.attempts = attempts
