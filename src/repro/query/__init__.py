"""The SQL-like query interface and five-step execution protocol (§III-D).

``SELECT k FROM * WHERE CPU_model = "Intel Core i7" AND CPU_utilization <
10% GROUPBY CPU_utilization DESC`` is parsed into a :class:`Query`; the
executor probes candidate tree sizes, anycasts the smaller tree with a
k-entry buffer, lets each member run its predicate + AA authorization
checks, reserves the accepted nodes, and commits or releases at the end.
"""

from repro.query.backoff import TruncatedExponentialBackoff
from repro.query.executor import QueryApplication, QueryResult
from repro.query.predicates import Predicate, evaluate
from repro.query.sql import Query, SQLSyntaxError, parse_query

__all__ = [
    "Predicate",
    "Query",
    "QueryApplication",
    "QueryResult",
    "SQLSyntaxError",
    "TruncatedExponentialBackoff",
    "evaluate",
    "parse_query",
]
