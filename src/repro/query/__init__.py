"""The SQL-like query interface and five-step execution protocol (§III-D).

``SELECT k FROM * WHERE CPU_model = "Intel Core i7" AND CPU_utilization <
10% GROUPBY CPU_utilization DESC`` is parsed into a :class:`Query`; the
executor probes candidate tree sizes, anycasts the smaller tree with a
k-entry buffer, lets each member run its predicate + AA authorization
checks, reserves the accepted nodes, and commits or releases at the end.

The stable surface for callers is :class:`QueryOptions` (keyword-only
execution knobs), the frozen :class:`QueryResult`, the typed
:class:`QueryError` family, and :class:`AdmissionController` (the bounded
in-flight window the plane routes concurrent queries through).
"""

from repro.query.admission import AdmissionController
from repro.query.backoff import TruncatedExponentialBackoff
from repro.query.errors import QueryAborted, QueryError, QueryTimeout
from repro.query.executor import QueryApplication
from repro.query.options import DEFAULT_OPTIONS, QueryOptions
from repro.query.predicates import Predicate, evaluate
from repro.query.result import QueryResult
from repro.query.sql import Query, SQLSyntaxError, parse_query

__all__ = [
    "AdmissionController",
    "DEFAULT_OPTIONS",
    "Predicate",
    "Query",
    "QueryAborted",
    "QueryApplication",
    "QueryError",
    "QueryOptions",
    "QueryResult",
    "QueryTimeout",
    "SQLSyntaxError",
    "TruncatedExponentialBackoff",
    "evaluate",
    "parse_query",
]
