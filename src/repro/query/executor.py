"""The five-step query protocol (paper §III-D, Figure 7) plus federation.

Per site the executor (1) sends size probes to the roots of each candidate
tree, (2) collects the sizes, (3) anycasts a k-entry buffer into the
smallest tree, (4) lets every visited member run predicate checks and its
AA ``onGet`` authorization, reserving accepted nodes, and (5) returns the
filled buffer to the query interface, which commits the chosen nodes and
releases the rest.

For multi-site queries the interface fans out to each target site's
boundary router ("gateway", §III-E) in parallel; the user-observed latency
is therefore the RTT to the most remote site plus that site's local query
time — exactly the structure the paper uses to explain Figure 10.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.net.message import Message

if TYPE_CHECKING:  # avoid the core <-> query.executor import cycle
    from repro.core.naming import AttributeHierarchy
    from repro.core.node import RBayNode
from repro.metrics.counters import CounterRegistry
from repro.obs import Observability
from repro.pastry.node import Application
from repro.query.backoff import TruncatedExponentialBackoff
from repro.query.errors import QueryTimeout
from repro.query.options import QueryOptions
from repro.query.predicates import Predicate
from repro.query.result import QueryResult
from repro.query.sql import Query
from repro.scribe.buckets import BucketIndex
from repro.scribe.cache import TTLCache
from repro.sim.engine import Simulator
from repro.sim.futures import Future, FutureTimeout, gather

_query_ids = itertools.count(1)
_request_ids = itertools.count(1)

#: Cap used for "SELECT *" queries so anycast buffers stay bounded.
UNBOUNDED_K = 1_000_000


@dataclass
class _ResultDraft:
    """Mutable scratchpad the executor fills in while a query runs.

    Frozen into the public :class:`~repro.query.result.QueryResult` at
    resolution time — callers never see the draft.
    """

    query_id: int
    entries: List[Dict[str, Any]] = field(default_factory=list)
    requested: Optional[int] = None
    satisfied: bool = False
    started_at: float = 0.0
    finished_at: float = 0.0
    sites_queried: List[str] = field(default_factory=list)
    sites_answered: List[str] = field(default_factory=list)
    tree_sizes: Dict[str, int] = field(default_factory=dict)
    visited_members: int = 0
    degraded: bool = False
    failed_sites: List[str] = field(default_factory=list)
    retries: int = 0

    def freeze(self) -> QueryResult:
        """Snapshot the draft into an immutable public result."""
        return QueryResult(
            query_id=self.query_id,
            entries=tuple(self.entries),
            requested=self.requested,
            satisfied=self.satisfied,
            started_at=self.started_at,
            finished_at=self.finished_at,
            sites_queried=tuple(self.sites_queried),
            sites_answered=tuple(self.sites_answered),
            tree_sizes=dict(self.tree_sizes),
            visited_members=self.visited_members,
            degraded=self.degraded,
            failed_sites=tuple(self.failed_sites),
            retries=self.retries,
        )


class _QueryContext:
    """Federation-wide knowledge shared by every query interface.

    Holds what the paper distributes out-of-band: the site list, each
    site's boundary routers, and the hybrid naming catalog.

    Internal plumbing: the plane builds exactly one and wires it
    everywhere.  Go through :class:`repro.core.plane.RBay` and its
    ``query``/``submit`` facade — the class is private and the formerly
    public ``QueryContext`` name is gone.
    """

    def __init__(
        self,
        sim: Simulator,
        site_names: List[str],
        hierarchy: Optional["AttributeHierarchy"] = None,
        lease_ms: float = 60_000.0,
        site_timeout_ms: float = 10_000.0,
        probe_timeout_ms: float = 5_000.0,
        tree_scope: str = "site",
        probe_cache_ms: float = 0.0,
        max_step_retries: int = 2,
        retry_slot_ms: float = 50.0,
        retry_rng: Optional[random.Random] = None,
        bucket_index: Optional["BucketIndex"] = None,
        planner_enabled: bool = True,
    ):
        from repro.core.naming import AttributeHierarchy  # lazy: avoids cycle

        self.sim = sim
        self.site_names = list(site_names)
        self.hierarchy = hierarchy if hierarchy is not None else AttributeHierarchy()
        self.gateways: Dict[str, int] = {}  # site name -> gateway address
        self.lease_ms = lease_ms
        self.site_timeout_ms = site_timeout_ms
        self.probe_timeout_ms = probe_timeout_ms
        #: Timed-out protocol steps (probe round, anycast, remote site
        #: request) are retried through the truncated-exponential backoff up
        #: to this many times before the step is written off as failed.
        self.max_step_retries = max_step_retries
        self.retry_slot_ms = retry_slot_ms
        self.retry_rng = retry_rng if retry_rng is not None else random.Random(0)
        #: Routing scope for the per-site attribute trees: "site" keeps
        #: rendezvous inside each site (administrative isolation, §III-E);
        #: "global" is the isolation-off ablation mode.
        self.tree_scope = tree_scope
        #: Staleness bound for step-1 size probes: a probe answered within
        #: the last ``probe_cache_ms`` is reused instead of re-sent, so
        #: repeated queries skip the probe round entirely.  0 disables the
        #: cache (every query probes — the paper's baseline behaviour).
        self.probe_cache_ms = probe_cache_ms
        #: Query ids currently between ``execute()`` and settlement —
        #: the "in-flight query" ground truth the reservation-hygiene
        #: invariant checks held reservations against.
        self.active_query_ids: set = set()
        #: Observers called once per query at settlement with
        #: ``(frozen_result, committed_count)``; the invariant sanitizer
        #: subscribes here.  Empty by default (zero-cost when unused).
        self.result_listeners: List[Any] = []
        #: Registry of range-partitioned (bucketed) attributes; range
        #: predicates on registered attributes are routed by the
        #: cost-based planner (:mod:`repro.query.planner`) instead of the
        #: legacy one-tree-per-predicate path.
        self.bucket_index = bucket_index if bucket_index is not None else BucketIndex()
        #: Default for the planner (per-query ``QueryOptions.planner``
        #: overrides it); False runs the bucket-unaware flood baseline.
        self.planner_enabled = planner_enabled

    def set_gateway(self, site_name: str, address: int) -> None:
        self.gateways[site_name] = address

    def step_backoff(self, retries: Optional[int] = None) -> TruncatedExponentialBackoff:
        """A fresh backoff sized to the per-step retry budget.

        ``retries`` overrides the context-wide ``max_step_retries`` for one
        query (the :class:`~repro.query.options.QueryOptions.retries` knob).
        """
        budget = self.max_step_retries if retries is None else retries
        return TruncatedExponentialBackoff(
            self.retry_rng, slot_ms=self.retry_slot_ms,
            max_attempts=budget + 1)

    def deadline_for(self, retries: Optional[int] = None) -> float:
        """Overall fan-out deadline: room for every retry round to finish."""
        budget_rounds = (self.max_step_retries if retries is None else retries) + 1
        budget = self.site_timeout_ms * budget_rounds
        slack = self.retry_slot_ms * (1 << min(budget_rounds, 8))
        return budget + slack

    @property
    def query_deadline_ms(self) -> float:
        """Fan-out deadline under the context-default retry budget."""
        return self.deadline_for()

    def candidate_trees(self, predicate: Predicate) -> List[str]:
        """Tree names to search for one predicate (hybrid expansion)."""
        from repro.core.naming import predicate_tree_name  # lazy: avoids cycle

        base = predicate_tree_name(predicate.attribute, predicate.op, predicate.value)
        if self.hierarchy.is_known(base):
            return self.hierarchy.expand(base)
        return [base]


class QueryApplication(Application):
    """Per-node query machinery: coordinator, site executor, lock control."""

    name = "query"

    def __init__(self, context: _QueryContext,
                 counters: Optional[CounterRegistry] = None,
                 obs: Optional[Observability] = None):
        self.context = context
        self._pending: Dict[int, Future] = {}
        self.counters = counters
        #: Causal observability plane (tracing off by default): spans for
        #: every protocol step plus the per-step latency histogram.
        self.obs = obs if obs is not None else Observability()
        #: Step-1 probe cache: topic -> last observed tree size.  Entries
        #: are trusted up to ``context.probe_cache_ms`` of staleness and
        #: dropped eagerly when the co-located Scribe instance observes any
        #: change to that tree (see :meth:`on_tree_change`).
        self.probe_cache = TTLCache(counters, "query.probe_cache")

    def on_tree_change(self, topic: str) -> None:
        """Scribe observed a membership/accumulator change for ``topic``:
        the cached probe answer can no longer be trusted."""
        self.probe_cache.invalidate(topic)

    def probe_size_hints(self) -> Dict[str, int]:
        """Tree sizes still fresh in the probe cache (planner ordering)."""
        return self.probe_cache.fresh_items(
            self.context.sim.now, self.context.probe_cache_ms)

    def cardinality_hints(self, node: "RBayNode") -> Dict[str, int]:
        """Cached tree sizes the cost-based planner may trust: fresh
        step-1 probe answers plus fresh "count" aggregates from the
        co-located scribe result cache (write-through on every
        ``agg_value`` this node sees).  Bounded by the same
        ``probe_cache_ms`` staleness budget the probe cache honours —
        with the cache disabled the planner gets no hints and never
        skips a probe round."""
        hints = dict(self.probe_size_hints())
        ttl = self.context.probe_cache_ms
        scribe = node.apps.get("scribe")
        if ttl > 0 and scribe is not None and scribe.result_cache is not None:
            fresh = scribe.result_cache.fresh_items(self.context.sim.now, ttl)
            for key, value in fresh.items():
                if (isinstance(key, tuple) and len(key) == 2
                        and key[1] == "count" and value is not None):
                    hints.setdefault(key[0], int(value))
        return hints

    # ------------------------------------------------------------------
    # Coordinator (the "query interface" near the customer)
    # ------------------------------------------------------------------
    def execute(
        self,
        node: "RBayNode",
        query: Query,
        options: Optional[QueryOptions] = None,
    ) -> Future:
        """Run ``query`` from ``node``; resolves to a :class:`QueryResult`.

        Execution knobs travel in ``options`` (a frozen
        :class:`~repro.query.options.QueryOptions`) — the only entry point;
        the pre-options ``payload``/``caller``/``timeout`` keywords have
        been removed.

        Failure contract: the future resolves to a QueryResult — possibly
        ``degraded=True`` with the unreachable sites listed — or, when the
        caller's deadline elapses first, to a typed :class:`QueryTimeout`.
        It never resolves to a raw FutureTimeout, and reservations taken by
        any site are settled (committed or released) on every path,
        including late answers that arrive after the query concluded.
        """
        opts = options if options is not None else QueryOptions()
        if opts.k is not None:
            query = replace(query, k=opts.k)
        retries = opts.retries
        sim = self.context.sim
        query_id = next(_query_ids)
        result = _ResultDraft(
            query_id=query_id,
            requested=query.k,
            started_at=sim.now,
        )
        target_sites = query.sites if query.sites is not None else self.context.site_names
        result.sites_queried = list(target_sites)
        self.context.active_query_ids.add(query_id)
        done = Future(sim, timeout=opts.deadline_ms,
                      timeout_value=lambda: QueryTimeout(
                          query_id, opts.deadline_ms))

        rec = self.obs.recorder
        root_span = None
        if rec.enabled:
            root_span = rec.start(
                "query", category="query", new_trace=True, step="coordinate",
                site=node.site.name, addr=node.address, query_id=query_id)

        site_futures: List[Future] = []
        fanned_out: List[str] = []
        answered: List[str] = []
        retries_used = [0]
        with rec.use(root_span):
            for site_name in target_sites:
                if site_name == node.site.name:
                    future = self._run_site(node, query_id, query,
                                            opts.payload, opts.caller,
                                            retries=retries,
                                            planner=opts.planner)
                else:
                    gateway = self.context.gateways.get(site_name)
                    if gateway is None:
                        continue
                    future = self._ask_remote_site(
                        node, gateway, query_id, query, opts.payload,
                        opts.caller, retries_used, site_name=site_name,
                        parent_ctx=None if root_span is None else root_span.ctx,
                        retries=retries, planner=opts.planner)
                future.add_callback(self._tag_site(answered, site_name))
                site_futures.append(future)
                fanned_out.append(site_name)

        def _merge(site_results: Any) -> None:
            if isinstance(site_results, FutureTimeout):
                site_results = [FutureTimeout()] * len(site_futures)
            entries: List[Dict[str, Any]] = []
            for site_name, site_result in zip(fanned_out, site_results):
                if isinstance(site_result, FutureTimeout) or site_result is None:
                    result.failed_sites.append(site_name)
                    continue
                entries.extend(site_result.get("entries", []))
                result.tree_sizes.update(site_result.get("tree_sizes", {}))
                result.visited_members += site_result.get("visited", 0)
                result.retries += site_result.get("retries", 0)
            selected, rejected = self._select(query, entries)
            # Over-asking clients widen ``k`` (reservation width) but set
            # ``min_k`` to the number they actually need: committing the
            # selected set whenever the floor is met lets the client keep
            # its picks and release the surplus, instead of the whole
            # result collapsing because the inflated ``k`` fell short.
            needed = query.k if query.min_k is None else query.min_k
            satisfied = needed is None or len(selected) >= needed
            # A caller whose deadline already fired cannot take the nodes:
            # treat the result as declined and release every reservation.
            caller_gone = done.resolved
            if query.group_by is not None:
                # Group queries return counts, not nodes: members are
                # never reserved (see ``visit``), so there is nothing to
                # commit or release.
                committed, released = [], []
            elif satisfied and not caller_gone:
                committed, released = selected, rejected
            else:
                # A short query commits nothing: every reservation is
                # released so a re-query (ours or a competitor's) can win.
                committed, released = [], selected + rejected
            with rec.use(root_span):
                if rec.enabled and (committed or released):
                    rec.instant("query.settle", category="query",
                                step="commit_release", site=node.site.name,
                                addr=node.address, committed=len(committed),
                                released=len(released))
                self._settle_locks(node, query_id, committed, released)
            result.entries = selected
            result.satisfied = satisfied and not caller_gone
            result.sites_answered = list(answered)
            result.retries += retries_used[0]
            result.degraded = bool(result.failed_sites)
            result.finished_at = sim.now
            if result.degraded and self.counters is not None:
                self.counters.increment("query.degraded")
            if rec.enabled:
                status = ("degraded" if result.degraded
                          else "ok" if result.satisfied else "unsatisfied")
                rec.end(root_span, status=status, retries=result.retries)
                # End-to-end latency gets its own histogram; the per-step
                # one is fed by the step spans underneath this root.
                self.obs.metrics.histogram("query.duration_ms").observe(
                    root_span.duration_ms, site=node.site.name)
            frozen = result.freeze()
            self.context.active_query_ids.discard(query_id)
            for listener in self.context.result_listeners:
                listener(frozen, len(committed))
            done.try_resolve(frozen)

        gather(sim, site_futures,
               timeout=self.context.deadline_for(retries)).add_callback(_merge)
        return done

    @staticmethod
    def _tag_site(answered: List[str], site_name: str):
        def _cb(value: Any) -> None:
            if not isinstance(value, FutureTimeout) and value is not None:
                answered.append(site_name)

        return _cb

    def _select(self, query: Query, entries: List[Dict[str, Any]]):
        """Order candidates (GROUPBY) and split into taken / surplus."""
        if query.group_by is not None:
            return self._select_groups(query, entries), []
        deduped: Dict[int, Dict[str, Any]] = {}
        for entry in entries:
            deduped.setdefault(entry["address"], entry)
        ordered = list(deduped.values())
        if query.order_by:
            ordered.sort(
                key=lambda e: self._order_key(e.get("order_value")),
                reverse=query.descending,
            )
        cutoff = len(ordered) if query.k is None else query.k
        return ordered[:cutoff], ordered[cutoff:]

    def _select_groups(self, query: Query,
                       entries: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Fold GROUP BY evidence into sorted ``{"group", "count"}`` rows.

        Evidence arrives in two shapes: pushed-down bucket roll-up counts
        (``{"group", "count"}``, no address) and per-member labels from
        the collect path (``{"address", "group"}``).  Members are deduped
        by address before counting so disjunctive WHERE branches and
        anycast re-visits never double-count.
        """
        totals: Dict[str, int] = {}
        seen: set = set()
        for entry in entries:
            if "count" in entry:
                label = entry["group"]
                totals[label] = totals.get(label, 0) + int(entry["count"])
            else:
                address = entry.get("address")
                if address in seen:
                    continue
                seen.add(address)
                label = entry["group"]
                totals[label] = totals.get(label, 0) + 1
        rows = [{"group": label, "count": count}
                for label, count in sorted(totals.items()) if count > 0]
        cutoff = len(rows) if query.k is None else query.k
        return rows[:cutoff]

    @staticmethod
    def _order_key(value: Any):
        # Missing values order last regardless of direction.
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return (0, float(value), "")
        if isinstance(value, str):
            return (1, 0.0, value)
        return (2, 0.0, "")

    def _settle_locks(self, node: "RBayNode", query_id: int,
                      selected: List[Dict[str, Any]], rejected: List[Dict[str, Any]]) -> None:
        for entry in selected:
            node.send_app(entry["address"], self.name, "commit", {
                "query_id": query_id, "lease_ms": self.context.lease_ms,
            })
        for entry in rejected:
            node.send_app(entry["address"], self.name, "release", {"query_id": query_id})

    # ------------------------------------------------------------------
    # Remote fan-out
    # ------------------------------------------------------------------
    def _ask_remote_site(self, node: "RBayNode", gateway: int, query_id: int,
                         query: Query, payload: Optional[Dict[str, Any]],
                         caller: Optional[str],
                         retries_used: Optional[List[int]] = None,
                         site_name: Optional[str] = None,
                         parent_ctx=None,
                         retries: Optional[int] = None,
                         planner: Optional[bool] = None) -> Future:
        """Send a site_query to ``gateway``, retrying lost rounds.

        Each attempt uses a fresh request id with its own per-attempt
        timeout; a reply to a timed-out attempt hits the orphan path in
        :meth:`host_message` and has its reservations released there.
        ``retries`` is the per-query budget override, also carried in the
        site_query payload so the remote executor honours it too.
        """
        sim = self.context.sim
        done = Future(sim)
        backoff = self.context.step_backoff(retries)
        rec = self.obs.recorder
        remote = site_name if site_name is not None else str(gateway)

        def _attempt() -> None:
            request_id = next(_request_ids)
            attempt = Future(sim, timeout=self.context.site_timeout_ms)
            self._pending[request_id] = attempt
            span = None
            if rec.enabled:
                # Retries resume from a timer (empty context stack), so the
                # attempt span parents explicitly under the query root.
                span = rec.start("query.site", category="query",
                                 parent=parent_ctx, step="site_rtt",
                                 site=remote, addr=node.address,
                                 attempt=backoff.failures + 1)
                attempt.add_callback(lambda value: self.obs.end_step(
                    span, status="timeout" if isinstance(value, FutureTimeout)
                    or value is None else "ok"))
            with rec.use(span):
                node.send_app(gateway, self.name, "site_query", {
                    "request_id": request_id,
                    "query_id": query_id,
                    "k": query.k,
                    "where": [[p.pack() for p in conjunction] for conjunction in query.where],
                    "order_by": query.order_by,
                    "group_by": query.group_by,
                    "payload": payload,
                    "caller": caller,
                    "origin": node.address,
                    "retries": retries,
                    "planner": planner,
                })

            def _on_reply(value: Any) -> None:
                if done.resolved:
                    return
                if not isinstance(value, FutureTimeout) and value is not None:
                    done.try_resolve(value)
                    return
                # Orphan the attempt so a late reply is settled, not merged.
                self._pending.pop(request_id, None)
                backoff.record_failure()
                if backoff.exhausted():
                    done.try_resolve(FutureTimeout(
                        f"site request to {gateway} failed after "
                        f"{backoff.failures} attempts"))
                    return
                if retries_used is not None:
                    retries_used[0] += 1
                if self.counters is not None:
                    self.counters.increment("query.retry.site")
                delay = backoff.next_delay_ms()
                if rec.enabled:
                    wait = rec.start("query.backoff", category="query",
                                     parent=parent_ctx, step="backoff",
                                     retry_of="site", site=remote,
                                     addr=node.address)
                    sim.schedule(delay, lambda: (
                        self.obs.end_step(wait), _attempt()))
                else:
                    sim.schedule(delay, _attempt)

            attempt.add_callback(_on_reply)

        _attempt()
        return done

    # ------------------------------------------------------------------
    # Site executor (steps 1-5 inside one site)
    # ------------------------------------------------------------------
    def _run_site(self, node: "RBayNode", query_id: int, query: Query,
                  payload: Optional[Dict[str, Any]], caller: Optional[str],
                  retries: Optional[int] = None,
                  planner: Optional[bool] = None) -> Future:
        return self._site_query_dnf(
            node, query_id,
            k=query.k,
            where=[list(conjunction) for conjunction in query.where],
            order_by=query.order_by,
            payload=payload,
            caller=caller,
            retries=retries,
            group_by=query.group_by,
            planner=planner,
        )

    def _site_query_dnf(self, node: "RBayNode", query_id: int, k: Optional[int],
                        where: List[List[Predicate]], order_by: Optional[str],
                        payload: Optional[Dict[str, Any]],
                        caller: Optional[str],
                        retries: Optional[int] = None,
                        group_by: Optional[str] = None,
                        planner: Optional[bool] = None) -> Future:
        """Run each disjunct of a DNF WHERE clause and union the results.

        A node satisfying several disjuncts appears once (reservations are
        per-query, so re-visits are idempotent).  GROUP BY pushdown is
        only sound for a single conjunction — disjunctive group queries
        must collect per-member labels so the union can dedupe by address.
        """
        sim = self.context.sim
        if len(where) <= 1:
            return self._site_query(node, query_id, k,
                                    where[0] if where else [],
                                    order_by, payload, caller, retries=retries,
                                    group_by=group_by, planner=planner,
                                    allow_pushdown=True)
        done = Future(sim)
        branches = [
            self._site_query(node, query_id, k, conjunction, order_by,
                             payload, caller, retries=retries,
                             group_by=group_by, planner=planner,
                             allow_pushdown=False)
            for conjunction in where
        ]

        def _union(results: Any) -> None:
            if isinstance(results, FutureTimeout):
                results = []
            entries: Dict[int, Dict[str, Any]] = {}
            tree_sizes: Dict[str, int] = {}
            visited = 0
            retries = 0
            for branch in results:
                if isinstance(branch, FutureTimeout) or branch is None:
                    continue
                for entry in branch.get("entries", []):
                    entries.setdefault(entry["address"], entry)
                tree_sizes.update(branch.get("tree_sizes", {}))
                visited += branch.get("visited", 0)
                retries += branch.get("retries", 0)
            done.try_resolve({"entries": list(entries.values()),
                              "tree_sizes": tree_sizes, "visited": visited,
                              "retries": retries})

        gather(sim, branches, timeout=self.context.site_timeout_ms).add_callback(_union)
        return done

    def _site_query(self, node: "RBayNode", query_id: int, k: Optional[int],
                    predicates: List[Predicate], order_by: Optional[str],
                    payload: Optional[Dict[str, Any]], caller: Optional[str],
                    retries: Optional[int] = None,
                    group_by: Optional[str] = None,
                    planner: Optional[bool] = None,
                    allow_pushdown: bool = True) -> Future:
        from repro.core.naming import site_tree  # lazy: avoids cycle
        from repro.query.planner import plan_group_pushdown, route_predicates

        sim = self.context.sim
        done = Future(sim)
        site_name = node.site.name
        if not predicates and group_by is None:
            sim.call_soon(done.try_resolve, {"entries": [], "tree_sizes": {},
                                             "visited": 0})
            return done
        planner_on = (self.context.planner_enabled
                      if planner is None else bool(planner))
        rec = self.obs.recorder
        exec_span = None
        exec_ctx = None
        if rec.enabled:
            # Parent comes from the context stack: the query root for the
            # local site, the coordinator's site_rtt attempt for a gateway.
            exec_span = rec.start("query.site_exec", category="query",
                                  step="site_exec", site=site_name,
                                  addr=node.address, query_id=query_id)
            exec_ctx = exec_span.ctx
            done.add_callback(lambda result: self.obs.end_step(
                exec_span, status="timeout" if isinstance(result, FutureTimeout)
                or result is None else "ok"))

        # Route each predicate: the cost-based planner picks the tree
        # family (bucket subset / full family / legacy candidate trees)
        # per predicate; GROUP BY may push the whole query down into the
        # bucket roll-ups and skip member visits entirely.
        hints = self.cardinality_hints(node)
        pushdown = None
        if group_by is not None and allow_pushdown:
            pushdown = plan_group_pushdown(self.context, predicates, group_by,
                                           planner_on)
        families: List[Dict[str, Any]] = []
        if pushdown is not None:
            if self.counters is not None:
                self.counters.increment("query.plan.pushdown")
            if not pushdown:
                sim.call_soon(done.try_resolve,
                              {"entries": [], "tree_sizes": {}, "visited": 0})
                return done
            families.append({
                "predicate": None,
                "topics": [site_tree(site_name, b.tree) for b in pushdown],
                "exact": True,
                "seeds": {},
            })
        else:
            # Group queries must see every match, so routes are costed
            # with an unbounded k.
            routes = route_predicates(
                self.context, predicates,
                k if group_by is None else None,
                hints, site_name, planner_on)
            for route in routes:
                if self.counters is not None:
                    self.counters.increment(f"query.plan.{route.strategy}")
                families.append({
                    "predicate": route.predicate,
                    "topics": [site_tree(site_name, t) for t in route.trees],
                    "exact": route.exact,
                    # The anycast strategy trusts cached sizes instead of
                    # probing; seed them so the probe round skips these.
                    "seeds": ({site_tree(site_name, t): size
                               for t, size in route.estimates.items()}
                              if route.strategy == "anycast" else {}),
                })
            if group_by is not None and not predicates:
                spec = self.context.bucket_index.spec_for(group_by)
                if spec is None:
                    # No WHERE and no bucket index: there is no tree that
                    # covers "every node holding the attribute".
                    sim.call_soon(done.try_resolve,
                                  {"entries": [], "tree_sizes": {},
                                   "visited": 0})
                    return done
                families.append({
                    "predicate": None,
                    "topics": [site_tree(site_name, b.tree)
                               for b in spec.buckets],
                    "exact": True,
                    "seeds": {},
                })

        # Steps 1-2: probe sizes of every candidate tree, grouped by the
        # predicate it serves.  Planner seeds and fresh probe-cache
        # entries answer locally; only the remainder costs a probe round.
        groups: List[List[str]] = [family["topics"] for family in families]
        flat = list(dict.fromkeys(t for group in groups for t in group))
        ttl = self.context.probe_cache_ms
        size_of: Dict[str, int] = {}
        for family in families:
            for topic, estimate in family["seeds"].items():
                size_of.setdefault(topic, int(estimate))
        to_probe: List[str] = []
        for topic in flat:
            if topic in size_of:
                continue
            hit = False
            if ttl > 0:
                hit, cached_size = self.probe_cache.get(topic, sim.now, ttl)
            if hit:
                size_of[topic] = cached_size
            else:
                to_probe.append(topic)
        if rec.enabled and size_of:
            rec.instant("query.probe_cache_hit", category="query",
                        parent=exec_ctx, site=site_name, addr=node.address,
                        topics=len(size_of))
        probe_backoff = self.context.step_backoff(retries)

        def _probe_round(topics_left: List[str]) -> None:
            probe_span = None
            if rec.enabled:
                probe_span = rec.start(
                    "query.probe", category="query", parent=exec_ctx,
                    step="probe", site=site_name, addr=node.address,
                    topics=len(topics_left),
                    attempt=probe_backoff.failures + 1)
            with rec.use(probe_span):
                round_probes = [
                    node.scribe.tree_size(node, topic,
                                          timeout=self.context.probe_timeout_ms,
                                          scope=self.context.tree_scope)
                    for topic in topics_left
                ]
            gather(sim, round_probes,
                   timeout=self.context.probe_timeout_ms).add_callback(
                lambda sizes: _collect_probe(topics_left, sizes, probe_span))

        def _collect_probe(topics_left: List[str], sizes: Any,
                           probe_span=None) -> None:
            if isinstance(sizes, FutureTimeout):
                sizes = [FutureTimeout()] * len(topics_left)
            missing: List[str] = []
            for topic, size in zip(topics_left, sizes):
                if isinstance(size, FutureTimeout):
                    missing.append(topic)
                    continue
                size_of[topic] = int(size or 0)
                if ttl > 0:
                    self.probe_cache.put(topic, size_of[topic], sim.now)
            if rec.enabled:
                self.obs.end_step(probe_span,
                                  status="timeout" if missing else "ok")
            if missing:
                probe_backoff.record_failure()
                if not probe_backoff.exhausted():
                    # Re-probe only the trees whose size is still unknown.
                    if self.counters is not None:
                        self.counters.increment("query.retry.probe")
                    delay = probe_backoff.next_delay_ms()
                    if rec.enabled:
                        wait = rec.start("query.backoff", category="query",
                                         parent=exec_ctx, step="backoff",
                                         retry_of="probe", site=site_name,
                                         addr=node.address)
                        sim.schedule(delay, lambda: (
                            self.obs.end_step(wait), _probe_round(missing)))
                    else:
                        sim.schedule(delay, lambda: _probe_round(missing))
                    return
                # Retry budget spent: an unreachable tree counts as empty,
                # so planning proceeds on what did answer.
                for topic in missing:
                    size_of[topic] = 0
            _after_probe()

        def _after_probe() -> None:
            # GROUP BY pushdown: the bucket roll-up counts *are* the
            # per-group answer — no anycast, no member visits at all.
            if pushdown is not None:
                rows = [
                    {"group": bucket.label, "count": size_of.get(topic, 0)}
                    for bucket, topic in zip(pushdown, families[0]["topics"])
                    if size_of.get(topic, 0) > 0
                ]
                done.try_resolve({"entries": rows, "tree_sizes": size_of,
                                  "visited": 0})
                return
            # Step 3: pick the predicate whose tree family is smallest.
            totals = [sum(size_of[t] for t in group) for group in groups]
            best_index: Optional[int] = None
            for index, total in enumerate(totals):
                if total <= 0:
                    continue
                if best_index is None or total < totals[best_index]:
                    best_index = index
            if best_index is None:
                done.try_resolve({"entries": [], "tree_sizes": size_of,
                                  "visited": 0})
                return
            topics = sorted(groups[best_index], key=lambda t: size_of[t])
            topics = [t for t in topics if size_of[t] > 0]
            # Tree membership *implies* the chosen predicate (that is what
            # the tree indexes), so members re-check only the remaining
            # predicates — the paper's step 4i checks "if its node has less
            # CPU utilization", not the instance-type the tree already
            # encodes.  Bucket families are exact only when every searched
            # bucket lies fully inside the predicate's interval; a
            # partially-overlapping bucket keeps its predicate strict.
            # Re-check implied predicates anyway when the attribute is
            # present locally (guards against stale membership between
            # maintenance ticks).
            local_predicates = []
            for index, family in enumerate(families):
                family_predicate = family["predicate"]
                if family_predicate is None:
                    continue  # the synthetic whole-family GROUP BY entry
                local_predicates.append(
                    (family_predicate.pack(),
                     index == best_index and family["exact"]))
            if group_by is not None:
                # Collect path: every match contributes its group label;
                # members are never reserved, so k is unbounded.
                state = {
                    "kind": "gquery",
                    "query_id": query_id,
                    "k": UNBOUNDED_K,
                    "predicates": local_predicates,
                    "group_by": group_by,
                    "entries": [],
                }
            else:
                state = {
                    "kind": "query",
                    "query_id": query_id,
                    "k": k if k is not None else UNBOUNDED_K,
                    "caller": caller,
                    "payload": payload,
                    "predicates": local_predicates,
                    "order_by": order_by,
                    "entries": [],
                }
            self._anycast_chain(node, topics, state, size_of, done,
                                parent=exec_ctx, retries=retries)

        if to_probe:
            _probe_round(to_probe)
        else:
            # Every candidate tree answered from the probe cache: step 1
            # costs zero messages and zero round-trips.
            sim.call_soon(_after_probe)
        return done

    def _anycast_chain(self, node: "RBayNode", topics: List[str], state: Dict[str, Any],
                       tree_sizes: Dict[str, int], done: Future,
                       backoff: Optional[TruncatedExponentialBackoff] = None,
                       parent=None, retries: Optional[int] = None) -> None:
        """Step 4: anycast trees in ascending-size order until k filled.

        A lost anycast (dropped message, crashed member mid-DFS) is retried
        into the same tree after a backoff delay; re-visits are idempotent
        because reservations are keyed by query id.  When the retry budget
        for a tree is spent the chain moves on to the next-larger tree.
        """
        sim = self.context.sim
        if not topics or len(state["entries"]) >= state["k"]:
            done.try_resolve({"entries": state["entries"], "tree_sizes": tree_sizes,
                              "visited": state.get("visited_total", 0),
                              "retries": state.get("retries", 0)})
            return
        topic, rest = topics[0], topics[1:]
        if backoff is None:
            backoff = self.context.step_backoff(retries)
        rec = self.obs.recorder
        span = None
        if rec.enabled:
            span = rec.start("query.anycast", category="query", parent=parent,
                             step="anycast", site=node.site.name,
                             addr=node.address, topic=topic,
                             attempt=backoff.failures + 1)

        def _next(result: Any) -> None:
            if isinstance(result, FutureTimeout) or result is None:
                if rec.enabled:
                    self.obs.end_step(span, status="timeout")
                backoff.record_failure()
                if not backoff.exhausted():
                    state["retries"] = state.get("retries", 0) + 1
                    if self.counters is not None:
                        self.counters.increment("query.retry.anycast")
                    delay = backoff.next_delay_ms()
                    if rec.enabled:
                        wait = rec.start("query.backoff", category="query",
                                         parent=parent, step="backoff",
                                         retry_of="anycast", site=node.site.name,
                                         addr=node.address, topic=topic)
                        sim.schedule(delay, lambda: (
                            self.obs.end_step(wait),
                            self._anycast_chain(node, topics, state, tree_sizes,
                                                done, backoff, parent=parent)))
                    else:
                        sim.schedule(
                            delay,
                            lambda: self._anycast_chain(node, topics, state,
                                                        tree_sizes, done, backoff,
                                                        parent=parent))
                    return
                # Budget spent on this tree: fall through to the next one
                # (fresh budget — failures are per-tree, not per-chain).
                self._anycast_chain(node, rest, state, tree_sizes, done,
                                    parent=parent, retries=retries)
                return
            if rec.enabled:
                self.obs.end_step(
                    span, status="ok",
                    visited=result.get("visited_members", 0),
                    satisfied=bool(result.get("satisfied")))
            state["entries"] = result.get("entries", state["entries"])
            state["visited_total"] = (state.get("visited_total", 0)
                                      + result.get("visited_members", 0))
            self._anycast_chain(node, rest, state, tree_sizes, done,
                                parent=parent, retries=retries)

        with rec.use(span):
            node.scribe.anycast(node, topic, state,
                                timeout=self.context.site_timeout_ms,
                                scope=self.context.tree_scope).add_callback(_next)

    # ------------------------------------------------------------------
    # Anycast visitor (runs at each visited member; wired by the plane)
    # ------------------------------------------------------------------
    def visit(self, node: "RBayNode", topic: str, state: Dict[str, Any]) -> bool:
        """Per-member step 4: predicates + AA authorization + reservation.

        ``gquery`` visits (the GROUP BY collect path) only contribute a
        group label: they run the predicate checks but never authorize or
        reserve, because a count query takes no nodes.
        """
        if state.get("kind") not in ("query", "gquery"):
            return False
        strict: List[Predicate] = []
        implied: List[Predicate] = []
        for packed in state["predicates"]:
            if isinstance(packed, (list, tuple)) and len(packed) == 2 and isinstance(packed[1], bool):
                packed_pred, is_implied = packed
                (implied if is_implied else strict).append(Predicate.unpack(packed_pred))
            else:
                strict.append(Predicate.unpack(packed))
        if state["kind"] == "gquery":
            from repro.query.planner import group_label  # lazy: avoids cycle

            group_attr = state["group_by"]
            if (node.check_predicates(strict, implied=implied)
                    and node.has_attribute(group_attr)):
                state["entries"].append({
                    "address": node.address,
                    "group": group_label(self.context, group_attr,
                                         node.attribute_value(group_attr)),
                })
            return len(state["entries"]) >= state["k"]
        entry = node.consider_for_query(
            state["query_id"], state.get("caller"), strict, state.get("payload"),
            implied=implied,
        )
        if entry is not None:
            order_by = state.get("order_by")
            if order_by:
                entry["order_value"] = node.attribute_value(order_by)
            state["entries"].append(entry)
        return len(state["entries"]) >= state["k"]

    # ------------------------------------------------------------------
    # Direct messages
    # ------------------------------------------------------------------
    def host_message(self, node: "RBayNode", msg: Message) -> None:
        """Direct query traffic: site fan-out, results, lock control."""
        kind = msg.payload["kind"]
        data = msg.payload["data"]
        if kind == "site_query":
            where = [
                [Predicate.unpack(p) for p in conjunction]
                for conjunction in data["where"]
            ]
            future = self._site_query_dnf(
                node, data["query_id"], data["k"], where,
                data.get("order_by"), data.get("payload"), data.get("caller"),
                retries=data.get("retries"),
                group_by=data.get("group_by"),
                planner=data.get("planner"),
            )

            def _reply(site_result: Any) -> None:
                if isinstance(site_result, FutureTimeout) or site_result is None:
                    site_result = {"entries": [], "tree_sizes": {}, "visited": 0}
                node.send_app(data["origin"], self.name, "site_result", {
                    "request_id": data["request_id"],
                    "query_id": data["query_id"],
                    "entries": site_result["entries"],
                    "tree_sizes": site_result["tree_sizes"],
                    "visited": site_result.get("visited", 0),
                    "retries": site_result.get("retries", 0),
                })

            future.add_callback(_reply)
        elif kind == "site_result":
            future = self._pending.pop(data["request_id"], None)
            accepted = future is not None and future.try_resolve({
                "entries": data["entries"],
                "tree_sizes": data["tree_sizes"],
                "visited": data.get("visited", 0),
                "retries": data.get("retries", 0),
            })
            if not accepted:
                # Late or duplicate reply: the coordinator already gave up
                # on this attempt (or the whole query).  Its reservations
                # must not dangle until the hold window lapses — release
                # each one explicitly.  The release is uncommitted-only:
                # the same query may have succeeded through a retried
                # attempt and committed some of these nodes, and a blanket
                # release would revoke the customer's active lease.
                query_id = data.get("query_id")
                if query_id is not None:
                    for entry in data["entries"]:
                        node.send_app(entry["address"], self.name, "release",
                                      {"query_id": query_id,
                                       "uncommitted_only": True})
                    if self.counters is not None and data["entries"]:
                        self.counters.increment("query.orphan_release")
        elif kind == "commit":
            node.reservation.commit(data["query_id"], data["lease_ms"])
        elif kind == "release":
            if data.get("uncommitted_only"):
                node.reservation.release_uncommitted(data["query_id"])
            else:
                node.reservation.release(data["query_id"])
