"""Cost-based planning of range predicates over bucketed attribute trees.

The five-step protocol's step 1 historically probed one candidate tree
family per predicate and anycast the smallest.  With range-partitioned
bucket indices (:mod:`repro.scribe.buckets`) a range predicate has three
ways to run inside a site, and the right one depends on cached
cardinality knowledge:

* **probe** — size-probe the buckets overlapping the predicate's
  interval, then anycast them ascending.  Pays 2 messages per uncached
  bucket up front, visits only members inside the interval.
* **anycast** — when *every* overlapping bucket has a fresh cached size
  (the executor's step-1 probe cache, write-through from the scribe
  aggregate result cache), skip the probe round entirely and anycast
  straight into the cached-ascending order.
* **flood** — search the whole bucket family with strict per-member
  checks.  The only option when the operator is not interval-shaped
  (``<>`` on a bucketed attribute) and the planner-off baseline for
  everything: probe all ``N`` buckets, visit members regardless of
  interval overlap.

The unit of cost is *messages per site*: probes cost 2 (request +
reply), each visited member costs 1.  Unknown bucket sizes are assumed
to hold :data:`DEFAULT_SIZE_ESTIMATE` members.  The model is
deliberately coarse — its job is ordinal (pick the cheapest shape), not
cardinal, and the golden tests in ``tests/test_query_planner.py`` pin
its choices so regressions show up as plan diffs.

GROUP BY pushdown: when every predicate of a single-conjunction WHERE
targets the grouped attribute and every bucket overlapping a predicate
is *fully contained* in its interval, the per-group counts are exactly
the bucket roll-up sizes — the query needs no member visits at all
(:func:`plan_group_pushdown`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.query.predicates import Predicate
from repro.scribe.buckets import Bucket, BucketSpec, predicate_interval

if TYPE_CHECKING:
    from repro.query.executor import _QueryContext

#: Members assumed in a bucket whose size is not cached (coarse prior).
DEFAULT_SIZE_ESTIMATE = 8

#: Cost stand-in for "visit every match" (SELECT * / unbounded k).
_UNBOUNDED = 1_000_000


@dataclass
class PredicateRoute:
    """How one predicate is served inside a site, with its costing.

    ``trees`` are site-unqualified; the executor qualifies them with the
    site name.  ``exact`` means membership of every tree in the family
    implies the predicate (the step-4 check may treat it as implied);
    bucket routes are exact only when each bucket lies fully inside the
    predicate's interval.
    """

    predicate: Predicate
    strategy: str                       # direct | probe | anycast | flood | empty
    trees: List[str] = field(default_factory=list)
    exact: bool = True
    bucketed: bool = False
    costs: Dict[str, float] = field(default_factory=dict)
    #: Site-unqualified tree -> cached size, for seeding the anycast
    #: order when the probe round is skipped.
    estimates: Dict[str, int] = field(default_factory=dict)
    reason: str = ""

    def describe(self) -> str:
        """One-line rendering for EXPLAIN output and plan-diff tests."""
        parts = [f"{self.predicate}  ->  {self.strategy}"]
        if self.bucketed:
            parts.append(f"{len(self.trees)} bucket(s)")
            cost_bits = ", ".join(
                f"{name}={self.costs[name]:g}"
                for name in ("anycast", "probe", "flood")
                if name in self.costs)
            if cost_bits:
                parts.append(f"[cost {cost_bits}]")
        else:
            parts.append(f"{len(self.trees)} tree(s)")
        if self.reason:
            parts.append(f"({self.reason})")
        return "  ".join(parts)


def _estimate(hints: Dict[str, int], qualify, tree: str) -> Optional[int]:
    """Cached size for a (site-qualified) tree, or None when unknown."""
    value = hints.get(qualify(tree))
    return None if value is None else int(value)


def route_predicate(
    context: "_QueryContext",
    predicate: Predicate,
    k: Optional[int],
    hints: Optional[Dict[str, int]] = None,
    site_name: Optional[str] = None,
    planner_on: bool = True,
) -> PredicateRoute:
    """Choose how to serve one predicate inside one site.

    ``hints`` maps site-qualified topics to cached sizes (the executor's
    ``probe_size_hints`` plus fresh scribe result-cache counts); when
    ``site_name`` is None the hints are looked up unqualified.
    """
    from repro.core.naming import site_tree  # lazy: avoids cycle

    hints = hints or {}
    qualify = (lambda t: site_tree(site_name, t)) if site_name else (lambda t: t)
    spec: Optional[BucketSpec] = context.bucket_index.spec_for(predicate.attribute)
    interval = (None if spec is None
                else predicate_interval(predicate.op, predicate.value))
    servable = interval is not None or (
        spec is not None and predicate.op in ("<>", "!="))
    if not servable:
        # Not served by a bucket index: the legacy candidate-tree path.
        return PredicateRoute(
            predicate=predicate, strategy="direct",
            trees=context.candidate_trees(predicate), exact=True,
            reason="no bucket index" if spec is None else "non-range operator")

    family = spec.buckets
    overlapping = spec.covering(predicate.op, predicate.value)
    k_eff = _UNBOUNDED if k is None else max(1, k)

    def est(bucket: Bucket) -> int:
        cached = _estimate(hints, qualify, bucket.tree)
        return DEFAULT_SIZE_ESTIMATE if cached is None else cached

    family_visits = sum(est(b) for b in family)
    uncached_family = sum(
        1 for b in family if _estimate(hints, qualify, b.tree) is None)
    costs: Dict[str, float] = {
        "flood": 2.0 * uncached_family + min(k_eff, family_visits),
    }

    if not planner_on or overlapping is None:
        # Planner off (or an operator no interval covers): strict search
        # of the whole family.  Membership implies only a bucket's range,
        # never the predicate, so the checks stay strict.
        reason = ("planner off" if not planner_on
                  else f"operator {predicate.op!r} spans all buckets")
        return PredicateRoute(
            predicate=predicate, strategy="flood",
            trees=[b.tree for b in family], exact=False, bucketed=True,
            costs=costs, reason=reason)

    if not overlapping:
        return PredicateRoute(
            predicate=predicate, strategy="empty", trees=[], exact=True,
            bucketed=True, costs=costs, reason="predicate accepts no values")

    exact = all(spec.fully_contained(b, predicate.op, predicate.value)
                for b in overlapping)
    overlap_visits = sum(est(b) for b in overlapping)
    cached = {b.tree: _estimate(hints, qualify, b.tree) for b in overlapping}
    uncached = [tree for tree, size in cached.items() if size is None]
    costs["probe"] = 2.0 * len(uncached) + min(k_eff, overlap_visits)
    if not uncached:
        costs["anycast"] = float(min(k_eff, overlap_visits))
        return PredicateRoute(
            predicate=predicate, strategy="anycast",
            trees=[b.tree for b in overlapping], exact=exact, bucketed=True,
            costs=costs,
            estimates={tree: size for tree, size in cached.items()
                       if size is not None},
            reason=f"all {len(overlapping)} bucket size(s) cached")
    return PredicateRoute(
        predicate=predicate, strategy="probe",
        trees=[b.tree for b in overlapping], exact=exact, bucketed=True,
        costs=costs,
        estimates={tree: size for tree, size in cached.items()
                   if size is not None},
        reason=f"{len(overlapping)}/{len(family)} bucket(s) overlap")


def route_predicates(
    context: "_QueryContext",
    predicates: List[Predicate],
    k: Optional[int],
    hints: Optional[Dict[str, int]] = None,
    site_name: Optional[str] = None,
    planner_on: bool = True,
) -> List[PredicateRoute]:
    """Route every predicate of one conjunction (see :func:`route_predicate`)."""
    return [route_predicate(context, p, k, hints, site_name, planner_on)
            for p in predicates]


def plan_group_pushdown(
    context: "_QueryContext",
    predicates: List[Predicate],
    group_by: str,
    planner_on: bool = True,
) -> Optional[List[Bucket]]:
    """Buckets whose roll-up counts answer a GROUP BY without any visits.

    Pushdown is sound only when the grouped attribute is bucket-indexed
    and the (single-conjunction) WHERE restricts nothing a bucket
    boundary does not already encode: every predicate targets the group
    attribute and every bucket overlapping a predicate lies fully inside
    its interval.  Returns the bucket subset to probe, or None when the
    query must fall back to collecting per-member group labels.
    """
    if not planner_on:
        return None
    spec = context.bucket_index.spec_for(group_by)
    if spec is None:
        return None
    chosen = {b.index: b for b in spec.buckets}
    for predicate in predicates:
        if predicate.attribute != group_by:
            return None
        overlapping = spec.covering(predicate.op, predicate.value)
        if overlapping is None:
            return None
        if not all(spec.fully_contained(b, predicate.op, predicate.value)
                   for b in overlapping):
            return None
        keep = {b.index for b in overlapping}
        chosen = {i: b for i, b in chosen.items() if i in keep}
    return [chosen[i] for i in sorted(chosen)]


def group_label(context: "_QueryContext", group_by: str, value: Any) -> str:
    """The group a member's value falls in: its bucket's label when the
    attribute is bucket-indexed, else the canonical value rendering."""
    from repro.core.naming import _canonical_value  # lazy: avoids cycle

    spec = context.bucket_index.spec_for(group_by)
    if spec is not None:
        bucket = spec.bucket_of(value)
        if bucket is not None:
            return bucket.label
    return _canonical_value(value)
