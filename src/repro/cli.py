"""Command-line interface: build a federation, inspect it, run queries.

Usage (installed as the ``rbay`` console script, or ``python -m repro.cli``):

    rbay describe --sites 8 --nodes 20
    rbay query "SELECT 3 FROM * WHERE instance_type = 'c3.large';"
    rbay explain "SELECT 5 FROM Virginia, Tokyo WHERE GPU = true GROUPBY vcpu DESC;"
    rbay latency --origins Virginia Singapore --queries 20
    rbay trace "SELECT 3 FROM * WHERE instance_type = 'c3.large';"
    rbay lua "return ('rbay'):upper()"

The CLI always builds a workload-dressed simulated federation (the paper's
eight EC2 sites unless ``--synthetic-sites`` is given); all times shown are
simulated milliseconds.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.plane import RBay, RBayConfig
from repro.metrics.stats import LatencyRecorder, format_table, mean, stddev
from repro.query.plan import plan_query
from repro.query.sql import parse_query
from repro.workloads.generator import FederationWorkload, WorkloadSpec
from repro.workloads.queries import QueryWorkload


def _load_fault_schedule(args):
    if getattr(args, "fault_schedule", None) is None:
        return None
    from repro.faults import FaultSchedule

    with open(args.fault_schedule, "r", encoding="utf-8") as handle:
        return FaultSchedule.from_json(handle.read())


def _build_plane(args) -> tuple:
    tracing = bool(getattr(args, "trace_out", None)) or bool(
        getattr(args, "force_tracing", False))
    config = RBayConfig(
        seed=args.seed,
        nodes_per_site=args.nodes,
        synthetic_sites=args.synthetic_sites,
        jitter=not args.no_jitter,
        aggregate_cache=not args.no_aggregate_cache,
        probe_cache_ms=args.probe_cache_ms,
        site_retries=getattr(args, "site_retries", 2),
        fault_schedule=_load_fault_schedule(args),
        tracing=tracing,
    )
    plane = RBay(config).build()
    workload = FederationWorkload(plane, WorkloadSpec(password=args.password)).apply()
    plane.sim.run()
    return plane, workload


def _finish_tracing(plane, args) -> None:
    """Shared tracing epilogue: per-step histogram + Chrome-trace export."""
    if not plane.obs.enabled:
        return
    print()
    print("per-step latency (critical-path spans):")
    print(plane.obs.step_summary())
    trace_out = getattr(args, "trace_out", None)
    if trace_out:
        from repro.obs import write_chrome_trace

        write_chrome_trace(trace_out, plane.obs.recorder.spans())
        print(f"\nwrote Chrome trace_event export to {trace_out} "
              f"({len(plane.obs.recorder)} spans; open in Perfetto)")


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=2017, help="master RNG seed")
    parser.add_argument("--nodes", type=int, default=15, help="nodes per site")
    parser.add_argument("--synthetic-sites", type=int, default=None,
                        help="use N synthetic sites instead of the 8 EC2 sites")
    parser.add_argument("--no-jitter", action="store_true",
                        help="disable latency jitter (fully deterministic)")
    parser.add_argument("--password", default="rbay",
                        help="gate password installed by the workload")
    parser.add_argument("--probe-cache-ms", type=float, default=0.0,
                        help="staleness bound for cached tree-size probes "
                             "(0 disables the probe cache)")
    parser.add_argument("--no-aggregate-cache", action="store_true",
                        help="disable subtree-accumulator memoization")
    parser.add_argument("--fault-schedule", default=None, metavar="PATH",
                        help="JSON fault schedule (see repro.faults) installed "
                             "at build time")
    parser.add_argument("--site-retries", type=int, default=2,
                        help="per-step retry budget for lost query-protocol "
                             "rounds (0 disables retries)")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="enable span tracing and write a Chrome "
                             "trace_event export to PATH (view in Perfetto)")


def cmd_describe(args) -> int:
    """Build a federation and print a per-site summary table."""
    plane, workload = _build_plane(args)
    print(f"Federation: {len(plane.registry)} sites, {len(plane.nodes)} nodes, "
          f"seed {args.seed}")
    rows = []
    for site in plane.registry:
        population = workload.site_instance_population(site.name)
        top = max(population, key=population.get)
        rows.append([
            site.name, site.region, len(plane.site_nodes(site.name)),
            f"{top} x{population[top]}",
            plane.context.gateways.get(site.name, "-"),
        ])
    print(format_table(
        ["site", "region", "nodes", "most common instance", "gateway addr"], rows))
    return 0


def cmd_query(args) -> int:
    """Run one SQL query and print the granted nodes (exit 1 if short)."""
    plane, _ = _build_plane(args)
    customer = plane.make_customer("cli", args.origin)
    result = customer.query_once(args.sql,
                                 payload={"password": args.password}).result()
    print(f"satisfied: {result.satisfied}  entries: {len(result.entries)}  "
          f"latency: {result.latency_ms:.1f} ms  "
          f"sites answered: {len(result.sites_answered)}")
    if result.entries:
        rows = [[e["site"], e["address"], f"{e['node_id'] % 100_000:>6}…",
                 e.get("order_value", "")]
                for e in result.entries]
        print(format_table(["site", "addr", "node id", "order value"], rows))
    if args.show_counters:
        print()
        print(plane.counters.format())
    _finish_tracing(plane, args)
    return 0 if result.satisfied else 1


def cmd_explain(args) -> int:
    """Print the five-step plan for a query without executing it."""
    plane, _ = _build_plane(args)
    query = parse_query(args.sql)
    print(plan_query(query, plane.context).explain())
    return 0


def cmd_latency(args) -> int:
    """Sweep latency vs. number of requesting sites (Figure 10 style)."""
    plane, _ = _build_plane(args)
    site_names = [s.name for s in plane.registry]
    origins = args.origins or site_names[:3]
    recorder = LatencyRecorder()
    for origin in origins:
        if origin not in site_names:
            print(f"unknown site {origin!r}; choices: {', '.join(site_names)}",
                  file=sys.stderr)
            return 2
        generator = QueryWorkload(plane.streams.stream(f"cli-{origin}"),
                                  site_names, k=1, password=args.password)
        customer = plane.make_customer(f"cli-{origin}", origin)
        for n_sites in range(1, len(site_names) + 1):
            for sql, payload in generator.stream(origin, n_sites, args.queries):
                result = customer.query_once(sql, payload=payload).result()
                recorder.record(f"{origin}/{n_sites}", result.latency_ms)
    rows = []
    for n_sites in range(1, len(site_names) + 1):
        row = [f"{n_sites}-site"]
        for origin in origins:
            samples = recorder.samples(f"{origin}/{n_sites}")
            row.append(f"{mean(samples):5.0f}±{stddev(samples):3.0f}")
        rows.append(row)
    print(format_table(["location", *(f"{o} (ms)" for o in origins)], rows))
    if args.show_counters:
        print()
        print(plane.counters.format())
    _finish_tracing(plane, args)
    return 0


def cmd_trace(args) -> int:
    """Trace one query end-to-end and print its critical-path breakdown."""
    from repro.obs import critical_path, format_breakdown, format_path, write_json

    args.force_tracing = True
    plane, _ = _build_plane(args)
    customer = plane.make_customer("cli", args.origin)
    result = customer.query_once(args.sql,
                                 payload={"password": args.password}).result()
    roots = plane.obs.query_roots()
    if not roots:
        print("no query spans were recorded", file=sys.stderr)
        return 2
    # The customer may retry a short query; the last root is the attempt
    # that produced the printed result.
    root = roots[-1]
    spans = plane.obs.recorder.trace(root.trace_id)
    segments = critical_path(root, spans)
    print(f"query {root.labels.get('query_id')}: latency {result.latency_ms:.1f} ms  "
          f"satisfied: {result.satisfied}  retries: {result.retries}  "
          f"spans in trace: {len(spans)}")
    print()
    print("critical path (chronological):")
    print(format_path(segments))
    print()
    print("latency attribution by protocol step:")
    print(format_breakdown(segments))
    _finish_tracing(plane, args)
    if args.json_out:
        write_json(args.json_out, plane.obs.recorder.spans())
        print(f"wrote JSON span export to {args.json_out}")
    return 0 if result.satisfied else 1


def cmd_lua(args) -> int:
    """Run a Luette chunk in the AA sandbox and print its return value."""
    from repro.aa.errors import LuetteError
    from repro.aa.interpreter import Interpreter
    from repro.aa.parser import parse as parse_luette
    from repro.aa.stdlib import make_sandbox_globals
    from repro.aa.values import luette_to_python

    source = args.source
    if source == "-":
        source = sys.stdin.read()
    interpreter = Interpreter(make_sandbox_globals(),
                              instruction_limit=args.budget)
    try:
        value = interpreter.run_chunk(parse_luette(source))
    except LuetteError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(repr(luette_to_python(value)))
    print(f"-- {interpreter.instructions_executed} instructions",
          file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="rbay",
        description="RBAY federated information plane (simulated)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("describe", help="build a federation and summarize it")
    _add_common(p)
    p.set_defaults(fn=cmd_describe)

    p = sub.add_parser("query", help="run one SQL query")
    _add_common(p)
    p.add_argument("sql", help="the query text")
    p.add_argument("--origin", default="Virginia", help="customer's home site")
    p.add_argument("--show-counters", action="store_true",
                   help="print cache/protocol counters after the query")
    p.set_defaults(fn=cmd_query)

    p = sub.add_parser("explain", help="show the query plan without running it")
    _add_common(p)
    p.add_argument("sql", help="the query text")
    p.set_defaults(fn=cmd_explain)

    p = sub.add_parser("latency", help="latency-vs-sites sweep (Fig. 10 style)")
    _add_common(p)
    p.add_argument("--origins", nargs="*", default=None,
                   help="origin sites (default: first three)")
    p.add_argument("--queries", type=int, default=10, help="queries per point")
    p.add_argument("--show-counters", action="store_true",
                   help="print cache/protocol counters after the sweep")
    p.set_defaults(fn=cmd_latency)

    p = sub.add_parser("trace",
                       help="trace one query and print its critical-path "
                            "latency breakdown")
    _add_common(p)
    p.add_argument("sql", help="the query text")
    p.add_argument("--origin", default="Virginia", help="customer's home site")
    p.add_argument("--json-out", default=None, metavar="PATH",
                   help="also write the raw JSON span export to PATH")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser("lua", help="run a Luette chunk in the AA sandbox")
    p.add_argument("source", help="chunk text, or '-' to read stdin")
    p.add_argument("--budget", type=int, default=100_000,
                   help="instruction budget")
    p.set_defaults(fn=cmd_lua)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
